//! Runtime reconfiguration and decoupling, in two acts.
//!
//! **Act 1** — the hypervisor detects a misbehaving accelerator (it
//! exceeds its declared traffic) and decouples it from the memory
//! subsystem without touching the other accelerator — the paper's §V-A
//! *Decoupling from the memory subsystem*.
//!
//! **Act 2** — the road back: a hung writer is driven through the full
//! recovery lifecycle (quiescent drain → decouple → reset → reattach →
//! probation) by `Hypervisor::poll_recovery`, ending healthy again —
//! see DESIGN.md §10.
//!
//! Run with: `cargo run --release --example runtime_reconfig`

use axi::lite::LiteBus;
use axi::types::{BurstSize, PortId};
use axi_hyperconnect::SocSystem;
use ha::fault::StalledWriter;
use ha::traffic::{BandwidthStealer, PeriodicReader};
use hyperconnect::analysis::ServiceModel;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::{Hypervisor, MonitorPolicy, RecoveryPolicy, RecoveryState, WatchdogPolicy};
use mem::{MemConfig, MemoryController};

const HC_BASE: u64 = 0xA000_0000;
const PERIOD: u32 = 20_000;

fn main() {
    decouple_a_bandwidth_thief();
    reset_and_reattach_a_hung_writer();
}

/// Act 1: monitor-driven decoupling of an over-budget accelerator.
fn decouple_a_bandwidth_thief() {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).expect("device present");
    hv.hc().set_period(PERIOD).unwrap();

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    // Port 0: a well-behaved periodic reader (e.g. a sensor-fusion HA).
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "sensor",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        200,
    )))
    .unwrap();
    // Port 1: declared as low-rate, actually floods the bus (faulty or
    // malicious silicon).
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "rogue",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();

    // The rogue HA declared it needs at most 64 sub-transactions per
    // period; two violating periods are tolerated before decoupling.
    hv.set_monitor_policy(
        PortId(1),
        MonitorPolicy {
            declared_txns_per_period: 64,
            violations_allowed: 2,
        },
    );

    let mut decoupled_at = None;
    let mut sensor_before = 0.0;
    for epoch in 0..40u64 {
        sys.run_for(PERIOD as u64);
        // The hypervisor polls once per reservation period.
        let events = hv.poll_health().unwrap();
        for e in &events {
            println!(
                "[{:>9} cycles] hypervisor DECOUPLED {}: {} sub-txns observed, {} declared",
                sys.now(),
                e.port,
                e.observed,
                e.declared
            );
            decoupled_at = Some(sys.now());
        }
        if epoch == 9 {
            sensor_before = sys.rate_per_second(0);
        }
    }

    let sensor_after = sys.rate_per_second(0);
    println!(
        "\nsensor HA completed bursts/s: {sensor_before:.0} (early) -> {sensor_after:.0} (final)"
    );
    println!(
        "rogue HA responses grounded while decoupled: {}",
        sys.interconnect().dropped_responses(1)
    );
    println!("decoupling log: {:?}", hv.decouple_log());

    let decoupled_at = decoupled_at.expect("the rogue HA must have been decoupled");
    assert!(hv.hc().is_decoupled(1).unwrap());
    assert!(
        sensor_after >= sensor_before,
        "the well-behaved HA must not be worse off after isolation"
    );
    println!(
        "\nrogue accelerator isolated after {decoupled_at} cycles; \
         the sensor HA kept its service.\n"
    );
}

/// Act 2: the full recovery lifecycle on a recoverable fault. A writer
/// hangs its W channel; the stall detector trips, the recovery state
/// machine drains and decouples the port, cues us to pulse the
/// accelerator reset, reattaches it under probation, and — since the
/// reset cured the fault — promotes it back to `Healthy`.
fn reset_and_reattach_a_hung_writer() {
    const POLL: u64 = 100;

    let mut hc = HyperConnect::new(HcConfig::new(2));
    // The drain deadline is derived from the worst-case analysis of the
    // configured service model, not guessed.
    hc.set_drain_model(
        ServiceModel::hyperconnect(2, 16, MemConfig::zcu102().first_word_latency)
            .max_outstanding(4),
    );
    println!(
        "[recovery] drain deadline from analysis: {} cycles",
        hc.drain_deadline()
    );

    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).expect("device present");
    hv.hc().set_period(2_000).unwrap();
    hv.set_watchdog_policy(
        PortId(1),
        WatchdogPolicy {
            violations_allowed: 0,
            outstanding_allowed: None,
            stall_polls_allowed: Some(2),
        },
    );
    hv.set_recovery_policy(PortId(1), RecoveryPolicy::default());

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "sensor",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        200,
    )))
    .unwrap();
    // A recoverable fault: the hung W channel clears on reset.
    sys.add_accelerator(Box::new(StalledWriter::new(
        "hung",
        0x3000_0000,
        16,
        BurstSize::B16,
    )))
    .unwrap();

    let mut resets = 0u32;
    sys.run_for_with(40_000, |now, sys| {
        if now % POLL != 0 {
            return;
        }
        for t in hv.poll_recovery().unwrap() {
            println!(
                "[{now:>9} cycles] recovery {}: {:?} -> {:?}{}",
                t.port,
                t.from,
                t.to,
                if t.dropped_txns > 0 {
                    format!(" ({} sub-txns force-flushed)", t.dropped_txns)
                } else {
                    String::new()
                }
            );
            // The transition into Resetting is the hypervisor's cue to
            // pulse the accelerator's PL reset line.
            if t.to == RecoveryState::Resetting {
                sys.accelerator_mut(t.port.0).unwrap().reset();
                resets += 1;
            }
        }
    });

    let state = hv.recovery_state(PortId(1)).unwrap();
    println!("\nfinal recovery state of port 1: {state:?} after {resets} reset(s)");
    assert_eq!(
        state,
        RecoveryState::Healthy,
        "the cured port must reattach"
    );
    assert_eq!(
        resets, 1,
        "one reset pulse suffices for a recoverable fault"
    );
    assert!(!hv.hc().is_decoupled(1).unwrap());
    println!("hung writer reset, reattached and promoted back to Healthy.");
}
