//! Runtime reconfiguration and decoupling: the hypervisor detects a
//! misbehaving accelerator (it exceeds its declared traffic) and
//! decouples it from the memory subsystem without touching the other
//! accelerator — the paper's §V-A *Decoupling from the memory
//! subsystem*.
//!
//! Run with: `cargo run --release --example runtime_reconfig`

use axi::lite::LiteBus;
use axi::types::{BurstSize, PortId};
use axi_hyperconnect::SocSystem;
use ha::traffic::{BandwidthStealer, PeriodicReader};
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::{Hypervisor, MonitorPolicy};
use mem::{MemConfig, MemoryController};

const HC_BASE: u64 = 0xA000_0000;
const PERIOD: u32 = 20_000;

fn main() {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).expect("device present");
    hv.hc().set_period(PERIOD).unwrap();

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    // Port 0: a well-behaved periodic reader (e.g. a sensor-fusion HA).
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "sensor",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        200,
    )))
    .unwrap();
    // Port 1: declared as low-rate, actually floods the bus (faulty or
    // malicious silicon).
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "rogue",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();

    // The rogue HA declared it needs at most 64 sub-transactions per
    // period; two violating periods are tolerated before decoupling.
    hv.set_monitor_policy(
        PortId(1),
        MonitorPolicy {
            declared_txns_per_period: 64,
            violations_allowed: 2,
        },
    );

    let mut decoupled_at = None;
    let mut sensor_before = 0.0;
    for epoch in 0..40u64 {
        sys.run_for(PERIOD as u64);
        // The hypervisor polls once per reservation period.
        let events = hv.poll_health().unwrap();
        for e in &events {
            println!(
                "[{:>9} cycles] hypervisor DECOUPLED {}: {} sub-txns observed, {} declared",
                sys.now(),
                e.port,
                e.observed,
                e.declared
            );
            decoupled_at = Some(sys.now());
        }
        if epoch == 9 {
            sensor_before = sys.rate_per_second(0);
        }
    }

    let sensor_after = sys.rate_per_second(0);
    println!(
        "\nsensor HA completed bursts/s: {sensor_before:.0} (early) -> {sensor_after:.0} (final)"
    );
    println!(
        "rogue HA responses grounded while decoupled: {}",
        sys.interconnect().dropped_responses(1)
    );
    println!("decoupling log: {:?}", hv.decouple_log());

    let decoupled_at = decoupled_at.expect("the rogue HA must have been decoupled");
    assert!(hv.hc().is_decoupled(1).unwrap());
    assert!(
        sensor_after >= sensor_before,
        "the well-behaved HA must not be worse off after isolation"
    );
    println!(
        "\nrogue accelerator isolated after {decoupled_at} cycles; \
         the sensor HA kept its service."
    );
}
