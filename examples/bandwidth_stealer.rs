//! The fairness experiment (Restuccia et al., TECS 2019, implemented by
//! the HyperConnect's Transaction Supervisor): a *bandwidth stealer*
//! issuing 256-beat bursts shares the bus with a victim issuing 16-beat
//! bursts. Round-robin at transaction granularity (the SmartConnect)
//! hands the stealer ~16x the victim's bandwidth; the HyperConnect's
//! burst equalization restores a fair split.
//!
//! Run with: `cargo run --release --example bandwidth_stealer`

use axi::types::BurstSize;
use axi::AxiInterconnect;
use axi_hyperconnect::SocSystem;
use ha::traffic::BandwidthStealer;
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use smartconnect::{ScConfig, SmartConnect};

const RUN_CYCLES: u64 = 2_000_000;

/// Runs victim (16-beat bursts) vs stealer (256-beat bursts) and
/// returns (victim_bytes, stealer_bytes).
fn contend<I: AxiInterconnect + 'static>(interconnect: I) -> (u64, u64) {
    let mut sys = SocSystem::new(interconnect, MemoryController::new(MemConfig::zcu102()));
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "stealer",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();
    sys.run_for(RUN_CYCLES);
    let a = sys.accelerator(0).unwrap().jobs_completed() * 16 * 16;
    let b = sys.accelerator(1).unwrap().jobs_completed() * 256 * 16;
    (a, b)
}

fn main() {
    let (v_sc, s_sc) = contend(SmartConnect::new(ScConfig::new(2)));
    let (v_hc, s_hc) = contend(HyperConnect::new(HcConfig::new(2)));

    let mb = |x: u64| x as f64 / (1 << 20) as f64;
    println!("victim: 16-beat bursts; stealer: 256-beat bursts; {RUN_CYCLES} cycles\n");
    println!("                 victim        stealer     stealer/victim");
    println!(
        "SmartConnect   {:8.1} MiB  {:8.1} MiB   {:6.1}x",
        mb(v_sc),
        mb(s_sc),
        s_sc as f64 / v_sc.max(1) as f64
    );
    println!(
        "HyperConnect   {:8.1} MiB  {:8.1} MiB   {:6.1}x",
        mb(v_hc),
        mb(s_hc),
        s_hc as f64 / v_hc.max(1) as f64
    );

    let sc_ratio = s_sc as f64 / v_sc.max(1) as f64;
    let hc_ratio = s_hc as f64 / v_hc.max(1) as f64;
    println!("\nequalization reduced the unfairness from {sc_ratio:.1}x to {hc_ratio:.1}x");
    assert!(
        sc_ratio > 4.0 && hc_ratio < 2.0,
        "expected strong unfairness on SmartConnect and near-fairness on HyperConnect"
    );
}
