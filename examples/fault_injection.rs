//! Fault injection end to end: a WLAST-corrupting accelerator is
//! detected by the Transaction Supervisor, reported through the
//! AXI-Lite health registers, and auto-decoupled by the hypervisor
//! watchdog — while the well-behaved accelerators keep their
//! worst-case latency guarantee (the paper's §III/§V isolation
//! argument).
//!
//! Run with: `cargo run --release --example fault_injection`

use axi::lite::LiteBus;
use axi::types::{BurstSize, PortId};
use axi_hyperconnect::SocSystem;
use ha::fault::WlastViolator;
use ha::traffic::PeriodicReader;
use hyperconnect::analysis::ServiceModel;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::{Hypervisor, WatchdogPolicy};
use mem::{MemConfig, MemoryController};

const HC_BASE: u64 = 0xA000_0000;
const PERIOD: u32 = 2_000;

fn main() {
    let hc = HyperConnect::new(HcConfig::new(3));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).expect("device present");
    hv.hc().set_period(PERIOD).unwrap();
    // Zero tolerance: one structured violation decouples the port.
    hv.set_watchdog_policy(
        PortId(1),
        WatchdogPolicy {
            violations_allowed: 0,
            outstanding_allowed: None,
            stall_polls_allowed: None,
        },
    );

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    // Ports 0 and 2: well-behaved periodic readers (the victims).
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim_a",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();
    // Port 1: a writer whose WLAST lands one beat early — an off-by-one
    // in its end-of-frame logic.
    sys.add_accelerator(Box::new(WlastViolator::new(
        "faulty",
        0x2000_0000,
        16,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim_b",
        0x3000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();

    // The hypervisor polls the watchdog registers every 100 cycles.
    let mut decoupled_at = None;
    sys.run_for_with(40_000, |now, _sys| {
        if now % 100 != 0 {
            return;
        }
        for e in hv.poll_watchdog().unwrap() {
            println!(
                "[{now:>6} cycles] watchdog DECOUPLED {}: {:?}, {} violations on record",
                e.port, e.reason, e.violations
            );
            decoupled_at.get_or_insert(now);
        }
    });

    let hc = sys.interconnect_ref();
    println!("\nviolations recorded on port 1:");
    for v in hc.violations(1).iter().take(3) {
        println!("  {v}");
    }
    println!(
        "  ... {} total; ports 0/2 reported {}/{}",
        hc.total_violations(1),
        hc.total_violations(0),
        hc.total_violations(2)
    );

    let bound = ServiceModel::hyperconnect(3, 16, MemConfig::zcu102().first_word_latency)
        .max_outstanding(4)
        .worst_case_read_latency();
    println!("\nvictim worst-case read latency vs. analysis bound ({bound} cycles):");
    for port in [0usize, 2] {
        let observed = hc.read_latency(port).max().unwrap();
        println!(
            "  port {port}: {observed} cycles ({} bursts completed)",
            sys.accelerator(port).unwrap().jobs_completed()
        );
        assert!(observed <= bound, "victim exceeded its bound");
    }

    let first = &sys.interconnect_ref().violations(1)[0];
    let decoupled_at = decoupled_at.expect("the faulty HA must have been decoupled");
    assert!(hv.hc().is_decoupled(1).unwrap());
    assert!(decoupled_at - first.cycle <= PERIOD as u64);
    println!(
        "\nfault at cycle {}, decoupled at cycle {decoupled_at} — within one \
         reservation period ({PERIOD} cycles); both victims kept their bound.",
        first.cycle
    );
}
