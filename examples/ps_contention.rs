//! FPGA traffic vs PS software: the paper motivates hypervisor control
//! of FPGA-originated memory traffic partly because it "can delay the
//! execution of software running on the processors of the PS" (§V-A).
//! This example runs a CPU model on the memory controller's PS port
//! while two saturating accelerators stream behind a HyperConnect, and
//! shows how the hypervisor's throttling knobs (budget + outstanding
//! limit) bound the CPU's memory latency.
//!
//! Run with: `cargo run --release --example ps_contention`

use axi::lite::LiteBus;
use axi::types::BurstSize;
use axi::AxiInterconnect;
use ha::traffic::BandwidthStealer;
use ha::Accelerator;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::Hypervisor;
use mem::{MemConfig, MemoryController, PsCpu};
use sim::Component;

const HC_BASE: u64 = 0xA000_0000;
const WINDOW: u64 = 3_000_000; // 20 ms at 150 MHz

fn run(label: &str, configure: impl FnOnce(&Hypervisor)) -> (u64, f64) {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let hv = Hypervisor::new(bus, HC_BASE).expect("device present");
    hv.hc().set_period(20_000).unwrap();
    configure(&hv);

    let mut hc = hc;
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.enable_ps_port();
    let mut cpu = PsCpu::new(200); // a cache-line read every 200 cycles
    let mut gens = [
        BandwidthStealer::new("g0", 0x1000_0000, 1 << 20, 256, BurstSize::B16),
        BandwidthStealer::new("g1", 0x3000_0000, 1 << 20, 256, BurstSize::B16),
    ];
    for now in 0..WINDOW {
        for (i, g) in gens.iter_mut().enumerate() {
            g.tick(now, hc.port(i));
        }
        hc.tick(now);
        cpu.tick(now, memory.ps_port_mut());
        memory.tick(now, hc.mem_port());
    }
    let worst = cpu.latency().max().unwrap_or(0);
    let mean = cpu.latency().mean().unwrap_or(0.0);
    println!("  {label:<28} worst {worst:>4} cycles   mean {mean:>6.1}");
    (worst, mean)
}

fn main() {
    println!("PS CPU cache-line read latency under FPGA memory pressure:\n");
    let (unmanaged, _) = run("FPGA unthrottled", |_| {});
    let (throttled, _) = run("budget 60%, outstanding 2", |hv| {
        hv.hc().set_budget(0, 374).unwrap();
        hv.hc().set_budget(1, 374).unwrap();
        hv.hc().set_max_outstanding(0, 2).unwrap();
        hv.hc().set_max_outstanding(1, 2).unwrap();
    });
    let (tight, _) = run("budget 20%, outstanding 1", |hv| {
        hv.hc().set_budget(0, 124).unwrap();
        hv.hc().set_budget(1, 124).unwrap();
        hv.hc().set_max_outstanding(0, 1).unwrap();
        hv.hc().set_max_outstanding(1, 1).unwrap();
    });
    println!(
        "\nthrottling the FPGA side cut the PS worst case from {unmanaged} \
         to {tight} cycles."
    );
    assert!(tight < throttled && throttled < unmanaged);
}
