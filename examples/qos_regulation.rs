//! QoS traffic regulation: a hard real-time victim sharing a 4-port
//! HyperConnect with a best-effort DMA swarm, the swarm throttled by
//! per-port credit regulators programmed over AXI-Lite.
//!
//! Run with: `cargo run --example qos_regulation`
//!
//! Pass `--metrics-json PATH` to write the observability snapshot —
//! with regulation active it carries the optional per-port `regulator`
//! section (throttle events, credit-occupancy gauges) on top of the
//! unchanged flat schema. The process exits nonzero if the bound
//! monitor records any violation of the victim's *tightened* bound.

use axi::lite::LiteBus;
use axi::types::BurstSize;
use axi_hyperconnect::SocSystem;
use ha::dma::{Dma, DmaConfig};
use ha::traffic::PeriodicReader;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::HcDriver;
use mem::{MemConfig, MemoryController};

const BASE: u64 = 0xA000_0000;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut metrics_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-json" => {
                metrics_path = Some(args.next().expect("--metrics-json needs a PATH"));
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let hc = HyperConnect::new(HcConfig::new(4));
    let regs = hc.regs().clone();

    // Program the regulators the way a hypervisor would: through the
    // AXI-Lite driver, not model internals. Port 0 (the victim) stays
    // unregulated; the swarm on ports 1-3 is capped to 2 in-flight
    // transactions and 2 credits per 256-cycle window.
    let mut bus = LiteBus::new();
    bus.map(BASE, 0x1000, regs.clone());
    let drv = HcDriver::probe(&bus, BASE).expect("HyperConnect at BASE");
    drv.set_regulation_window(256).unwrap();
    for port in 1..4 {
        drv.set_rate(port, 2).unwrap();
        drv.set_reg_burst(port, 2).unwrap();
        drv.set_out_cap(port, 2).unwrap();
    }

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    // Metrics + the bound monitor, which arms the *tightened* per-port
    // bounds derived from the regulator programming above.
    sys.enable_observability();

    // The hard-RT victim: one 16-beat read burst every 200 cycles.
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        200,
    )))
    .unwrap();
    // The best-effort swarm: three free-running greedy DMA readers.
    for i in 0..3u64 {
        sys.add_accelerator(Box::new(Dma::new(
            format!("swarm{i}"),
            DmaConfig {
                src_base: 0x3000_0000 + i * 0x0100_0000,
                jobs: None,
                ..DmaConfig::reader(256 * 1024, 16, BurstSize::B16)
            },
        )))
        .unwrap();
    }

    sys.run_for(60_000);

    println!(
        "victim: {} bursts completed",
        sys.accelerator(0).unwrap().jobs_completed()
    );
    for port in 1..4 {
        let (read, write) = drv.credits(port).unwrap();
        println!(
            "  port {port}: {} throttle events, credits r={read} w={write}",
            drv.throttle_events(port).unwrap(),
        );
    }

    let mon = sys
        .interconnect_ref()
        .bound_monitor()
        .expect("armed by enable_observability");
    println!(
        "bound monitor: victim read bound tightened {} -> {} cycles, {} violations",
        mon.read_bound(),
        mon.port_read_bound(0),
        mon.violations().len()
    );

    if let Some(path) = metrics_path {
        let json = sys.metrics_snapshot_json().expect("metrics enabled");
        std::fs::write(&path, json).expect("write metrics snapshot");
        println!("metrics snapshot written to {path}");
    }
    if !mon.violations().is_empty() {
        for v in mon.violations() {
            eprintln!("bound violation: {v:?}");
        }
        std::process::exit(1);
    }
}
