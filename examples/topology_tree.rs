//! Declarative assembly of an interconnect *tree*: two leaf
//! HyperConnects cascaded into a root HyperConnect, four DMAs at the
//! leaves — the paper's integration framework generalized from a flat
//! star to an arbitrary topology behind one builder.
//!
//! Run with: `cargo run --release --example topology_tree`

use axi::bridge::BridgeConfig;
use axi::types::BurstSize;
use axi_hyperconnect::TopologyBuilder;
use ha::dma::{Dma, DmaConfig};
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};

fn main() {
    let mut b = TopologyBuilder::new();

    // The 2x2 tree: root <- {leaf0, leaf1}, each leaf hosting two DMAs.
    let mut root_hc = HyperConnect::new(HcConfig::new(2));
    root_hc.enable_metrics();
    let root = b.add_interconnect("root", root_hc).unwrap();
    let leaves: Vec<_> = (0..2)
        .map(|i| {
            let mut hc = HyperConnect::new(HcConfig::new(2));
            hc.enable_metrics();
            b.add_interconnect(format!("leaf{i}"), hc).unwrap()
        })
        .collect();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();

    // Leaf 0 hangs off the root through a plain wire; leaf 1 through a
    // 1-cycle registered bridge (e.g. a clock-domain boundary).
    b.cascade_with(leaves[0], root, 0, BridgeConfig::wire())
        .unwrap();
    b.cascade_with(leaves[1], root, 1, BridgeConfig::registered())
        .unwrap();
    b.connect_memory(root, mem).unwrap();

    for i in 0..4u64 {
        let dma = b
            .add_accelerator(
                format!("dma{i}"),
                Box::new(Dma::new(
                    format!("dma{i}"),
                    DmaConfig {
                        src_base: 0x1000_0000 + i * 0x0100_0000,
                        dst_base: 0x5000_0000 + i * 0x0100_0000,
                        read_bytes: 16 * 1024,
                        write_bytes: 16 * 1024,
                        burst_beats: 64,
                        size: BurstSize::B16,
                        max_outstanding: 4,
                        jobs: Some(1),
                    },
                )),
            )
            .unwrap();
        b.attach_next(dma, leaves[i as usize / 2]).unwrap();
    }

    let mut topo = b.build().expect("topology validates");
    let out = topo.run_until_done(10_000_000);
    println!("tree of {} accelerators: {out}", topo.num_accelerators());
    println!(
        "fast-forward skipped {} of {} cycles\n",
        topo.skipped_cycles(),
        topo.now()
    );

    for &leaf in &leaves {
        let stats = topo.bridge_stats(leaf).unwrap();
        println!(
            "bridge above {:>5}: {} beats down, {} beats up",
            topo.label(leaf),
            stats.beats_down,
            stats.beats_up
        );
    }

    println!("\n=== per-node metrics snapshot ===");
    println!("{}", topo.metrics_snapshot_json());

    println!("\n=== exported netlist ===");
    let design = topo.export_design();
    for c in &design.connections {
        println!("  {} -> {}", c.from, c.to);
    }
}
