//! Quickstart: two DMAs behind an AXI HyperConnect, as in the paper's
//! Fig. 1 with N = 2.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Pass `--metrics-json PATH` to also write the full observability
//! snapshot (per-port latency/bandwidth metrics plus the runtime bound
//! monitor's verdict) as JSON. The process exits nonzero if the bound
//! monitor records any worst-case-latency violation.

use axi::AxiInterconnect;
use axi_hyperconnect::SocSystem;
use ha::dma::{Dma, DmaConfig};
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut metrics_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-json" => {
                metrics_path = Some(args.next().expect("--metrics-json needs a PATH"));
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    // The platform substrate: a ZCU102-like in-order memory controller.
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor(); // AXI protocol checking at the FPGA-PS boundary
    memory.memory_mut().fill_pattern(0x1000_0000, 64 * 1024);

    // The paper's contribution: a 2-port HyperConnect.
    let hc = HyperConnect::new(HcConfig::new(2));
    let regs = hc.regs().clone();

    let mut sys = SocSystem::new(hc, memory);
    // Transaction-level metrics + runtime worst-case-bound checking.
    sys.enable_observability();

    // Two DMAs, each moving 64 KiB in and 64 KiB out per job.
    for (name, src, dst) in [
        ("dma0", 0x1000_0000u64, 0x2000_0000u64),
        ("dma1", 0x3000_0000, 0x3800_0000),
    ] {
        sys.add_accelerator(Box::new(Dma::new(
            name,
            DmaConfig {
                src_base: src,
                dst_base: dst,
                read_bytes: 64 * 1024,
                write_bytes: 64 * 1024,
                jobs: Some(4),
                ..DmaConfig::case_study()
            },
        )))
        .unwrap();
    }

    let outcome = sys.run_until_done(10_000_000);
    println!("simulation: {outcome}");
    println!(
        "fabric clock: {} — {:.3} ms simulated",
        sys.clock(),
        1e3 * sys.clock().cycles_to_seconds(sys.now())
    );
    for i in 0..sys.num_accelerators() {
        println!(
            "  {}: {} jobs, {:.1} jobs/s",
            sys.accelerator(i).unwrap().name(),
            sys.accelerator(i).unwrap().jobs_completed(),
            sys.rate_per_second(i)
        );
    }
    let stats = sys.memory().stats();
    println!(
        "memory: {} bytes moved, {:.1}% data-path utilization",
        stats.bytes_served,
        100.0 * stats.utilization(sys.now())
    );
    let monitor = sys.memory().monitor().expect("attached above");
    println!(
        "protocol monitor: {} reads, {} writes, {}",
        monitor.reads_completed(),
        monitor.writes_completed(),
        if monitor.is_clean() {
            "no violations".to_string()
        } else {
            format!("{} VIOLATIONS", monitor.errors().len())
        }
    );
    // The hypervisor-visible transaction counters.
    for port in 0..2 {
        let off = hyperconnect::regfile::port_block_offset(port)
            + hyperconnect::regfile::offsets::PORT_TXN_TOTAL;
        println!(
            "  port {port}: {} equalized sub-transactions",
            regs.read32(off)
        );
    }

    // Per-port transaction latency, from the observability layer.
    let metrics = sys.interconnect_ref().metrics().expect("enabled above");
    for port in 0..metrics.num_ports() {
        let p = metrics.port(port);
        let fmt = |s: &sim::stats::LatencyStat| {
            format!(
                "{} txns, mean {:.1} / max {} cycles",
                s.count(),
                s.mean().unwrap_or(0.0),
                s.max().unwrap_or(0)
            )
        };
        println!(
            "  port {port} latency: reads {}; writes {}",
            fmt(&p.read_txns),
            fmt(&p.write_txns)
        );
    }
    let report = sys
        .interconnect_ref()
        .bound_report()
        .expect("monitor armed above");
    println!(
        "bound monitor: {} reads / {} writes checked against {} / {} cycle bounds, {} violations",
        report.checked_reads,
        report.checked_writes,
        report.read_bound,
        report.write_bound,
        report.violations
    );

    if let Some(path) = metrics_path {
        let json = sys.metrics_snapshot_json().expect("metrics enabled");
        std::fs::write(&path, json).expect("write metrics snapshot");
        println!("metrics snapshot written to {path}");
    }
    if report.violations > 0 {
        for v in sys.interconnect_ref().bound_violations() {
            eprintln!("bound violation: {v:?}");
        }
        std::process::exit(1);
    }
}
