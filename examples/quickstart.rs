//! Quickstart: two DMAs behind an AXI HyperConnect, as in the paper's
//! Fig. 1 with N = 2.
//!
//! Run with: `cargo run --example quickstart`

use axi_hyperconnect::SocSystem;
use ha::dma::{Dma, DmaConfig};
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};

fn main() {
    // The platform substrate: a ZCU102-like in-order memory controller.
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor(); // AXI protocol checking at the FPGA-PS boundary
    memory.memory_mut().fill_pattern(0x1000_0000, 64 * 1024);

    // The paper's contribution: a 2-port HyperConnect.
    let hc = HyperConnect::new(HcConfig::new(2));
    let regs = hc.regs().clone();

    let mut sys = SocSystem::new(hc, memory);

    // Two DMAs, each moving 64 KiB in and 64 KiB out per job.
    for (name, src, dst) in [
        ("dma0", 0x1000_0000u64, 0x2000_0000u64),
        ("dma1", 0x3000_0000, 0x3800_0000),
    ] {
        sys.add_accelerator(Box::new(Dma::new(
            name,
            DmaConfig {
                src_base: src,
                dst_base: dst,
                read_bytes: 64 * 1024,
                write_bytes: 64 * 1024,
                jobs: Some(4),
                ..DmaConfig::case_study()
            },
        )));
    }

    let outcome = sys.run_until_done(10_000_000);
    println!("simulation: {outcome}");
    println!(
        "fabric clock: {} — {:.3} ms simulated",
        sys.clock(),
        1e3 * sys.clock().cycles_to_seconds(sys.now())
    );
    for i in 0..sys.num_accelerators() {
        println!(
            "  {}: {} jobs, {:.1} jobs/s",
            sys.accelerator(i).name(),
            sys.accelerator(i).jobs_completed(),
            sys.rate_per_second(i)
        );
    }
    let stats = sys.memory().stats();
    println!(
        "memory: {} bytes moved, {:.1}% data-path utilization",
        stats.bytes_served,
        100.0 * stats.utilization(sys.now())
    );
    let monitor = sys.memory().monitor().expect("attached above");
    println!(
        "protocol monitor: {} reads, {} writes, {}",
        monitor.reads_completed(),
        monitor.writes_completed(),
        if monitor.is_clean() {
            "no violations".to_string()
        } else {
            format!("{} VIOLATIONS", monitor.errors().len())
        }
    );
    // The hypervisor-visible transaction counters.
    for port in 0..2 {
        let off = hyperconnect::regfile::port_block_offset(port)
            + hyperconnect::regfile::offsets::PORT_TXN_TOTAL;
        println!(
            "  port {port}: {} equalized sub-transactions",
            regs.read32(off)
        );
    }
}
