//! Mixed-criticality scenario: a safety-critical DNN accelerator shares
//! the bus with a best-effort DMA. The hypervisor partitions bandwidth
//! 90/10 (the paper's `HC-90-10`) so the DNN keeps near-isolation
//! performance despite the DMA flooding the bus.
//!
//! Run with: `cargo run --release --example mixed_criticality`

use axi::lite::LiteBus;
use axi::types::PortId;
use axi_hyperconnect::SocSystem;
use ha::chaidnn::{Chaidnn, ChaidnnConfig};
use ha::dma::{Dma, DmaConfig};
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::{Criticality, Hypervisor};
use mem::{MemConfig, MemoryController};

const HC_BASE: u64 = 0xA000_0000;
const RUN_CYCLES: u64 = 30_000_000; // 200 ms at 150 MHz

fn build_system() -> (SocSystem<HyperConnect>, Hypervisor) {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let hypervisor = Hypervisor::new(bus, HC_BASE).expect("device present");

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.add_accelerator(Box::new(Chaidnn::googlenet(ChaidnnConfig::default())))
        .unwrap();
    sys.add_accelerator(Box::new(Dma::new("HA_DMA", DmaConfig::case_study())))
        .unwrap();
    (sys, hypervisor)
}

fn main() {
    let mem_latency = MemConfig::zcu102().first_word_latency;

    // --- Pass 1: no reservation — the DMA starves the DNN. ---
    let (mut sys, hv) = build_system();
    hv.hc().set_period(50_000).unwrap();
    sys.run_for(RUN_CYCLES);
    let unmanaged_fps = sys.rate_per_second(0);
    let unmanaged_dma = sys.rate_per_second(1);

    // --- Pass 2: the hypervisor enforces HC-90-10. ---
    let (mut sys, mut hv) = build_system();
    let dnn = hv.create_domain("perception", Criticality::Safety);
    let best = hv.create_domain("diagnostics", Criticality::BestEffort);
    hv.assign_port(dnn, PortId(0)).unwrap();
    hv.assign_port(best, PortId(1)).unwrap();
    hv.hc().set_period(50_000).unwrap();
    let budgets = hv.set_bandwidth_shares(&[90, 10], mem_latency).unwrap();
    println!("hypervisor programmed budgets: {budgets:?} sub-txns/period\n");

    sys.run_for(RUN_CYCLES);
    // Route completion interrupts to the owning domains.
    for port in sys.take_irq_events() {
        hv.route_irq(port).unwrap();
    }
    let managed_fps = sys.rate_per_second(0);
    let managed_dma = sys.rate_per_second(1);

    println!("CHaiDNN (safety-critical) under DMA contention:");
    println!("  no reservation : {unmanaged_fps:6.1} fps   (DMA {unmanaged_dma:6.1} jobs/s)");
    println!("  HC-90-10       : {managed_fps:6.1} fps   (DMA {managed_dma:6.1} jobs/s)");
    println!(
        "  reservation recovered {:.0}% more DNN throughput",
        100.0 * (managed_fps - unmanaged_fps) / unmanaged_fps.max(1e-9)
    );
    println!(
        "\ninterrupts delivered: perception={} diagnostics={}",
        hv.domain(dnn).unwrap().total_irqs(),
        hv.domain(best).unwrap().total_irqs()
    );
    assert!(
        managed_fps > unmanaged_fps,
        "reservation must improve the critical accelerator"
    );
}
