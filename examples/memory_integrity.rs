//! Fabric faults end to end: a seeded memory-side injector corrupts
//! live read traffic (spurious SLVERRs plus single- and double-bit
//! payload flips), the ECC model corrects what it can and announces
//! what it cannot, the scoreboard oracle retries transient errors with
//! capped exponential backoff inside the closed-form completion bound,
//! and the hypervisor's integrity monitor quarantines a hard-error
//! region onto a spare — with zero silent corruption across every
//! stage.
//!
//! Run with: `cargo run --release --example memory_integrity`

use axi::lite::LiteBus;
use axi::retry::RetryPolicy;
use axi::types::{BurstSize, PortId};
use axi_hyperconnect::SocSystem;
use ha::scoreboard::ScoreboardMaster;
use hyperconnect::analysis::ServiceModel;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::{Hypervisor, IntegrityPolicy};
use mem::{MemConfig, MemFaultConfig, MemoryController, RegionRemap};

const HC_BASE: u64 = 0xA000_0000;
const ORACLE_BASE: u64 = 0x2000_0000;
const ORACLE_SPAN: u64 = 16 * 256;
const SPARE_BASE: u64 = 0x2800_0000;

const POLICY: RetryPolicy = RetryPolicy {
    max_attempts: 10,
    backoff_base: 2,
    backoff_cap: 64,
};

fn oracle(seed: u64) -> ScoreboardMaster {
    ScoreboardMaster::new("oracle", ORACLE_BASE, ORACLE_SPAN, 16, BurstSize::B16, seed)
        .policy(POLICY)
        .jobs(30)
}

/// Stage 1+2: transient faults (spurious SLVERR + bit flips under ECC).
/// Every burst retries to a verified completion.
fn transient_stage() {
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(2)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.memory_mut().attach_fault_injector(
        MemFaultConfig::new(11)
            .spurious_slverr(0.12)
            .flip_single(0.08)
            .flip_double(0.02)
            .ecc(true),
    );
    sys.add_accelerator(Box::new(oracle(5))).unwrap();
    sys.run_for(80_000);

    let sb = sys
        .accelerator(0)
        .unwrap()
        .as_any()
        .downcast_ref::<ScoreboardMaster>()
        .unwrap();
    let s = sb.stats();
    let inj = sys.memory().fault_stats().unwrap();
    println!("== transient faults under ECC + retry ==");
    println!(
        "injector: {} spurious SLVERRs, {} single flips (ECC-corrected {}), \
         {} double flips (detected, uncorrectable {})",
        inj.spurious_errors, inj.single_flips, inj.corrected, inj.double_flips, inj.uncorrectable
    );
    println!(
        "oracle:   {} bursts verified, {} announced errors retried ({} retries), \
         {} aborted, {} SILENT CORRUPTIONS",
        s.bursts_verified, s.announced_errors, s.retries, s.aborted_ops, s.silent_corruptions
    );
    let first_word = MemConfig::zcu102().first_word_latency;
    let model = ServiceModel::hyperconnect(2, 16, first_word).max_outstanding(4);
    let bound = model.retry_completion_bound(&POLICY, s.worst_faults_per_op + 1);
    println!(
        "bound:    worst op completion {} cycles <= derived bound {} cycles\n",
        s.worst_completion, bound
    );
    assert_eq!(s.silent_corruptions, 0);
    assert!(s.worst_completion <= bound);
}

/// Stage 3: a hard-error region. The integrity monitor trips past its
/// error budget, the hypervisor quarantines the region onto a spare,
/// and verified round trips resume.
fn quarantine_stage() {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).unwrap();
    hv.set_integrity_policy(PortId(0), IntegrityPolicy { errors_allowed: 2 })
        .unwrap();

    let mut sys = SocSystem::new(
        hc,
        MemoryController::new(
            MemConfig::zcu102().slverr_range(ORACLE_BASE, ORACLE_BASE + ORACLE_SPAN),
        ),
    );
    sys.add_accelerator(Box::new(oracle(13))).unwrap();

    println!("== hard-error region quarantine ==");
    sys.run_for_with(80_000, |now, sys| {
        if now % 50 != 0 {
            return;
        }
        for ev in hv.poll_integrity().unwrap() {
            println!(
                "cycle {now}: port {} exceeded its error budget \
                 (ERR_TOTAL {} > {} allowed) — quarantining {:#x}..{:#x} onto {SPARE_BASE:#x}",
                ev.port.0,
                ev.err_total,
                ev.errors_allowed,
                ORACLE_BASE,
                ORACLE_BASE + ORACLE_SPAN
            );
            sys.memory_mut().quarantine_remap(RegionRemap {
                lo: ORACLE_BASE,
                hi: ORACLE_BASE + ORACLE_SPAN,
                spare_base: SPARE_BASE,
            });
            (sys.accelerator_mut(0).unwrap() as &mut dyn std::any::Any)
                .downcast_mut::<ScoreboardMaster>()
                .unwrap()
                .note_remap(ORACLE_BASE, ORACLE_BASE + ORACLE_SPAN);
        }
    });

    let sb = sys
        .accelerator(0)
        .unwrap()
        .as_any()
        .downcast_ref::<ScoreboardMaster>()
        .unwrap();
    let s = sb.stats();
    println!(
        "oracle:   {} announced errors before quarantine, {} aborted ops, \
         {} bursts verified of which {} after the remap, {} SILENT CORRUPTIONS",
        s.announced_errors,
        s.aborted_ops,
        s.bursts_verified,
        s.verified_after_remap,
        s.silent_corruptions
    );
    assert_eq!(s.silent_corruptions, 0);
    assert!(s.verified_after_remap > 0);
    println!("degraded mode: region remapped, data integrity preserved");
}

fn main() {
    transient_stage();
    quarantine_stage();
}
