//! The system-integration flow of the paper's §IV: describe the IPs,
//! assemble and validate the design, and export the HyperConnect
//! component as IP-XACT XML (the format the real IP ships in).
//!
//! Run with: `cargo run --example ipxact_export`

use hypervisor::integrator::{ComponentDesc, Design, DesignBuilder};

fn main() {
    // The application developers deliver their accelerators as IP
    // descriptions; the integrator instantiates a 2-port HyperConnect.
    let interconnect = ComponentDesc::hyperconnect(2);
    let chaidnn = ComponentDesc::accelerator("chaidnn");
    let dma = ComponentDesc::accelerator("axi_dma");

    let design = Design::assemble(interconnect, vec![chaidnn, dma]).expect("valid design");

    println!("=== validated design connections ===");
    for c in &design.connections {
        println!("  {} -> {}", c.from, c.to);
    }

    println!("\n=== IP-XACT export of the HyperConnect ===");
    print!("{}", design.interconnect.to_ipxact_xml());

    // Over-subscribed designs are rejected at integration time.
    let too_many = Design::assemble(
        ComponentDesc::hyperconnect(1),
        vec![
            ComponentDesc::accelerator("a"),
            ComponentDesc::accelerator("b"),
        ],
    );
    println!(
        "\nintegration check: {}",
        too_many.expect_err("must be rejected")
    );

    // Non-flat designs use the incremental DesignBuilder directly: a
    // leaf HyperConnect's master port feeds a root slave port.
    let mut b = DesignBuilder::new();
    b.add_instance("root", ComponentDesc::hyperconnect(2))
        .expect("fresh name");
    b.add_instance("leaf", ComponentDesc::hyperconnect(2))
        .expect("fresh name");
    b.add_instance("chaidnn", ComponentDesc::accelerator("chaidnn"))
        .expect("fresh name");
    b.connect("leaf", "M00_AXI", "root", "S00_AXI")
        .expect("cascade");
    b.connect("chaidnn", "M_AXI", "leaf", "S00_AXI")
        .expect("leaf slave");
    b.connect_ps_master("root", "M00_AXI", "S_AXI_HP0")
        .expect("PS port");
    for inst in ["root", "leaf", "chaidnn"] {
        b.connect_ctrl(inst, "S_AXI_CTRL").expect("ctrl plane");
    }
    let tree = b.build().expect("valid tree design");
    println!("\n=== two-level tree netlist (DesignBuilder) ===");
    for c in &tree.connections {
        println!("  {} -> {}", c.from, c.to);
    }

    // Double-binding a slave port is caught at connect time.
    let mut b = DesignBuilder::new();
    b.add_instance("hc", ComponentDesc::hyperconnect(1))
        .unwrap();
    b.add_instance("a", ComponentDesc::accelerator("a"))
        .unwrap();
    b.add_instance("b", ComponentDesc::accelerator("b"))
        .unwrap();
    b.connect("a", "M_AXI", "hc", "S00_AXI").unwrap();
    println!(
        "\nnetlist check: {}",
        b.connect("b", "M_AXI", "hc", "S00_AXI")
            .expect_err("must be rejected")
    );
}
