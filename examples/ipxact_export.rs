//! The system-integration flow of the paper's §IV: describe the IPs,
//! assemble and validate the design, and export the HyperConnect
//! component as IP-XACT XML (the format the real IP ships in).
//!
//! Run with: `cargo run --example ipxact_export`

use hypervisor::integrator::{ComponentDesc, Design};

fn main() {
    // The application developers deliver their accelerators as IP
    // descriptions; the integrator instantiates a 2-port HyperConnect.
    let interconnect = ComponentDesc::hyperconnect(2);
    let chaidnn = ComponentDesc::accelerator("chaidnn");
    let dma = ComponentDesc::accelerator("axi_dma");

    let design = Design::assemble(interconnect, vec![chaidnn, dma]).expect("valid design");

    println!("=== validated design connections ===");
    for c in &design.connections {
        println!("  {} -> {}", c.from, c.to);
    }

    println!("\n=== IP-XACT export of the HyperConnect ===");
    print!("{}", design.interconnect.to_ipxact_xml());

    // Over-subscribed designs are rejected at integration time.
    let too_many = Design::assemble(
        ComponentDesc::hyperconnect(1),
        vec![
            ComponentDesc::accelerator("a"),
            ComponentDesc::accelerator("b"),
        ],
    );
    println!(
        "\nintegration check: {}",
        too_many.expect_err("must be rejected")
    );
}
