//! The snapshot-forking chaos campaign service.
//!
//! The classic chaos runner ([`crate::chaos`]) cold-starts every
//! scenario from cycle 0, which means N seeded variants of the same
//! base scenario re-simulate the identical fault-free warm-up N times.
//! This module turns that engine into a *forking campaign service* built
//! on the [`sim::persist`] snapshot layer:
//!
//! 1. **Warm once** — the base scenario (shape, victims, fault kind —
//!    all derived from the base seed) is built with its fault wrapped in
//!    a dormant [`ha::fault::DelayedFault`] and simulated fault-free to
//!    the warm cycle, then captured as one in-memory
//!    `hcsim-snapshot/v1` image.
//! 2. **Fork N variants** — a `std::thread` pool rebuilds the identical
//!    system per variant, restores the warm image (byte-exact, so every
//!    fork observes the same pre-injection world), and runs to the end
//!    with the variant's own seed-derived injection cycle, hypervisor
//!    poll cadence and recovery policy.
//! 3. **Stream progress** — each warm/fork/bisect step is reported
//!    through a caller-supplied callback as it completes (the `hcsim
//!    campaign` subcommand prints one line per event).
//! 4. **Aggregate** — the report serializes to the
//!    `axi-hyperconnect/chaos-campaign/v1` summary (mode `"forked"`,
//!    per-run `rng_position`, injection cycle and wall time) plus a
//!    separate `campaign-metrics/v1` document.
//! 5. **Auto-bisect failures** — any variant that violates a campaign
//!    invariant is binary-searched against its own fault-free baseline
//!    (same build, fault never armed) for the first cycle at which the
//!    two snapshot byte streams diverge: the exact cycle the fault
//!    first perturbed architectural state.
//!
//! Forking is *sound*, not merely fast: [`run_variant_cold`] replays any
//! variant from cycle 0 and must produce a byte-identical
//! [`crate::chaos::ChaosOutcome::fingerprint`] — the campaign tests
//! gate on exactly that equivalence.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use axi::lite::LiteBus;
use axi::types::{BurstSize, PortId};
use axi::AxiInterconnect;
use ha::fault::DelayedFault;
use ha::traffic::PeriodicReader;
use hyperconnect::analysis::ServiceModel;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::{Hypervisor, RecoveryPolicy, RecoveryState};
use mem::{MemConfig, MemoryController};
use sim::{Cycle, SimRng};

use crate::chaos::{
    arm_hypervisor, derive_scenario, fault_model, flush_port_queues, ChaosOutcome, Scenario,
    TransitionRecord, DECODE_LIMIT, HC_BASE, PERIOD, POLL_CHOICES,
};
use crate::{SchedulerMode, SocSystem};

/// An arm cycle no run ever reaches: the fault-free baseline used for
/// warming and bisection. Kept far below `u64::MAX` so event-horizon
/// arithmetic can never overflow.
const NEVER: Cycle = 1 << 60;

/// Configuration of one forking campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Base seed: derives the scenario *shape* (ports, fault port,
    /// fault kind, permanence, victim cadences) every variant shares —
    /// the shape must be common or the forks could not share one warm
    /// snapshot.
    pub base_seed: u64,
    /// Number of seeded variants to fork from the warm snapshot.
    pub variants: usize,
    /// Cycle the warm phase runs to before the snapshot is taken; every
    /// variant injects its fault at or after this cycle.
    pub warm_cycles: Cycle,
    /// Total cycles each variant simulates (from cycle 0).
    pub cycles: Cycle,
    /// Worker threads the fork pool uses.
    pub workers: usize,
    /// Scheduler every run uses. Snapshots exclude scheduler artifacts,
    /// so the warm image restores under any mode.
    pub scheduler: SchedulerMode,
    /// Whether invariant failures are auto-bisected to the first cycle
    /// their state diverges from the fault-free baseline.
    pub bisect: bool,
}

impl CampaignConfig {
    /// A campaign for `base_seed` with the default shape: 8 variants,
    /// 2 000 warm cycles, the chaos engine's 60 000-cycle budget, two
    /// workers, fast-forward scheduling, bisection on.
    pub fn new(base_seed: u64) -> Self {
        Self {
            base_seed,
            variants: 8,
            warm_cycles: 2_000,
            cycles: 60_000,
            workers: 2,
            scheduler: SchedulerMode::FastForward,
            bisect: true,
        }
    }

    /// Overrides the variant count.
    pub fn variants(mut self, n: usize) -> Self {
        self.variants = n;
        self
    }

    /// Overrides the warm cycle.
    pub fn warm_cycles(mut self, warm: Cycle) -> Self {
        self.warm_cycles = warm;
        self
    }

    /// Overrides the total cycle budget.
    pub fn cycles(mut self, cycles: Cycle) -> Self {
        self.cycles = cycles.max(self.warm_cycles + 1);
        self
    }

    /// Overrides the fork-pool worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the scheduler mode.
    pub fn scheduler(mut self, mode: SchedulerMode) -> Self {
        self.scheduler = mode;
        self
    }

    /// Enables or disables failure bisection.
    pub fn bisect(mut self, on: bool) -> Self {
        self.bisect = on;
        self
    }
}

/// The deterministic seed of variant `index` within a campaign — a
/// SplitMix64-style mix of the base seed, so neighbouring indices land
/// on unrelated scenario draws.
pub fn variant_seed(base_seed: u64, index: usize) -> u64 {
    let mut x = base_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Everything a variant derives from its own seed: the knobs that vary
/// *after* the fork point. The draw order is fixed (injection delay,
/// poll cadence, recovery policy) — changing it changes what every
/// variant seed means.
struct Variant {
    seed: u64,
    inject_at: Cycle,
    poll_interval: u64,
    policy: RecoveryPolicy,
    rng_position: u64,
}

fn derive_variant(seed: u64, warm: Cycle) -> Variant {
    let mut rng = SimRng::seed(seed);
    let inject_at = warm + rng.range_u64(0, 1_500);
    let poll_interval = POLL_CHOICES[rng.index(POLL_CHOICES.len())];
    // Same policy envelope as the cold chaos engine's scenarios (see
    // `chaos::derive_scenario`): probation must outlast stall
    // detection so permanently hung ports fail probation.
    let policy = RecoveryPolicy {
        throttle_budget: 1,
        suspect_polls: rng.range_u64(1, 2) as u32,
        reset_polls: rng.range_u64(1, 2) as u32,
        probation_polls: rng.range_u64(4, 6) as u32,
        backoff_base: rng.range_u64(0, 1) as u32,
        backoff_cap: 4,
        max_recoveries: rng.range_u64(2, 3) as u32,
    };
    Variant {
        seed,
        inject_at,
        poll_interval,
        policy,
        rng_position: rng.draws(),
    }
}

/// Builds the campaign system for one variant: the *shape* comes from
/// the shared base scenario (identical across every fork, so the warm
/// snapshot restores), the injection cycle and hypervisor programming
/// from the variant. Returns the system, the armed hypervisor, the
/// drain deadline and the closed-form victim bound.
fn build_variant(
    base: &Scenario,
    inject_at: Cycle,
    policy: RecoveryPolicy,
    scheduler: SchedulerMode,
) -> (SocSystem<HyperConnect>, Hypervisor, u64, u64) {
    let mut hc = HyperConnect::new(HcConfig::new(base.ports));
    let first_word = MemConfig::zcu102().first_word_latency;
    let model = ServiceModel::hyperconnect(base.ports, 16, first_word).max_outstanding(4);
    hc.set_drain_model(model);
    let drain_deadline = hc.drain_deadline();
    let victim_bound = model.worst_case_read_latency();
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).expect("valid HyperConnect regfile");
    hv.hc().set_period(PERIOD).expect("period register");
    arm_hypervisor(&mut hv, base.fault_port, policy);

    let mut sys = SocSystem::new(
        hc,
        MemoryController::new(MemConfig::zcu102().decode_limit(DECODE_LIMIT)),
    );
    sys.set_scheduler(scheduler);
    for p in 0..base.ports {
        if p == base.fault_port {
            sys.add_accelerator(Box::new(DelayedFault::new(
                fault_model(base.kind, base.permanent),
                inject_at,
            )))
            .expect("port available");
        } else {
            sys.add_accelerator(Box::new(PeriodicReader::new(
                format!("victim{p}"),
                0x1000_0000 + p as u64 * 0x0400_0000,
                1 << 20,
                16,
                BurstSize::B16,
                base.victim_periods[p],
            )))
            .expect("port available");
        }
    }
    (sys, hv, drain_deadline, victim_bound)
}

/// Advances the system to cycle `until`, polling the hypervisor at the
/// variant's cadence — but only from the warm cycle on, so a cold
/// replay from cycle 0 and a fork resumed at the warm cycle observe the
/// identical poll sequence.
#[allow(clippy::too_many_arguments)]
fn drive(
    sys: &mut SocSystem<HyperConnect>,
    hv: &mut Hypervisor,
    fault_port: usize,
    poll: u64,
    warm: Cycle,
    until: Cycle,
    transitions: &mut Vec<TransitionRecord>,
    resets: &mut u64,
) {
    let span = until.saturating_sub(sys.now());
    sys.run_for_with(span, |now, sys| {
        if now < warm || now % poll != 0 {
            return;
        }
        for t in hv.poll_recovery().expect("AXI-Lite poll") {
            if t.to == RecoveryState::Resetting {
                sys.accelerator_mut(fault_port)
                    .expect("fault port occupied")
                    .reset();
                flush_port_queues(sys.interconnect().port(fault_port), now);
                *resets += 1;
            }
            transitions.push(TransitionRecord {
                cycle: now,
                port: t.port.0,
                from: format!("{:?}", t.from),
                to: format!("{:?}", t.to),
                dropped: t.dropped_txns,
            });
        }
    });
}

/// Collects the end-of-run record, mirroring the cold chaos engine's
/// outcome assembly so forked and cold runs are directly comparable.
#[allow(clippy::too_many_arguments)]
fn assemble_outcome(
    sys: &SocSystem<HyperConnect>,
    hv: &Hypervisor,
    base: &Scenario,
    variant: &Variant,
    drain_deadline: u64,
    victim_bound: u64,
    transitions: Vec<TransitionRecord>,
    resets: u64,
) -> ChaosOutcome {
    let mut victim_worst = 0u64;
    let mut victim_jobs = Vec::new();
    for p in 0..base.ports {
        if p == base.fault_port {
            continue;
        }
        victim_worst = victim_worst.max(sys.interconnect_ref().read_latency(p).max().unwrap_or(0));
        victim_jobs.push(sys.accelerator(p).expect("victim port").jobs_completed());
    }
    let final_state = format!(
        "{:?}",
        hv.recovery_state(PortId(base.fault_port))
            .unwrap_or(RecoveryState::Healthy)
    );
    let dropped_subs = transitions
        .iter()
        .filter(|t| t.to == "Decoupled")
        .map(|t| t.dropped)
        .sum();
    let drain_polls = (drain_deadline / variant.poll_interval) as u32 + 2;
    ChaosOutcome {
        seed: variant.seed,
        scenario: "campaign-flat",
        scheduler: sys.scheduler(),
        ports: base.ports,
        fault_port: base.fault_port,
        fault_kind: base.kind,
        permanent: base.permanent,
        poll_interval: variant.poll_interval,
        drain_deadline,
        sla_polls: variant.policy.reattach_sla_polls(drain_polls),
        transitions,
        final_state,
        resets,
        dropped_subs,
        victim_bound: Some(victim_bound),
        victim_worst,
        victim_jobs,
        end_cycle: sys.now(),
        rng_position: variant.rng_position,
    }
}

/// One finished campaign variant.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The full chaos record, comparable 1:1 with a cold replay.
    pub outcome: ChaosOutcome,
    /// Cycle the fault armed at (seed-derived, ≥ the warm cycle).
    pub inject_at: Cycle,
    /// Wall-clock milliseconds the fork spent (restore + run).
    pub wall_ms: f64,
    /// When the variant failed an invariant and bisection ran: the
    /// first cycle its snapshot bytes diverged from the fault-free
    /// baseline forked from the same warm image.
    pub first_divergence: Option<Cycle>,
}

/// A progress event streamed while a campaign runs.
#[derive(Debug, Clone)]
pub enum CampaignEvent {
    /// The shared warm phase finished and the fork image was captured.
    Warmed {
        /// Cycle the snapshot was taken at.
        cycle: Cycle,
        /// Size of the in-memory snapshot image in bytes.
        snapshot_bytes: usize,
        /// Wall-clock milliseconds of the warm simulation + save.
        wall_ms: f64,
    },
    /// One forked variant finished.
    VariantFinished {
        /// 1-based completion count (arrival order, not seed order).
        completed: usize,
        /// Total variants in the campaign.
        total: usize,
        /// The variant's seed.
        seed: u64,
        /// Cycle its fault armed at.
        inject_at: Cycle,
        /// Invariant violations (0 = verdict PASS).
        violations: usize,
        /// Wall-clock milliseconds for the fork.
        wall_ms: f64,
    },
    /// A failing variant was bisected against its fault-free baseline.
    Bisected {
        /// The variant's seed.
        seed: u64,
        /// First cycle the faulty run's snapshot differed from the
        /// baseline's, or `None` if the fault never perturbed state.
        first_divergence: Option<Cycle>,
        /// Wall-clock milliseconds the binary search spent.
        wall_ms: f64,
    },
}

/// The aggregated result of one forking campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Seed the shared scenario shape derived from.
    pub base_seed: u64,
    /// RNG position after the base-scenario derivation.
    pub base_rng_position: u64,
    /// Cycle the warm snapshot was taken at.
    pub warm_cycles: Cycle,
    /// Total cycles each variant covered.
    pub cycles: Cycle,
    /// Worker threads the fork pool used.
    pub workers: usize,
    /// Size of the warm snapshot image in bytes.
    pub snapshot_bytes: usize,
    /// Wall-clock milliseconds of the shared warm phase.
    pub warm_wall_ms: f64,
    /// Wall-clock milliseconds of the whole campaign.
    pub total_wall_ms: f64,
    /// Every variant, in seed-index order.
    pub runs: Vec<CampaignRun>,
}

impl CampaignReport {
    /// Total invariant violations across all variants.
    pub fn violations(&self) -> usize {
        self.runs
            .iter()
            .map(|r| r.outcome.invariant_violations().len())
            .sum()
    }

    /// The `axi-hyperconnect/chaos-campaign/v1` summary document —
    /// the same schema the cold chaos-smoke artifact uses, extended
    /// with the forking fields (`mode`, `warm_cycle`, per-run
    /// `inject_at`, `wall_ms` and `first_divergence`).
    pub fn summary_json(&self) -> String {
        let runs: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                let body = r.outcome.to_json();
                let body = body.strip_suffix('}').expect("chaos run JSON object");
                format!(
                    "{body},\"inject_at\":{},\"wall_ms\":{:.3},\"first_divergence\":{}}}",
                    r.inject_at,
                    r.wall_ms,
                    r.first_divergence
                        .map_or_else(|| "null".to_owned(), |c| c.to_string()),
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"axi-hyperconnect/chaos-campaign/v1\",\"mode\":\"forked\",\
             \"base_seed\":{},\"base_rng_position\":{},\"warm_cycle\":{},\"cycles\":{},\
             \"workers\":{},\"snapshot_bytes\":{},\"campaigns\":{},\
             \"invariant_violations\":{},\"runs\":[{}]}}",
            self.base_seed,
            self.base_rng_position,
            self.warm_cycles,
            self.cycles,
            self.workers,
            self.snapshot_bytes,
            self.runs.len(),
            self.violations(),
            runs.join(","),
        )
    }

    /// The host-side metrics document
    /// (`axi-hyperconnect/campaign-metrics/v1`): warm amortization,
    /// per-variant wall time and aggregate forked throughput.
    pub fn metrics_json(&self) -> String {
        let fork_ms: f64 = self.runs.iter().map(|r| r.wall_ms).sum();
        let sim_cycles: u64 = self
            .runs
            .iter()
            .map(|r| r.outcome.end_cycle - self.warm_cycles)
            .sum();
        let per_run: Vec<String> = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"seed\":{},\"wall_ms\":{:.3},\"end_cycle\":{},\"violations\":{}}}",
                    r.outcome.seed,
                    r.wall_ms,
                    r.outcome.end_cycle,
                    r.outcome.invariant_violations().len(),
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"axi-hyperconnect/campaign-metrics/v1\",\
             \"warm_wall_ms\":{:.3},\"warm_cycles_amortized\":{},\
             \"snapshot_bytes\":{},\"fork_wall_ms_sum\":{:.3},\
             \"total_wall_ms\":{:.3},\"forked_sim_cycles\":{},\
             \"forked_cycles_per_sec\":{:.0},\"workers\":{},\"runs\":[{}]}}",
            self.warm_wall_ms,
            self.warm_cycles * self.runs.len() as u64,
            self.snapshot_bytes,
            fork_ms,
            self.total_wall_ms,
            sim_cycles,
            sim_cycles as f64 / (self.total_wall_ms / 1e3).max(1e-9),
            self.workers,
            per_run.join(","),
        )
    }
}

/// Snapshot bytes of the variant's world at exactly cycle `k`, obtained
/// by restoring the warm image and replaying forward. Deterministic:
/// the same `(base, inject_at, variant knobs, k)` always produces the
/// same bytes.
fn state_at(
    cfg: &CampaignConfig,
    base: &Scenario,
    variant: &Variant,
    inject_at: Cycle,
    warm_bytes: &[u8],
    k: Cycle,
) -> Vec<u8> {
    let (mut sys, mut hv, _, _) = build_variant(base, inject_at, variant.policy, cfg.scheduler);
    sys.restore_snapshot_bytes(warm_bytes)
        .expect("warm snapshot restores into identically-built system");
    let mut transitions = Vec::new();
    let mut resets = 0u64;
    drive(
        &mut sys,
        &mut hv,
        base.fault_port,
        variant.poll_interval,
        cfg.warm_cycles,
        k,
        &mut transitions,
        &mut resets,
    );
    sys.snapshot_bytes()
}

/// Binary-searches the first cycle at which the faulty variant's
/// snapshot bytes differ from its fault-free baseline (identical build,
/// fault never armed, same hypervisor cadence), both forked from the
/// same warm image.
///
/// Divergence is monotone once the fault has perturbed state — the
/// per-port transaction counters in the HyperConnect register file
/// never reconverge — so bisection is sound. Returns `None` if even the
/// final states match (the fault never had an observable effect).
fn bisect_first_divergence(
    cfg: &CampaignConfig,
    base: &Scenario,
    variant: &Variant,
    warm_bytes: &[u8],
) -> Option<Cycle> {
    let faulty_end = state_at(
        cfg,
        base,
        variant,
        variant.inject_at,
        warm_bytes,
        cfg.cycles,
    );
    let clean_end = state_at(cfg, base, variant, NEVER, warm_bytes, cfg.cycles);
    if faulty_end == clean_end {
        return None;
    }
    // Invariant: states match at `lo`, differ at `hi`.
    let mut lo = variant.inject_at;
    let mut hi = cfg.cycles;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let faulty = state_at(cfg, base, variant, variant.inject_at, warm_bytes, mid);
        let clean = state_at(cfg, base, variant, NEVER, warm_bytes, mid);
        if faulty == clean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

/// Warms the campaign's base scenario and bisects one variant against
/// its fault-free baseline, regardless of verdict: the first cycle the
/// variant's snapshot bytes diverge from a world where the fault never
/// arms. `None` means the fault had no observable architectural effect
/// within the cycle budget.
pub fn bisect_variant(cfg: &CampaignConfig, seed: u64) -> Option<Cycle> {
    let base = derive_scenario(cfg.base_seed, 3, 4);
    let variant = derive_variant(seed, cfg.warm_cycles);
    let (mut warm_sys, _hv, _, _) = build_variant(&base, NEVER, variant.policy, cfg.scheduler);
    warm_sys.run_for(cfg.warm_cycles);
    let warm_bytes = warm_sys.snapshot_bytes();
    bisect_first_divergence(cfg, &base, &variant, &warm_bytes)
}

/// Forks one variant from the warm image and runs it to the end.
fn run_variant_forked(
    cfg: &CampaignConfig,
    base: &Scenario,
    seed: u64,
    warm_bytes: &[u8],
) -> CampaignRun {
    let variant = derive_variant(seed, cfg.warm_cycles);
    let t0 = Instant::now();
    let (mut sys, mut hv, drain_deadline, bound) =
        build_variant(base, variant.inject_at, variant.policy, cfg.scheduler);
    sys.restore_snapshot_bytes(warm_bytes)
        .expect("warm snapshot restores into identically-built variant");
    let mut transitions = Vec::new();
    let mut resets = 0u64;
    drive(
        &mut sys,
        &mut hv,
        base.fault_port,
        variant.poll_interval,
        cfg.warm_cycles,
        cfg.cycles,
        &mut transitions,
        &mut resets,
    );
    let outcome = assemble_outcome(
        &sys,
        &hv,
        base,
        &variant,
        drain_deadline,
        bound,
        transitions,
        resets,
    );
    CampaignRun {
        inject_at: variant.inject_at,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        first_divergence: None,
        outcome,
    }
}

/// Cold-starts one campaign variant from cycle 0 — no snapshot, no
/// fork — and runs it under the exact same protocol (polls gated to the
/// warm cycle). This is the soundness oracle for the forking service:
/// its [`ChaosOutcome::fingerprint`] must be byte-identical to the
/// forked run of the same seed.
pub fn run_variant_cold(cfg: &CampaignConfig, seed: u64) -> CampaignRun {
    let base = derive_scenario(cfg.base_seed, 3, 4);
    let variant = derive_variant(seed, cfg.warm_cycles);
    let t0 = Instant::now();
    let (mut sys, mut hv, drain_deadline, bound) =
        build_variant(&base, variant.inject_at, variant.policy, cfg.scheduler);
    let mut transitions = Vec::new();
    let mut resets = 0u64;
    drive(
        &mut sys,
        &mut hv,
        base.fault_port,
        variant.poll_interval,
        cfg.warm_cycles,
        cfg.cycles,
        &mut transitions,
        &mut resets,
    );
    let outcome = assemble_outcome(
        &sys,
        &hv,
        &base,
        &variant,
        drain_deadline,
        bound,
        transitions,
        resets,
    );
    CampaignRun {
        inject_at: variant.inject_at,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        first_divergence: None,
        outcome,
    }
}

/// Runs a full forking campaign: warm once, fork every variant across
/// the worker pool, stream progress through `progress`, bisect
/// failures, aggregate the report.
pub fn run_campaign(
    cfg: &CampaignConfig,
    mut progress: impl FnMut(CampaignEvent),
) -> CampaignReport {
    let campaign_t0 = Instant::now();
    let base = derive_scenario(cfg.base_seed, 3, 4);

    // Phase 1: the shared fault-free warm phase, simulated exactly once.
    let warm_t0 = Instant::now();
    let (mut warm_sys, _warm_hv, _, _) = build_variant(
        &base,
        NEVER,
        derive_variant(cfg.base_seed, cfg.warm_cycles).policy,
        cfg.scheduler,
    );
    warm_sys.run_for(cfg.warm_cycles);
    let warm_bytes = warm_sys.snapshot_bytes();
    let warm_wall_ms = warm_t0.elapsed().as_secs_f64() * 1e3;
    progress(CampaignEvent::Warmed {
        cycle: cfg.warm_cycles,
        snapshot_bytes: warm_bytes.len(),
        wall_ms: warm_wall_ms,
    });

    // Phase 2: fork the variants across the pool, streaming completion
    // events back to this thread as they happen.
    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<CampaignRun>>> =
        Mutex::new((0..cfg.variants).map(|_| None).collect());
    let (tx, rx) = mpsc::channel::<CampaignEvent>();
    let workers = cfg.workers.max(1).min(cfg.variants.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let completed = &completed;
            let results = &results;
            let base = &base;
            let warm_bytes = &warm_bytes;
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= cfg.variants {
                    return;
                }
                let seed = variant_seed(cfg.base_seed, index);
                let mut run = run_variant_forked(cfg, base, seed, warm_bytes);
                let violations = run.outcome.invariant_violations().len();
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                let _ = tx.send(CampaignEvent::VariantFinished {
                    completed: done,
                    total: cfg.variants,
                    seed,
                    inject_at: run.inject_at,
                    violations,
                    wall_ms: run.wall_ms,
                });
                if violations > 0 && cfg.bisect {
                    let bisect_t0 = Instant::now();
                    let variant = derive_variant(seed, cfg.warm_cycles);
                    run.first_divergence = bisect_first_divergence(cfg, base, &variant, warm_bytes);
                    let _ = tx.send(CampaignEvent::Bisected {
                        seed,
                        first_divergence: run.first_divergence,
                        wall_ms: bisect_t0.elapsed().as_secs_f64() * 1e3,
                    });
                }
                results.lock().expect("no poisoned forks")[index] = Some(run);
            });
        }
        drop(tx);
        // Stream events on the caller's thread until every worker hangs
        // up its sender.
        while let Ok(event) = rx.recv() {
            progress(event);
        }
    });

    let runs: Vec<CampaignRun> = results
        .into_inner()
        .expect("no poisoned forks")
        .into_iter()
        .map(|r| r.expect("every variant ran"))
        .collect();
    CampaignReport {
        base_seed: cfg.base_seed,
        base_rng_position: base.rng_position,
        warm_cycles: cfg.warm_cycles,
        cycles: cfg.cycles,
        workers,
        snapshot_bytes: warm_bytes.len(),
        warm_wall_ms,
        total_wall_ms: campaign_t0.elapsed().as_secs_f64() * 1e3,
        runs,
    }
}
