//! # AXI HyperConnect — behavioral reproduction
//!
//! A cycle-level, pure-Rust reproduction of *"AXI HyperConnect: A
//! Predictable, Hypervisor-level Interconnect for Hardware Accelerators
//! in FPGA SoC"* (Restuccia, Biondi, Marinoni, Cicero, Buttazzo — DAC
//! 2020), including every substrate the paper's evaluation depends on:
//!
//! | Crate | Role |
//! |---|---|
//! | [`sim`] | cycle-based simulation kernel |
//! | [`axi`] | AMBA AXI3/AXI4 protocol model + AXI-Lite + checker |
//! | [`mem`] | in-order DRAM controller model with backing store |
//! | [`hyperconnect`] | **the paper's contribution** (eFIFO, TS, EXBAR, central unit, register file, worst-case analysis) |
//! | [`smartconnect`] | the Xilinx SmartConnect baseline model |
//! | [`ha`] | accelerator models: AXI DMA, CHaiDNN-style DNN, traffic generators |
//! | [`hypervisor`] | domains, register driver, bandwidth partitioning, IP-XACT integration |
//! | [`resources`] | analytical area model regenerating Table I |
//!
//! This crate ties them together with two assembly layers:
//!
//! * [`SocSystem`] — the paper's flat Fig. 1 shape (N accelerators, one
//!   interconnect, one FPGA-PS port), used by the examples, the
//!   integration tests and the benchmark harness that regenerates every
//!   figure and table of the paper (see `crates/bench`);
//! * [`TopologyBuilder`] / [`SocTopology`] — the general form:
//!   arbitrary *trees* of interconnects (HyperConnects cascaded behind
//!   HyperConnects or a SmartConnect, multiple PS ports), joined by
//!   latency-configurable [`axi::AxiBridge`]s and validated at build
//!   time with typed [`TopologyError`]s. `SocSystem` is a thin facade
//!   over a single-interconnect topology.
//!
//! ## Quick start
//!
//! ```
//! use axi_hyperconnect::SocSystem;
//! use axi::types::BurstSize;
//! use ha::dma::{Dma, DmaConfig};
//! use ha::Accelerator;
//! use hyperconnect::{HcConfig, HyperConnect};
//! use mem::{MemConfig, MemoryController};
//!
//! // Two DMAs behind a HyperConnect, as in the paper's Fig. 1 (N = 2).
//! let mut sys = SocSystem::new(
//!     HyperConnect::new(HcConfig::new(2)),
//!     MemoryController::new(MemConfig::default()),
//! );
//! sys.add_accelerator(Box::new(Dma::new(
//!     "dma0",
//!     DmaConfig::reader(16 * 1024, 16, BurstSize::B16),
//! )))
//! .unwrap();
//! assert!(sys.run_until_done(1_000_000).is_done());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod chaos;
mod system;
mod topology;

pub use system::SocSystem;
pub use topology::{
    NodeId, SchedulerMode, ShardCut, ShardPlan, ShardRunReport, SocTopology, TopologyBuilder,
    TopologyError, SECTION_CONTROL, SECTION_NODES, SECTION_SHAPE,
};

// Re-export the workspace crates under one roof for downstream users.
pub use axi;
pub use ha;
pub use hyperconnect;
pub use hypervisor;
pub use mem;
pub use resources;
pub use sim;
pub use smartconnect;
