//! `hcsim` — command-line scenario runner for the AXI HyperConnect
//! reproduction.
//!
//! ```text
//! USAGE:
//!     hcsim <scenario> [--design hc|sc] [--cycles N] [--ports N]
//!
//! SCENARIOS:
//!     latency     per-channel propagation latencies of the design
//!     contention  CHaiDNN + greedy DMA (the paper's case study)
//!     fairness    16-beat victim vs 256-beat aggressor
//!     stress      four mixed masters, protocol monitor armed
//! ```

use std::process::ExitCode;

use axi::types::BurstSize;
use axi::AxiInterconnect;
use axi_hyperconnect::SocSystem;
use ha::chaidnn::{Chaidnn, ChaidnnConfig};
use ha::dma::{Dma, DmaConfig};
use ha::traffic::{BandwidthStealer, RandomTraffic};
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use smartconnect::{ScConfig, SmartConnect};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Args {
    scenario: String,
    design: String,
    cycles: u64,
    ports: usize,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        scenario: String::new(),
        design: "hc".into(),
        cycles: 3_000_000,
        ports: 2,
    };
    let mut it = argv.iter();
    args.scenario = it
        .next()
        .ok_or_else(|| "missing scenario".to_string())?
        .clone();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--design" => {
                if value != "hc" && value != "sc" {
                    return Err(format!("unknown design {value} (hc|sc)"));
                }
                args.design = value.clone();
            }
            "--cycles" => {
                args.cycles = value
                    .parse()
                    .map_err(|_| format!("bad cycle count {value}"))?;
            }
            "--ports" => {
                args.ports = value
                    .parse()
                    .map_err(|_| format!("bad port count {value}"))?;
                if args.ports == 0 {
                    return Err("need at least one port".into());
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn make_design(design: &str, ports: usize) -> Box<dyn AxiInterconnect> {
    match design {
        "hc" => Box::new(HyperConnect::new(HcConfig::new(ports))),
        _ => Box::new(SmartConnect::new(ScConfig::new(ports))),
    }
}

fn scenario_latency(args: &Args) {
    use sim::Component;
    let mut ic = make_design(&args.design, args.ports.max(1));
    ic.port(0)
        .ar
        .push(0, axi::ArBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    for now in 0..100 {
        ic.tick(now);
        if ic.mem_port().ar.has_ready(now) {
            println!("{}: AR propagation latency = {now} cycles", ic.name());
            return;
        }
    }
    println!("no propagation within 100 cycles (bug)");
}

fn scenario_contention(args: &Args) {
    let mut sys = SocSystem::new(
        make_design(&args.design, 2),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.add_accelerator(Box::new(Chaidnn::googlenet(ChaidnnConfig::default())))
        .unwrap();
    sys.add_accelerator(Box::new(Dma::new("HA_DMA", DmaConfig::case_study())))
        .unwrap();
    sys.run_for(args.cycles);
    println!(
        "CHaiDNN: {:.1} fps   HA_DMA: {:.1} jobs/s   ({} cycles, {})",
        sys.rate_per_second(0),
        sys.rate_per_second(1),
        args.cycles,
        sys.interconnect().name(),
    );
}

fn scenario_fairness(args: &Args) {
    let mut sys = SocSystem::new(
        make_design(&args.design, 2),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "aggressor",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();
    sys.run_for(args.cycles);
    let victim = sys.accelerator(0).unwrap().jobs_completed() * 16 * 16;
    let aggr = sys.accelerator(1).unwrap().jobs_completed() * 256 * 16;
    println!(
        "victim {:.2} MiB vs aggressor {:.2} MiB  (ratio {:.2}x, {})",
        victim as f64 / (1 << 20) as f64,
        aggr as f64 / (1 << 20) as f64,
        aggr as f64 / victim.max(1) as f64,
        sys.interconnect().name(),
    );
}

fn scenario_stress(args: &Args) {
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    let mut sys = SocSystem::new(make_design(&args.design, 4), memory);
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd0",
        0x1000_0000,
        1 << 20,
        BurstSize::B16,
        64,
        10,
        1,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "steal",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd1",
        0x5000_0000,
        1 << 20,
        BurstSize::B4,
        32,
        50,
        2,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(Dma::new("dma", DmaConfig::case_study())))
        .unwrap();
    sys.run_for(args.cycles);
    let name = sys.interconnect().name();
    let monitor = sys.memory().monitor().expect("attached");
    println!(
        "{} cycles on {}: {} reads, {} writes, utilization {:.1}%, {}",
        args.cycles,
        name,
        monitor.reads_completed(),
        monitor.writes_completed(),
        100.0 * sys.memory().stats().utilization(sys.now()),
        if monitor.is_clean() {
            "protocol clean".to_string()
        } else {
            format!("{} PROTOCOL VIOLATIONS", monitor.errors().len())
        }
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: hcsim <latency|contention|fairness|stress> \
                 [--design hc|sc] [--cycles N] [--ports N]"
            );
            return ExitCode::FAILURE;
        }
    };
    match args.scenario.as_str() {
        "latency" => scenario_latency(&args),
        "contention" => scenario_contention(&args),
        "fairness" => scenario_fairness(&args),
        "stress" => scenario_stress(&args),
        other => {
            eprintln!("error: unknown scenario {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_defaults() {
        let args = parse_args(&argv("stress")).unwrap();
        assert_eq!(args.scenario, "stress");
        assert_eq!(args.design, "hc");
        assert_eq!(args.cycles, 3_000_000);
        assert_eq!(args.ports, 2);
    }

    #[test]
    fn parses_flags() {
        let args = parse_args(&argv("fairness --design sc --cycles 1000 --ports 4")).unwrap();
        assert_eq!(args.design, "sc");
        assert_eq!(args.cycles, 1000);
        assert_eq!(args.ports, 4);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&argv("x --design nope")).is_err());
        assert!(parse_args(&argv("x --cycles abc")).is_err());
        assert!(parse_args(&argv("x --ports 0")).is_err());
        assert!(parse_args(&argv("x --cycles")).is_err());
        assert!(parse_args(&argv("x --bogus 1")).is_err());
    }
}
