//! `hcsim` — command-line scenario runner for the AXI HyperConnect
//! reproduction.
//!
//! ```text
//! USAGE:
//!     hcsim <scenario> [--design hc|sc] [--cycles N] [--ports N]
//!     hcsim campaign [--seed N] [--variants N] [--warm N] [--cycles N]
//!                    [--workers N] [--bisect] [--out FILE]
//!                    [--metrics-out FILE]
//!     hcsim snapshot --out FILE [--cycles N]
//!
//! SCENARIOS:
//!     latency     per-channel propagation latencies of the design
//!     contention  CHaiDNN + greedy DMA (the paper's case study)
//!     fairness    16-beat victim vs 256-beat aggressor
//!     stress      four mixed masters, protocol monitor armed
//!
//! SUBCOMMANDS:
//!     campaign    warm a chaos scenario once, fork N seeded fault
//!                 variants from the in-memory snapshot across a
//!                 thread pool, stream per-variant progress, and emit
//!                 chaos-campaign/v1 + campaign-metrics/v1 JSON
//!     snapshot    run the pinned short Fig. 3(a) scenario and write
//!                 its hcsim-snapshot/v1 image (the CI schema golden)
//! ```

use std::process::ExitCode;

use axi::types::BurstSize;
use axi::AxiInterconnect;
use axi_hyperconnect::campaign::{run_campaign, CampaignConfig, CampaignEvent};
use axi_hyperconnect::SocSystem;
use ha::chaidnn::{Chaidnn, ChaidnnConfig};
use ha::dma::{Dma, DmaConfig};
use ha::traffic::{BandwidthStealer, RandomTraffic};
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use smartconnect::{ScConfig, SmartConnect};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Args {
    scenario: String,
    design: String,
    cycles: u64,
    ports: usize,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        scenario: String::new(),
        design: "hc".into(),
        cycles: 3_000_000,
        ports: 2,
    };
    let mut it = argv.iter();
    args.scenario = it
        .next()
        .ok_or_else(|| "missing scenario".to_string())?
        .clone();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--design" => {
                if value != "hc" && value != "sc" {
                    return Err(format!("unknown design {value} (hc|sc)"));
                }
                args.design = value.clone();
            }
            "--cycles" => {
                args.cycles = value
                    .parse()
                    .map_err(|_| format!("bad cycle count {value}"))?;
            }
            "--ports" => {
                args.ports = value
                    .parse()
                    .map_err(|_| format!("bad port count {value}"))?;
                if args.ports == 0 {
                    return Err("need at least one port".into());
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Parsed `hcsim campaign` command line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CampaignArgs {
    seed: u64,
    variants: usize,
    warm: u64,
    cycles: u64,
    workers: usize,
    bisect: bool,
    out: Option<String>,
    metrics_out: Option<String>,
}

fn parse_campaign_args(argv: &[String]) -> Result<CampaignArgs, String> {
    let mut args = CampaignArgs {
        seed: 1,
        variants: 8,
        warm: 2_000,
        cycles: 60_000,
        workers: 2,
        bisect: false,
        out: None,
        metrics_out: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        // `--bisect` is the one boolean switch; everything else takes
        // a value.
        if flag == "--bisect" {
            args.bisect = true;
            continue;
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |what: &str| format!("bad {what} {value}");
        match flag.as_str() {
            "--seed" => args.seed = value.parse().map_err(|_| bad("seed"))?,
            "--variants" => {
                args.variants = value.parse().map_err(|_| bad("variant count"))?;
                if args.variants == 0 {
                    return Err("need at least one variant".into());
                }
            }
            "--warm" => args.warm = value.parse().map_err(|_| bad("warm cycle count"))?,
            "--cycles" => args.cycles = value.parse().map_err(|_| bad("cycle count"))?,
            "--workers" => {
                args.workers = value.parse().map_err(|_| bad("worker count"))?;
                if args.workers == 0 {
                    return Err("need at least one worker".into());
                }
            }
            "--out" => args.out = Some(value.clone()),
            "--metrics-out" => args.metrics_out = Some(value.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.cycles <= args.warm {
        return Err(format!(
            "--cycles {} must exceed --warm {}",
            args.cycles, args.warm
        ));
    }
    Ok(args)
}

/// Parsed `hcsim snapshot` command line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SnapshotArgs {
    out: String,
    cycles: u64,
}

fn parse_snapshot_args(argv: &[String]) -> Result<SnapshotArgs, String> {
    let mut out = None;
    let mut cycles = 150u64;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--out" => out = Some(value.clone()),
            "--cycles" => {
                cycles = value
                    .parse()
                    .map_err(|_| format!("bad cycle count {value}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(SnapshotArgs {
        out: out.ok_or_else(|| "snapshot needs --out FILE".to_string())?,
        cycles,
    })
}

fn scenario_campaign(args: &CampaignArgs) -> ExitCode {
    let cfg = CampaignConfig::new(args.seed)
        .variants(args.variants)
        .warm_cycles(args.warm)
        .cycles(args.cycles)
        .workers(args.workers)
        .bisect(args.bisect);
    let report = run_campaign(&cfg, |event| match event {
        CampaignEvent::Warmed {
            cycle,
            snapshot_bytes,
            wall_ms,
        } => println!("warmed to cycle {cycle}: snapshot {snapshot_bytes} B in {wall_ms:.1} ms"),
        CampaignEvent::VariantFinished {
            completed,
            total,
            seed,
            inject_at,
            violations,
            wall_ms,
        } => println!(
            "[{completed}/{total}] seed {:#018x} inject@{} -> {} ({:.1} ms)",
            seed,
            inject_at,
            if violations == 0 {
                "PASS".to_string()
            } else {
                format!("{violations} VIOLATIONS")
            },
            wall_ms,
        ),
        CampaignEvent::Bisected {
            seed,
            first_divergence,
            wall_ms,
        } => match first_divergence {
            Some(k) => {
                println!("bisected seed {seed:#018x}: first divergent cycle {k} ({wall_ms:.1} ms)")
            }
            None => {
                println!("bisected seed {seed:#018x}: no state divergence found ({wall_ms:.1} ms)")
            }
        },
    });
    println!(
        "campaign done: {} variants, {} violations, warm {:.1} ms + forks, total {:.1} ms",
        report.runs.len(),
        report.violations(),
        report.warm_wall_ms,
        report.total_wall_ms,
    );
    for (path, json) in [
        (&args.out, report.summary_json()),
        (&args.metrics_out, report.metrics_json()),
    ] {
        if let Some(path) = path {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
    }
    if report.violations() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The deterministic snapshot-golden scenario: the short Fig. 3(a)
/// shape (two small DMA readers on a 2-port HyperConnect) that
/// `fig3a_snapshot_sweep_every_cycle` sweeps, frozen at `--cycles`.
fn golden_snapshot_system() -> SocSystem<HyperConnect> {
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(2)),
        MemoryController::new(MemConfig::zcu102()),
    );
    for p in 0..2u64 {
        sys.add_accelerator(Box::new(Dma::new(
            format!("fig3a_dma{p}"),
            DmaConfig {
                src_base: 0x1000_0000 + p * 0x0100_0000,
                jobs: Some(2),
                ..DmaConfig::reader(1024, 16, BurstSize::B16)
            },
        )))
        .unwrap();
    }
    sys
}

fn scenario_snapshot(args: &SnapshotArgs) -> ExitCode {
    let mut sys = golden_snapshot_system();
    sys.run_for(args.cycles);
    let bytes = sys.snapshot_bytes();
    let crc = sim::persist::crc32(&bytes);
    if let Err(e) = std::fs::write(&args.out, &bytes) {
        eprintln!("error: could not write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {}: {} bytes at cycle {} (crc32 {:#010x})",
        args.out,
        bytes.len(),
        sys.now(),
        crc,
    );
    ExitCode::SUCCESS
}

fn make_design(design: &str, ports: usize) -> Box<dyn AxiInterconnect> {
    match design {
        "hc" => Box::new(HyperConnect::new(HcConfig::new(ports))),
        _ => Box::new(SmartConnect::new(ScConfig::new(ports))),
    }
}

fn scenario_latency(args: &Args) {
    use sim::Component;
    let mut ic = make_design(&args.design, args.ports.max(1));
    ic.port(0)
        .ar
        .push(0, axi::ArBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    for now in 0..100 {
        ic.tick(now);
        if ic.mem_port().ar.has_ready(now) {
            println!("{}: AR propagation latency = {now} cycles", ic.name());
            return;
        }
    }
    println!("no propagation within 100 cycles (bug)");
}

fn scenario_contention(args: &Args) {
    let mut sys = SocSystem::new(
        make_design(&args.design, 2),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.add_accelerator(Box::new(Chaidnn::googlenet(ChaidnnConfig::default())))
        .unwrap();
    sys.add_accelerator(Box::new(Dma::new("HA_DMA", DmaConfig::case_study())))
        .unwrap();
    sys.run_for(args.cycles);
    println!(
        "CHaiDNN: {:.1} fps   HA_DMA: {:.1} jobs/s   ({} cycles, {})",
        sys.rate_per_second(0),
        sys.rate_per_second(1),
        args.cycles,
        sys.interconnect().name(),
    );
}

fn scenario_fairness(args: &Args) {
    let mut sys = SocSystem::new(
        make_design(&args.design, 2),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "aggressor",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();
    sys.run_for(args.cycles);
    let victim = sys.accelerator(0).unwrap().jobs_completed() * 16 * 16;
    let aggr = sys.accelerator(1).unwrap().jobs_completed() * 256 * 16;
    println!(
        "victim {:.2} MiB vs aggressor {:.2} MiB  (ratio {:.2}x, {})",
        victim as f64 / (1 << 20) as f64,
        aggr as f64 / (1 << 20) as f64,
        aggr as f64 / victim.max(1) as f64,
        sys.interconnect().name(),
    );
}

fn scenario_stress(args: &Args) {
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    let mut sys = SocSystem::new(make_design(&args.design, 4), memory);
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd0",
        0x1000_0000,
        1 << 20,
        BurstSize::B16,
        64,
        10,
        1,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "steal",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd1",
        0x5000_0000,
        1 << 20,
        BurstSize::B4,
        32,
        50,
        2,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(Dma::new("dma", DmaConfig::case_study())))
        .unwrap();
    sys.run_for(args.cycles);
    let name = sys.interconnect().name();
    let monitor = sys.memory().monitor().expect("attached");
    println!(
        "{} cycles on {}: {} reads, {} writes, utilization {:.1}%, {}",
        args.cycles,
        name,
        monitor.reads_completed(),
        monitor.writes_completed(),
        100.0 * sys.memory().stats().utilization(sys.now()),
        if monitor.is_clean() {
            "protocol clean".to_string()
        } else {
            format!("{} PROTOCOL VIOLATIONS", monitor.errors().len())
        }
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("campaign") => {
            return match parse_campaign_args(&argv[1..]) {
                Ok(args) => scenario_campaign(&args),
                Err(message) => {
                    eprintln!("error: {message}");
                    eprintln!(
                        "usage: hcsim campaign [--seed N] [--variants N] [--warm N] \
                         [--cycles N] [--workers N] [--bisect] [--out FILE] \
                         [--metrics-out FILE]"
                    );
                    ExitCode::FAILURE
                }
            };
        }
        Some("snapshot") => {
            return match parse_snapshot_args(&argv[1..]) {
                Ok(args) => scenario_snapshot(&args),
                Err(message) => {
                    eprintln!("error: {message}");
                    eprintln!("usage: hcsim snapshot --out FILE [--cycles N]");
                    ExitCode::FAILURE
                }
            };
        }
        _ => {}
    }
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: hcsim <latency|contention|fairness|stress> \
                 [--design hc|sc] [--cycles N] [--ports N]"
            );
            return ExitCode::FAILURE;
        }
    };
    match args.scenario.as_str() {
        "latency" => scenario_latency(&args),
        "contention" => scenario_contention(&args),
        "fairness" => scenario_fairness(&args),
        "stress" => scenario_stress(&args),
        other => {
            eprintln!("error: unknown scenario {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_defaults() {
        let args = parse_args(&argv("stress")).unwrap();
        assert_eq!(args.scenario, "stress");
        assert_eq!(args.design, "hc");
        assert_eq!(args.cycles, 3_000_000);
        assert_eq!(args.ports, 2);
    }

    #[test]
    fn parses_flags() {
        let args = parse_args(&argv("fairness --design sc --cycles 1000 --ports 4")).unwrap();
        assert_eq!(args.design, "sc");
        assert_eq!(args.cycles, 1000);
        assert_eq!(args.ports, 4);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&argv("x --design nope")).is_err());
        assert!(parse_args(&argv("x --cycles abc")).is_err());
        assert!(parse_args(&argv("x --ports 0")).is_err());
        assert!(parse_args(&argv("x --cycles")).is_err());
        assert!(parse_args(&argv("x --bogus 1")).is_err());
    }

    #[test]
    fn parses_campaign_defaults() {
        let args = parse_campaign_args(&argv("")).unwrap();
        assert_eq!(args.seed, 1);
        assert_eq!(args.variants, 8);
        assert_eq!(args.warm, 2_000);
        assert_eq!(args.cycles, 60_000);
        assert_eq!(args.workers, 2);
        assert!(!args.bisect);
        assert_eq!(args.out, None);
        assert_eq!(args.metrics_out, None);
    }

    #[test]
    fn parses_campaign_flags() {
        let args = parse_campaign_args(&argv(
            "--seed 7 --variants 3 --warm 1000 --cycles 40000 --workers 4 \
             --bisect --out a.json --metrics-out b.json",
        ))
        .unwrap();
        assert_eq!(args.seed, 7);
        assert_eq!(args.variants, 3);
        assert_eq!(args.warm, 1_000);
        assert_eq!(args.cycles, 40_000);
        assert_eq!(args.workers, 4);
        assert!(args.bisect);
        assert_eq!(args.out.as_deref(), Some("a.json"));
        assert_eq!(args.metrics_out.as_deref(), Some("b.json"));
    }

    #[test]
    fn rejects_bad_campaign_input() {
        assert!(parse_campaign_args(&argv("--variants 0")).is_err());
        assert!(parse_campaign_args(&argv("--workers 0")).is_err());
        assert!(parse_campaign_args(&argv("--seed x")).is_err());
        assert!(parse_campaign_args(&argv("--out")).is_err());
        assert!(parse_campaign_args(&argv("--bogus 1")).is_err());
        // The fork window must be non-empty.
        assert!(parse_campaign_args(&argv("--warm 5000 --cycles 5000")).is_err());
    }

    #[test]
    fn parses_snapshot_flags() {
        let args = parse_snapshot_args(&argv("--out golden.bin --cycles 150")).unwrap();
        assert_eq!(args.out, "golden.bin");
        assert_eq!(args.cycles, 150);
        assert_eq!(
            parse_snapshot_args(&argv("--out g.bin")).unwrap().cycles,
            150
        );
        assert!(parse_snapshot_args(&argv("")).is_err());
        assert!(parse_snapshot_args(&argv("--cycles 10")).is_err());
        assert!(parse_snapshot_args(&argv("--out g.bin --cycles x")).is_err());
    }
}
