//! Seeded chaos campaigns over the recovery lifecycle.
//!
//! A chaos campaign derives a complete fault scenario from one RNG seed
//! — interconnect shape, which port hosts which kind of misbehaving
//! master, whether the fault is a recoverable glitch or permanently
//! broken hardware, hypervisor poll cadence and recovery-policy knobs —
//! then runs it end to end: the hypervisor detects the fault
//! ([`hypervisor::Hypervisor::poll_recovery`]), quiesces and drains the
//! port, resets the accelerator, reattaches it and either returns it to
//! service or quarantines it. Because every draw comes from
//! [`sim::SimRng`], a seed is a complete, replayable bug report.
//!
//! Each campaign is judged against three invariants (see
//! [`ChaosOutcome::invariant_violations`]):
//!
//! 1. **Victims stay bounded** — no well-behaved port ever observes a
//!    read latency above its closed-form `analysis` bound, before,
//!    during or after the fault (and every victim makes progress);
//! 2. **Recovery meets its SLA** — a recoverable fault is back in
//!    service within [`hypervisor::RecoveryPolicy::reattach_sla_polls`]
//!    hypervisor polls of detection, and a permanent fault ends in
//!    [`hypervisor::RecoveryState::Quarantined`];
//! 3. **Scheduler equivalence** — the same seed produces a
//!    byte-identical [`ChaosOutcome::fingerprint`] under
//!    [`SchedulerMode::Naive`] and [`SchedulerMode::FastForward`], so
//!    the event-horizon scheduler cannot change what recovery observes.
//!
//! Campaigns run over the flat Fig. 1 shape ([`run_flat_campaign`],
//! N accelerators on one HyperConnect) and over a two-level tree
//! ([`run_tree_campaign`], a child HyperConnect cascaded behind a
//! parent, with the fault injected on the child).
//!
//! A third campaign family targets the QoS regulation layer instead of
//! the recovery lifecycle: [`run_noisy_neighbor_campaign`] derives a
//! hard-RT victim plus a seeded swarm of greedy best-effort readers,
//! programs per-port credit regulators over AXI-Lite, and judges the
//! run against the *tightened* victim bound the regulators buy (see
//! [`QosOutcome::invariant_violations`]).
//!
//! A fourth family targets the *data path* itself: the fabric-fault
//! campaigns ([`run_fabric_flat_campaign`], [`run_fabric_tree_campaign`])
//! arm the memory controller's seeded fault injector (or a hard-error
//! address region), put a [`ScoreboardMaster`] data-integrity oracle on
//! one port, and judge the run against a **zero-silent-corruption**
//! invariant on top of the usual victim bounds, scheduler equivalence
//! and — for hard faults — hypervisor-driven region quarantine (see
//! [`FabricOutcome::invariant_violations`]).

use axi::lite::LiteBus;
use axi::retry::RetryPolicy;
use axi::types::{BurstSize, PortId};
use axi::{AxiInterconnect, AxiPort};
use ha::dma::{Dma, DmaConfig};
use ha::fault::{RogueReader, RunawayMaster, StalledWriter, WlastViolator};
use ha::scoreboard::{ScoreboardMaster, ScoreboardStats};
use ha::traffic::PeriodicReader;
use ha::Accelerator;
use hyperconnect::analysis::ServiceModel;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::{
    HcDriver, Hypervisor, IntegrityPolicy, MonitorPolicy, RecoveryPolicy, RecoveryState,
    WatchdogPolicy,
};
use mem::{FaultStats, MemConfig, MemFaultConfig, MemoryController, RegionRemap};
use sim::{Cycle, SimRng};

use crate::{SchedulerMode, SocSystem, TopologyBuilder};

/// AXI-Lite base the campaign maps the HyperConnect register file at.
pub(crate) const HC_BASE: u64 = 0xA000_0000;
/// Reservation period programmed before each campaign.
pub(crate) const PERIOD: u32 = 2_000;
/// Hypervisor poll cadences a scenario may draw.
pub(crate) const POLL_CHOICES: [u64; 3] = [50, 100, 200];
/// Memory decode limit: rogue reads above this earn real DECERRs while
/// every victim region stays decodable.
pub(crate) const DECODE_LIMIT: u64 = 0x4000_0000;

/// The eight seeds the CI chaos-smoke job pins. Any seed works; these
/// are chosen so the set covers all four fault kinds, each in both the
/// recoverable and the permanent variant, and reproduces identically on
/// every machine.
pub const PINNED_SEEDS: [u64; 8] = [1, 3, 5, 6, 7, 8, 23, 29];

/// Which misbehaving master the scenario injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Posts a write address, never drives W (stuck-valid hang).
    StalledWriter,
    /// Asserts WLAST on the wrong beat.
    WlastViolator,
    /// Reads from undecoded addresses (DECERR storms).
    RogueReader,
    /// Issues reads with no outstanding limit.
    RunawayMaster,
}

impl FaultKind {
    /// Stable name used in fingerprints and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::StalledWriter => "stalled-writer",
            FaultKind::WlastViolator => "wlast-violator",
            FaultKind::RogueReader => "rogue-reader",
            FaultKind::RunawayMaster => "runaway-master",
        }
    }
}

/// Campaign parameters: the seed is the scenario; the scheduler and
/// cycle budget are the only knobs that must *not* affect the outcome.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Scenario seed — every randomized choice derives from this.
    pub seed: u64,
    /// Scheduler the run uses. Invariant 3 demands the outcome
    /// fingerprint be identical across both modes.
    pub scheduler: SchedulerMode,
    /// Cycles to simulate (generous enough for quarantine paths).
    pub cycles: Cycle,
}

impl ChaosConfig {
    /// A campaign for `seed` with the default scheduler and budget.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            scheduler: SchedulerMode::FastForward,
            cycles: 60_000,
        }
    }

    /// Overrides the scheduler mode.
    pub fn scheduler(mut self, mode: SchedulerMode) -> Self {
        self.scheduler = mode;
        self
    }

    /// Overrides the cycle budget.
    pub fn cycles(mut self, cycles: Cycle) -> Self {
        self.cycles = cycles;
        self
    }
}

/// Everything derived from the seed before the system is built.
pub(crate) struct Scenario {
    pub(crate) ports: usize,
    pub(crate) fault_port: usize,
    pub(crate) kind: FaultKind,
    pub(crate) permanent: bool,
    pub(crate) poll_interval: u64,
    pub(crate) victim_periods: Vec<u64>,
    pub(crate) policy: RecoveryPolicy,
    /// RNG stream position ([`SimRng::draws`]) after the derivation —
    /// recorded in campaign JSON so a scenario can be re-derived and
    /// the derivation audited for drift.
    pub(crate) rng_position: u64,
}

/// Draws the scenario. The draw order is fixed — changing it changes
/// what every pinned seed means, which the chaos tests would catch as a
/// fingerprint mismatch against their recorded expectations.
pub(crate) fn derive_scenario(seed: u64, ports_lo: usize, ports_hi: usize) -> Scenario {
    let mut rng = SimRng::seed(seed);
    let ports = rng.range_usize(ports_lo, ports_hi);
    let fault_port = rng.index(ports);
    let kind = [
        FaultKind::StalledWriter,
        FaultKind::WlastViolator,
        FaultKind::RogueReader,
        FaultKind::RunawayMaster,
    ][rng.index(4)];
    let permanent = rng.chance(0.25);
    let poll_interval = POLL_CHOICES[rng.index(POLL_CHOICES.len())];
    let victim_periods = (0..ports).map(|_| rng.range_u64(32, 64)).collect();
    // Probation must outlast stall detection (`stall_polls_allowed` + 1
    // polls) so a permanently hung port fails probation instead of
    // slipping back to Healthy between watchdog trips.
    let policy = RecoveryPolicy {
        throttle_budget: 1,
        suspect_polls: rng.range_u64(1, 2) as u32,
        reset_polls: rng.range_u64(1, 2) as u32,
        probation_polls: rng.range_u64(4, 6) as u32,
        backoff_base: rng.range_u64(0, 1) as u32,
        backoff_cap: 4,
        max_recoveries: rng.range_u64(2, 3) as u32,
    };
    Scenario {
        ports,
        fault_port,
        kind,
        permanent,
        poll_interval,
        victim_periods,
        policy,
        rng_position: rng.draws(),
    }
}

/// The RNG stream position a recovery-scenario derivation for `seed`
/// ends at — the value campaign JSON records as `rng_position`.
/// Re-deriving must land on exactly this position; a mismatch means
/// the derivation drifted and every pinned seed silently changed
/// meaning.
pub fn scenario_rng_position(seed: u64) -> u64 {
    derive_scenario(seed, 3, 4).rng_position
}

/// Builds the scenario's misbehaving master.
pub(crate) fn fault_model(kind: FaultKind, permanent: bool) -> Box<dyn Accelerator> {
    match kind {
        FaultKind::StalledWriter => {
            let m = StalledWriter::new("chaos_stall", 0x2000_0000, 16, BurstSize::B16);
            if permanent {
                Box::new(m.permanent())
            } else {
                Box::new(m)
            }
        }
        FaultKind::WlastViolator => {
            let m = WlastViolator::new("chaos_wlast", 0x2000_0000, 16, BurstSize::B16);
            if permanent {
                Box::new(m.permanent())
            } else {
                Box::new(m)
            }
        }
        FaultKind::RogueReader => {
            let m = RogueReader::new("chaos_rogue", 0x8000_0000, 16, BurstSize::B16);
            if permanent {
                Box::new(m.permanent())
            } else {
                Box::new(m)
            }
        }
        FaultKind::RunawayMaster => {
            let m = RunawayMaster::new("chaos_runaway", 0x3000_0000, 1 << 20, 64, BurstSize::B16);
            if permanent {
                Box::new(m.permanent())
            } else {
                Box::new(m)
            }
        }
    }
}

/// Arms detection and recovery for the fault port: a strict watchdog
/// (any violation, >2 outstanding, or 3 frozen-progress polls trips
/// it), a budget monitor, and the scenario's recovery policy.
pub(crate) fn arm_hypervisor(hv: &mut Hypervisor, fault_port: usize, policy: RecoveryPolicy) {
    hv.set_watchdog_policy(
        PortId(fault_port),
        WatchdogPolicy {
            violations_allowed: 0,
            outstanding_allowed: Some(2),
            stall_polls_allowed: Some(2),
        },
    );
    hv.set_monitor_policy(
        PortId(fault_port),
        MonitorPolicy {
            declared_txns_per_period: 64,
            violations_allowed: 2,
        },
    );
    hv.set_recovery_policy(PortId(fault_port), policy);
}

/// The reset line also resets the accelerator side of the decoupler:
/// any beats the faulty master queued before it was quiesced are gone
/// when it comes back. Without this, stale pre-fault address beats
/// re-trip the watchdog the moment the port reattaches.
pub(crate) fn flush_port_queues(port: &mut AxiPort, now: Cycle) {
    while port.ar.pop_ready(now).is_some() {}
    while port.aw.pop_ready(now).is_some() {}
    while port.w.pop_ready(now).is_some() {}
    while port.r.pop_ready(now).is_some() {}
    while port.b.pop_ready(now).is_some() {}
}

/// One recovery-state-machine transition, stamped with the poll cycle
/// it was observed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Cycle of the hypervisor poll that produced the transition.
    pub cycle: u64,
    /// Port the transition belongs to.
    pub port: usize,
    /// State left.
    pub from: String,
    /// State entered.
    pub to: String,
    /// Sub-transactions force-flushed when this was a drain completion.
    pub dropped: u32,
}

/// The full, deterministic record of one chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Scenario seed.
    pub seed: u64,
    /// `"flat"` or `"tree"`.
    pub scenario: &'static str,
    /// Scheduler the run used (excluded from the fingerprint).
    pub scheduler: SchedulerMode,
    /// Slave ports on the faulted interconnect.
    pub ports: usize,
    /// Port hosting the misbehaving master.
    pub fault_port: usize,
    /// Kind of misbehaving master injected.
    pub fault_kind: FaultKind,
    /// Whether the fault survives resets.
    pub permanent: bool,
    /// Hypervisor poll cadence in cycles.
    pub poll_interval: u64,
    /// Drain deadline the interconnect enforced (cycles).
    pub drain_deadline: u64,
    /// Reattach SLA in polls, from the scenario's recovery policy.
    pub sla_polls: u32,
    /// Every recovery transition observed, in order.
    pub transitions: Vec<TransitionRecord>,
    /// Recovery state of the fault port at the end of the run.
    pub final_state: String,
    /// Accelerator resets the campaign pulsed (on `Resetting` cues).
    pub resets: u64,
    /// Sub-transactions force-flushed across all drains.
    pub dropped_subs: u32,
    /// Closed-form victim read-latency bound, when one applies.
    pub victim_bound: Option<u64>,
    /// Worst read latency any victim observed.
    pub victim_worst: u64,
    /// Jobs each victim completed (insertion order, fault port skipped).
    pub victim_jobs: Vec<u64>,
    /// Cycle the run ended at.
    pub end_cycle: u64,
    /// RNG stream position after the scenario derivation (see
    /// [`sim::SimRng::draws`]) — lets a consumer of the campaign JSON
    /// re-derive the scenario and verify the derivation has not
    /// drifted.
    pub rng_position: u64,
}

impl ChaosOutcome {
    /// A scheduler-independent digest of the run. Invariant 3: the same
    /// seed must produce byte-identical fingerprints under naive and
    /// fast-forward scheduling.
    pub fn fingerprint(&self) -> String {
        let transitions: Vec<String> = self
            .transitions
            .iter()
            .map(|t| format!("{}:{}:{}->{}:{}", t.cycle, t.port, t.from, t.to, t.dropped))
            .collect();
        format!(
            "seed={} rng_pos={} scenario={} ports={} fault_port={} kind={} permanent={} poll={} \
             deadline={} sla={} transitions=[{}] final={} resets={} dropped={} \
             victim_worst={} jobs={:?} end={}",
            self.seed,
            self.rng_position,
            self.scenario,
            self.ports,
            self.fault_port,
            self.fault_kind.as_str(),
            self.permanent,
            self.poll_interval,
            self.drain_deadline,
            self.sla_polls,
            transitions.join(","),
            self.final_state,
            self.resets,
            self.dropped_subs,
            self.victim_worst,
            self.victim_jobs,
            self.end_cycle,
        )
    }

    /// Checks invariants 1 and 2 (bounded victims, SLA-compliant
    /// recovery). An empty vector means the campaign passed; each entry
    /// is a human-readable description of one violation.
    pub fn invariant_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if let Some(bound) = self.victim_bound {
            if self.victim_worst > bound {
                v.push(format!(
                    "victim worst-case read latency {} exceeds analysis bound {}",
                    self.victim_worst, bound
                ));
            }
        }
        for (i, &jobs) in self.victim_jobs.iter().enumerate() {
            if jobs == 0 {
                v.push(format!("victim #{i} made no progress"));
            }
        }
        let detected = self.transitions.iter().find(|t| t.from == "Healthy");
        let Some(first) = detected else {
            v.push("fault was never detected".to_owned());
            return v;
        };
        if self.permanent {
            if self.final_state != "Quarantined" {
                v.push(format!(
                    "permanent fault ended in {} instead of Quarantined",
                    self.final_state
                ));
            }
        } else {
            match self.transitions.iter().find(|t| t.to == "Probation") {
                None => v.push("recoverable fault never reattached".to_owned()),
                Some(reattach) => {
                    let polls = ((reattach.cycle - first.cycle) / self.poll_interval) as u32;
                    if polls > self.sla_polls {
                        v.push(format!(
                            "reattach took {polls} polls, SLA is {}",
                            self.sla_polls
                        ));
                    }
                }
            }
            if self.final_state != "Healthy" {
                v.push(format!(
                    "recoverable fault ended in {} instead of Healthy",
                    self.final_state
                ));
            }
        }
        v
    }

    /// One JSON object describing the run, for the CI artifact.
    pub fn to_json(&self) -> String {
        let transitions: Vec<String> = self
            .transitions
            .iter()
            .map(|t| {
                format!(
                    "{{\"cycle\":{},\"port\":{},\"from\":\"{}\",\"to\":\"{}\",\"dropped\":{}}}",
                    t.cycle, t.port, t.from, t.to, t.dropped
                )
            })
            .collect();
        let violations: Vec<String> = self
            .invariant_violations()
            .iter()
            .map(|s| format!("\"{}\"", s.replace('"', "'")))
            .collect();
        let scheduler = match self.scheduler {
            SchedulerMode::FastForward => "fast-forward",
            SchedulerMode::Naive => "naive",
            SchedulerMode::Sharded { .. } => "sharded",
        };
        format!(
            "{{\"schema\":\"axi-hyperconnect/chaos-run/v1\",\"seed\":{},\
             \"rng_position\":{},\
             \"scenario\":\"{}\",\"scheduler\":\"{}\",\"ports\":{},\
             \"fault_port\":{},\"fault_kind\":\"{}\",\"permanent\":{},\
             \"poll_interval\":{},\"drain_deadline\":{},\"sla_polls\":{},\
             \"final_state\":\"{}\",\"resets\":{},\"dropped_subs\":{},\
             \"victim_bound\":{},\"victim_worst\":{},\"victim_jobs\":{:?},\
             \"end_cycle\":{},\"transitions\":[{}],\
             \"invariant_violations\":[{}]}}",
            self.seed,
            self.rng_position,
            self.scenario,
            scheduler,
            self.ports,
            self.fault_port,
            self.fault_kind.as_str(),
            self.permanent,
            self.poll_interval,
            self.drain_deadline,
            self.sla_polls,
            self.final_state,
            self.resets,
            self.dropped_subs,
            self.victim_bound
                .map_or_else(|| "null".to_owned(), |b| b.to_string()),
            self.victim_worst,
            self.victim_jobs,
            self.end_cycle,
            transitions.join(","),
            violations.join(","),
        )
    }
}

/// Aggregates campaign outcomes into the JSON artifact the CI
/// chaos-smoke job uploads.
pub fn campaign_summary_json(outcomes: &[ChaosOutcome]) -> String {
    let total: usize = outcomes
        .iter()
        .map(|o| o.invariant_violations().len())
        .sum();
    let runs: Vec<String> = outcomes.iter().map(ChaosOutcome::to_json).collect();
    format!(
        "{{\"schema\":\"axi-hyperconnect/chaos-campaign/v1\",\"campaigns\":{},\
         \"invariant_violations\":{},\"runs\":[{}]}}",
        outcomes.len(),
        total,
        runs.join(",")
    )
}

/// Runs one campaign over the flat Fig. 1 shape: 3–4 accelerators on
/// one HyperConnect, one of them misbehaving per the seed.
pub fn run_flat_campaign(cfg: &ChaosConfig) -> ChaosOutcome {
    let sc = derive_scenario(cfg.seed, 3, 4);
    let mut hc = HyperConnect::new(HcConfig::new(sc.ports));
    let first_word = MemConfig::zcu102().first_word_latency;
    let model = ServiceModel::hyperconnect(sc.ports, 16, first_word).max_outstanding(4);
    hc.set_drain_model(model);
    let drain_deadline = hc.drain_deadline();
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).expect("valid HyperConnect regfile");
    hv.hc().set_period(PERIOD).expect("period register");
    arm_hypervisor(&mut hv, sc.fault_port, sc.policy);

    let mut sys = SocSystem::new(
        hc,
        MemoryController::new(MemConfig::zcu102().decode_limit(DECODE_LIMIT)),
    );
    sys.set_scheduler(cfg.scheduler);
    for p in 0..sc.ports {
        if p == sc.fault_port {
            sys.add_accelerator(fault_model(sc.kind, sc.permanent))
                .expect("port available");
        } else {
            sys.add_accelerator(Box::new(PeriodicReader::new(
                format!("victim{p}"),
                0x1000_0000 + p as u64 * 0x0400_0000,
                1 << 20,
                16,
                BurstSize::B16,
                sc.victim_periods[p],
            )))
            .expect("port available");
        }
    }

    let fault_port = sc.fault_port;
    let poll = sc.poll_interval;
    let mut transitions: Vec<TransitionRecord> = Vec::new();
    let mut resets = 0u64;
    sys.run_for_with(cfg.cycles, |now, sys| {
        if now % poll != 0 {
            return;
        }
        for t in hv.poll_recovery().expect("AXI-Lite poll") {
            if t.to == RecoveryState::Resetting {
                // The hypervisor just commanded a port reset: pulse the
                // accelerator's reset line in the same cycle.
                sys.accelerator_mut(fault_port)
                    .expect("fault port occupied")
                    .reset();
                flush_port_queues(sys.interconnect().port(fault_port), now);
                resets += 1;
            }
            transitions.push(TransitionRecord {
                cycle: now,
                port: t.port.0,
                from: format!("{:?}", t.from),
                to: format!("{:?}", t.to),
                dropped: t.dropped_txns,
            });
        }
    });

    let mut victim_worst = 0u64;
    let mut victim_jobs = Vec::new();
    for p in 0..sc.ports {
        if p == fault_port {
            continue;
        }
        victim_worst = victim_worst.max(sys.interconnect_ref().read_latency(p).max().unwrap_or(0));
        victim_jobs.push(sys.accelerator(p).expect("victim port").jobs_completed());
    }
    let final_state = format!(
        "{:?}",
        hv.recovery_state(PortId(fault_port))
            .unwrap_or(RecoveryState::Healthy)
    );
    let dropped_subs = transitions
        .iter()
        .filter(|t| t.to == "Decoupled")
        .map(|t| t.dropped)
        .sum();
    let drain_polls = (drain_deadline / poll) as u32 + 2;
    ChaosOutcome {
        seed: cfg.seed,
        scenario: "flat",
        scheduler: cfg.scheduler,
        ports: sc.ports,
        fault_port,
        fault_kind: sc.kind,
        permanent: sc.permanent,
        poll_interval: poll,
        drain_deadline,
        sla_polls: sc.policy.reattach_sla_polls(drain_polls),
        transitions,
        final_state,
        resets,
        dropped_subs,
        victim_bound: Some(model.worst_case_read_latency()),
        victim_worst,
        victim_jobs,
        end_cycle: sys.now(),
        rng_position: sc.rng_position,
    }
}

/// Runs one campaign over a two-level tree: a 2-port child HyperConnect
/// (hosting the fault and one victim) cascaded into a 2-port parent
/// HyperConnect that also serves a second victim. The hypervisor owns
/// the *child*'s register file — recovery happens one level down from
/// the memory. No closed-form victim bound is asserted here (the
/// cascade bound is workload-shaped); victims must still progress and
/// the recovery SLA still holds.
pub fn run_tree_campaign(cfg: &ChaosConfig) -> ChaosOutcome {
    let sc = derive_scenario(cfg.seed, 2, 2);
    let child_hc = HyperConnect::new(HcConfig::new(2));
    let drain_deadline = child_hc.drain_deadline();
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, child_hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).expect("valid HyperConnect regfile");
    hv.hc().set_period(PERIOD).expect("period register");
    arm_hypervisor(&mut hv, sc.fault_port, sc.policy);

    let mut builder = TopologyBuilder::new();
    let child = builder
        .add_interconnect("hc_child", child_hc)
        .expect("fresh builder");
    let parent = builder
        .add_interconnect("hc_parent", HyperConnect::new(HcConfig::new(2)))
        .expect("fresh builder");
    let memory = builder
        .add_memory(
            "mem0",
            MemoryController::new(MemConfig::zcu102().decode_limit(DECODE_LIMIT)),
        )
        .expect("fresh builder");
    builder
        .cascade(child, parent, 0)
        .expect("parent port 0 free");
    builder
        .connect_memory(parent, memory)
        .expect("memory unbound");
    let mut topo = builder.build().expect("valid tree");
    topo.set_scheduler(cfg.scheduler);

    // Child accelerators in port order (insertion ordinal == child
    // port), then the parent-level victim on the parent's free port.
    for p in 0..2 {
        if p == sc.fault_port {
            topo.add_accelerator(child, fault_model(sc.kind, sc.permanent))
                .expect("child port available");
        } else {
            topo.add_accelerator(
                child,
                Box::new(PeriodicReader::new(
                    format!("victim{p}"),
                    0x1000_0000 + p as u64 * 0x0400_0000,
                    1 << 20,
                    16,
                    BurstSize::B16,
                    sc.victim_periods[p],
                )),
            )
            .expect("child port available");
        }
    }
    topo.add_accelerator(
        parent,
        Box::new(PeriodicReader::new(
            "victim_parent",
            0x3000_0000,
            1 << 20,
            16,
            BurstSize::B16,
            sc.victim_periods[0],
        )),
    )
    .expect("parent port available");

    let fault_port = sc.fault_port;
    let poll = sc.poll_interval;
    let mut transitions: Vec<TransitionRecord> = Vec::new();
    let mut resets = 0u64;
    topo.run_for_with(cfg.cycles, |now, topo| {
        if now % poll != 0 {
            return;
        }
        for t in hv.poll_recovery().expect("AXI-Lite poll") {
            if t.to == RecoveryState::Resetting {
                topo.accelerator_mut(fault_port)
                    .expect("fault ordinal occupied")
                    .reset();
                let child_hc = topo
                    .interconnect_as_mut::<HyperConnect>(child)
                    .expect("child is a HyperConnect");
                flush_port_queues(child_hc.port(fault_port), now);
                resets += 1;
            }
            transitions.push(TransitionRecord {
                cycle: now,
                port: t.port.0,
                from: format!("{:?}", t.from),
                to: format!("{:?}", t.to),
                dropped: t.dropped_txns,
            });
        }
    });

    let child_victim = 1 - fault_port;
    let victim_worst = {
        let child_hc = topo
            .interconnect_as::<HyperConnect>(child)
            .expect("child is a HyperConnect");
        let parent_hc = topo
            .interconnect_as::<HyperConnect>(parent)
            .expect("parent is a HyperConnect");
        child_hc
            .read_latency(child_victim)
            .max()
            .unwrap_or(0)
            .max(parent_hc.read_latency(1).max().unwrap_or(0))
    };
    let victim_jobs = vec![
        topo.accelerator(child_victim)
            .expect("child victim")
            .jobs_completed(),
        topo.accelerator(2).expect("parent victim").jobs_completed(),
    ];
    let final_state = format!(
        "{:?}",
        hv.recovery_state(PortId(fault_port))
            .unwrap_or(RecoveryState::Healthy)
    );
    let dropped_subs = transitions
        .iter()
        .filter(|t| t.to == "Decoupled")
        .map(|t| t.dropped)
        .sum();
    let drain_polls = (drain_deadline / poll) as u32 + 2;
    ChaosOutcome {
        seed: cfg.seed,
        scenario: "tree",
        scheduler: cfg.scheduler,
        ports: 2,
        fault_port,
        fault_kind: sc.kind,
        permanent: sc.permanent,
        poll_interval: poll,
        drain_deadline,
        sla_polls: sc.policy.reattach_sla_polls(drain_polls),
        transitions,
        final_state,
        resets,
        dropped_subs,
        victim_bound: None,
        victim_worst,
        victim_jobs,
        end_cycle: topo.now(),
        rng_position: sc.rng_position,
    }
}

/// Everything the QoS noisy-neighbor scenario derives from its seed:
/// interconnect width, the regulation window, the credit programming
/// every aggressor port gets, and the victim's request cadence.
struct QosScenario {
    ports: usize,
    window: u32,
    rate: u32,
    burst: u32,
    out_cap: u32,
    victim_period: u64,
    rng_position: u64,
}

/// Draws the QoS scenario. Independent of [`derive_scenario`] — the
/// recovery campaigns' pinned-seed fingerprints are untouched by this
/// family — but the same rule applies: the draw order is fixed.
fn derive_qos_scenario(seed: u64) -> QosScenario {
    let mut rng = SimRng::seed(seed);
    let ports = rng.range_usize(4, 8);
    let window = [64u32, 128, 256][rng.index(3)];
    let rate = rng.range_u64(1, 4) as u32;
    let burst = rng.range_u64(1, 3) as u32;
    let out_cap = rng.range_u64(1, 3) as u32;
    let victim_period = rng.range_u64(150, 300);
    QosScenario {
        ports,
        window,
        rate,
        burst,
        out_cap,
        victim_period,
        rng_position: rng.draws(),
    }
}

/// The deterministic record of one QoS noisy-neighbor campaign.
#[derive(Debug, Clone)]
pub struct QosOutcome {
    /// Scenario seed.
    pub seed: u64,
    /// Scheduler the run used (excluded from the fingerprint).
    pub scheduler: SchedulerMode,
    /// Slave ports on the interconnect (victim + `ports - 1` readers).
    pub ports: usize,
    /// Regulation window programmed over AXI-Lite (cycles).
    pub window: u32,
    /// Credits per window each aggressor port refills.
    pub rate: u32,
    /// Credit burst depth each aggressor port may accumulate.
    pub burst: u32,
    /// Outstanding-transaction cap each aggressor port runs under.
    pub out_cap: u32,
    /// Victim read-burst period (cycles).
    pub victim_period: u64,
    /// Unregulated closed-form read bound for this shape.
    pub global_bound: u64,
    /// Tightened victim bound the bound monitor armed from the
    /// regulator programming.
    pub victim_bound: u64,
    /// Worst read latency the victim observed.
    pub victim_worst: u64,
    /// Read bursts the victim completed.
    pub victim_jobs: u64,
    /// Throttle events per aggressor port (ports `1..ports`).
    pub throttle_events: Vec<u32>,
    /// Violations the runtime bound monitor recorded.
    pub monitor_violations: usize,
    /// Cycle the run ended at.
    pub end_cycle: u64,
    /// RNG stream position after the scenario derivation.
    pub rng_position: u64,
}

impl QosOutcome {
    /// A scheduler-independent digest of the run: the same seed must
    /// produce byte-identical fingerprints under naive, fast-forward
    /// and sharded scheduling.
    pub fn fingerprint(&self) -> String {
        format!(
            "seed={} rng_pos={} ports={} window={} rate={} burst={} out_cap={} period={} \
             global={} bound={} worst={} jobs={} throttle={:?} violations={} end={}",
            self.seed,
            self.rng_position,
            self.ports,
            self.window,
            self.rate,
            self.burst,
            self.out_cap,
            self.victim_period,
            self.global_bound,
            self.victim_bound,
            self.victim_worst,
            self.victim_jobs,
            self.throttle_events,
            self.monitor_violations,
            self.end_cycle,
        )
    }

    /// Judges the campaign. An empty vector means it passed; each entry
    /// describes one violated QoS invariant:
    ///
    /// 1. regulation actually tightened the victim's bound below the
    ///    unregulated closed form;
    /// 2. the victim never observed a latency above the tightened
    ///    bound, and the runtime monitor agrees (zero violations);
    /// 3. the victim made progress;
    /// 4. every regulated aggressor was throttled at least once — the
    ///    regulators engaged rather than sitting inert.
    pub fn invariant_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.victim_bound >= self.global_bound {
            v.push(format!(
                "regulation left the victim bound at {} (unregulated bound {})",
                self.victim_bound, self.global_bound
            ));
        }
        if self.victim_worst > self.victim_bound {
            v.push(format!(
                "victim worst-case read latency {} exceeds tightened bound {}",
                self.victim_worst, self.victim_bound
            ));
        }
        if self.monitor_violations != 0 {
            v.push(format!(
                "runtime bound monitor recorded {} violations",
                self.monitor_violations
            ));
        }
        if self.victim_jobs == 0 {
            v.push("victim made no progress".to_owned());
        }
        for (i, &events) in self.throttle_events.iter().enumerate() {
            if events == 0 {
                v.push(format!("aggressor on port {} was never throttled", i + 1));
            }
        }
        v
    }
}

/// Runs one QoS noisy-neighbor campaign: a hard-RT periodic victim on
/// port 0 shares the interconnect with `ports - 1` free-running greedy
/// DMA readers, every aggressor regulated by the seed's credit
/// programming (written through [`HcDriver`], the same AXI-Lite path a
/// hypervisor would use). Observability is armed *after* programming,
/// so the bound monitor derives and enforces the tightened victim
/// bound.
pub fn run_noisy_neighbor_campaign(cfg: &ChaosConfig) -> QosOutcome {
    let sc = derive_qos_scenario(cfg.seed);
    let hc = HyperConnect::new(HcConfig::new(sc.ports));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let drv = HcDriver::probe(&bus, HC_BASE).expect("HyperConnect at HC_BASE");
    drv.set_regulation_window(sc.window)
        .expect("window register");
    for p in 1..sc.ports {
        drv.set_rate(p, sc.rate).expect("rate register");
        drv.set_reg_burst(p, sc.burst).expect("burst register");
        drv.set_out_cap(p, sc.out_cap).expect("out-cap register");
    }

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.set_scheduler(cfg.scheduler);
    sys.enable_observability();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "qos_victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        sc.victim_period,
    )))
    .expect("port available");
    for p in 1..sc.ports {
        sys.add_accelerator(Box::new(Dma::new(
            format!("qos_swarm{p}"),
            DmaConfig {
                src_base: 0x3000_0000 + p as u64 * 0x0100_0000,
                jobs: None,
                ..DmaConfig::reader(256 * 1024, 16, BurstSize::B16)
            },
        )))
        .expect("port available");
    }
    sys.run_for(cfg.cycles);

    let throttle_events: Vec<u32> = (1..sc.ports)
        .map(|p| drv.throttle_events(p).expect("throttle register"))
        .collect();
    let mon = sys
        .interconnect_ref()
        .bound_monitor()
        .expect("armed by enable_observability");
    QosOutcome {
        seed: cfg.seed,
        scheduler: cfg.scheduler,
        ports: sc.ports,
        window: sc.window,
        rate: sc.rate,
        burst: sc.burst,
        out_cap: sc.out_cap,
        victim_period: sc.victim_period,
        global_bound: mon.read_bound(),
        victim_bound: mon.port_read_bound(0),
        victim_worst: sys.interconnect_ref().read_latency(0).max().unwrap_or(0),
        victim_jobs: sys.accelerator(0).expect("victim").jobs_completed(),
        throttle_events,
        monitor_violations: mon.violations().len(),
        end_cycle: sys.now(),
        rng_position: sc.rng_position,
    }
}

/// Memory window the fabric-fault oracle exercises. Burst-aligned
/// (16 beats x 16 bytes = 256-byte bursts), decodable, and disjoint
/// from every victim region.
pub(crate) const ORACLE_BASE: u64 = 0x2000_0000;
/// Span of the oracle window (64 burst slots).
pub(crate) const ORACLE_SPAN: u64 = 64 * 256;
/// Spare region a hard-error quarantine redirects the window onto:
/// decodable, never written by anything else, and therefore zeroed —
/// matching the shadow wipe [`ScoreboardMaster::note_remap`] performs.
pub(crate) const ORACLE_SPARE: u64 = 0x2800_0000;
/// Write+read round trips the oracle performs per campaign.
pub(crate) const ORACLE_JOBS: u64 = 40;

/// The eight seeds the CI integrity-smoke job pins for the fabric-fault
/// family. Chosen so the set covers both transient (injector-driven)
/// and hard (error-region + quarantine) scenarios in the flat and tree
/// shapes, and reproduces identically on every machine.
pub const FABRIC_PINNED_SEEDS: [u64; 8] = [2, 4, 9, 11, 13, 17, 28, 31];

/// Everything the fabric-fault scenario derives from its seed.
pub(crate) struct FabricScenario {
    pub(crate) ports: usize,
    pub(crate) oracle_port: usize,
    /// `true`: a hard-error region under the oracle window (quarantine
    /// path); `false`: transient injector faults (retry path).
    pub(crate) hard: bool,
    pub(crate) poll_interval: u64,
    pub(crate) victim_periods: Vec<u64>,
    /// Spurious-SLVERR probability per burst (transient mode).
    pub(crate) slverr_prob: f64,
    /// Single-bit payload-flip probability per read beat (transient
    /// mode; the ECC model corrects every one of them).
    pub(crate) flip_prob: f64,
    /// Seed of the memory-side fault injector's own RNG stream.
    pub(crate) mem_seed: u64,
    pub(crate) retry: RetryPolicy,
    /// Hard-error budget the hypervisor integrity policy tolerates
    /// before commanding quarantine.
    pub(crate) errors_allowed: u32,
    /// RNG stream position after the derivation (see [`SimRng::draws`]).
    pub(crate) rng_position: u64,
}

/// Draws the fabric-fault scenario. Independent of [`derive_scenario`]
/// and [`derive_qos_scenario`] — the other families' pinned-seed
/// fingerprints are untouched — but the same rule applies: the draw
/// order is fixed, and drifting it silently changes what every pinned
/// seed means.
pub(crate) fn derive_fabric_scenario(
    seed: u64,
    ports_lo: usize,
    ports_hi: usize,
) -> FabricScenario {
    let mut rng = SimRng::seed(seed);
    let ports = rng.range_usize(ports_lo, ports_hi);
    let oracle_port = rng.index(ports);
    let hard = rng.chance(0.4);
    let poll_interval = POLL_CHOICES[rng.index(POLL_CHOICES.len())];
    let victim_periods = (0..ports).map(|_| rng.range_u64(32, 64)).collect();
    let slverr_prob = rng.range_u64(40, 150) as f64 / 1000.0;
    let flip_prob = rng.range_u64(20, 100) as f64 / 1000.0;
    let mem_seed = rng.range_u64(1, 1 << 48);
    let retry = RetryPolicy {
        max_attempts: rng.range_u64(6, 10) as u32,
        backoff_base: rng.range_u64(1, 4),
        backoff_cap: rng.range_u64(32, 128),
    };
    let errors_allowed = rng.range_u64(2, 6) as u32;
    FabricScenario {
        ports,
        oracle_port,
        hard,
        poll_interval,
        victim_periods,
        slverr_prob,
        flip_prob,
        mem_seed,
        retry,
        errors_allowed,
        rng_position: rng.draws(),
    }
}

/// The RNG stream position a fabric-fault derivation for `seed` ends at
/// — the value fabric campaign JSON records as `rng_position`.
pub fn fabric_scenario_rng_position(seed: u64) -> u64 {
    derive_fabric_scenario(seed, 3, 4).rng_position
}

/// The full, deterministic record of one fabric-fault campaign.
#[derive(Debug, Clone)]
pub struct FabricOutcome {
    /// Scenario seed.
    pub seed: u64,
    /// `"flat"` or `"tree"`.
    pub scenario: &'static str,
    /// Scheduler the run used (excluded from the fingerprint).
    pub scheduler: SchedulerMode,
    /// Slave ports on the faulted interconnect.
    pub ports: usize,
    /// Port hosting the data-integrity oracle.
    pub oracle_port: usize,
    /// Whether the fault was a hard-error region (vs transient).
    pub hard: bool,
    /// Hypervisor poll cadence in cycles.
    pub poll_interval: u64,
    /// Retry policy the oracle ran under.
    pub retry: RetryPolicy,
    /// Hard-error budget of the integrity policy (hard mode).
    pub errors_allowed: u32,
    /// Scoreboard verdict counters at the end of the run.
    pub oracle: ScoreboardStats,
    /// Whether the oracle finished its whole job list.
    pub oracle_done: bool,
    /// Closed-form worst-case completion bound armed for the oracle's
    /// observed per-op fault maximum (see
    /// [`ServiceModel::retry_completion_bound`]; the `+1` fault slot
    /// covers the op's two phases, write and read).
    pub completion_bound: u64,
    /// Quarantine actuations the hypervisor commanded.
    pub quarantines: u64,
    /// Cycle of the first integrity event, when one fired.
    pub quarantine_cycle: Option<u64>,
    /// `ERR_TOTAL` the first integrity event reported, when one fired.
    pub quarantine_err_total: Option<u32>,
    /// Memory-side injector counters (zeroed in hard mode — the region
    /// itself is the fault, no injector is armed).
    pub injector: FaultStats,
    /// Error responses the memory controller attributed to any port.
    pub mem_errors: u64,
    /// Closed-form victim read-latency bound, when one applies.
    pub victim_bound: Option<u64>,
    /// Worst read latency any victim observed.
    pub victim_worst: u64,
    /// Jobs each victim completed (insertion order, oracle port skipped).
    pub victim_jobs: Vec<u64>,
    /// Cycle the run ended at.
    pub end_cycle: u64,
    /// RNG stream position after the scenario derivation.
    pub rng_position: u64,
}

impl FabricOutcome {
    /// A scheduler-independent digest of the run: the same seed must
    /// produce byte-identical fingerprints under naive, fast-forward
    /// and sharded scheduling.
    pub fn fingerprint(&self) -> String {
        let o = &self.oracle;
        format!(
            "seed={} rng_pos={} scenario={} ports={} oracle_port={} hard={} poll={} \
             retry={}/{}/{} allowed={} verified={} retries={} announced={} silent={} \
             aborted={} worst={} faults={} after_remap={} done={} bound={} \
             quarantines={} q_cycle={:?} q_err={:?} corrected={} uncorrectable={} \
             flips={} spurious={} mem_errors={} victim_worst={} jobs={:?} end={}",
            self.seed,
            self.rng_position,
            self.scenario,
            self.ports,
            self.oracle_port,
            self.hard,
            self.poll_interval,
            self.retry.max_attempts,
            self.retry.backoff_base,
            self.retry.backoff_cap,
            self.errors_allowed,
            o.bursts_verified,
            o.retries,
            o.announced_errors,
            o.silent_corruptions,
            o.aborted_ops,
            o.worst_completion,
            o.worst_faults_per_op,
            o.verified_after_remap,
            self.oracle_done,
            self.completion_bound,
            self.quarantines,
            self.quarantine_cycle,
            self.quarantine_err_total,
            self.injector.corrected,
            self.injector.uncorrectable,
            self.injector.single_flips,
            self.injector.spurious_errors,
            self.mem_errors,
            self.victim_worst,
            self.victim_jobs,
            self.end_cycle,
        )
    }

    /// Judges the campaign. An empty vector means it passed; each entry
    /// describes one violated invariant:
    ///
    /// 1. **Zero silent corruption** — every delivered-vs-expected
    ///    mismatch must have been announced via an error response;
    /// 2. **Victims stay bounded** — no well-behaved port exceeds its
    ///    closed-form read bound (when one applies) and every victim
    ///    makes progress;
    /// 3. **Retry meets its bound** — the oracle's worst observed op
    ///    completion stays within the derived worst-case completion
    ///    bound, and in transient mode no op is ever abandoned;
    /// 4. **Hard faults end in quarantine** — the hypervisor commanded
    ///    a region quarantine and verified round trips resumed on the
    ///    spare region afterwards.
    pub fn invariant_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let o = &self.oracle;
        if o.silent_corruptions != 0 {
            v.push(format!(
                "{} silent corruptions reached the oracle unannounced",
                o.silent_corruptions
            ));
        }
        if let Some(bound) = self.victim_bound {
            if self.victim_worst > bound {
                v.push(format!(
                    "victim worst-case read latency {} exceeds analysis bound {}",
                    self.victim_worst, bound
                ));
            }
        }
        for (i, &jobs) in self.victim_jobs.iter().enumerate() {
            if jobs == 0 {
                v.push(format!("victim #{i} made no progress"));
            }
        }
        if o.worst_completion > self.completion_bound {
            v.push(format!(
                "oracle op completion {} exceeds derived bound {}",
                o.worst_completion, self.completion_bound
            ));
        }
        if !self.oracle_done {
            v.push("oracle never finished its job list".to_owned());
        }
        if self.hard {
            if self.quarantines == 0 {
                v.push("hard fault never triggered a quarantine".to_owned());
            }
            if o.verified_after_remap == 0 {
                v.push("no verified round trips after the quarantine remap".to_owned());
            }
            if o.announced_errors == 0 {
                v.push("hard-error region produced no announced errors".to_owned());
            }
        } else {
            if o.aborted_ops != 0 {
                v.push(format!(
                    "{} ops abandoned under transient faults (policy must absorb them)",
                    o.aborted_ops
                ));
            }
            if o.bursts_verified == 0 {
                v.push("transient campaign verified no bursts".to_owned());
            }
            if self.quarantines != 0 {
                v.push("transient campaign must not quarantine".to_owned());
            }
        }
        v
    }

    /// One JSON object describing the run, for the CI artifact.
    pub fn to_json(&self) -> String {
        let o = &self.oracle;
        let violations: Vec<String> = self
            .invariant_violations()
            .iter()
            .map(|s| format!("\"{}\"", s.replace('"', "'")))
            .collect();
        let scheduler = match self.scheduler {
            SchedulerMode::FastForward => "fast-forward",
            SchedulerMode::Naive => "naive",
            SchedulerMode::Sharded { .. } => "sharded",
        };
        format!(
            "{{\"schema\":\"axi-hyperconnect/fabric-run/v1\",\"seed\":{},\
             \"rng_position\":{},\"scenario\":\"{}\",\"scheduler\":\"{}\",\
             \"ports\":{},\"oracle_port\":{},\"hard\":{},\"poll_interval\":{},\
             \"retry\":{{\"max_attempts\":{},\"backoff_base\":{},\"backoff_cap\":{}}},\
             \"errors_allowed\":{},\
             \"oracle\":{{\"bursts_verified\":{},\"retries\":{},\
             \"announced_errors\":{},\"silent_corruptions\":{},\"aborted_ops\":{},\
             \"worst_completion\":{},\"worst_faults_per_op\":{},\
             \"verified_after_remap\":{},\"done\":{}}},\
             \"completion_bound\":{},\"quarantines\":{},\"quarantine_cycle\":{},\
             \"quarantine_err_total\":{},\
             \"ecc\":{{\"corrected\":{},\"uncorrectable\":{},\"single_flips\":{},\
             \"double_flips\":{},\"spurious_errors\":{}}},\
             \"mem_errors\":{},\"victim_bound\":{},\"victim_worst\":{},\
             \"victim_jobs\":{:?},\"end_cycle\":{},\
             \"invariant_violations\":[{}]}}",
            self.seed,
            self.rng_position,
            self.scenario,
            scheduler,
            self.ports,
            self.oracle_port,
            self.hard,
            self.poll_interval,
            self.retry.max_attempts,
            self.retry.backoff_base,
            self.retry.backoff_cap,
            self.errors_allowed,
            o.bursts_verified,
            o.retries,
            o.announced_errors,
            o.silent_corruptions,
            o.aborted_ops,
            o.worst_completion,
            o.worst_faults_per_op,
            o.verified_after_remap,
            self.oracle_done,
            self.completion_bound,
            self.quarantines,
            self.quarantine_cycle
                .map_or_else(|| "null".to_owned(), |c| c.to_string()),
            self.quarantine_err_total
                .map_or_else(|| "null".to_owned(), |e| e.to_string()),
            self.injector.corrected,
            self.injector.uncorrectable,
            self.injector.single_flips,
            self.injector.double_flips,
            self.injector.spurious_errors,
            self.mem_errors,
            self.victim_bound
                .map_or_else(|| "null".to_owned(), |b| b.to_string()),
            self.victim_worst,
            self.victim_jobs,
            self.end_cycle,
            violations.join(","),
        )
    }
}

/// Aggregates fabric-fault outcomes into the JSON artifact the CI
/// integrity-smoke job uploads (same `chaos-campaign/v1` envelope as
/// the recovery campaigns, different run schema inside).
pub fn fabric_campaign_summary_json(outcomes: &[FabricOutcome]) -> String {
    let total: usize = outcomes
        .iter()
        .map(|o| o.invariant_violations().len())
        .sum();
    let runs: Vec<String> = outcomes.iter().map(FabricOutcome::to_json).collect();
    format!(
        "{{\"schema\":\"axi-hyperconnect/chaos-campaign/v1\",\"campaigns\":{},\
         \"invariant_violations\":{},\"runs\":[{}]}}",
        outcomes.len(),
        total,
        runs.join(",")
    )
}

/// The memory configuration a fabric scenario uses: hard mode carves
/// the oracle window out as a slave-error region; transient mode leaves
/// the map clean (the injector provides the faults).
fn fabric_mem(sc: &FabricScenario) -> MemoryController {
    let mut cfg = MemConfig::zcu102().decode_limit(DECODE_LIMIT);
    if sc.hard {
        cfg = cfg.slverr_range(ORACLE_BASE, ORACLE_BASE + ORACLE_SPAN);
    }
    let mut ctrl = MemoryController::new(cfg);
    if !sc.hard {
        ctrl.attach_fault_injector(
            MemFaultConfig::new(sc.mem_seed)
                .spurious_slverr(sc.slverr_prob)
                .flip_single(sc.flip_prob)
                .ecc(true),
        );
    }
    ctrl
}

/// The data-integrity oracle for a fabric scenario.
fn fabric_oracle(sc: &FabricScenario, seed: u64) -> ScoreboardMaster {
    ScoreboardMaster::new(
        "fabric_oracle",
        ORACLE_BASE,
        ORACLE_SPAN,
        16,
        BurstSize::B16,
        seed,
    )
    .policy(sc.retry)
    .jobs(ORACLE_JOBS)
    .gap(sc.victim_periods[sc.oracle_port])
}

/// Downcasts the accelerator at `oracle_port` back to the concrete
/// [`ScoreboardMaster`] (the campaign placed it there).
fn as_scoreboard(acc: &mut dyn Accelerator) -> &mut ScoreboardMaster {
    (acc as &mut dyn std::any::Any)
        .downcast_mut::<ScoreboardMaster>()
        .expect("oracle port hosts the scoreboard")
}

/// Runs one fabric-fault campaign over the flat Fig. 1 shape: 3–4
/// masters on one HyperConnect — a [`ScoreboardMaster`] oracle on the
/// seed's port, periodic victims everywhere else — with the memory
/// controller either injecting transient faults or exposing a hard
/// SLVERR region under the oracle's window. In hard mode the hypervisor
/// watches the oracle port's `ERR_TOTAL` health register and, past the
/// policy budget, quarantines the sick region onto a zeroed spare
/// ([`MemoryController::quarantine_remap`]) and tells the oracle
/// ([`ScoreboardMaster::note_remap`]).
pub fn run_fabric_flat_campaign(cfg: &ChaosConfig) -> FabricOutcome {
    let sc = derive_fabric_scenario(cfg.seed, 3, 4);
    let hc = HyperConnect::new(HcConfig::new(sc.ports));
    let first_word = MemConfig::zcu102().first_word_latency;
    let model = ServiceModel::hyperconnect(sc.ports, 16, first_word).max_outstanding(4);
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).expect("valid HyperConnect regfile");
    hv.hc().set_period(PERIOD).expect("period register");

    let mut sys = SocSystem::new(hc, fabric_mem(&sc));
    sys.set_scheduler(cfg.scheduler);
    for p in 0..sc.ports {
        if p == sc.oracle_port {
            sys.add_accelerator(Box::new(fabric_oracle(&sc, cfg.seed)))
                .expect("port available");
        } else {
            sys.add_accelerator(Box::new(PeriodicReader::new(
                format!("victim{p}"),
                0x1000_0000 + p as u64 * 0x0400_0000,
                1 << 20,
                16,
                BurstSize::B16,
                sc.victim_periods[p],
            )))
            .expect("port available");
        }
    }
    if sc.hard {
        hv.set_integrity_policy(
            PortId(sc.oracle_port),
            IntegrityPolicy {
                errors_allowed: sc.errors_allowed,
            },
        )
        .expect("AXI-Lite baseline read");
    }

    let oracle_port = sc.oracle_port;
    let poll = sc.poll_interval;
    let mut quarantines = 0u64;
    let mut quarantine_cycle = None;
    let mut quarantine_err_total = None;
    sys.run_for_with(cfg.cycles, |now, sys| {
        if now % poll != 0 {
            return;
        }
        for ev in hv.poll_integrity().expect("AXI-Lite poll") {
            // Hypervisor decision: the region under the erroring port
            // is sick — remap it onto the spare and tell the oracle.
            sys.memory_mut().quarantine_remap(RegionRemap {
                lo: ORACLE_BASE,
                hi: ORACLE_BASE + ORACLE_SPAN,
                spare_base: ORACLE_SPARE,
            });
            as_scoreboard(sys.accelerator_mut(oracle_port).expect("oracle port"))
                .note_remap(ORACLE_BASE, ORACLE_BASE + ORACLE_SPAN);
            quarantines += 1;
            quarantine_cycle.get_or_insert(now);
            quarantine_err_total.get_or_insert(ev.err_total);
        }
    });

    let mut victim_worst = 0u64;
    let mut victim_jobs = Vec::new();
    for p in 0..sc.ports {
        if p == oracle_port {
            continue;
        }
        victim_worst = victim_worst.max(sys.interconnect_ref().read_latency(p).max().unwrap_or(0));
        victim_jobs.push(sys.accelerator(p).expect("victim port").jobs_completed());
    }
    let (oracle, oracle_done) = {
        let acc = sys.accelerator(oracle_port).expect("oracle port");
        let sb = acc
            .as_any()
            .downcast_ref::<ScoreboardMaster>()
            .expect("oracle port hosts the scoreboard");
        (sb.stats(), sb.is_done())
    };
    let mem_stats = sys.memory().stats();
    let mem_errors = (0..sc.ports)
        .map(|p| mem_stats.errors_for_port(p))
        .sum::<u64>()
        + mem_stats.untagged_errors();
    FabricOutcome {
        seed: cfg.seed,
        scenario: "flat",
        scheduler: cfg.scheduler,
        ports: sc.ports,
        oracle_port,
        hard: sc.hard,
        poll_interval: poll,
        retry: sc.retry,
        errors_allowed: sc.errors_allowed,
        completion_bound: model.retry_completion_bound(&sc.retry, oracle.worst_faults_per_op + 1),
        oracle,
        oracle_done,
        quarantines,
        quarantine_cycle,
        quarantine_err_total,
        injector: sys.memory().fault_stats().unwrap_or_default(),
        mem_errors,
        victim_bound: Some(model.worst_case_read_latency()),
        victim_worst,
        victim_jobs,
        end_cycle: sys.now(),
        rng_position: sc.rng_position,
    }
}

/// Runs one fabric-fault campaign over the two-level tree: a 2-port
/// child HyperConnect (oracle + one victim) cascaded into a 2-port
/// parent that also serves a second victim, with the fault at the
/// *memory* behind the parent and the hypervisor watching the child's
/// register file. Error responses traverse the cascade bridge, so the
/// child-port `ERR_TOTAL` still attributes them and the quarantine path
/// is identical to the flat shape. No closed-form victim bound is
/// asserted (the cascade bound is workload-shaped); victims must still
/// progress and the integrity invariants all hold.
pub fn run_fabric_tree_campaign(cfg: &ChaosConfig) -> FabricOutcome {
    let sc = derive_fabric_scenario(cfg.seed, 2, 2);
    let child_hc = HyperConnect::new(HcConfig::new(2));
    let first_word = MemConfig::zcu102().first_word_latency;
    // Per-attempt costs in the tree pay two interconnect levels; the
    // 4-port single-level model conservatively covers the interference
    // both levels contribute (2 masters at each).
    let model = ServiceModel::hyperconnect(4, 16, first_word).max_outstanding(4);
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, child_hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).expect("valid HyperConnect regfile");
    hv.hc().set_period(PERIOD).expect("period register");

    let mut builder = TopologyBuilder::new();
    let child = builder
        .add_interconnect("hc_child", child_hc)
        .expect("fresh builder");
    let parent = builder
        .add_interconnect("hc_parent", HyperConnect::new(HcConfig::new(2)))
        .expect("fresh builder");
    let memory = builder
        .add_memory("mem0", fabric_mem(&sc))
        .expect("fresh builder");
    builder
        .cascade(child, parent, 0)
        .expect("parent port 0 free");
    builder
        .connect_memory(parent, memory)
        .expect("memory unbound");
    let mut topo = builder.build().expect("valid tree");
    topo.set_scheduler(cfg.scheduler);

    for p in 0..2 {
        if p == sc.oracle_port {
            topo.add_accelerator(child, Box::new(fabric_oracle(&sc, cfg.seed)))
                .expect("child port available");
        } else {
            topo.add_accelerator(
                child,
                Box::new(PeriodicReader::new(
                    format!("victim{p}"),
                    0x1000_0000 + p as u64 * 0x0400_0000,
                    1 << 20,
                    16,
                    BurstSize::B16,
                    sc.victim_periods[p],
                )),
            )
            .expect("child port available");
        }
    }
    topo.add_accelerator(
        parent,
        Box::new(PeriodicReader::new(
            "victim_parent",
            0x3000_0000,
            1 << 20,
            16,
            BurstSize::B16,
            sc.victim_periods[0],
        )),
    )
    .expect("parent port available");
    if sc.hard {
        hv.set_integrity_policy(
            PortId(sc.oracle_port),
            IntegrityPolicy {
                errors_allowed: sc.errors_allowed,
            },
        )
        .expect("AXI-Lite baseline read");
    }

    let oracle_port = sc.oracle_port;
    let poll = sc.poll_interval;
    let mut quarantines = 0u64;
    let mut quarantine_cycle = None;
    let mut quarantine_err_total = None;
    topo.run_for_with(cfg.cycles, |now, topo| {
        if now % poll != 0 {
            return;
        }
        for ev in hv.poll_integrity().expect("AXI-Lite poll") {
            topo.memory_mut(memory)
                .expect("memory node")
                .quarantine_remap(RegionRemap {
                    lo: ORACLE_BASE,
                    hi: ORACLE_BASE + ORACLE_SPAN,
                    spare_base: ORACLE_SPARE,
                });
            as_scoreboard(topo.accelerator_mut(oracle_port).expect("oracle ordinal"))
                .note_remap(ORACLE_BASE, ORACLE_BASE + ORACLE_SPAN);
            quarantines += 1;
            quarantine_cycle.get_or_insert(now);
            quarantine_err_total.get_or_insert(ev.err_total);
        }
    });

    let child_victim = 1 - oracle_port;
    let victim_worst = {
        let child_hc = topo
            .interconnect_as::<HyperConnect>(child)
            .expect("child is a HyperConnect");
        let parent_hc = topo
            .interconnect_as::<HyperConnect>(parent)
            .expect("parent is a HyperConnect");
        child_hc
            .read_latency(child_victim)
            .max()
            .unwrap_or(0)
            .max(parent_hc.read_latency(1).max().unwrap_or(0))
    };
    let victim_jobs = vec![
        topo.accelerator(child_victim)
            .expect("child victim")
            .jobs_completed(),
        topo.accelerator(2).expect("parent victim").jobs_completed(),
    ];
    let (oracle, oracle_done) = {
        let acc = topo.accelerator(oracle_port).expect("oracle ordinal");
        let sb = acc
            .as_any()
            .downcast_ref::<ScoreboardMaster>()
            .expect("oracle ordinal hosts the scoreboard");
        (sb.stats(), sb.is_done())
    };
    let mem_stats = topo.memory(memory).expect("memory node").stats();
    let mem_errors =
        (0..2).map(|p| mem_stats.errors_for_port(p)).sum::<u64>() + mem_stats.untagged_errors();
    FabricOutcome {
        seed: cfg.seed,
        scenario: "tree",
        scheduler: cfg.scheduler,
        ports: 2,
        oracle_port,
        hard: sc.hard,
        poll_interval: poll,
        retry: sc.retry,
        errors_allowed: sc.errors_allowed,
        completion_bound: model.retry_completion_bound(&sc.retry, oracle.worst_faults_per_op + 1),
        oracle,
        oracle_done,
        quarantines,
        quarantine_cycle,
        quarantine_err_total,
        injector: topo
            .memory(memory)
            .expect("memory node")
            .fault_stats()
            .unwrap_or_default(),
        mem_errors,
        victim_bound: None,
        victim_worst,
        victim_jobs,
        end_cycle: topo.now(),
        rng_position: sc.rng_position,
    }
}
