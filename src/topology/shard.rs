//! Sharded execution of a [`SocTopology`]: partition the interconnect
//! forest at registered-bridge boundaries and run each shard on a
//! worker thread of the conservative-lookahead engine in
//! [`sim::parallel`].
//!
//! # Partitioning rule
//!
//! Every cascade edge carrying an [`AxiBridge`] with latency ≥ 1 is a
//! *cut*: the child subtree becomes its own shard. Wire (latency-0)
//! bridges provide no lookahead and keep the child in its parent's
//! shard. Accelerators stay with the interconnect that owns their
//! slave port; each memory controller stays with its root. Every node
//! therefore lands in exactly one shard — the invariant the property
//! tests pin via [`SocTopology::shard_plan`].
//!
//! # Exactness
//!
//! Within a shard, the per-cycle schedule is the sequential engine's
//! schedule restricted to the shard's nodes — same loop, same order.
//! Across a cut, the bridge is split into the half-pair of
//! [`axi::bridge`]: beats travel in batches exchanged every
//! `W = min cut latency` cycles, land in consumer-side mirror pipes at
//! their original entry cycles, and therefore become ready on exactly
//! the sequential schedule (a beat entering at cycle `c` is ready at
//! `c + L ≥ c + W`, always after the next exchange). The only
//! approximate coupling is the entry-occupancy gate, which stalls
//! conservatively and counts every decision that was not provably
//! identical to the sequential one — a run reporting zero
//! [`ShardRunReport::ambiguous_stalls`] is byte-identical.

use axi::{AxiBridge, BridgeBatch, ChildHalf, ParentHalf};
use sim::parallel::{RunOptions, ShardTask, ShardedEngine, WindowReport};
use sim::Cycle;

use super::{Node, NodeId, NodeKind, SocTopology};

/// Disjoint mutable access to two owned slots of a sparse node table.
fn two_nodes_opt(nodes: &mut [Option<Node>], a: usize, b: usize) -> (&mut Node, &mut Node) {
    debug_assert_ne!(a, b);
    let (x, y) = if a < b {
        let (lo, hi) = nodes.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = nodes.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    };
    (
        x.as_mut().expect("owned node"),
        y.as_mut().expect("owned node"),
    )
}

/// One cut cascade edge of a [`ShardPlan`]: where the forest was
/// severed and how much lookahead that buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCut {
    /// The interconnect owning the slave port above the cut.
    pub parent: NodeId,
    /// The parent's slave port the child hangs off.
    pub port: usize,
    /// The cascaded interconnect below the cut.
    pub child: NodeId,
    /// The bridge latency — this edge's lookahead contribution.
    pub latency: Cycle,
    /// Index of the shard the parent landed in.
    pub parent_shard: usize,
    /// Index of the shard the child subtree became.
    pub child_shard: usize,
}

/// How a topology would be partitioned for sharded execution.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Node membership per shard; every topology node appears in
    /// exactly one entry.
    pub shards: Vec<Vec<NodeId>>,
    /// The exchange window: the minimum cut latency, or `None` when
    /// the forest has no cut (single-shard topologies run sequentially).
    pub window: Option<Cycle>,
    /// The severed cascade edges.
    pub cuts: Vec<ShardCut>,
}

/// What the most recent sharded run did — the observability the
/// differential suite and the benchmark harness assert against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRunReport {
    /// Shards the forest was partitioned into.
    pub shards: usize,
    /// Worker threads actually used.
    pub workers: usize,
    /// Exchange window in cycles (0 for a single-shard fallback run).
    pub window: Cycle,
    /// Bulk-synchronous rounds executed.
    pub rounds: u64,
    /// Cycles the engine-level fast-forward jumped over.
    pub engine_skipped: Cycle,
    /// Cross-shard batches routed.
    pub messages: u64,
    /// Entry-gate decisions that could not be proven identical to the
    /// sequential schedule (see [`axi::ParentHalf::ambiguous_stalls`]).
    /// Zero ⇒ the run is byte-identical to the sequential scheduler.
    pub ambiguous_stalls: u64,
}

/// Internal partition: shard membership plus everything the executor
/// needs to sever the cut edges.
struct Partition {
    /// Global node ids per shard.
    members: Vec<Vec<usize>>,
    /// Shard index per global node id.
    shard_of: Vec<usize>,
    cuts: Vec<ShardCut>,
    /// Root interconnect (global id) per shard.
    root_of: Vec<usize>,
    /// Global DFS visit rank per node (accelerators use it to merge
    /// IRQ streams back into the sequential emission order).
    rank: Vec<u64>,
}

fn partition(topo: &SocTopology) -> Partition {
    let n = topo.nodes.len();
    let mut p = Partition {
        members: Vec::new(),
        shard_of: vec![usize::MAX; n],
        cuts: Vec::new(),
        root_of: Vec::new(),
        rank: vec![0; n],
    };
    let mut next_rank = 0u64;
    for &root in &topo.roots {
        let shard = p.members.len();
        p.members.push(Vec::new());
        p.root_of.push(root);
        assign_subtree(topo, root, shard, &mut p, &mut next_rank);
        let NodeKind::Interconnect(icn) = &topo.nodes[root].kind else {
            unreachable!("roots are interconnects");
        };
        let mem = icn.memory.expect("roots have memory");
        p.shard_of[mem] = shard;
        p.members[shard].push(mem);
        p.rank[mem] = next_rank;
        next_rank += 1;
    }
    p
}

fn assign_subtree(
    topo: &SocTopology,
    ic: usize,
    shard: usize,
    p: &mut Partition,
    next_rank: &mut u64,
) {
    p.shard_of[ic] = shard;
    p.members[shard].push(ic);
    p.rank[ic] = *next_rank;
    *next_rank += 1;
    let NodeKind::Interconnect(icn) = &topo.nodes[ic].kind else {
        unreachable!("subtree roots are interconnects");
    };
    let children: Vec<(usize, usize, Option<Cycle>)> = icn
        .children
        .iter()
        .enumerate()
        .filter_map(|(port, c)| {
            c.as_ref()
                .map(|c| (port, c.node, c.bridge.as_ref().map(|b| b.config().latency)))
        })
        .collect();
    for (port, child, bridge_latency) in children {
        match bridge_latency {
            None => {
                // Accelerator child: stays with its port's owner.
                p.shard_of[child] = shard;
                p.members[shard].push(child);
                p.rank[child] = *next_rank;
                *next_rank += 1;
            }
            Some(latency) if latency >= 1 => {
                let child_shard = p.members.len();
                p.members.push(Vec::new());
                p.root_of.push(child);
                p.cuts.push(ShardCut {
                    parent: NodeId(ic),
                    port,
                    child: NodeId(child),
                    latency,
                    parent_shard: shard,
                    child_shard,
                });
                assign_subtree(topo, child, child_shard, p, next_rank);
            }
            Some(_) => {
                // Wire bridge: no lookahead, same shard.
                assign_subtree(topo, child, shard, p, next_rank);
            }
        }
    }
}

impl SocTopology {
    /// Computes how the sharded scheduler would partition this
    /// topology, without running anything: node membership per shard,
    /// the severed edges, and the exchange window. The partition is a
    /// pure function of the graph, so it is identical before and after
    /// any run.
    pub fn shard_plan(&self) -> ShardPlan {
        let p = partition(self);
        ShardPlan {
            shards: p
                .members
                .iter()
                .map(|m| m.iter().map(|&g| NodeId(g)).collect())
                .collect(),
            window: p.cuts.iter().map(|c| c.latency).min(),
            cuts: p.cuts,
        }
    }
}

/// A batch crossing a cut, tagged with its edge and direction.
struct ShardMsg {
    edge: usize,
    to_parent: bool,
    batch: BridgeBatch,
}

/// Which kind of root a shard executes.
enum ShardRoot {
    /// A forest root: owns a memory controller (global id).
    Global { mem: usize },
    /// A severed cascade child: owns the child half of cut `edge`.
    CutChild { edge: usize },
}

/// One shard: a sparse (globally-indexed) slice of the topology plus
/// the bridge halves of its cut edges.
struct ShardExec {
    /// `Some` exactly for owned nodes; global indexing throughout.
    nodes: Vec<Option<Node>>,
    stamps: Vec<Option<Cycle>>,
    root: usize,
    root_kind: ShardRoot,
    /// Cut ports owned by this shard's interconnects:
    /// `(interconnect global id, slave port, cut-edge id)`.
    cut_ports: Vec<(usize, usize, usize)>,
    /// Parent-side halves, indexed by cut-edge id (`None` when the
    /// edge's parent is another shard).
    parent_halves: Vec<Option<ParentHalf>>,
    child_half: Option<ChildHalf>,
    /// Destination shard per edge, as seen from this shard.
    edge_child_shard: Vec<usize>,
    edge_parent_shard: Vec<usize>,
    /// Global DFS rank per node (IRQ merge key).
    rank: Vec<u64>,
    /// IRQ emissions: `(cycle, rank, ordinal)`.
    irq: Vec<(Cycle, u64, usize)>,
    done_local: usize,
    acc_total: usize,
    now: Cycle,
    has_wave: bool,
    /// Exit confirmations already sent per edge, to suppress
    /// no-information batches (which would defeat the engine skip).
    sent_popped: Vec<[u64; 5]>,
}

impl ShardExec {
    /// Sequential `tick_subtree`, restricted to this shard: identical
    /// loop and order, with cut child ports running the parent bridge
    /// half in place of the recursion + transfer.
    fn tick_subtree(&mut self, id: usize, now: Cycle) -> bool {
        let mut progress = false;
        let num_ports = match &self.nodes[id].as_ref().expect("owned").kind {
            NodeKind::Interconnect(icn) => icn.children.len(),
            _ => unreachable!("subtree roots are interconnects"),
        };
        for port in 0..num_ports {
            let child = match &self.nodes[id].as_ref().expect("owned").kind {
                NodeKind::Interconnect(icn) => icn.children[port]
                    .as_ref()
                    .map(|c| (c.node, c.bridge.is_some())),
                _ => None,
            };
            let Some((cid, cascaded)) = child else {
                continue;
            };
            if let Some(edge) = self.edge_for_port(id, port) {
                // Cut port: the child subtree runs in another shard;
                // this side's bridge work is the parent half.
                debug_assert!(self.nodes[cid].is_none(), "cut child is not owned");
                let mut half = self.parent_halves[edge].take().expect("parent half");
                let NodeKind::Interconnect(picn) =
                    &mut self.nodes[id].as_mut().expect("owned").kind
                else {
                    unreachable!("parent is an interconnect");
                };
                let moved = half.run_cycle(now, picn.ic.port(port));
                self.parent_halves[edge] = Some(half);
                if moved {
                    self.stamps[cid] = Some(now);
                }
                progress |= moved;
                continue;
            }
            if cascaded {
                progress |= self.tick_subtree(cid, now);
                let (parent, child_node) = two_nodes_opt(&mut self.nodes, id, cid);
                let NodeKind::Interconnect(picn) = &mut parent.kind else {
                    unreachable!("parent is an interconnect");
                };
                let NodeKind::Interconnect(cicn) = &mut child_node.kind else {
                    unreachable!("cascaded child is an interconnect");
                };
                let bridge = picn.children[port]
                    .as_mut()
                    .and_then(|c| c.bridge.as_mut())
                    .expect("cascaded child has a bridge");
                let moved = bridge.transfer(now, cicn.ic.mem_port(), picn.ic.port(port));
                if moved {
                    self.stamps[cid] = Some(now);
                }
                progress |= moved;
            } else {
                let (parent, child_node) = two_nodes_opt(&mut self.nodes, id, cid);
                let NodeKind::Interconnect(picn) = &mut parent.kind else {
                    unreachable!("parent is an interconnect");
                };
                let NodeKind::Accelerator(a) = &mut child_node.kind else {
                    unreachable!("non-cascaded child is an accelerator");
                };
                let p = a.acc.tick(now, picn.ic.port(port));
                if p {
                    self.stamps[cid] = Some(now);
                }
                progress |= p;
                let jobs = a.acc.jobs_completed();
                for _ in a.last_jobs..jobs {
                    self.irq.push((now, self.rank[cid], a.ordinal));
                }
                if !a.was_done && a.acc.is_done() {
                    a.was_done = true;
                    self.done_local += 1;
                }
                a.last_jobs = jobs;
            }
        }
        let NodeKind::Interconnect(icn) = &mut self.nodes[id].as_mut().expect("owned").kind else {
            unreachable!("subtree roots are interconnects");
        };
        let p = icn.ic.tick(now);
        if p {
            self.stamps[id] = Some(now);
        }
        progress |= p;
        progress
    }

    /// Looks up the cut-edge id for a parent-side (interconnect, port).
    fn edge_for_port(&self, ic: usize, port: usize) -> Option<usize> {
        self.cut_ports
            .iter()
            .find(|&&(g, p, _)| g == ic && p == port)
            .map(|&(_, _, e)| e)
    }

    /// One full shard cycle, mirroring `SocTopology::tick` for the
    /// shard's root.
    fn tick_cycle(&mut self, now: Cycle) -> bool {
        let mut progress = self.tick_subtree(self.root, now);
        match self.root_kind {
            ShardRoot::Global { mem } => {
                let (ic_node, mem_node) = two_nodes_opt(&mut self.nodes, self.root, mem);
                let NodeKind::Interconnect(icn) = &mut ic_node.kind else {
                    unreachable!("roots are interconnects");
                };
                let NodeKind::Memory(m) = &mut mem_node.kind else {
                    unreachable!("memory edge points at a memory node");
                };
                if let Some(wave) = m.wave.as_mut() {
                    wave.sample(now, icn.ic.mem_port());
                }
                let p = m.mem.tick(now, icn.ic.mem_port());
                if p {
                    self.stamps[mem] = Some(now);
                }
                progress |= p;
            }
            ShardRoot::CutChild { edge: _ } => {
                let NodeKind::Interconnect(icn) =
                    &mut self.nodes[self.root].as_mut().expect("owned").kind
                else {
                    unreachable!("shard roots are interconnects");
                };
                let half = self.child_half.as_mut().expect("cut child has a half");
                let moved = half.run_cycle(now, icn.ic.mem_port());
                if moved {
                    self.stamps[self.root] = Some(now);
                }
                progress |= moved;
            }
        }
        progress
    }

    /// Local event horizon: the sequential `horizon()` restricted to
    /// owned nodes, plus the bridge halves' mirror pipes.
    fn local_horizon(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        let mut merge = |c: Option<Cycle>| {
            horizon = match (horizon, c) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        for node in self.nodes.iter().flatten() {
            match &node.kind {
                NodeKind::Accelerator(a) => merge(a.acc.next_event(now)),
                NodeKind::Interconnect(icn) => {
                    merge(icn.ic.next_event(now));
                    for child in icn.children.iter().flatten() {
                        if let Some(bridge) = &child.bridge {
                            merge(bridge.next_event());
                        }
                    }
                }
                NodeKind::Memory(m) => merge(m.mem.next_event(now)),
            }
        }
        for half in self.parent_halves.iter().flatten() {
            merge(half.next_event());
        }
        if let Some(half) = &self.child_half {
            merge(half.next_event());
        }
        horizon
    }

    fn ambiguous_stalls(&self) -> u64 {
        self.parent_halves
            .iter()
            .flatten()
            .map(ParentHalf::ambiguous_stalls)
            .sum::<u64>()
            + self
                .child_half
                .as_ref()
                .map_or(0, ChildHalf::ambiguous_stalls)
    }
}

impl ShardTask for ShardExec {
    type Msg = ShardMsg;

    fn deliver(&mut self, msgs: Vec<ShardMsg>) {
        for msg in msgs {
            if msg.to_parent {
                self.parent_halves[msg.edge]
                    .as_mut()
                    .expect("batch routed to the parent shard")
                    .deliver(msg.batch);
            } else {
                debug_assert!(matches!(
                    self.root_kind,
                    ShardRoot::CutChild { edge } if edge == msg.edge
                ));
                self.child_half
                    .as_mut()
                    .expect("batch routed to the child shard")
                    .deliver(msg.batch);
            }
        }
    }

    fn run_window(&mut self, from: Cycle, to: Cycle) -> WindowReport<ShardMsg> {
        // A gap before `from` is a globally proven idle span.
        self.now = self.now.max(from);
        let mut progressed = false;
        let mut t = from;
        while t < to {
            let p = self.tick_cycle(t);
            progressed |= p;
            if !p && !self.has_wave {
                // Local fast-forward: no external input can arrive
                // before `to`, so the shard horizon is exact here.
                t = self.local_horizon(t).map_or(to, |h| h.clamp(t + 1, to));
            } else {
                t += 1;
            }
        }
        self.now = to;

        let mut outbox = Vec::new();
        for (edge, half) in self.parent_halves.iter_mut().enumerate() {
            if let Some(half) = half.as_mut() {
                let batch = half.take_batch();
                if !batch.is_empty() || batch.popped != self.sent_popped[edge] {
                    self.sent_popped[edge] = batch.popped;
                    outbox.push((
                        self.edge_child_shard[edge],
                        ShardMsg {
                            edge,
                            to_parent: false,
                            batch,
                        },
                    ));
                }
            }
        }
        if let Some(half) = self.child_half.as_mut() {
            let ShardRoot::CutChild { edge } = self.root_kind else {
                unreachable!("child half implies a cut-child root");
            };
            let batch = half.take_batch();
            if !batch.is_empty() || batch.popped != self.sent_popped[edge] {
                self.sent_popped[edge] = batch.popped;
                outbox.push((
                    self.edge_parent_shard[edge],
                    ShardMsg {
                        edge,
                        to_parent: true,
                        batch,
                    },
                ));
            }
        }

        let horizon = if progressed {
            None
        } else if self.has_wave {
            // A waveform probe samples every cycle: never skip.
            Some(to)
        } else {
            // Query at `to - 1`, the last cycle this window simulated:
            // `next_event(now)` promises events strictly after a tick
            // at `now`, so asking at the un-simulated `to` would hide
            // an event landing exactly on the window boundary.
            self.local_horizon(to - 1)
        };
        WindowReport {
            progressed,
            horizon,
            outbox,
            done: self.done_local == self.acc_total,
        }
    }
}

/// Exchange window used when the forest splits into independent root
/// shards with no cut edge between them: no cross-shard traffic exists,
/// so any window is exact; this one just bounds the round overhead.
const ROOT_ONLY_WINDOW: Cycle = 64;

/// Runs the topology sharded for `cycles` cycles (at most, when
/// `stop_when_all_done`). Returns `None` without touching anything when
/// the forest is a single shard — the caller falls back to the
/// sequential fast-forward path, which is exact and cheaper than a
/// one-shard engine round-trip. On `Some`, the topology has advanced
/// (clock, metrics, IRQ events, bridge residues all merged back) and
/// the contained flag reports whether every accelerator was done at the
/// final window boundary.
pub(super) fn run(
    topo: &mut SocTopology,
    workers: usize,
    cycles: Cycle,
    stop_when_all_done: bool,
) -> Option<bool> {
    let p = partition(topo);
    let num_shards = p.members.len();
    if num_shards <= 1 {
        topo.last_shard_report = Some(ShardRunReport {
            shards: num_shards.max(1),
            workers: 1,
            window: 0,
            rounds: 0,
            engine_skipped: 0,
            messages: 0,
            ambiguous_stalls: 0,
        });
        return None;
    }
    let window = p
        .cuts
        .iter()
        .map(|c| c.latency)
        .min()
        .unwrap_or(ROOT_ONLY_WINDOW);
    let num_edges = p.cuts.len();
    let n = topo.nodes.len();

    // Sever: distribute nodes into sparse per-shard tables and split
    // every cut bridge into its half-pair.
    let mut shard_nodes: Vec<Vec<Option<Node>>> = (0..num_shards)
        .map(|_| (0..n).map(|_| None).collect())
        .collect();
    for (gid, node) in std::mem::take(&mut topo.nodes).into_iter().enumerate() {
        shard_nodes[p.shard_of[gid]][gid] = Some(node);
    }
    let mut parent_halves: Vec<Vec<Option<ParentHalf>>> = (0..num_shards)
        .map(|_| (0..num_edges).map(|_| None).collect())
        .collect();
    let mut child_halves: Vec<Option<ChildHalf>> = (0..num_shards).map(|_| None).collect();
    for (edge, cut) in p.cuts.iter().enumerate() {
        let parent_gid = cut.parent.0;
        let NodeKind::Interconnect(picn) = &mut shard_nodes[cut.parent_shard][parent_gid]
            .as_mut()
            .expect("parent node owned by parent shard")
            .kind
        else {
            unreachable!("cut parents are interconnects");
        };
        let bridge = picn.children[cut.port]
            .as_mut()
            .and_then(|c| c.bridge.take())
            .expect("cut edges carry a bridge");
        let (ph, ch) = bridge.split();
        parent_halves[cut.parent_shard][edge] = Some(ph);
        child_halves[cut.child_shard] = Some(ch);
    }

    let edge_parent_shard: Vec<usize> = p.cuts.iter().map(|c| c.parent_shard).collect();
    let edge_child_shard: Vec<usize> = p.cuts.iter().map(|c| c.child_shard).collect();

    let mut shards: Vec<ShardExec> = Vec::with_capacity(num_shards);
    for (s, nodes) in shard_nodes.into_iter().enumerate() {
        let root = p.root_of[s];
        let root_kind = match &nodes[root].as_ref().expect("root owned").kind {
            NodeKind::Interconnect(icn) => match icn.memory {
                Some(mem) => ShardRoot::Global { mem },
                None => ShardRoot::CutChild {
                    edge: p
                        .cuts
                        .iter()
                        .position(|c| c.child.0 == root)
                        .expect("non-root shard heads are cut children"),
                },
            },
            _ => unreachable!("shard roots are interconnects"),
        };
        let mut acc_total = 0;
        let mut done_local = 0;
        let mut has_wave = false;
        for node in nodes.iter().flatten() {
            match &node.kind {
                NodeKind::Accelerator(a) => {
                    acc_total += 1;
                    if a.was_done {
                        done_local += 1;
                    }
                }
                NodeKind::Memory(m) => has_wave |= m.wave.is_some(),
                NodeKind::Interconnect(_) => {}
            }
        }
        shards.push(ShardExec {
            nodes,
            stamps: vec![None; n],
            root,
            root_kind,
            cut_ports: p
                .cuts
                .iter()
                .enumerate()
                .filter(|(_, c)| c.parent_shard == s)
                .map(|(e, c)| (c.parent.0, c.port, e))
                .collect(),
            parent_halves: std::mem::take(&mut parent_halves[s]),
            child_half: child_halves[s].take(),
            edge_child_shard: edge_child_shard.clone(),
            edge_parent_shard: edge_parent_shard.clone(),
            rank: p.rank.clone(),
            irq: Vec::new(),
            done_local,
            acc_total,
            now: topo.now,
            has_wave,
            sent_popped: vec![[0; 5]; num_edges],
        });
    }

    let engine = ShardedEngine::new(workers, window);
    let report = engine.run(
        &mut shards,
        topo.now,
        topo.now + cycles,
        RunOptions {
            allow_skip: true,
            stop_when_all_done,
        },
    );

    // Reassemble: nodes back into the dense table, halves reunited into
    // their bridges, bookkeeping merged in deterministic order.
    let mut merged: Vec<Option<Node>> = (0..n).map(|_| None).collect();
    let mut ambiguous = 0;
    let mut irq: Vec<(Cycle, u64, usize)> = Vec::new();
    let mut reunite_parent: Vec<Option<ParentHalf>> = (0..num_edges).map(|_| None).collect();
    let mut reunite_child: Vec<Option<ChildHalf>> = (0..num_edges).map(|_| None).collect();
    for (s, shard) in shards.into_iter().enumerate() {
        ambiguous += shard.ambiguous_stalls();
        irq.extend(shard.irq);
        for (gid, node) in shard.nodes.into_iter().enumerate() {
            if let Some(node) = node {
                debug_assert_eq!(p.shard_of[gid], s);
                merged[gid] = Some(node);
            }
        }
        for (gid, stamp) in shard.stamps.into_iter().enumerate() {
            if stamp > topo.stamps[gid] {
                topo.stamps[gid] = stamp;
            }
        }
        for (edge, half) in shard.parent_halves.into_iter().enumerate() {
            if let Some(half) = half {
                reunite_parent[edge] = Some(half);
            }
        }
        if let Some(half) = shard.child_half {
            let edge = p
                .cuts
                .iter()
                .position(|c| c.child_shard == s)
                .expect("child half belongs to a cut");
            reunite_child[edge] = Some(half);
        }
    }
    topo.nodes = merged
        .into_iter()
        .map(|n| n.expect("every node belongs to exactly one shard"))
        .collect();
    for (edge, cut) in p.cuts.iter().enumerate() {
        let bridge = AxiBridge::reunite(
            reunite_parent[edge].take().expect("parent half returned"),
            reunite_child[edge].take().expect("child half returned"),
        );
        let NodeKind::Interconnect(picn) = &mut topo.nodes[cut.parent.0].kind else {
            unreachable!("cut parents are interconnects");
        };
        picn.children[cut.port]
            .as_mut()
            .expect("cut port is bound")
            .bridge = Some(bridge);
    }

    // IRQ streams merge on (cycle, global DFS rank): within a cycle the
    // sequential engine emits completions in traversal order, and the
    // sort is stable so one accelerator's same-cycle jobs stay ordered.
    irq.sort_by_key(|&(cycle, rank, _)| (cycle, rank));
    topo.irq_events
        .extend(irq.into_iter().map(|(_, _, ordinal)| ordinal));

    topo.done_count = topo
        .acc_nodes
        .iter()
        .filter(|&&idx| match &topo.nodes[idx].kind {
            NodeKind::Accelerator(a) => a.was_done,
            _ => unreachable!("acc_nodes indexes accelerator nodes"),
        })
        .count();
    topo.now = report.ended_at;
    topo.skipped_cycles += report.skipped_cycles;
    topo.last_shard_report = Some(ShardRunReport {
        shards: num_shards,
        workers: report.workers,
        window,
        rounds: report.rounds,
        engine_skipped: report.skipped_cycles,
        messages: report.messages_routed,
        ambiguous_stalls: ambiguous,
    });
    Some(report.all_done)
}

#[cfg(test)]
mod tests {
    use super::super::{SchedulerMode, SocTopology, TopologyBuilder};
    use axi::types::BurstSize;
    use axi::BridgeConfig;
    use ha::dma::{Dma, DmaConfig};
    use ha::Accelerator;
    use hyperconnect::{HcConfig, HyperConnect};
    use mem::{MemConfig, MemoryController};
    use sim::Cycle;

    fn dma(name: &str) -> Box<dyn Accelerator> {
        Box::new(Dma::new(
            name,
            DmaConfig::reader(2048, 16, BurstSize::B16).jobs(2),
        ))
    }

    /// root ── (latency 2) ── mid ── (latency 3) ── leaf, one DMA on
    /// every spare slave port: a 3-shard plan with window 2.
    fn cascade(mode: SchedulerMode) -> SocTopology {
        let mut b = TopologyBuilder::new();
        let root = b
            .add_interconnect("root", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let mid = b
            .add_interconnect("mid", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let leaf = b
            .add_interconnect("leaf", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let mem = b
            .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
            .unwrap();
        b.cascade_with(mid, root, 0, BridgeConfig::wire().latency(2))
            .unwrap();
        b.cascade_with(leaf, mid, 0, BridgeConfig::wire().latency(3))
            .unwrap();
        b.connect_memory(root, mem).unwrap();
        for (i, (ic, port)) in [(leaf, 0), (leaf, 1), (mid, 1), (root, 1)]
            .into_iter()
            .enumerate()
        {
            let d = b
                .add_accelerator(format!("d{i}"), dma(&format!("d{i}")))
                .unwrap();
            b.attach(d, ic, port).unwrap();
        }
        let mut topo = b.build().unwrap();
        topo.set_scheduler(mode);
        topo
    }

    fn flat(mode: SchedulerMode) -> SocTopology {
        let mut b = TopologyBuilder::new();
        let ic = b
            .add_interconnect("hc", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let mem = b
            .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
            .unwrap();
        for i in 0..2 {
            let d = b
                .add_accelerator(format!("d{i}"), dma(&format!("d{i}")))
                .unwrap();
            b.attach(d, ic, i).unwrap();
        }
        b.connect_memory(ic, mem).unwrap();
        let mut topo = b.build().unwrap();
        topo.set_scheduler(mode);
        topo
    }

    #[test]
    fn plan_covers_every_node_exactly_once() {
        let topo = cascade(SchedulerMode::FastForward);
        let plan = topo.shard_plan();
        assert_eq!(plan.shards.len(), 3);
        assert_eq!(plan.window, Some(2));
        assert_eq!(plan.cuts.len(), 2);
        let mut seen = vec![0usize; topo.nodes.len()];
        for shard in &plan.shards {
            for id in shard {
                seen[id.0] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage: {seen:?}");
        // The plan is a pure function of the graph: identical after a run.
        let mut topo = topo;
        topo.run_for(1000);
        let again = topo.shard_plan();
        assert_eq!(again.cuts, plan.cuts);
    }

    #[test]
    fn wire_cascades_stay_single_shard() {
        let mut b = TopologyBuilder::new();
        let root = b
            .add_interconnect("root", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let leaf = b
            .add_interconnect("leaf", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let mem = b
            .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
            .unwrap();
        b.cascade(leaf, root, 0).unwrap();
        b.connect_memory(root, mem).unwrap();
        let d = b.add_accelerator("d", dma("d")).unwrap();
        b.attach(d, leaf, 0).unwrap();
        let topo = b.build().unwrap();
        let plan = topo.shard_plan();
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(plan.window, None);
        assert!(plan.cuts.is_empty());
    }

    #[test]
    fn sharded_run_is_byte_identical_to_fast_forward() {
        const CYCLES: Cycle = 40_000;
        let mut seq = cascade(SchedulerMode::FastForward);
        seq.run_for(CYCLES);
        for workers in [1usize, 2, 4] {
            let mut sh = cascade(SchedulerMode::Sharded { workers });
            sh.run_for(CYCLES);
            assert_eq!(sh.now(), seq.now(), "workers {workers}");
            assert_eq!(
                sh.take_irq_events(),
                seq.irq_events.clone(),
                "workers {workers}: IRQ order diverged"
            );
            assert_eq!(
                sh.metrics_snapshot_json(),
                seq.metrics_snapshot_json(),
                "workers {workers}: metrics diverged"
            );
            let rep = *sh.shard_run_report().expect("sharded run ran");
            assert_eq!(rep.shards, 3);
            assert_eq!(rep.window, 2);
            assert_eq!(rep.ambiguous_stalls, 0, "workers {workers}");
            assert!(rep.messages > 0);
            assert!(rep.rounds > 0);
        }
    }

    #[test]
    fn sharded_run_until_done_completes_and_is_deterministic() {
        let mut seq = cascade(SchedulerMode::FastForward);
        assert!(seq.run_until_done(10_000_000).is_done());
        let reference: Option<(Cycle, String)> = None;
        let mut reference = reference;
        for workers in [1usize, 2, 4] {
            let mut sh = cascade(SchedulerMode::Sharded { workers });
            let out = sh.run_until_done(10_000_000);
            assert!(out.is_done(), "workers {workers}: {out}");
            // Completion is window-quantized: at or minimally after the
            // sequential completion cycle.
            assert!(sh.now() >= seq.now(), "workers {workers}");
            assert!(
                sh.now() < seq.now() + 2,
                "workers {workers}: done at {} vs sequential {}",
                sh.now(),
                seq.now()
            );
            let state = (sh.now(), sh.metrics_snapshot_json());
            match &reference {
                None => reference = Some(state),
                Some(r) => assert_eq!(*r, state, "workers {workers}: nondeterministic"),
            }
        }
    }

    #[test]
    fn single_shard_topology_falls_back_to_sequential() {
        let mut seq = flat(SchedulerMode::FastForward);
        seq.run_for(40_000);
        let mut sh = flat(SchedulerMode::Sharded { workers: 4 });
        sh.run_for(40_000);
        assert_eq!(sh.now(), seq.now());
        assert_eq!(sh.metrics_snapshot_json(), seq.metrics_snapshot_json());
        assert_eq!(sh.skipped_cycles(), seq.skipped_cycles());
        let rep = *sh.shard_run_report().expect("fallback still reports");
        assert_eq!(rep.shards, 1);
        assert_eq!(rep.workers, 1);
    }
}
