//! The topology graph layer: compose arbitrary interconnect trees
//! behind one declarative builder.
//!
//! The paper's Fig. 1 shows the flat architecture — N accelerators on
//! one HyperConnect, one FPGA-PS port — but §IV's integration flow and
//! the cascading experiments need *trees*: HyperConnects behind
//! HyperConnects, a HyperConnect under a SmartConnect, several PS
//! ports. This module provides that as a first-class typed graph:
//!
//! * [`TopologyBuilder`] — declarative assembly (`add_*`, `attach`,
//!   `cascade`, `connect_memory`) with **validation at build time**:
//!   cycles, dangling master ports, double-bound slave ports and
//!   unreachable memories are all rejected with a typed
//!   [`TopologyError`] instead of a panic deep inside a tick loop;
//! * [`SocTopology`] — the built system: a deterministic tick engine
//!   over the tree (post-order: leaves before parents, bridges between
//!   them), the event-horizon fast-forward scheduler, per-instance
//!   metrics namespacing, and the fault-injection/hypervisor hooks of
//!   the flat `SocSystem`, which is now a thin facade over this graph.
//!
//! Cascaded interconnects are joined by an [`axi::AxiBridge`] — a
//! latency-configurable adapter whose timing contract is: latency 0
//! behaves exactly like a direct wire (the hierarchy conformance test
//! pins this cycle-for-cycle), latency N adds exactly N cycles each
//! way.

mod shard;

use std::any::Any;

use axi::bridge::{AxiBridge, BridgeConfig, BridgeStats};
use axi::AxiInterconnect;
use ha::Accelerator;
use mem::MemoryController;
use sim::vcd::{SignalId, VcdWriter};
use sim::{ClockConfig, Component, Cycle};

pub use shard::{ShardCut, ShardPlan, ShardRunReport};

/// How a [`SocTopology`] (and the `SocSystem` facade) advances
/// simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Event-horizon scheduling: when a full-system tick makes no
    /// progress, jump `now` directly to the earliest cycle any component
    /// promises activity at (its [`Component::next_event`] hint),
    /// skipping the provably idle span. Cycle-exact with respect to
    /// [`SchedulerMode::Naive`]: components may under-promise but never
    /// over-promise, and no observable state advances on skipped cycles.
    #[default]
    FastForward,
    /// Plain cycle-by-cycle stepping — the reference behavior the
    /// equivalence tests pin fast-forward against.
    Naive,
    /// Sharded parallel execution: partition the forest at registered
    /// (latency ≥ 1) bridge boundaries, run each shard on its own
    /// worker thread, and exchange in-flight beats in bulk-synchronous
    /// windows bounded by the minimum cut latency (the conservative
    /// lookahead). Byte-identical to the sequential schedulers; see
    /// [`ShardPlan`] for the partitioning rule and
    /// [`SocTopology::shard_run_report`] for per-run statistics. On a
    /// plan with a single shard this degrades gracefully to
    /// [`SchedulerMode::FastForward`] semantics on the calling thread.
    Sharded {
        /// Worker threads to spread shards over (clamped to at least 1;
        /// values above the shard count are harmless).
        workers: usize,
    },
}

/// Opaque handle to one node of a topology graph, issued by
/// [`TopologyBuilder`] and only meaningful for the builder (and the
/// [`SocTopology`]) that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// Typed assembly-time errors: everything the builder (or the built
/// topology's late-binding API) can reject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A node label was used twice.
    DuplicateLabel {
        /// The repeated label.
        label: String,
    },
    /// A [`NodeId`] from a different builder (or out of range).
    UnknownNode {
        /// The raw index of the offending handle.
        index: usize,
    },
    /// A node of the wrong kind was passed (e.g. an accelerator where
    /// an interconnect was expected).
    KindMismatch {
        /// Label of the offending node.
        label: String,
        /// The kind the operation required.
        expected: &'static str,
    },
    /// A slave-port index beyond the interconnect's port count.
    PortOutOfRange {
        /// Label of the interconnect.
        label: String,
        /// The requested port.
        port: usize,
        /// The interconnect's port count.
        num_ports: usize,
    },
    /// Two children bound to the same slave port.
    SlavePortTaken {
        /// Label of the interconnect.
        label: String,
        /// The contested port.
        port: usize,
    },
    /// An interconnect's master port bound twice (to a parent and/or a
    /// memory).
    MasterAlreadyBound {
        /// Label of the interconnect.
        label: String,
    },
    /// An accelerator attached to two slave ports.
    AcceleratorAlreadyBound {
        /// Label of the accelerator.
        label: String,
    },
    /// A memory controller driven by two interconnects.
    MemoryAlreadyBound {
        /// Label of the memory.
        label: String,
    },
    /// No free slave port left on the interconnect.
    PortsExhausted {
        /// Label of the interconnect.
        label: String,
        /// The interconnect's port count.
        num_ports: usize,
    },
    /// The requested cascade would close a loop of interconnects.
    CycleDetected {
        /// Label of the interconnect whose cascade closed the loop.
        label: String,
    },
    /// An accelerator was added but never attached to a slave port.
    UnboundAccelerator {
        /// Label of the accelerator.
        label: String,
    },
    /// An interconnect whose master port reaches no memory controller.
    DanglingInterconnect {
        /// Label of the interconnect.
        label: String,
    },
    /// A memory controller no interconnect drives.
    UnboundMemory {
        /// Label of the memory.
        label: String,
    },
    /// The topology contains no memory controller at all.
    NoMemory,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateLabel { label } => {
                write!(f, "node label {label:?} is already in use")
            }
            TopologyError::UnknownNode { index } => {
                write!(f, "node handle #{index} does not belong to this topology")
            }
            TopologyError::KindMismatch { label, expected } => {
                write!(f, "node {label:?} is not {expected}")
            }
            TopologyError::PortOutOfRange {
                label,
                port,
                num_ports,
            } => write!(
                f,
                "interconnect {label:?} has {num_ports} slave ports; port {port} does not exist"
            ),
            TopologyError::SlavePortTaken { label, port } => {
                write!(
                    f,
                    "slave port {port} of interconnect {label:?} is already bound"
                )
            }
            TopologyError::MasterAlreadyBound { label } => {
                write!(
                    f,
                    "the master port of interconnect {label:?} is already bound"
                )
            }
            TopologyError::AcceleratorAlreadyBound { label } => {
                write!(
                    f,
                    "accelerator {label:?} is already attached to a slave port"
                )
            }
            TopologyError::MemoryAlreadyBound { label } => {
                write!(f, "memory {label:?} is already driven by an interconnect")
            }
            TopologyError::PortsExhausted { label, num_ports } => {
                write!(
                    f,
                    "all {num_ports} slave ports of interconnect {label:?} are taken"
                )
            }
            TopologyError::CycleDetected { label } => {
                write!(f, "cascading interconnect {label:?} would create a cycle")
            }
            TopologyError::UnboundAccelerator { label } => {
                write!(f, "accelerator {label:?} is not attached to any slave port")
            }
            TopologyError::DanglingInterconnect { label } => write!(
                f,
                "interconnect {label:?} has no path from its master port to a memory controller"
            ),
            TopologyError::UnboundMemory { label } => {
                write!(f, "memory {label:?} is not driven by any interconnect")
            }
            TopologyError::NoMemory => {
                write!(f, "the topology contains no memory controller")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Beat-level waveform probe at one FPGA-PS boundary (the signals the
/// paper's custom FPGA timer watches).
#[derive(Debug, Clone)]
struct WaveProbe {
    vcd: VcdWriter,
    ar_valid: SignalId,
    ar_addr: SignalId,
    aw_valid: SignalId,
    w_valid: SignalId,
    r_valid: SignalId,
    b_valid: SignalId,
}

impl WaveProbe {
    fn new() -> Self {
        let mut vcd = VcdWriter::new("fpga_ps_interface");
        let ar_valid = vcd.add_wire("ar_valid");
        let ar_addr = vcd.add_bus("ar_addr", 40);
        let aw_valid = vcd.add_wire("aw_valid");
        let w_valid = vcd.add_wire("w_valid");
        let r_valid = vcd.add_wire("r_valid");
        let b_valid = vcd.add_wire("b_valid");
        Self {
            vcd,
            ar_valid,
            ar_addr,
            aw_valid,
            w_valid,
            r_valid,
            b_valid,
        }
    }

    fn sample(&mut self, now: Cycle, port: &mut axi::AxiPort) {
        let ar = port.ar.peek_ready(now);
        self.vcd.change_wire(now, self.ar_valid, ar.is_some());
        if let Some(beat) = ar {
            self.vcd.change_bus(now, self.ar_addr, beat.addr);
        }
        self.vcd
            .change_wire(now, self.aw_valid, port.aw.has_ready(now));
        self.vcd
            .change_wire(now, self.w_valid, port.w.has_ready(now));
        self.vcd
            .change_wire(now, self.r_valid, port.r.has_ready(now));
        self.vcd
            .change_wire(now, self.b_valid, port.b.has_ready(now));
    }
}

/// An accelerator node plus the bookkeeping `run_until_done` and the
/// IRQ plumbing need.
struct AccNode {
    acc: Box<dyn Accelerator>,
    /// Insertion order among accelerators (the facade's `PortId`).
    ordinal: usize,
    bound: bool,
    last_jobs: u64,
    was_done: bool,
}

/// One bound slave-port child of an interconnect.
struct Child {
    node: usize,
    /// `Some` for cascaded interconnect children, `None` for
    /// accelerators (which tick directly against the slave port).
    bridge: Option<AxiBridge>,
}

struct IcNode {
    ic: Box<dyn AxiInterconnect>,
    /// Children indexed by slave port.
    children: Vec<Option<Child>>,
    /// The memory controller on the master port, when this is a root.
    memory: Option<usize>,
    /// `(parent interconnect node, slave port)` when cascaded.
    parent: Option<(usize, usize)>,
}

struct MemNode {
    mem: MemoryController,
    bound: bool,
    wave: Option<WaveProbe>,
}

enum NodeKind {
    Accelerator(AccNode),
    Interconnect(IcNode),
    Memory(Box<MemNode>),
}

struct Node {
    label: String,
    kind: NodeKind,
}

/// Disjoint mutable access to two distinct nodes.
fn two_nodes(nodes: &mut [Node], a: usize, b: usize) -> (&mut Node, &mut Node) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = nodes.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = nodes.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Declarative, validating assembly of a [`SocTopology`].
///
/// # Example
///
/// ```
/// use axi_hyperconnect::TopologyBuilder;
/// use axi::types::BurstSize;
/// use ha::dma::{Dma, DmaConfig};
/// use hyperconnect::{HcConfig, HyperConnect};
/// use mem::{MemConfig, MemoryController};
///
/// let mut b = TopologyBuilder::new();
/// let root = b.add_interconnect("root", HyperConnect::new(HcConfig::new(2)))?;
/// let leaf = b.add_interconnect("leaf", HyperConnect::new(HcConfig::new(2)))?;
/// let mem = b.add_memory("ddr", MemoryController::new(MemConfig::default()))?;
/// let dma = b.add_accelerator(
///     "dma0",
///     Box::new(Dma::new("dma0", DmaConfig::reader(4096, 16, BurstSize::B16))),
/// )?;
/// b.cascade(leaf, root, 0)?;
/// b.attach(dma, leaf, 0)?;
/// b.connect_memory(root, mem)?;
/// let mut topo = b.build()?;
/// assert!(topo.run_until_done(1_000_000).is_done());
/// # Ok::<(), axi_hyperconnect::TopologyError>(())
/// ```
#[derive(Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_node(&mut self, label: String, kind: NodeKind) -> Result<NodeId, TopologyError> {
        if self.nodes.iter().any(|n| n.label == label) {
            return Err(TopologyError::DuplicateLabel { label });
        }
        self.nodes.push(Node { label, kind });
        Ok(NodeId(self.nodes.len() - 1))
    }

    fn check(&self, id: NodeId) -> Result<usize, TopologyError> {
        if id.0 >= self.nodes.len() {
            return Err(TopologyError::UnknownNode { index: id.0 });
        }
        Ok(id.0)
    }

    fn label(&self, idx: usize) -> String {
        self.nodes[idx].label.clone()
    }

    fn ic(&mut self, idx: usize) -> Result<&mut IcNode, TopologyError> {
        let label = self.nodes[idx].label.clone();
        match &mut self.nodes[idx].kind {
            NodeKind::Interconnect(icn) => Ok(icn),
            _ => Err(TopologyError::KindMismatch {
                label,
                expected: "an interconnect",
            }),
        }
    }

    /// Adds an interconnect node (any [`AxiInterconnect`] model).
    ///
    /// # Errors
    ///
    /// [`TopologyError::DuplicateLabel`] if the label is taken.
    pub fn add_interconnect(
        &mut self,
        label: impl Into<String>,
        ic: impl AxiInterconnect + 'static,
    ) -> Result<NodeId, TopologyError> {
        let ic: Box<dyn AxiInterconnect> = Box::new(ic);
        let children = (0..ic.num_ports()).map(|_| None).collect();
        self.add_node(
            label.into(),
            NodeKind::Interconnect(IcNode {
                ic,
                children,
                memory: None,
                parent: None,
            }),
        )
    }

    /// Adds an accelerator node. The accelerator stays idle until
    /// attached to a slave port with [`TopologyBuilder::attach`].
    ///
    /// # Errors
    ///
    /// [`TopologyError::DuplicateLabel`] if the label is taken.
    pub fn add_accelerator(
        &mut self,
        label: impl Into<String>,
        acc: Box<dyn Accelerator>,
    ) -> Result<NodeId, TopologyError> {
        let ordinal = self
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Accelerator(_)))
            .count();
        let was_done = acc.is_done();
        self.add_node(
            label.into(),
            NodeKind::Accelerator(AccNode {
                acc,
                ordinal,
                bound: false,
                last_jobs: 0,
                was_done,
            }),
        )
    }

    /// Adds a memory-controller node (one FPGA-PS interface port).
    ///
    /// # Errors
    ///
    /// [`TopologyError::DuplicateLabel`] if the label is taken.
    pub fn add_memory(
        &mut self,
        label: impl Into<String>,
        mem: MemoryController,
    ) -> Result<NodeId, TopologyError> {
        self.add_node(
            label.into(),
            NodeKind::Memory(Box::new(MemNode {
                mem,
                bound: false,
                wave: None,
            })),
        )
    }

    /// Attaches accelerator `acc` to slave port `port` of `ic`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::KindMismatch`], [`TopologyError::PortOutOfRange`],
    /// [`TopologyError::SlavePortTaken`] or
    /// [`TopologyError::AcceleratorAlreadyBound`].
    pub fn attach(&mut self, acc: NodeId, ic: NodeId, port: usize) -> Result<(), TopologyError> {
        let (acc, ic) = (self.check(acc)?, self.check(ic)?);
        match &self.nodes[acc].kind {
            NodeKind::Accelerator(a) if a.bound => {
                return Err(TopologyError::AcceleratorAlreadyBound {
                    label: self.label(acc),
                });
            }
            NodeKind::Accelerator(_) => {}
            _ => {
                return Err(TopologyError::KindMismatch {
                    label: self.label(acc),
                    expected: "an accelerator",
                });
            }
        }
        let label = self.label(ic);
        let icn = self.ic(ic)?;
        if port >= icn.children.len() {
            return Err(TopologyError::PortOutOfRange {
                label,
                port,
                num_ports: icn.children.len(),
            });
        }
        if icn.children[port].is_some() {
            return Err(TopologyError::SlavePortTaken { label, port });
        }
        icn.children[port] = Some(Child {
            node: acc,
            bridge: None,
        });
        let NodeKind::Accelerator(a) = &mut self.nodes[acc].kind else {
            unreachable!("checked above");
        };
        a.bound = true;
        Ok(())
    }

    /// Attaches accelerator `acc` to the lowest free slave port of
    /// `ic`, returning the port index.
    ///
    /// # Errors
    ///
    /// As [`TopologyBuilder::attach`], plus
    /// [`TopologyError::PortsExhausted`] when no port is free.
    pub fn attach_next(&mut self, acc: NodeId, ic: NodeId) -> Result<usize, TopologyError> {
        let ic_idx = self.check(ic)?;
        let icn = self.ic(ic_idx)?;
        let Some(port) = icn.children.iter().position(Option::is_none) else {
            let num_ports = icn.children.len();
            return Err(TopologyError::PortsExhausted {
                label: self.label(ic_idx),
                num_ports,
            });
        };
        self.attach(acc, ic, port)?;
        Ok(port)
    }

    /// Cascades interconnect `child` under slave port `port` of
    /// `parent` through a zero-latency wire bridge.
    ///
    /// # Errors
    ///
    /// See [`TopologyBuilder::cascade_with`].
    pub fn cascade(
        &mut self,
        child: NodeId,
        parent: NodeId,
        port: usize,
    ) -> Result<(), TopologyError> {
        self.cascade_with(child, parent, port, BridgeConfig::wire())
    }

    /// Cascades interconnect `child` under slave port `port` of
    /// `parent` through an [`AxiBridge`] with the given configuration.
    ///
    /// # Errors
    ///
    /// [`TopologyError::KindMismatch`], [`TopologyError::PortOutOfRange`],
    /// [`TopologyError::SlavePortTaken`],
    /// [`TopologyError::MasterAlreadyBound`] (the child already has a
    /// parent or memory) or [`TopologyError::CycleDetected`].
    pub fn cascade_with(
        &mut self,
        child: NodeId,
        parent: NodeId,
        port: usize,
        bridge: BridgeConfig,
    ) -> Result<(), TopologyError> {
        let (child, parent) = (self.check(child)?, self.check(parent)?);
        {
            let c = self.ic(child)?;
            if c.parent.is_some() || c.memory.is_some() {
                return Err(TopologyError::MasterAlreadyBound {
                    label: self.label(child),
                });
            }
        }
        // Walk the parent chain upward from `parent`; reaching `child`
        // (or `parent == child`) means the new edge would close a loop.
        let mut at = parent;
        loop {
            if at == child {
                return Err(TopologyError::CycleDetected {
                    label: self.label(child),
                });
            }
            match &self.nodes[at].kind {
                NodeKind::Interconnect(icn) => match icn.parent {
                    Some((up, _)) => at = up,
                    None => break,
                },
                _ => break,
            }
        }
        let label = self.label(parent);
        let picn = self.ic(parent)?;
        if port >= picn.children.len() {
            return Err(TopologyError::PortOutOfRange {
                label,
                port,
                num_ports: picn.children.len(),
            });
        }
        if picn.children[port].is_some() {
            return Err(TopologyError::SlavePortTaken { label, port });
        }
        picn.children[port] = Some(Child {
            node: child,
            bridge: Some(AxiBridge::new(bridge)),
        });
        let NodeKind::Interconnect(cicn) = &mut self.nodes[child].kind else {
            unreachable!("checked above");
        };
        cicn.parent = Some((parent, port));
        Ok(())
    }

    /// Connects the master port of `ic` to memory controller `mem`,
    /// making `ic` a root of the topology forest.
    ///
    /// # Errors
    ///
    /// [`TopologyError::KindMismatch`],
    /// [`TopologyError::MasterAlreadyBound`] or
    /// [`TopologyError::MemoryAlreadyBound`].
    pub fn connect_memory(&mut self, ic: NodeId, mem: NodeId) -> Result<(), TopologyError> {
        let (ic, mem) = (self.check(ic)?, self.check(mem)?);
        match &self.nodes[mem].kind {
            NodeKind::Memory(m) if m.bound => {
                return Err(TopologyError::MemoryAlreadyBound {
                    label: self.label(mem),
                });
            }
            NodeKind::Memory(_) => {}
            _ => {
                return Err(TopologyError::KindMismatch {
                    label: self.label(mem),
                    expected: "a memory controller",
                });
            }
        }
        {
            let icn = self.ic(ic)?;
            if icn.parent.is_some() || icn.memory.is_some() {
                return Err(TopologyError::MasterAlreadyBound {
                    label: self.label(ic),
                });
            }
        }
        let icn = self.ic(ic)?;
        icn.memory = Some(mem);
        let NodeKind::Memory(m) = &mut self.nodes[mem].kind else {
            unreachable!("checked above");
        };
        m.bound = true;
        Ok(())
    }

    /// Validates the graph and builds the runnable [`SocTopology`].
    ///
    /// # Errors
    ///
    /// [`TopologyError::NoMemory`], [`TopologyError::UnboundMemory`],
    /// [`TopologyError::UnboundAccelerator`],
    /// [`TopologyError::DanglingInterconnect`] or (defensively)
    /// [`TopologyError::CycleDetected`].
    pub fn build(self) -> Result<SocTopology, TopologyError> {
        let mut nodes = self.nodes;
        let mut roots = Vec::new();
        let mut acc_nodes = Vec::new();
        let mut ic_nodes = Vec::new();
        let mut mem_nodes = Vec::new();
        let mut any_memory = false;
        for (idx, node) in nodes.iter().enumerate() {
            match &node.kind {
                NodeKind::Accelerator(a) => {
                    if !a.bound {
                        return Err(TopologyError::UnboundAccelerator {
                            label: node.label.clone(),
                        });
                    }
                    acc_nodes.push((a.ordinal, idx));
                }
                NodeKind::Memory(m) => {
                    any_memory = true;
                    if !m.bound {
                        return Err(TopologyError::UnboundMemory {
                            label: node.label.clone(),
                        });
                    }
                    mem_nodes.push(idx);
                }
                NodeKind::Interconnect(icn) => {
                    ic_nodes.push(idx);
                    if icn.memory.is_some() {
                        roots.push(idx);
                    }
                    // Every interconnect must reach a memory through its
                    // master-port chain; the chain is acyclic by the
                    // cascade-time check, re-verified here with a step
                    // bound as defense in depth.
                    let mut at = idx;
                    let mut steps = 0;
                    loop {
                        if steps > nodes.len() {
                            return Err(TopologyError::CycleDetected {
                                label: node.label.clone(),
                            });
                        }
                        steps += 1;
                        match &nodes[at].kind {
                            NodeKind::Interconnect(i) => {
                                if i.memory.is_some() {
                                    break;
                                }
                                match i.parent {
                                    Some((up, _)) => at = up,
                                    None => {
                                        return Err(TopologyError::DanglingInterconnect {
                                            label: node.label.clone(),
                                        });
                                    }
                                }
                            }
                            _ => unreachable!("parent edges only point at interconnects"),
                        }
                    }
                }
            }
        }
        if !any_memory {
            return Err(TopologyError::NoMemory);
        }
        acc_nodes.sort_unstable();
        let acc_nodes = acc_nodes.into_iter().map(|(_, idx)| idx).collect();
        // Namespace each instance's metrics registry with its node
        // label so multi-interconnect snapshots don't collide.
        for &idx in &ic_nodes {
            let label = nodes[idx].label.clone();
            if let NodeKind::Interconnect(icn) = &mut nodes[idx].kind {
                if let Some(m) = icn.ic.metrics_mut() {
                    m.set_instance(label);
                }
            }
        }
        let stamps = vec![None; nodes.len()];
        Ok(SocTopology {
            nodes,
            roots,
            acc_nodes,
            ic_nodes,
            mem_nodes,
            stamps,
            clock: ClockConfig::default(),
            now: 0,
            irq_events: Vec::new(),
            done_count: 0,
            scheduler: SchedulerMode::default(),
            skipped_cycles: 0,
            last_shard_report: None,
        })
    }
}

/// A built interconnect topology: the runnable tree of accelerators,
/// interconnects, bridges and memory controllers.
///
/// Constructed by [`TopologyBuilder::build`]; the flat
/// [`crate::SocSystem`] is a thin facade over a single-interconnect
/// instance of this graph.
pub struct SocTopology {
    nodes: Vec<Node>,
    /// Interconnects with a memory bound, in insertion order — the
    /// forest's tick roots.
    roots: Vec<usize>,
    /// Accelerator nodes in insertion (ordinal) order.
    acc_nodes: Vec<usize>,
    ic_nodes: Vec<usize>,
    mem_nodes: Vec<usize>,
    /// Per-node cycle of most recent progress (stall attribution).
    stamps: Vec<Option<Cycle>>,
    clock: ClockConfig,
    now: Cycle,
    /// Completion interrupts as accelerator ordinals, drained by
    /// [`SocTopology::take_irq_events`].
    irq_events: Vec<usize>,
    done_count: usize,
    scheduler: SchedulerMode,
    skipped_cycles: Cycle,
    /// Execution statistics of the most recent sharded run.
    last_shard_report: Option<ShardRunReport>,
}

impl SocTopology {
    /// Selects how the run loops advance time (default:
    /// [`SchedulerMode::FastForward`]).
    pub fn set_scheduler(&mut self, mode: SchedulerMode) {
        self.scheduler = mode;
    }

    /// The active scheduler mode.
    pub fn scheduler(&self) -> SchedulerMode {
        self.scheduler
    }

    /// Idle cycles the fast-forward scheduler skipped over so far (zero
    /// under [`SchedulerMode::Naive`]).
    pub fn skipped_cycles(&self) -> Cycle {
        self.skipped_cycles
    }

    /// Execution statistics of the most recent run under
    /// [`SchedulerMode::Sharded`] (`None` before any sharded run).
    pub fn shard_run_report(&self) -> Option<&ShardRunReport> {
        self.last_shard_report.as_ref()
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The fabric clock configuration.
    pub fn clock(&self) -> ClockConfig {
        self.clock
    }

    /// Overrides the fabric clock used for time-based reporting.
    pub fn set_clock(&mut self, clock: ClockConfig) {
        self.clock = clock;
    }

    /// Number of accelerators in the topology.
    pub fn num_accelerators(&self) -> usize {
        self.acc_nodes.len()
    }

    /// Total number of nodes (accelerators, interconnects, memories).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The `i`-th accelerator in insertion order, or `None` when `i`
    /// is out of range.
    pub fn accelerator(&self, i: usize) -> Option<&dyn Accelerator> {
        let &idx = self.acc_nodes.get(i)?;
        match &self.nodes[idx].kind {
            NodeKind::Accelerator(a) => Some(a.acc.as_ref()),
            _ => unreachable!("acc_nodes indexes accelerator nodes"),
        }
    }

    /// Mutable access to the `i`-th accelerator — recovery flows use
    /// this to pulse the model's reset line when the hypervisor
    /// commands a reset (see [`ha::Accelerator::reset`]).
    pub fn accelerator_mut(&mut self, i: usize) -> Option<&mut dyn Accelerator> {
        let &idx = self.acc_nodes.get(i)?;
        match &mut self.nodes[idx].kind {
            NodeKind::Accelerator(a) => Some(a.acc.as_mut()),
            _ => unreachable!("acc_nodes indexes accelerator nodes"),
        }
    }

    /// Completion interrupts raised since the last call: one entry per
    /// job completion, identifying the accelerator by insertion
    /// ordinal.
    pub fn take_irq_events(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.irq_events)
    }

    /// The label of a node.
    ///
    /// # Panics
    ///
    /// Panics when the handle is from a different topology.
    pub fn label(&self, id: NodeId) -> &str {
        &self.nodes[id.0].label
    }

    /// Looks a node up by its label.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.label == label).map(NodeId)
    }

    fn ic_node(&self, id: NodeId) -> Option<&IcNode> {
        match &self.nodes.get(id.0)?.kind {
            NodeKind::Interconnect(icn) => Some(icn),
            _ => None,
        }
    }

    fn ic_node_mut(&mut self, id: NodeId) -> Option<&mut IcNode> {
        match &mut self.nodes.get_mut(id.0)?.kind {
            NodeKind::Interconnect(icn) => Some(icn),
            _ => None,
        }
    }

    /// The interconnect at `id` as a trait object, or `None` when the
    /// node is not an interconnect.
    pub fn interconnect_dyn(&self, id: NodeId) -> Option<&dyn AxiInterconnect> {
        self.ic_node(id).map(|icn| &*icn.ic as &dyn AxiInterconnect)
    }

    /// Mutable trait-object view of the interconnect at `id`.
    pub fn interconnect_dyn_mut(&mut self, id: NodeId) -> Option<&mut dyn AxiInterconnect> {
        self.ic_node_mut(id)
            .map(|icn| &mut *icn.ic as &mut dyn AxiInterconnect)
    }

    /// Downcasts the interconnect at `id` to its concrete model.
    pub fn interconnect_as<T: AxiInterconnect + 'static>(&self, id: NodeId) -> Option<&T> {
        self.ic_node(id)?.ic.as_any().downcast_ref::<T>()
    }

    /// Mutable downcast of the interconnect at `id` (for model-specific
    /// configuration — register files, fault injection, decoupling).
    pub fn interconnect_as_mut<T: AxiInterconnect + 'static>(
        &mut self,
        id: NodeId,
    ) -> Option<&mut T> {
        self.ic_node_mut(id)?.ic.as_any_mut().downcast_mut::<T>()
    }

    /// Direct access to the boxed interconnect payload (facade
    /// internals).
    #[allow(clippy::borrowed_box)]
    pub(crate) fn ic_box(&self, id: NodeId) -> &Box<dyn AxiInterconnect> {
        &self.ic_node(id).expect("facade node is an interconnect").ic
    }

    /// Mutable access to the boxed interconnect payload (facade
    /// internals).
    pub(crate) fn ic_box_mut(&mut self, id: NodeId) -> &mut Box<dyn AxiInterconnect> {
        &mut self
            .ic_node_mut(id)
            .expect("facade node is an interconnect")
            .ic
    }

    /// The memory controller at `id`, or `None` when the node is not a
    /// memory.
    pub fn memory(&self, id: NodeId) -> Option<&MemoryController> {
        match &self.nodes.get(id.0)?.kind {
            NodeKind::Memory(m) => Some(&m.mem),
            _ => None,
        }
    }

    /// Mutable access to the memory controller at `id`.
    pub fn memory_mut(&mut self, id: NodeId) -> Option<&mut MemoryController> {
        match &mut self.nodes.get_mut(id.0)?.kind {
            NodeKind::Memory(m) => Some(&mut m.mem),
            _ => None,
        }
    }

    /// Beat counters of the bridge above cascaded interconnect `child`,
    /// or `None` when `child` is a root (no bridge) or not an
    /// interconnect.
    pub fn bridge_stats(&self, child: NodeId) -> Option<BridgeStats> {
        let (parent, port) = self.ic_node(child)?.parent?;
        match &self.nodes[parent].kind {
            NodeKind::Interconnect(p) => p.children[port]
                .as_ref()
                .and_then(|c| c.bridge.as_ref())
                .map(AxiBridge::stats),
            _ => None,
        }
    }

    /// Connects an accelerator to the lowest free slave port of the
    /// interconnect at `ic` after the topology was built, returning the
    /// port it occupies. This is the facade's `add_accelerator`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::KindMismatch`] when `ic` is not an
    /// interconnect, [`TopologyError::PortsExhausted`] when every slave
    /// port is taken.
    pub fn add_accelerator(
        &mut self,
        ic: NodeId,
        acc: Box<dyn Accelerator>,
    ) -> Result<usize, TopologyError> {
        let ic_idx = ic.0;
        let Some(icn) = self.ic_node(ic) else {
            let label = self
                .nodes
                .get(ic_idx)
                .map_or_else(|| format!("#{ic_idx}"), |n| n.label.clone());
            return Err(TopologyError::KindMismatch {
                label,
                expected: "an interconnect",
            });
        };
        let Some(port) = icn.children.iter().position(Option::is_none) else {
            return Err(TopologyError::PortsExhausted {
                label: self.nodes[ic_idx].label.clone(),
                num_ports: icn.children.len(),
            });
        };
        let ordinal = self.acc_nodes.len();
        let mut label = format!("acc{ordinal}");
        while self.nodes.iter().any(|n| n.label == label) {
            label.push('\'');
        }
        let was_done = acc.is_done();
        self.done_count += was_done as usize;
        self.nodes.push(Node {
            label,
            kind: NodeKind::Accelerator(AccNode {
                acc,
                ordinal,
                bound: true,
                last_jobs: 0,
                was_done,
            }),
        });
        let node = self.nodes.len() - 1;
        self.stamps.push(None);
        self.acc_nodes.push(node);
        let NodeKind::Interconnect(icn) = &mut self.nodes[ic_idx].kind else {
            unreachable!("checked above");
        };
        icn.children[port] = Some(Child { node, bridge: None });
        Ok(port)
    }

    /// Starts recording a beat-level waveform (VCD) at the FPGA-PS
    /// boundary of memory node `mem`; retrieve it with
    /// [`SocTopology::waveform_vcd`]. Recording samples every cycle,
    /// so it forces naive stepping.
    pub fn attach_waveform(&mut self, mem: NodeId) {
        if let NodeKind::Memory(m) = &mut self.nodes[mem.0].kind {
            m.wave = Some(WaveProbe::new());
        }
    }

    /// Renders the waveform recorded at memory node `mem` as a VCD
    /// file, if recording was enabled.
    pub fn waveform_vcd(&self, mem: NodeId) -> Option<String> {
        match &self.nodes.get(mem.0)?.kind {
            NodeKind::Memory(m) => m.wave.as_ref().map(|w| w.vcd.render()),
            _ => None,
        }
    }

    /// Jobs/frames per *simulated second* completed by accelerator `i`
    /// so far — the paper's "rate per second" performance index.
    ///
    /// # Panics
    ///
    /// Panics when no accelerator has ordinal `i`.
    pub fn rate_per_second(&self, i: usize) -> f64 {
        let acc = self.accelerator(i).expect("no accelerator at this ordinal");
        self.clock.events_per_second(acc.jobs_completed(), self.now)
    }

    /// Whether the fast-forward scheduler may skip cycles right now.
    /// [`SchedulerMode::Sharded`] counts: its single-shard fallback
    /// (and the facade run loops) behave exactly like fast-forward.
    pub(crate) fn fast_forward_active(&self) -> bool {
        matches!(
            self.scheduler,
            SchedulerMode::FastForward | SchedulerMode::Sharded { .. }
        ) && !self
            .mem_nodes
            .iter()
            .any(|&idx| match &self.nodes[idx].kind {
                NodeKind::Memory(m) => m.wave.is_some(),
                _ => false,
            })
    }

    /// The earliest cycle any component could make progress at, given a
    /// tick at `now` made none: the minimum over every node's (and
    /// bridge's) event-horizon hint.
    fn horizon(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        let mut merge = |c: Option<Cycle>| {
            horizon = match (horizon, c) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        for node in &self.nodes {
            match &node.kind {
                NodeKind::Accelerator(a) => merge(a.acc.next_event(now)),
                NodeKind::Interconnect(icn) => {
                    merge(icn.ic.next_event(now));
                    for child in icn.children.iter().flatten() {
                        if let Some(bridge) = &child.bridge {
                            merge(bridge.next_event());
                        }
                    }
                }
                NodeKind::Memory(m) => merge(m.mem.next_event(now)),
            }
        }
        horizon
    }

    /// Cheap digest of everything a run hook can mutate: every
    /// interconnect's control-plane generation plus the lifetime
    /// push/pop activity of every boundary port. All inputs are
    /// monotonic counters, so the sum changes iff a hook moved a beat
    /// or reconfigured a control plane.
    pub(crate) fn mutation_fingerprint(&mut self) -> u64 {
        let mut fp = 0u64;
        for node in &mut self.nodes {
            match &mut node.kind {
                NodeKind::Interconnect(icn) => {
                    fp = fp.wrapping_add(icn.ic.config_generation());
                    for i in 0..icn.ic.num_ports() {
                        fp = fp.wrapping_add(icn.ic.port(i).lifetime_activity());
                    }
                    fp = fp.wrapping_add(icn.ic.mem_port().lifetime_activity());
                }
                NodeKind::Memory(m) => {
                    if let Some(ps) = m.mem.ps_port() {
                        fp = fp.wrapping_add(ps.lifetime_activity());
                    }
                }
                NodeKind::Accelerator(_) => {}
            }
        }
        fp
    }

    /// After a no-progress tick at `t`, the cycle to resume ticking at:
    /// the system horizon clamped to `[t + 1, bound]` (`bound` when
    /// every component is reactive-only).
    pub(crate) fn skip_target(&mut self, t: Cycle, bound: Cycle) -> Cycle {
        match self.horizon(t) {
            Some(e) => e.max(t + 1).min(bound),
            None => bound,
        }
    }

    /// Advances `now` over an idle span without ticking (facade-loop
    /// internals).
    pub(crate) fn note_skipped(&mut self, to: Cycle) {
        self.skipped_cycles += to - self.now;
        self.now = to;
    }

    /// Ticks one interconnect subtree in the deterministic order:
    /// children in slave-port order (accelerators directly, cascaded
    /// interconnects recursively followed by their bridge), then the
    /// interconnect itself.
    fn tick_subtree(
        nodes: &mut [Node],
        stamps: &mut [Option<Cycle>],
        irq: &mut Vec<usize>,
        done_count: &mut usize,
        id: usize,
        now: Cycle,
    ) -> bool {
        let mut progress = false;
        let num_ports = match &nodes[id].kind {
            NodeKind::Interconnect(icn) => icn.children.len(),
            _ => unreachable!("tick roots and cascade children are interconnects"),
        };
        for port in 0..num_ports {
            let child = match &nodes[id].kind {
                NodeKind::Interconnect(icn) => icn.children[port]
                    .as_ref()
                    .map(|c| (c.node, c.bridge.is_some())),
                _ => None,
            };
            let Some((cid, cascaded)) = child else {
                continue;
            };
            if cascaded {
                progress |= Self::tick_subtree(nodes, stamps, irq, done_count, cid, now);
                let (parent, child_node) = two_nodes(nodes, id, cid);
                let NodeKind::Interconnect(picn) = &mut parent.kind else {
                    unreachable!("parent is an interconnect");
                };
                let NodeKind::Interconnect(cicn) = &mut child_node.kind else {
                    unreachable!("cascaded child is an interconnect");
                };
                let bridge = picn.children[port]
                    .as_mut()
                    .and_then(|c| c.bridge.as_mut())
                    .expect("cascaded child has a bridge");
                let moved = bridge.transfer(now, cicn.ic.mem_port(), picn.ic.port(port));
                if moved {
                    stamps[cid] = Some(now);
                }
                progress |= moved;
            } else {
                let (parent, child_node) = two_nodes(nodes, id, cid);
                let NodeKind::Interconnect(picn) = &mut parent.kind else {
                    unreachable!("parent is an interconnect");
                };
                let NodeKind::Accelerator(a) = &mut child_node.kind else {
                    unreachable!("non-cascaded child is an accelerator");
                };
                let p = a.acc.tick(now, picn.ic.port(port));
                if p {
                    stamps[cid] = Some(now);
                }
                progress |= p;
                let jobs = a.acc.jobs_completed();
                for _ in a.last_jobs..jobs {
                    irq.push(a.ordinal);
                }
                if !a.was_done && a.acc.is_done() {
                    a.was_done = true;
                    *done_count += 1;
                }
                a.last_jobs = jobs;
            }
        }
        let NodeKind::Interconnect(icn) = &mut nodes[id].kind else {
            unreachable!("subtree roots are interconnects");
        };
        let p = icn.ic.tick(now);
        if p {
            stamps[id] = Some(now);
        }
        progress |= p;
        progress
    }

    /// Runs for exactly `cycles` cycles.
    ///
    /// Under [`SchedulerMode::Sharded`] with a multi-shard plan the
    /// forest is executed on worker threads (byte-identical to the
    /// sequential schedulers); a single-shard plan falls through to the
    /// fast-forward loop below.
    pub fn run_for(&mut self, cycles: Cycle) {
        if let SchedulerMode::Sharded { workers } = self.scheduler {
            if shard::run(self, workers, cycles, false).is_some() {
                return;
            }
        }
        let end = self.now + cycles;
        while self.now < end {
            let t = self.now;
            let progress = self.tick(t);
            if !progress && self.fast_forward_active() {
                let target = self.skip_target(t, end);
                self.note_skipped(target);
            }
        }
    }

    /// Runs for exactly `cycles` cycles, invoking `hook` after each
    /// cycle with the cycle just completed and the topology itself.
    ///
    /// Under [`SchedulerMode::FastForward`] the hook keeps its exact
    /// cadence — it is invoked once per cycle even across skipped spans
    /// (only the known-no-op ticks are elided). After each invocation a
    /// mutation fingerprint detects hooks that move beats or rewrite
    /// control registers, and ticking resumes immediately when one
    /// does.
    pub fn run_for_with(&mut self, cycles: Cycle, mut hook: impl FnMut(Cycle, &mut Self)) {
        let end = self.now + cycles;
        while self.now < end {
            let t = self.now;
            let progress = self.tick(t);
            if progress || !self.fast_forward_active() {
                hook(t, self);
                continue;
            }
            let target = self.skip_target(t, end);
            let fingerprint = self.mutation_fingerprint();
            hook(t, self);
            while self.now < target && self.mutation_fingerprint() == fingerprint {
                let skipped = self.now;
                self.now = skipped + 1;
                self.skipped_cycles += 1;
                hook(skipped, self);
            }
        }
    }

    /// Runs until every finite accelerator reports done (at most
    /// `max_cycles`). Returns the outcome.
    ///
    /// Under a multi-shard [`SchedulerMode::Sharded`] plan, completion
    /// is detected at exchange-window boundaries, so the reported
    /// `Done` cycle is the first window edge at (or after) the true
    /// completion cycle — window-quantized, while the simulated state
    /// itself stays byte-identical to a sequential run of the same
    /// length.
    pub fn run_until_done(&mut self, max_cycles: Cycle) -> sim::RunOutcome {
        if let SchedulerMode::Sharded { workers } = self.scheduler {
            if self.done_count == self.acc_nodes.len() {
                return sim::RunOutcome::Done(self.now);
            }
            if let Some(all_done) = shard::run(self, workers, max_cycles, true) {
                return if all_done {
                    sim::RunOutcome::Done(self.now)
                } else {
                    sim::RunOutcome::CycleLimit(self.now)
                };
            }
        }
        let deadline = self.now + max_cycles;
        loop {
            if self.done_count == self.acc_nodes.len() {
                return sim::RunOutcome::Done(self.now);
            }
            if self.now >= deadline {
                return sim::RunOutcome::CycleLimit(self.now);
            }
            let t = self.now;
            let progress = self.tick(t);
            if !progress && self.fast_forward_active() {
                let target = self.skip_target(t, deadline);
                self.note_skipped(target);
            }
        }
    }

    fn json_escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }

    /// One JSON object capturing the whole tree's observability state,
    /// keyed on node labels so multi-interconnect snapshots don't
    /// collide (schema `axi-hyperconnect/topology-metrics/v1`; the flat
    /// facade keeps emitting the original
    /// `axi-hyperconnect/metrics-snapshot/v1` unchanged).
    pub fn metrics_snapshot_json(&mut self) -> String {
        // Re-stamp instance labels: observability may have been armed
        // after build.
        for i in 0..self.ic_nodes.len() {
            let idx = self.ic_nodes[i];
            let label = self.nodes[idx].label.clone();
            if let NodeKind::Interconnect(icn) = &mut self.nodes[idx].kind {
                if let Some(m) = icn.ic.metrics_mut() {
                    m.set_instance(label);
                }
            }
        }
        let mut ics = Vec::new();
        for &idx in &self.ic_nodes {
            let NodeKind::Interconnect(icn) = &self.nodes[idx].kind else {
                continue;
            };
            let metrics = icn
                .ic
                .metrics()
                .map_or_else(|| "null".to_owned(), |m| m.to_json());
            let bound = icn
                .ic
                .bound_report()
                .map_or_else(|| "{\"enabled\":false}".to_owned(), |r| r.to_json());
            ics.push(format!(
                "{{\"node\":\"{}\",\"model\":\"{}\",\"metrics\":{metrics},\"bound_monitor\":{bound}}}",
                Self::json_escape(&self.nodes[idx].label),
                icn.ic.name(),
            ));
        }
        let mut mems = Vec::new();
        for &idx in &self.mem_nodes {
            let NodeKind::Memory(m) = &self.nodes[idx].kind else {
                continue;
            };
            let out = m.mem.outstanding_gauge();
            mems.push(format!(
                "{{\"node\":\"{}\",\"outstanding\":{{\"current\":{},\"peak\":{}}}}}",
                Self::json_escape(&self.nodes[idx].label),
                out.current(),
                out.peak(),
            ));
        }
        let mut bridges = Vec::new();
        for &idx in &self.ic_nodes {
            let NodeKind::Interconnect(icn) = &self.nodes[idx].kind else {
                continue;
            };
            for child in icn.children.iter().flatten() {
                if let Some(bridge) = &child.bridge {
                    let stats = bridge.stats();
                    bridges.push(format!(
                        "{{\"node\":\"{}\",\"latency\":{},\"beats_down\":{},\"beats_up\":{}}}",
                        Self::json_escape(&self.nodes[child.node].label),
                        bridge.config().latency,
                        stats.beats_down,
                        stats.beats_up,
                    ));
                }
            }
        }
        format!(
            "{{\"schema\":\"axi-hyperconnect/topology-metrics/v1\",\"cycles\":{},\
             \"interconnects\":[{}],\"memories\":[{}],\"bridges\":[{}]}}",
            self.now,
            ics.join(","),
            mems.join(","),
            bridges.join(","),
        )
    }

    /// Exports the topology as an integration-flow
    /// [`hypervisor::integrator::Design`] netlist: one component per
    /// node, accelerator masters wired to slave ports, cascaded
    /// interconnect masters wired to their parent's slave ports, every
    /// root master wired to its PS port, every control interface to the
    /// hypervisor's PS-FPGA port.
    ///
    /// # Panics
    ///
    /// Never: a built topology always satisfies the integrator's
    /// connection rules.
    pub fn export_design(&self) -> hypervisor::integrator::Design {
        use hypervisor::integrator::{ComponentDesc, DesignBuilder};
        let mut b = DesignBuilder::new();
        for (idx, node) in self.nodes.iter().enumerate() {
            match &node.kind {
                NodeKind::Interconnect(icn) => {
                    b.add_instance(
                        &node.label,
                        ComponentDesc::interconnect(icn.ic.name(), icn.ic.num_ports()),
                    )
                    .expect("topology labels are unique");
                }
                NodeKind::Accelerator(_) => {
                    b.add_instance(&node.label, ComponentDesc::accelerator(&node.label))
                        .expect("topology labels are unique");
                }
                NodeKind::Memory(_) => {
                    let _ = idx;
                }
            }
        }
        for node in &self.nodes {
            let NodeKind::Interconnect(icn) = &node.kind else {
                continue;
            };
            for (port, child) in icn.children.iter().enumerate() {
                let Some(child) = child else { continue };
                let child_label = &self.nodes[child.node].label;
                let master = match &self.nodes[child.node].kind {
                    NodeKind::Interconnect(_) => "M00_AXI",
                    _ => "M_AXI",
                };
                b.connect(child_label, master, &node.label, &format!("S{port:02}_AXI"))
                    .expect("built topology satisfies connection rules");
            }
            if let Some(mem) = icn.memory {
                b.connect_ps_master(&node.label, "M00_AXI", &self.nodes[mem].label)
                    .expect("root masters are bound exactly once");
            }
            b.connect_ctrl(&node.label, "S_AXI_CTRL")
                .expect("interconnect descriptions expose a control slave");
        }
        for node in &self.nodes {
            if matches!(node.kind, NodeKind::Accelerator(_)) {
                b.connect_ctrl(&node.label, "S_AXI_CTRL")
                    .expect("accelerator descriptions expose a control slave");
            }
        }
        b.build().expect("built topology is a valid design")
    }
}

mod persist_impls {
    use super::{NodeKind, SchedulerMode, ShardRunReport, SocTopology, WaveProbe};
    use sim::persist::{
        Persist, PersistError, PersistValue, Snapshot, SnapshotReader, SnapshotWriter,
    };
    use sim::vcd::VcdWriter;

    impl PersistValue for SchedulerMode {
        fn save_value(&self, w: &mut SnapshotWriter) {
            // Scheduler wire codes (append-only): 0 = fast-forward,
            // 1 = naive, 2 = sharded + worker count.
            match self {
                SchedulerMode::FastForward => w.put_u8(0),
                SchedulerMode::Naive => w.put_u8(1),
                SchedulerMode::Sharded { workers } => {
                    w.put_u8(2);
                    w.put_usize(*workers);
                }
            }
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            match r.take_u8()? {
                0 => Ok(SchedulerMode::FastForward),
                1 => Ok(SchedulerMode::Naive),
                2 => Ok(SchedulerMode::Sharded {
                    workers: r.take_usize()?,
                }),
                _ => Err(PersistError::Corrupt("unknown scheduler mode")),
            }
        }
    }

    impl PersistValue for ShardRunReport {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_usize(self.shards);
            w.put_usize(self.workers);
            w.put_u64(self.window);
            w.put_u64(self.rounds);
            w.put_u64(self.engine_skipped);
            w.put_u64(self.messages);
            w.put_u64(self.ambiguous_stalls);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                shards: r.take_usize()?,
                workers: r.take_usize()?,
                window: r.take_u64()?,
                rounds: r.take_u64()?,
                engine_skipped: r.take_u64()?,
                messages: r.take_u64()?,
                ambiguous_stalls: r.take_u64()?,
            })
        }
    }

    impl Persist for WaveProbe {
        /// The signal handles are assigned deterministically by
        /// [`WaveProbe::new`], so only the recorded waveform travels.
        fn save(&self, w: &mut SnapshotWriter) {
            self.vcd.save_value(w);
        }
        fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
            self.vcd = VcdWriter::load_value(r)?;
            Ok(())
        }
    }

    /// Section names of a topology snapshot, in container order. The CI
    /// schema checker pins these against a committed golden.
    pub const SECTION_SHAPE: &str = "topology/shape";
    /// Scheduler, clock and run-loop scalars.
    pub const SECTION_CONTROL: &str = "topology/control";
    /// Per-node component state in node-index order.
    pub const SECTION_NODES: &str = "topology/nodes";

    /// Kind tags used in the shape section (append-only).
    fn kind_tag(kind: &NodeKind) -> u8 {
        match kind {
            NodeKind::Accelerator(_) => 0,
            NodeKind::Interconnect(_) => 1,
            NodeKind::Memory(_) => 2,
        }
    }

    impl SocTopology {
        /// Serializes the shape fingerprint a restore target must match:
        /// node labels, kinds and the full wiring (children, bridges,
        /// parents, memory edges).
        fn save_shape(&self, w: &mut SnapshotWriter) {
            w.put_usize(self.nodes.len());
            for node in &self.nodes {
                w.put_str(&node.label);
                w.put_u8(kind_tag(&node.kind));
                if let NodeKind::Interconnect(icn) = &node.kind {
                    w.put_usize(icn.children.len());
                    for child in &icn.children {
                        match child {
                            None => w.put_bool(false),
                            Some(c) => {
                                w.put_bool(true);
                                w.put_usize(c.node);
                                w.put_bool(c.bridge.is_some());
                            }
                        }
                    }
                    icn.memory.save_value(w);
                    icn.parent.save_value(w);
                }
            }
        }

        /// Checks the shape stream against this topology, consuming it.
        fn check_shape(&self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
            if r.take_usize()? != self.nodes.len() {
                return Err(PersistError::ShapeMismatch("topology node count"));
            }
            for node in &self.nodes {
                if r.take_str()? != node.label {
                    return Err(PersistError::ShapeMismatch("topology node label"));
                }
                if r.take_u8()? != kind_tag(&node.kind) {
                    return Err(PersistError::ShapeMismatch("topology node kind"));
                }
                if let NodeKind::Interconnect(icn) = &node.kind {
                    if r.take_usize()? != icn.children.len() {
                        return Err(PersistError::ShapeMismatch("interconnect port count"));
                    }
                    for child in &icn.children {
                        let bound = r.take_bool()?;
                        match (bound, child) {
                            (false, None) => {}
                            (true, Some(c)) => {
                                if r.take_usize()? != c.node || r.take_bool()? != c.bridge.is_some()
                                {
                                    return Err(PersistError::ShapeMismatch("slave-port binding"));
                                }
                            }
                            _ => {
                                return Err(PersistError::ShapeMismatch("slave-port binding"));
                            }
                        }
                    }
                    let memory: Option<usize> = Option::load_value(r)?;
                    let parent: Option<(usize, usize)> = Option::load_value(r)?;
                    if memory != icn.memory || parent != icn.parent {
                        return Err(PersistError::ShapeMismatch("master-port binding"));
                    }
                }
            }
            Ok(())
        }

        /// Captures the complete dynamic state of the topology as a
        /// versioned `hcsim-snapshot/v1` container: every accelerator,
        /// interconnect, bridge and memory controller plus the run-loop
        /// scalars (cycle, scheduler, IRQ backlog, stall stamps).
        ///
        /// Restoring the returned snapshot into an identically built
        /// topology and resuming produces byte-identical behavior to
        /// the uninterrupted run — the property the scheduler
        /// equivalence oracle pins across naive, fast-forward and
        /// sharded execution. Sharded runs reunite their bridge halves
        /// at exchange-window boundaries before control returns, so a
        /// snapshot never observes split-bridge state.
        pub fn save_snapshot(&self) -> Snapshot {
            let mut snap = Snapshot::new();
            let mut w = SnapshotWriter::new();
            self.save_shape(&mut w);
            snap.push_section(SECTION_SHAPE, w);

            // Scheduler choice, skipped-cycle counters and shard
            // reports are execution artifacts, not simulator state:
            // excluding them keeps snapshots byte-comparable across
            // naive, fast-forward and sharded runs of the same state.
            let mut w = SnapshotWriter::new();
            w.put_u64(self.now);
            w.put_usize(self.done_count);
            self.clock.save_value(&mut w);
            self.stamps.save_value(&mut w);
            self.irq_events.save_value(&mut w);
            snap.push_section(SECTION_CONTROL, w);

            let mut w = SnapshotWriter::new();
            for node in &self.nodes {
                match &node.kind {
                    NodeKind::Accelerator(a) => {
                        a.acc.save_state(&mut w);
                        w.put_u64(a.last_jobs);
                        w.put_bool(a.was_done);
                    }
                    NodeKind::Interconnect(icn) => {
                        icn.ic.save_state(&mut w);
                        for child in icn.children.iter().flatten() {
                            if let Some(bridge) = &child.bridge {
                                bridge.save_value(&mut w);
                            }
                        }
                    }
                    NodeKind::Memory(m) => {
                        m.mem.save_state(&mut w);
                        match &m.wave {
                            None => w.put_bool(false),
                            Some(wave) => {
                                w.put_bool(true);
                                wave.save(&mut w);
                            }
                        }
                    }
                }
            }
            snap.push_section(SECTION_NODES, w);
            snap
        }

        /// Restores a snapshot produced by
        /// [`SocTopology::save_snapshot`] into this topology, which must
        /// have been built through the identical sequence of builder
        /// calls (same labels, wiring and component configurations).
        ///
        /// The shape section is verified in full before any node state
        /// is touched; node restores then proceed in index order, each
        /// guarded by the container's per-section CRC.
        ///
        /// # Errors
        ///
        /// [`PersistError::ShapeMismatch`] when the snapshot came from a
        /// differently built topology, or any decode error from a
        /// truncated/corrupt stream.
        pub fn restore_snapshot(&mut self, snap: &Snapshot) -> Result<(), PersistError> {
            let mut r = snap.require_section(SECTION_SHAPE)?;
            self.check_shape(&mut r)?;

            let mut r = snap.require_section(SECTION_CONTROL)?;
            let now = r.take_u64()?;
            let done_count = r.take_usize()?;
            let clock = sim::ClockConfig::load_value(&mut r)?;
            let stamps: Vec<Option<u64>> = Vec::load_value(&mut r)?;
            let irq_events: Vec<usize> = Vec::load_value(&mut r)?;
            if stamps.len() != self.nodes.len() {
                return Err(PersistError::ShapeMismatch("stall-stamp count"));
            }

            let mut r = snap.require_section(SECTION_NODES)?;
            for node in &mut self.nodes {
                match &mut node.kind {
                    NodeKind::Accelerator(a) => {
                        a.acc.restore_state(&mut r)?;
                        a.last_jobs = r.take_u64()?;
                        a.was_done = r.take_bool()?;
                    }
                    NodeKind::Interconnect(icn) => {
                        icn.ic.restore_state(&mut r)?;
                        for child in icn.children.iter_mut().flatten() {
                            if let Some(bridge) = &mut child.bridge {
                                *bridge = axi::AxiBridge::load_value(&mut r)?;
                            }
                        }
                    }
                    NodeKind::Memory(m) => {
                        m.mem.restore_state(&mut r)?;
                        if r.take_bool()? {
                            let wave = m.wave.get_or_insert_with(WaveProbe::new);
                            wave.restore(&mut r)?;
                        } else {
                            m.wave = None;
                        }
                    }
                }
            }

            self.now = now;
            self.done_count = done_count;
            self.clock = clock;
            self.stamps = stamps;
            self.irq_events = irq_events;
            Ok(())
        }

        /// Serializes [`SocTopology::save_snapshot`] straight to bytes.
        pub fn snapshot_bytes(&self) -> Vec<u8> {
            self.save_snapshot().to_bytes()
        }

        /// Parses `bytes` as a `hcsim-snapshot/v1` container and
        /// restores it via [`SocTopology::restore_snapshot`].
        ///
        /// # Errors
        ///
        /// Any container or decode error from
        /// [`Snapshot::from_bytes`] / [`SocTopology::restore_snapshot`].
        pub fn restore_snapshot_bytes(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
            self.restore_snapshot(&Snapshot::from_bytes(bytes)?)
        }
    }
}

pub use persist_impls::{SECTION_CONTROL, SECTION_NODES, SECTION_SHAPE};

impl std::fmt::Debug for SocTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocTopology")
            .field("nodes", &self.nodes.len())
            .field("roots", &self.roots.len())
            .field("accelerators", &self.acc_nodes.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Component for SocTopology {
    fn tick(&mut self, now: Cycle) -> bool {
        debug_assert_eq!(now, self.now, "SocTopology must be ticked monotonically");
        let mut progress = false;
        for i in 0..self.roots.len() {
            let root = self.roots[i];
            progress |= Self::tick_subtree(
                &mut self.nodes,
                &mut self.stamps,
                &mut self.irq_events,
                &mut self.done_count,
                root,
                now,
            );
            let mem_id = match &self.nodes[root].kind {
                NodeKind::Interconnect(icn) => icn.memory.expect("roots have memory"),
                _ => unreachable!("roots are interconnects"),
            };
            let (ic_node, mem_node) = two_nodes(&mut self.nodes, root, mem_id);
            let NodeKind::Interconnect(icn) = &mut ic_node.kind else {
                unreachable!("roots are interconnects");
            };
            let NodeKind::Memory(m) = &mut mem_node.kind else {
                unreachable!("memory edge points at a memory node");
            };
            if let Some(wave) = m.wave.as_mut() {
                wave.sample(now, icn.ic.mem_port());
            }
            let p = m.mem.tick(now, icn.ic.mem_port());
            if p {
                self.stamps[mem_id] = Some(now);
            }
            progress |= p;
        }
        self.now = now + 1;
        progress
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.fast_forward_active()
            && matches!(
                self.scheduler,
                SchedulerMode::FastForward | SchedulerMode::Sharded { .. }
            )
        {
            // A waveform probe samples the boundary every cycle.
            return Some(now + 1);
        }
        self.horizon(now)
    }

    fn last_active(&self) -> Vec<String> {
        let latest = self.stamps.iter().flatten().max().copied();
        let Some(latest) = latest else {
            return Vec::new();
        };
        self.stamps
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Some(latest))
            .map(|(i, _)| self.nodes[i].label.clone())
            .collect()
    }
}

/// Typed access used by the facade: recover `&I` from the node's boxed
/// payload, accepting both concrete models and `Box<dyn
/// AxiInterconnect>` itself.
#[allow(clippy::borrowed_box)]
pub(crate) fn downcast_ic<I: AxiInterconnect + 'static>(b: &Box<dyn AxiInterconnect>) -> &I {
    if (b as &dyn Any).is::<I>() {
        return (b as &dyn Any).downcast_ref::<I>().expect("checked");
    }
    (**b)
        .as_any()
        .downcast_ref::<I>()
        .expect("facade node holds the system's interconnect type")
}

/// Mutable variant of [`downcast_ic`].
pub(crate) fn downcast_ic_mut<I: AxiInterconnect + 'static>(
    b: &mut Box<dyn AxiInterconnect>,
) -> &mut I {
    if (b as &dyn Any).is::<I>() {
        return (b as &mut dyn Any).downcast_mut::<I>().expect("checked");
    }
    (**b)
        .as_any_mut()
        .downcast_mut::<I>()
        .expect("facade node holds the system's interconnect type")
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::types::BurstSize;
    use ha::dma::{Dma, DmaConfig};
    use hyperconnect::{HcConfig, HyperConnect};
    use mem::{MemConfig, MemoryController};

    fn dma(name: &str) -> Box<dyn Accelerator> {
        Box::new(Dma::new(
            name,
            DmaConfig::reader(1024, 16, BurstSize::B16).jobs(1),
        ))
    }

    #[test]
    fn flat_topology_runs_to_completion() {
        let mut b = TopologyBuilder::new();
        let ic = b
            .add_interconnect("hc", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let mem = b
            .add_memory("ddr", MemoryController::new(MemConfig::default()))
            .unwrap();
        let d = b.add_accelerator("d", dma("d")).unwrap();
        b.attach(d, ic, 0).unwrap();
        b.connect_memory(ic, mem).unwrap();
        let mut topo = b.build().unwrap();
        assert!(topo.run_until_done(1_000_000).is_done());
        assert_eq!(topo.accelerator(0).unwrap().jobs_completed(), 1);
        assert_eq!(topo.take_irq_events(), vec![0]);
    }

    #[test]
    fn builder_rejects_duplicate_labels() {
        let mut b = TopologyBuilder::new();
        b.add_interconnect("x", HyperConnect::new(HcConfig::new(1)))
            .unwrap();
        let err = b
            .add_memory("x", MemoryController::new(MemConfig::ideal()))
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::DuplicateLabel {
                label: "x".to_owned()
            }
        );
    }

    #[test]
    fn builder_rejects_cycles() {
        let mut b = TopologyBuilder::new();
        let a = b
            .add_interconnect("a", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let c = b
            .add_interconnect("c", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        b.cascade(a, c, 0).unwrap();
        let err = b.cascade(c, a, 0).unwrap_err();
        assert_eq!(
            err,
            TopologyError::CycleDetected {
                label: "c".to_owned()
            }
        );
        // Self-loops are cycles too.
        let mut b2 = TopologyBuilder::new();
        let solo = b2
            .add_interconnect("solo", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        assert!(matches!(
            b2.cascade(solo, solo, 0).unwrap_err(),
            TopologyError::CycleDetected { .. }
        ));
    }

    #[test]
    fn builder_rejects_double_bound_ports_and_masters() {
        let mut b = TopologyBuilder::new();
        let ic = b
            .add_interconnect("hc", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let mem = b
            .add_memory("ddr", MemoryController::new(MemConfig::ideal()))
            .unwrap();
        let d0 = b.add_accelerator("d0", dma("d0")).unwrap();
        let d1 = b.add_accelerator("d1", dma("d1")).unwrap();
        b.attach(d0, ic, 0).unwrap();
        assert_eq!(
            b.attach(d1, ic, 0).unwrap_err(),
            TopologyError::SlavePortTaken {
                label: "hc".to_owned(),
                port: 0
            }
        );
        assert_eq!(
            b.attach(d0, ic, 1).unwrap_err(),
            TopologyError::AcceleratorAlreadyBound {
                label: "d0".to_owned()
            }
        );
        assert!(matches!(
            b.attach(d1, ic, 7).unwrap_err(),
            TopologyError::PortOutOfRange { port: 7, .. }
        ));
        b.connect_memory(ic, mem).unwrap();
        let mem2 = b
            .add_memory("ddr2", MemoryController::new(MemConfig::ideal()))
            .unwrap();
        assert_eq!(
            b.connect_memory(ic, mem2).unwrap_err(),
            TopologyError::MasterAlreadyBound {
                label: "hc".to_owned()
            }
        );
    }

    #[test]
    fn build_rejects_dangling_nodes() {
        // Unattached accelerator.
        let mut b = TopologyBuilder::new();
        let ic = b
            .add_interconnect("hc", HyperConnect::new(HcConfig::new(1)))
            .unwrap();
        let mem = b
            .add_memory("ddr", MemoryController::new(MemConfig::ideal()))
            .unwrap();
        b.connect_memory(ic, mem).unwrap();
        b.add_accelerator("lost", dma("lost")).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::UnboundAccelerator { .. }
        ));
        // Interconnect with no path to memory.
        let mut b = TopologyBuilder::new();
        b.add_interconnect("hc", HyperConnect::new(HcConfig::new(1)))
            .unwrap();
        b.add_memory("ddr", MemoryController::new(MemConfig::ideal()))
            .unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::UnboundMemory { .. } | TopologyError::DanglingInterconnect { .. }
        ));
        // No memory at all.
        let mut b = TopologyBuilder::new();
        b.add_interconnect("hc", HyperConnect::new(HcConfig::new(1)))
            .unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::DanglingInterconnect { .. }
        ));
        assert_eq!(
            TopologyBuilder::new().build().unwrap_err(),
            TopologyError::NoMemory
        );
    }

    #[test]
    fn error_display_is_informative() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(TopologyError::DuplicateLabel { label: "x".into() }),
            Box::new(TopologyError::CycleDetected { label: "y".into() }),
            Box::new(TopologyError::PortsExhausted {
                label: "z".into(),
                num_ports: 2,
            }),
            Box::new(TopologyError::NoMemory),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
        assert_eq!(
            TopologyError::SlavePortTaken {
                label: "hc".into(),
                port: 1
            }
            .to_string(),
            "slave port 1 of interconnect \"hc\" is already bound"
        );
    }

    #[test]
    fn post_build_add_accelerator_assigns_ports_in_order() {
        let mut b = TopologyBuilder::new();
        let ic = b
            .add_interconnect("hc", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let mem = b
            .add_memory("ddr", MemoryController::new(MemConfig::ideal()))
            .unwrap();
        b.connect_memory(ic, mem).unwrap();
        let mut topo = b.build().unwrap();
        assert_eq!(topo.add_accelerator(ic, dma("a")).unwrap(), 0);
        assert_eq!(topo.add_accelerator(ic, dma("b")).unwrap(), 1);
        assert_eq!(
            topo.add_accelerator(ic, dma("c")).unwrap_err(),
            TopologyError::PortsExhausted {
                label: "hc".to_owned(),
                num_ports: 2
            }
        );
        assert_eq!(topo.num_accelerators(), 2);
    }

    #[test]
    fn cascaded_topology_completes_and_counts_bridge_beats() {
        let mut b = TopologyBuilder::new();
        let root = b
            .add_interconnect("root", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let leaf = b
            .add_interconnect("leaf", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let mem = b
            .add_memory("ddr", MemoryController::new(MemConfig::default()))
            .unwrap();
        let d = b.add_accelerator("d", dma("d")).unwrap();
        b.cascade(leaf, root, 0).unwrap();
        b.attach(d, leaf, 0).unwrap();
        b.connect_memory(root, mem).unwrap();
        let mut topo = b.build().unwrap();
        assert!(topo.run_until_done(1_000_000).is_done());
        let stats = topo.bridge_stats(leaf).expect("leaf has a bridge");
        assert!(stats.beats_down > 0 && stats.beats_up > 0);
        assert!(topo.bridge_stats(root).is_none(), "roots have no bridge");
    }

    #[test]
    fn topology_snapshot_uses_node_labels() {
        let mut b = TopologyBuilder::new();
        let ic = b
            .add_interconnect("hc_main", HyperConnect::new(HcConfig::new(1)))
            .unwrap();
        let mem = b
            .add_memory("ddr0", MemoryController::new(MemConfig::ideal()))
            .unwrap();
        let d = b.add_accelerator("d", dma("d")).unwrap();
        b.attach(d, ic, 0).unwrap();
        b.connect_memory(ic, mem).unwrap();
        let mut topo = b.build().unwrap();
        topo.run_until_done(1_000_000);
        let json = topo.metrics_snapshot_json();
        assert!(json.contains("\"schema\":\"axi-hyperconnect/topology-metrics/v1\""));
        assert!(json.contains("\"node\":\"hc_main\""));
        assert!(json.contains("\"node\":\"ddr0\""));
    }

    fn cascaded_pair() -> (TopologyBuilder, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let root = b
            .add_interconnect("root", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let leaf = b
            .add_interconnect("leaf", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let mem = b
            .add_memory("ddr", MemoryController::new(MemConfig::default()))
            .unwrap();
        let d0 = b.add_accelerator("d0", dma("d0")).unwrap();
        let d1 = b.add_accelerator("d1", dma("d1")).unwrap();
        b.cascade_with(leaf, root, 0, BridgeConfig::registered().latency(2))
            .unwrap();
        b.attach(d0, leaf, 0).unwrap();
        b.attach(d1, root, 1).unwrap();
        b.connect_memory(root, mem).unwrap();
        (b, root, leaf, mem)
    }

    #[test]
    fn snapshot_midrun_restore_finishes_identically() {
        // Reference: run uninterrupted to completion.
        let (b, ..) = cascaded_pair();
        let mut reference = b.build().unwrap();
        assert!(reference.run_until_done(1_000_000).is_done());
        let done_cycle = reference.now();
        let reference_final = reference.snapshot_bytes();
        assert!(done_cycle > 2, "job must take a few cycles");

        // Split run: advance to the halfway point, snapshot, restore
        // into a fresh identically built topology, finish there.
        let (b, ..) = cascaded_pair();
        let mut first = b.build().unwrap();
        first.run_for(done_cycle / 2);
        let mid = first.snapshot_bytes();

        let (b, ..) = cascaded_pair();
        let mut resumed = b.build().unwrap();
        resumed.restore_snapshot_bytes(&mid).unwrap();
        assert_eq!(resumed.now(), first.now());
        // The restored topology re-saves byte-identically.
        assert_eq!(resumed.snapshot_bytes(), mid);
        assert!(resumed.run_until_done(1_000_000).is_done());
        assert_eq!(resumed.now(), done_cycle);
        assert_eq!(resumed.snapshot_bytes(), reference_final);
        assert_eq!(resumed.accelerator(0).unwrap().jobs_completed(), 1);
        assert_eq!(resumed.accelerator(1).unwrap().jobs_completed(), 1);
    }

    #[test]
    fn snapshot_rejects_differently_shaped_target() {
        let (b, ..) = cascaded_pair();
        let topo = b.build().unwrap();
        let snap = topo.save_snapshot();

        // A flat single-interconnect topology must refuse the snapshot.
        let mut b = TopologyBuilder::new();
        let ic = b
            .add_interconnect("hc", HyperConnect::new(HcConfig::new(2)))
            .unwrap();
        let mem = b
            .add_memory("ddr", MemoryController::new(MemConfig::ideal()))
            .unwrap();
        let d = b.add_accelerator("d", dma("d")).unwrap();
        b.attach(d, ic, 0).unwrap();
        b.connect_memory(ic, mem).unwrap();
        let mut other = b.build().unwrap();
        assert!(matches!(
            other.restore_snapshot(&snap),
            Err(sim::persist::PersistError::ShapeMismatch(_))
        ));
        // Untouched target still starts at cycle zero.
        assert_eq!(other.now(), 0);
    }

    #[test]
    fn snapshot_sections_are_pinned() {
        let (b, ..) = cascaded_pair();
        let topo = b.build().unwrap();
        let snap = topo.save_snapshot();
        assert_eq!(
            snap.section_names(),
            vec![SECTION_SHAPE, SECTION_CONTROL, SECTION_NODES]
        );
        let bytes = snap.to_bytes();
        assert!(bytes.starts_with(b"hcsim-snapshot/v1\n"));
    }

    #[test]
    fn node_lookup_by_label() {
        let mut b = TopologyBuilder::new();
        let ic = b
            .add_interconnect("hc", HyperConnect::new(HcConfig::new(1)))
            .unwrap();
        let mem = b
            .add_memory("ddr", MemoryController::new(MemConfig::ideal()))
            .unwrap();
        b.connect_memory(ic, mem).unwrap();
        let topo = b.build().unwrap();
        assert_eq!(topo.node_by_label("hc"), Some(ic));
        assert_eq!(topo.label(mem), "ddr");
        assert!(topo.node_by_label("nope").is_none());
        assert!(topo.interconnect_as::<HyperConnect>(ic).is_some());
        assert!(topo.interconnect_as::<HyperConnect>(mem).is_none());
        assert_eq!(topo.interconnect_dyn(ic).unwrap().name(), "HyperConnect");
    }
}
