//! Full-system assembly: accelerators + interconnect + memory.
//!
//! `SocSystem` wires the pieces the way the paper's Fig. 1 does: each
//! accelerator drives one interconnect slave port, the interconnect's
//! master port drives the FPGA-PS interface of the memory controller.
//! Since the topology layer landed, `SocSystem` is a thin facade over a
//! single-interconnect [`SocTopology`] — the tick order within a cycle
//! (accelerators → interconnect → memory) and every observable timing
//! are unchanged; arbitrary trees are built directly with
//! [`crate::TopologyBuilder`].

use std::marker::PhantomData;

use axi::types::PortId;
use axi::AxiInterconnect;
use ha::Accelerator;
use mem::MemoryController;
use sim::{ClockConfig, Component, Cycle};

pub use crate::topology::SchedulerMode;
use crate::topology::{
    downcast_ic, downcast_ic_mut, NodeId, SocTopology, TopologyBuilder, TopologyError,
};

/// A simulated FPGA SoC: N accelerators, one interconnect, one memory
/// controller.
///
/// # Example
///
/// ```
/// use axi_hyperconnect::SocSystem;
/// use ha::dma::{Dma, DmaConfig};
/// use ha::Accelerator;
/// use hyperconnect::{HcConfig, HyperConnect};
/// use mem::{MemConfig, MemoryController};
/// use axi::types::BurstSize;
///
/// let mut sys = SocSystem::new(
///     HyperConnect::new(HcConfig::new(1)),
///     MemoryController::new(MemConfig::default()),
/// );
/// sys.add_accelerator(Box::new(Dma::new(
///     "dma",
///     DmaConfig::reader(4096, 16, BurstSize::B16),
/// )))
/// .unwrap();
/// let outcome = sys.run_until_done(100_000);
/// assert!(outcome.is_done());
/// assert_eq!(sys.accelerator(0).unwrap().jobs_completed(), 1);
/// ```
pub struct SocSystem<I: AxiInterconnect + 'static> {
    topo: SocTopology,
    ic: NodeId,
    mem: NodeId,
    _marker: PhantomData<fn() -> I>,
}

impl<I: AxiInterconnect + 'static> SocSystem<I> {
    /// Assembles a system with no accelerators connected yet.
    pub fn new(interconnect: I, memory: MemoryController) -> Self {
        let mut builder = TopologyBuilder::new();
        let ic = builder
            .add_interconnect("ic0", interconnect)
            .expect("fresh builder has no labels");
        let mem = builder
            .add_memory("mem0", memory)
            .expect("fresh builder has no labels");
        builder
            .connect_memory(ic, mem)
            .expect("both endpoints are unbound");
        let topo = builder.build().expect("one interconnect, one memory");
        Self {
            topo,
            ic,
            mem,
            _marker: PhantomData,
        }
    }

    /// Selects how the run loops advance time (default:
    /// [`SchedulerMode::FastForward`]).
    pub fn set_scheduler(&mut self, mode: SchedulerMode) {
        self.topo.set_scheduler(mode);
    }

    /// The active scheduler mode.
    pub fn scheduler(&self) -> SchedulerMode {
        self.topo.scheduler()
    }

    /// Idle cycles the fast-forward scheduler skipped over so far (zero
    /// under [`SchedulerMode::Naive`]).
    pub fn skipped_cycles(&self) -> Cycle {
        self.topo.skipped_cycles()
    }

    /// Execution statistics of the most recent run under
    /// [`SchedulerMode::Sharded`]. The facade is a single-interconnect
    /// (single-shard) topology, so a sharded run reports the sequential
    /// fallback; the accessor exists so harnesses can treat flat and
    /// tree systems uniformly.
    pub fn shard_run_report(&self) -> Option<&crate::ShardRunReport> {
        self.topo.shard_run_report()
    }

    /// Starts recording a beat-level waveform (VCD) at the FPGA-PS
    /// boundary; retrieve it with [`Self::waveform_vcd`].
    pub fn attach_waveform(&mut self) {
        self.topo.attach_waveform(self.mem);
    }

    /// Renders the recorded waveform as a VCD file, if recording was
    /// enabled — openable in GTKWave and friends.
    pub fn waveform_vcd(&self) -> Option<String> {
        self.topo.waveform_vcd(self.mem)
    }

    /// Overrides the fabric clock used for time-based reporting.
    pub fn with_clock(mut self, clock: ClockConfig) -> Self {
        self.topo.set_clock(clock);
        self
    }

    /// Connects an accelerator to the next free slave port, returning
    /// the port it occupies.
    ///
    /// # Errors
    ///
    /// [`TopologyError::PortsExhausted`] when every slave port is
    /// taken.
    pub fn add_accelerator(
        &mut self,
        accelerator: Box<dyn Accelerator>,
    ) -> Result<PortId, TopologyError> {
        self.topo.add_accelerator(self.ic, accelerator).map(PortId)
    }

    /// The interconnect under test.
    pub fn interconnect(&mut self) -> &mut I {
        downcast_ic_mut(self.topo.ic_box_mut(self.ic))
    }

    /// The interconnect, immutably.
    pub fn interconnect_ref(&self) -> &I {
        downcast_ic(self.topo.ic_box(self.ic))
    }

    /// The memory controller.
    pub fn memory(&self) -> &MemoryController {
        self.topo.memory(self.mem).expect("facade memory node")
    }

    /// Mutable access to the memory controller (e.g. to pre-fill
    /// buffers or attach the protocol monitor).
    pub fn memory_mut(&mut self) -> &mut MemoryController {
        self.topo.memory_mut(self.mem).expect("facade memory node")
    }

    /// The accelerator at port `i`, or `None` when no accelerator
    /// occupies that port.
    pub fn accelerator(&self, i: usize) -> Option<&dyn Accelerator> {
        self.topo.accelerator(i)
    }

    /// Mutable access to the accelerator at port `i` — recovery flows
    /// use this to pulse the model's reset line when the hypervisor
    /// commands a reset (see [`ha::Accelerator::reset`]).
    pub fn accelerator_mut(&mut self, i: usize) -> Option<&mut dyn Accelerator> {
        self.topo.accelerator_mut(i)
    }

    /// Number of connected accelerators.
    pub fn num_accelerators(&self) -> usize {
        self.topo.num_accelerators()
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.topo.now()
    }

    /// The fabric clock configuration.
    pub fn clock(&self) -> ClockConfig {
        self.topo.clock()
    }

    /// The underlying topology graph (single interconnect + memory).
    pub fn topology(&self) -> &SocTopology {
        &self.topo
    }

    /// Mutable access to the underlying topology graph.
    pub fn topology_mut(&mut self) -> &mut SocTopology {
        &mut self.topo
    }

    /// The graph node of the interconnect.
    pub fn interconnect_node(&self) -> NodeId {
        self.ic
    }

    /// The graph node of the memory controller.
    pub fn memory_node(&self) -> NodeId {
        self.mem
    }

    /// Completion interrupts raised since the last call: one entry per
    /// job completion, identifying the port. Route these through the
    /// hypervisor with [`hypervisor::Hypervisor::route_irq`].
    pub fn take_irq_events(&mut self) -> Vec<PortId> {
        // In the facade, accelerator insertion order *is* slave-port
        // order, so the topology's ordinals map directly to ports.
        self.topo
            .take_irq_events()
            .into_iter()
            .map(PortId)
            .collect()
    }

    /// Runs for exactly `cycles` cycles.
    pub fn run_for(&mut self, cycles: Cycle) {
        self.topo.run_for(cycles);
    }

    /// Runs for exactly `cycles` cycles, invoking `hook` after each
    /// cycle with the cycle just completed and the system itself.
    ///
    /// This is how a hypervisor rides along in tests and examples: the
    /// hook polls health/watchdog registers over the modeled AXI-Lite
    /// bus at whatever rate it likes and the system never needs to know
    /// the hypervisor exists.
    ///
    /// Under [`SchedulerMode::FastForward`] the hook keeps its exact
    /// cadence — it is invoked once per cycle even across skipped spans
    /// (only the known-no-op ticks are elided). After each invocation a
    /// mutation fingerprint detects hooks that move beats or rewrite
    /// control registers, and ticking resumes immediately when one does.
    pub fn run_for_with(&mut self, cycles: Cycle, mut hook: impl FnMut(Cycle, &mut Self)) {
        let end = self.topo.now() + cycles;
        while self.topo.now() < end {
            let t = self.topo.now();
            let progress = self.topo.tick(t);
            if progress || !self.topo.fast_forward_active() {
                hook(t, self);
                continue;
            }
            let target = self.topo.skip_target(t, end);
            let fingerprint = self.topo.mutation_fingerprint();
            hook(t, self);
            while self.topo.now() < target && self.topo.mutation_fingerprint() == fingerprint {
                let skipped = self.topo.now();
                self.topo.note_skipped(skipped + 1);
                hook(skipped, self);
            }
        }
    }

    /// Runs until every finite accelerator reports done (at most
    /// `max_cycles`). Returns the outcome.
    ///
    /// Completion is tracked incrementally (a done-count updated when an
    /// accelerator's completion is first observed) rather than by
    /// re-scanning every accelerator each cycle.
    pub fn run_until_done(&mut self, max_cycles: Cycle) -> sim::RunOutcome {
        self.topo.run_until_done(max_cycles)
    }

    /// Jobs/frames per *simulated second* completed by accelerator `i`
    /// so far — the paper's "rate per second" performance index.
    pub fn rate_per_second(&self, i: usize) -> f64 {
        self.topo.rate_per_second(i)
    }

    /// One JSON object capturing everything the observability layer
    /// measured: the interconnect's per-port per-channel metrics, the
    /// memory controller's outstanding-request gauge and the runtime
    /// bound monitor's verdict. `None` until metrics are enabled on the
    /// interconnect (e.g. via [`SocSystem::enable_observability`]).
    ///
    /// The snapshot is deterministic: for the same workload it is
    /// byte-identical under [`SchedulerMode::FastForward`] and
    /// [`SchedulerMode::Naive`].
    ///
    /// When the memory controller has a fault injector armed (see
    /// [`mem::MemoryController::attach_fault_injector`]) the snapshot
    /// gains an `"ecc"` section with the injector/ECC counters; on a
    /// fault-free system the JSON is byte-identical to what it was
    /// before the fault layer existed, so schema goldens taken on clean
    /// runs never churn.
    pub fn metrics_snapshot_json(&self) -> Option<String> {
        let ic = self
            .topo
            .interconnect_dyn(self.ic)
            .expect("facade interconnect node");
        let metrics = ic.metrics()?;
        let bound = ic
            .bound_report()
            .map_or_else(|| "{\"enabled\":false}".to_owned(), |r| r.to_json());
        let out = self.memory().outstanding_gauge();
        let ecc = self.memory().fault_stats().map_or_else(String::new, |s| {
            format!(
                ",\"ecc\":{{\"spurious_errors\":{},\"single_flips\":{},\
                 \"double_flips\":{},\"corrected\":{},\"uncorrectable\":{},\
                 \"dropped_beats\":{},\"duplicated_beats\":{},\"silent_flips\":{}}}",
                s.spurious_errors,
                s.single_flips,
                s.double_flips,
                s.corrected,
                s.uncorrectable,
                s.dropped_beats,
                s.duplicated_beats,
                s.silent_flips(),
            )
        });
        Some(format!(
            "{{\"schema\":\"axi-hyperconnect/metrics-snapshot/v1\",\
             \"interconnect\":\"{}\",\"cycles\":{},\"metrics\":{},\
             \"mem_outstanding\":{{\"current\":{},\"peak\":{}}},\
             \"bound_monitor\":{}{}}}",
            ic.name(),
            self.topo.now(),
            metrics.to_json(),
            out.current(),
            out.peak(),
            bound,
            ecc,
        ))
    }

    /// Captures the complete dynamic state of the system as a
    /// `hcsim-snapshot/v1` container (see
    /// [`SocTopology::save_snapshot`]).
    pub fn save_snapshot(&self) -> sim::persist::Snapshot {
        self.topo.save_snapshot()
    }

    /// Restores a snapshot produced by [`SocSystem::save_snapshot`]
    /// into this system, which must have been assembled identically
    /// (same interconnect/memory configuration and accelerator set).
    ///
    /// # Errors
    ///
    /// See [`SocTopology::restore_snapshot`].
    pub fn restore_snapshot(
        &mut self,
        snap: &sim::persist::Snapshot,
    ) -> Result<(), sim::persist::PersistError> {
        self.topo.restore_snapshot(snap)
    }

    /// Serializes [`SocSystem::save_snapshot`] straight to bytes.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.topo.snapshot_bytes()
    }

    /// Parses and restores snapshot bytes; see
    /// [`SocSystem::restore_snapshot`].
    ///
    /// # Errors
    ///
    /// See [`SocTopology::restore_snapshot`].
    pub fn restore_snapshot_bytes(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), sim::persist::PersistError> {
        self.topo.restore_snapshot_bytes(bytes)
    }
}

impl SocSystem<hyperconnect::HyperConnect> {
    /// Arms transaction-level metrics **and** the runtime worst-case
    /// bound monitor, deriving the service model from the live system:
    /// port count and nominal burst from the register file, the largest
    /// per-port outstanding limit, and the memory controller's timing
    /// parameters. Call before running; results surface through
    /// [`axi::AxiInterconnect::metrics`],
    /// [`axi::AxiInterconnect::bound_report`] and
    /// [`SocSystem::metrics_snapshot_json`].
    ///
    /// The monitor's bounds assume the fault-free, reservation-disabled
    /// regime (see `hyperconnect::observe`); arm it only on scenarios
    /// that satisfy those assumptions.
    ///
    /// Ports whose credit regulators are programmed (rate, burst depth
    /// or outstanding cap — see `hyperconnect::regulate`) tighten every
    /// port's armed bound automatically: the monitor derives the
    /// regulated per-port bounds from the register file as it stands at
    /// this call, so program the regulators over AXI-Lite *before*
    /// arming observability.
    pub fn enable_observability(&mut self) {
        let (first_word, write_resp) = {
            let config = self.memory().config();
            (config.first_word_latency, config.write_resp_latency)
        };
        let hc = self.interconnect();
        let n = hc.num_ports();
        let (nominal, max_out) = hc.regs().with(|rf| {
            let max_out = (0..n)
                .map(|i| rf.port(i).max_outstanding)
                .max()
                .unwrap_or(1);
            (rf.nominal_burst(), max_out)
        });
        let mut model = hyperconnect::analysis::ServiceModel::hyperconnect(n, nominal, first_word)
            .max_outstanding(max_out);
        model.write_resp_latency = write_resp;
        hc.enable_bound_monitor(model);
    }
}

impl<I: AxiInterconnect + 'static> Component for SocSystem<I> {
    fn tick(&mut self, now: Cycle) -> bool {
        self.topo.tick(now)
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.topo.next_event(now)
    }

    fn last_active(&self) -> Vec<String> {
        self.topo.last_active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::types::BurstSize;
    use ha::dma::{Dma, DmaConfig};
    use hyperconnect::{HcConfig, HyperConnect};
    use mem::MemConfig;
    use smartconnect::{ScConfig, SmartConnect};

    #[test]
    fn runs_a_dma_to_completion_on_both_interconnects() {
        let run = |hc: bool| {
            let mem = MemoryController::new(MemConfig::default());
            let dma = Dma::new("d", DmaConfig::reader(16 * 1024, 16, BurstSize::B16));
            if hc {
                let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(2)), mem);
                sys.add_accelerator(Box::new(dma)).unwrap();
                let out = sys.run_until_done(1_000_000);
                (out.is_done(), sys.now())
            } else {
                let mut sys = SocSystem::new(SmartConnect::new(ScConfig::new(2)), mem);
                sys.add_accelerator(Box::new(dma)).unwrap();
                let out = sys.run_until_done(1_000_000);
                (out.is_done(), sys.now())
            }
        };
        let (hc_done, hc_cycles) = run(true);
        let (sc_done, sc_cycles) = run(false);
        assert!(hc_done && sc_done);
        // Same throughput regime; the HyperConnect is a bit faster on
        // latency but both complete in the same order of magnitude.
        let ratio = hc_cycles as f64 / sc_cycles as f64;
        assert!((0.5..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn irq_events_fire_per_job() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::ideal()),
        );
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(64, 16, BurstSize::B16).jobs(3),
        )))
        .unwrap();
        sys.run_until_done(100_000);
        let irqs = sys.take_irq_events();
        assert_eq!(irqs, vec![PortId(0); 3]);
        assert!(sys.take_irq_events().is_empty());
    }

    #[test]
    fn rejects_excess_accelerators_with_typed_error() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::ideal()),
        );
        let port = sys
            .add_accelerator(Box::new(Dma::new(
                "d",
                DmaConfig::reader(64, 16, BurstSize::B16),
            )))
            .unwrap();
        assert_eq!(port, PortId(0));
        let err = sys
            .add_accelerator(Box::new(Dma::new(
                "d",
                DmaConfig::reader(64, 16, BurstSize::B16),
            )))
            .unwrap_err();
        assert!(
            matches!(err, TopologyError::PortsExhausted { num_ports: 1, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("all 1 slave ports"));
        // The rejected accelerator is not half-registered.
        assert_eq!(sys.num_accelerators(), 1);
        assert!(sys.accelerator(1).is_none());
    }

    #[test]
    fn rate_per_second_uses_clock() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::ideal()),
        )
        .with_clock(ClockConfig::new(100));
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(64, 16, BurstSize::B16).jobs(1),
        )))
        .unwrap();
        sys.run_until_done(1_000);
        // 1 job over `now` cycles of a 100 Hz clock.
        let expected = 100.0 / sys.now() as f64;
        assert!((sys.rate_per_second(0) - expected).abs() < 1e-9);
    }

    #[test]
    fn waveform_records_boundary_activity() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::zcu102()),
        );
        sys.attach_waveform();
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(1024, 16, BurstSize::B16).jobs(1),
        )))
        .unwrap();
        assert!(sys.run_until_done(100_000).is_done());
        let vcd = sys.waveform_vcd().expect("recording enabled");
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("ar_valid"));
        // Activity was captured: at least one rising edge on AR and R.
        assert!(vcd.lines().any(|l| l == "1!"), "no ar_valid activity");
        let body = vcd.split("$enddefinitions $end").nth(1).unwrap();
        assert!(body.contains("b"), "no bus value recorded");
        // Without recording, nothing is returned.
        let mut plain = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::ideal()),
        );
        plain
            .add_accelerator(Box::new(Dma::new(
                "d",
                DmaConfig::reader(64, 16, BurstSize::B16),
            )))
            .unwrap();
        plain.run_for(10);
        assert!(plain.waveform_vcd().is_none());
    }

    #[test]
    fn observability_snapshot_is_clean_and_complete() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(2)),
            MemoryController::new(MemConfig::zcu102()),
        );
        sys.enable_observability();
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(4096, 16, BurstSize::B16).jobs(1),
        )))
        .unwrap();
        assert!(sys.run_until_done(1_000_000).is_done());
        // The bound monitor checked real traffic and found nothing.
        assert!(sys.interconnect_ref().bound_violations().is_empty());
        let report = sys.interconnect_ref().bound_report().unwrap();
        assert!(report.checked_reads > 0, "{report:?}");
        assert_eq!(report.violations, 0);
        let json = sys.metrics_snapshot_json().unwrap();
        assert!(json.contains("\"schema\":\"axi-hyperconnect/metrics-snapshot/v1\""));
        assert!(json.contains("\"interconnect\":\"HyperConnect\""));
        assert!(json.contains("\"enabled\":true"));
        // Memory saw outstanding requests at some point.
        assert!(sys.memory().outstanding_gauge().peak() > 0);
    }

    #[test]
    fn snapshot_is_none_without_metrics() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::ideal()),
        );
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(64, 16, BurstSize::B16),
        )))
        .unwrap();
        sys.run_for(100);
        assert!(sys.metrics_snapshot_json().is_none());
    }

    #[test]
    fn protocol_monitor_stays_clean_under_load() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(2)),
            MemoryController::new(MemConfig::default()),
        );
        sys.memory_mut().attach_monitor();
        sys.add_accelerator(Box::new(Dma::new(
            "a",
            DmaConfig {
                read_bytes: 8192,
                write_bytes: 8192,
                jobs: Some(2),
                ..DmaConfig::case_study()
            },
        )))
        .unwrap();
        sys.add_accelerator(Box::new(Dma::new(
            "b",
            DmaConfig {
                src_base: 0x3000_0000,
                dst_base: 0x3800_0000,
                read_bytes: 4096,
                write_bytes: 4096,
                jobs: Some(2),
                ..DmaConfig::case_study()
            },
        )))
        .unwrap();
        let out = sys.run_until_done(2_000_000);
        assert!(out.is_done(), "{out}");
        let monitor = sys.memory().monitor().unwrap();
        assert!(monitor.is_clean(), "{:?}", monitor.errors());
        assert!(monitor.reads_completed() > 0);
        assert!(monitor.writes_completed() > 0);
    }

    #[test]
    fn boxed_interconnect_facade_accessors_work() {
        let boxed: Box<dyn AxiInterconnect> = Box::new(HyperConnect::new(HcConfig::new(1)));
        let mut sys: SocSystem<Box<dyn AxiInterconnect>> =
            SocSystem::new(boxed, MemoryController::new(MemConfig::ideal()));
        assert_eq!(sys.interconnect_ref().name(), "HyperConnect");
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(64, 16, BurstSize::B16).jobs(1),
        )))
        .unwrap();
        assert!(sys.run_until_done(100_000).is_done());
        assert!(sys.interconnect().is_idle());
    }
}
