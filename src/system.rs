//! Full-system assembly: accelerators + interconnect + memory.
//!
//! `SocSystem` wires the pieces the way the paper's Fig. 1 does: each
//! accelerator drives one interconnect slave port, the interconnect's
//! master port drives the FPGA-PS interface of the memory controller.
//! The tick order within a cycle is accelerators → interconnect →
//! memory; all cross-component queues are latency-gated, so the order
//! only fixes intra-cycle conventions, not observable timing.

use axi::types::PortId;
use axi::AxiInterconnect;
use ha::Accelerator;
use mem::MemoryController;
use sim::vcd::{SignalId, VcdWriter};
use sim::{ClockConfig, Component, Cycle};

/// Beat-level waveform probe at the FPGA-PS boundary (the signals the
/// paper's custom FPGA timer watches).
#[derive(Debug, Clone)]
struct WaveProbe {
    vcd: VcdWriter,
    ar_valid: SignalId,
    ar_addr: SignalId,
    aw_valid: SignalId,
    w_valid: SignalId,
    r_valid: SignalId,
    b_valid: SignalId,
}

impl WaveProbe {
    fn new() -> Self {
        let mut vcd = VcdWriter::new("fpga_ps_interface");
        let ar_valid = vcd.add_wire("ar_valid");
        let ar_addr = vcd.add_bus("ar_addr", 40);
        let aw_valid = vcd.add_wire("aw_valid");
        let w_valid = vcd.add_wire("w_valid");
        let r_valid = vcd.add_wire("r_valid");
        let b_valid = vcd.add_wire("b_valid");
        Self {
            vcd,
            ar_valid,
            ar_addr,
            aw_valid,
            w_valid,
            r_valid,
            b_valid,
        }
    }

    fn sample(&mut self, now: Cycle, port: &mut axi::AxiPort) {
        let ar = port.ar.peek_ready(now);
        self.vcd.change_wire(now, self.ar_valid, ar.is_some());
        if let Some(beat) = ar {
            self.vcd.change_bus(now, self.ar_addr, beat.addr);
        }
        self.vcd
            .change_wire(now, self.aw_valid, port.aw.has_ready(now));
        self.vcd
            .change_wire(now, self.w_valid, port.w.has_ready(now));
        self.vcd
            .change_wire(now, self.r_valid, port.r.has_ready(now));
        self.vcd
            .change_wire(now, self.b_valid, port.b.has_ready(now));
    }
}

/// How a [`SocSystem`] advances simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Event-horizon scheduling: when a full-system tick makes no
    /// progress, jump `now` directly to the earliest cycle any component
    /// promises activity at (its [`Component::next_event`] hint),
    /// skipping the provably idle span. Cycle-exact with respect to
    /// [`SchedulerMode::Naive`]: components may under-promise but never
    /// over-promise, and no observable state advances on skipped cycles.
    #[default]
    FastForward,
    /// Plain cycle-by-cycle stepping — the reference behavior the
    /// equivalence tests pin fast-forward against.
    Naive,
}

/// A simulated FPGA SoC: N accelerators, one interconnect, one memory
/// controller.
///
/// # Example
///
/// ```
/// use axi_hyperconnect::SocSystem;
/// use ha::dma::{Dma, DmaConfig};
/// use ha::Accelerator;
/// use hyperconnect::{HcConfig, HyperConnect};
/// use mem::{MemConfig, MemoryController};
/// use axi::types::BurstSize;
///
/// let mut sys = SocSystem::new(
///     HyperConnect::new(HcConfig::new(1)),
///     MemoryController::new(MemConfig::default()),
/// );
/// sys.add_accelerator(Box::new(Dma::new(
///     "dma",
///     DmaConfig::reader(4096, 16, BurstSize::B16),
/// )));
/// let outcome = sys.run_until_done(100_000);
/// assert!(outcome.is_done());
/// assert_eq!(sys.accelerator(0).jobs_completed(), 1);
/// ```
pub struct SocSystem<I: AxiInterconnect> {
    interconnect: I,
    accelerators: Vec<Box<dyn Accelerator>>,
    memory: MemoryController,
    clock: ClockConfig,
    now: Cycle,
    last_job_counts: Vec<u64>,
    irq_events: Vec<PortId>,
    wave: Option<WaveProbe>,
    scheduler: SchedulerMode,
    /// Accelerators whose `is_done()` has been observed true — lets
    /// `run_until_done` avoid re-scanning every accelerator every cycle.
    was_done: Vec<bool>,
    done_count: usize,
    skipped_cycles: Cycle,
}

impl<I: AxiInterconnect> SocSystem<I> {
    /// Assembles a system with no accelerators connected yet.
    pub fn new(interconnect: I, memory: MemoryController) -> Self {
        Self {
            interconnect,
            accelerators: Vec::new(),
            memory,
            clock: ClockConfig::default(),
            now: 0,
            last_job_counts: Vec::new(),
            irq_events: Vec::new(),
            wave: None,
            scheduler: SchedulerMode::default(),
            was_done: Vec::new(),
            done_count: 0,
            skipped_cycles: 0,
        }
    }

    /// Selects how the run loops advance time (default:
    /// [`SchedulerMode::FastForward`]).
    pub fn set_scheduler(&mut self, mode: SchedulerMode) {
        self.scheduler = mode;
    }

    /// The active scheduler mode.
    pub fn scheduler(&self) -> SchedulerMode {
        self.scheduler
    }

    /// Idle cycles the fast-forward scheduler skipped over so far (zero
    /// under [`SchedulerMode::Naive`]).
    pub fn skipped_cycles(&self) -> Cycle {
        self.skipped_cycles
    }

    /// Starts recording a beat-level waveform (VCD) at the FPGA-PS
    /// boundary; retrieve it with [`Self::waveform_vcd`].
    pub fn attach_waveform(&mut self) {
        self.wave = Some(WaveProbe::new());
    }

    /// Renders the recorded waveform as a VCD file, if recording was
    /// enabled — openable in GTKWave and friends.
    pub fn waveform_vcd(&self) -> Option<String> {
        self.wave.as_ref().map(|w| w.vcd.render())
    }

    /// Overrides the fabric clock used for time-based reporting.
    pub fn with_clock(mut self, clock: ClockConfig) -> Self {
        self.clock = clock;
        self
    }

    /// Connects an accelerator to the next free slave port, returning
    /// the port it occupies.
    ///
    /// # Panics
    ///
    /// Panics if every slave port is taken.
    pub fn add_accelerator(&mut self, accelerator: Box<dyn Accelerator>) -> PortId {
        assert!(
            self.accelerators.len() < self.interconnect.num_ports(),
            "all {} interconnect ports are taken",
            self.interconnect.num_ports()
        );
        let done = accelerator.is_done();
        self.accelerators.push(accelerator);
        self.last_job_counts.push(0);
        self.was_done.push(done);
        self.done_count += done as usize;
        PortId(self.accelerators.len() - 1)
    }

    /// The interconnect under test.
    pub fn interconnect(&mut self) -> &mut I {
        &mut self.interconnect
    }

    /// The interconnect, immutably.
    pub fn interconnect_ref(&self) -> &I {
        &self.interconnect
    }

    /// The memory controller.
    pub fn memory(&self) -> &MemoryController {
        &self.memory
    }

    /// Mutable access to the memory controller (e.g. to pre-fill
    /// buffers or attach the protocol monitor).
    pub fn memory_mut(&mut self) -> &mut MemoryController {
        &mut self.memory
    }

    /// The accelerator at port `i`.
    ///
    /// # Panics
    ///
    /// Panics if no accelerator occupies port `i`.
    pub fn accelerator(&self, i: usize) -> &dyn Accelerator {
        self.accelerators[i].as_ref()
    }

    /// Number of connected accelerators.
    pub fn num_accelerators(&self) -> usize {
        self.accelerators.len()
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The fabric clock configuration.
    pub fn clock(&self) -> ClockConfig {
        self.clock
    }

    /// Completion interrupts raised since the last call: one entry per
    /// job completion, identifying the port. Route these through the
    /// hypervisor with [`hypervisor::Hypervisor::route_irq`].
    pub fn take_irq_events(&mut self) -> Vec<PortId> {
        std::mem::take(&mut self.irq_events)
    }

    /// Whether the fast-forward scheduler may skip cycles right now.
    /// Waveform recording samples the boundary every cycle, so it forces
    /// naive stepping.
    fn fast_forward_active(&self) -> bool {
        self.scheduler == SchedulerMode::FastForward && self.wave.is_none()
    }

    /// The earliest cycle any component could make progress at, given a
    /// tick at `now` made none: the minimum over every component's
    /// [`Component::next_event`] hint. `None` means the whole system is
    /// reactive-only (nothing will ever happen without outside input).
    fn horizon(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        let mut merge = |c: Option<Cycle>| {
            horizon = match (horizon, c) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        for acc in &self.accelerators {
            merge(acc.next_event(now));
        }
        merge(self.interconnect.next_event(now));
        merge(self.memory.next_event(now));
        horizon
    }

    /// Cheap digest of everything a run hook can mutate: the
    /// interconnect's control-plane generation plus the lifetime
    /// push/pop activity of every boundary port. All inputs are
    /// monotonic counters, so the sum changes iff a hook moved a beat or
    /// reconfigured the control plane.
    fn mutation_fingerprint(&mut self) -> u64 {
        let mut fp = self.interconnect.config_generation();
        for i in 0..self.interconnect.num_ports() {
            fp = fp.wrapping_add(self.interconnect.port(i).lifetime_activity());
        }
        fp = fp.wrapping_add(self.interconnect.mem_port().lifetime_activity());
        if let Some(ps) = self.memory.ps_port() {
            fp = fp.wrapping_add(ps.lifetime_activity());
        }
        fp
    }

    /// After a no-progress tick at `t`, the cycle to resume ticking at:
    /// the system horizon clamped to `[t + 1, bound]` (`bound` when every
    /// component is reactive-only).
    fn skip_target(&mut self, t: Cycle, bound: Cycle) -> Cycle {
        match self.horizon(t) {
            Some(e) => e.max(t + 1).min(bound),
            None => bound,
        }
    }

    /// Runs for exactly `cycles` cycles.
    pub fn run_for(&mut self, cycles: Cycle) {
        let end = self.now + cycles;
        while self.now < end {
            let t = self.now;
            let progress = self.tick(t);
            if !progress && self.fast_forward_active() {
                let target = self.skip_target(t, end);
                self.skipped_cycles += target - self.now;
                self.now = target;
            }
        }
    }

    /// Runs for exactly `cycles` cycles, invoking `hook` after each
    /// cycle with the cycle just completed and the system itself.
    ///
    /// This is how a hypervisor rides along in tests and examples: the
    /// hook polls health/watchdog registers over the modeled AXI-Lite
    /// bus at whatever rate it likes and the system never needs to know
    /// the hypervisor exists.
    ///
    /// Under [`SchedulerMode::FastForward`] the hook keeps its exact
    /// cadence — it is invoked once per cycle even across skipped spans
    /// (only the known-no-op ticks are elided). After each invocation a
    /// mutation fingerprint detects hooks that move beats or rewrite
    /// control registers, and ticking resumes immediately when one does.
    pub fn run_for_with(&mut self, cycles: Cycle, mut hook: impl FnMut(Cycle, &mut Self)) {
        let end = self.now + cycles;
        while self.now < end {
            let t = self.now;
            let progress = self.tick(t);
            if progress || !self.fast_forward_active() {
                hook(t, self);
                continue;
            }
            let target = self.skip_target(t, end);
            let fingerprint = self.mutation_fingerprint();
            hook(t, self);
            while self.now < target && self.mutation_fingerprint() == fingerprint {
                let skipped = self.now;
                self.now = skipped + 1;
                self.skipped_cycles += 1;
                hook(skipped, self);
            }
        }
    }

    /// Runs until every finite accelerator reports done (at most
    /// `max_cycles`). Returns the outcome.
    ///
    /// Completion is tracked incrementally (a done-count updated when an
    /// accelerator's completion is first observed) rather than by
    /// re-scanning every accelerator each cycle.
    pub fn run_until_done(&mut self, max_cycles: Cycle) -> sim::RunOutcome {
        let deadline = self.now + max_cycles;
        loop {
            if self.done_count == self.accelerators.len() {
                return sim::RunOutcome::Done(self.now);
            }
            if self.now >= deadline {
                return sim::RunOutcome::CycleLimit(self.now);
            }
            let t = self.now;
            let progress = self.tick(t);
            if !progress && self.fast_forward_active() {
                let target = self.skip_target(t, deadline);
                self.skipped_cycles += target - self.now;
                self.now = target;
            }
        }
    }

    /// Jobs/frames per *simulated second* completed by accelerator `i`
    /// so far — the paper's "rate per second" performance index.
    pub fn rate_per_second(&self, i: usize) -> f64 {
        self.clock
            .events_per_second(self.accelerators[i].jobs_completed(), self.now)
    }

    /// One JSON object capturing everything the observability layer
    /// measured: the interconnect's per-port per-channel metrics, the
    /// memory controller's outstanding-request gauge and the runtime
    /// bound monitor's verdict. `None` until metrics are enabled on the
    /// interconnect (e.g. via [`SocSystem::enable_observability`]).
    ///
    /// The snapshot is deterministic: for the same workload it is
    /// byte-identical under [`SchedulerMode::FastForward`] and
    /// [`SchedulerMode::Naive`].
    pub fn metrics_snapshot_json(&self) -> Option<String> {
        let metrics = self.interconnect.metrics()?;
        let bound = self
            .interconnect
            .bound_report()
            .map_or_else(|| "{\"enabled\":false}".to_owned(), |r| r.to_json());
        let out = self.memory.outstanding_gauge();
        Some(format!(
            "{{\"schema\":\"axi-hyperconnect/metrics-snapshot/v1\",\
             \"interconnect\":\"{}\",\"cycles\":{},\"metrics\":{},\
             \"mem_outstanding\":{{\"current\":{},\"peak\":{}}},\
             \"bound_monitor\":{}}}",
            self.interconnect.name(),
            self.now,
            metrics.to_json(),
            out.current(),
            out.peak(),
            bound,
        ))
    }
}

impl SocSystem<hyperconnect::HyperConnect> {
    /// Arms transaction-level metrics **and** the runtime worst-case
    /// bound monitor, deriving the service model from the live system:
    /// port count and nominal burst from the register file, the largest
    /// per-port outstanding limit, and the memory controller's timing
    /// parameters. Call before running; results surface through
    /// [`axi::AxiInterconnect::metrics`],
    /// [`axi::AxiInterconnect::bound_report`] and
    /// [`SocSystem::metrics_snapshot_json`].
    ///
    /// The monitor's bounds assume the fault-free, reservation-disabled
    /// regime (see `hyperconnect::observe`); arm it only on scenarios
    /// that satisfy those assumptions.
    pub fn enable_observability(&mut self) {
        let n = self.interconnect.num_ports();
        let (nominal, max_out) = self.interconnect.regs().with(|rf| {
            let max_out = (0..n)
                .map(|i| rf.port(i).max_outstanding)
                .max()
                .unwrap_or(1);
            (rf.nominal_burst(), max_out)
        });
        let mut model = hyperconnect::analysis::ServiceModel::hyperconnect(
            n,
            nominal,
            self.memory.config().first_word_latency,
        )
        .max_outstanding(max_out);
        model.write_resp_latency = self.memory.config().write_resp_latency;
        self.interconnect.enable_bound_monitor(model);
    }
}

impl<I: AxiInterconnect> Component for SocSystem<I> {
    fn tick(&mut self, now: Cycle) -> bool {
        debug_assert_eq!(now, self.now, "SocSystem must be ticked monotonically");
        let mut progress = false;
        for (i, acc) in self.accelerators.iter_mut().enumerate() {
            progress |= acc.tick(now, self.interconnect.port(i));
            let jobs = acc.jobs_completed();
            for _ in self.last_job_counts[i]..jobs {
                self.irq_events.push(PortId(i));
            }
            if !self.was_done[i] && acc.is_done() {
                self.was_done[i] = true;
                self.done_count += 1;
            }
            self.last_job_counts[i] = jobs;
        }
        progress |= self.interconnect.tick(now);
        if let Some(wave) = self.wave.as_mut() {
            wave.sample(now, self.interconnect.mem_port());
        }
        progress |= self.memory.tick(now, self.interconnect.mem_port());
        self.now = now + 1;
        progress
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.wave.is_some() {
            // The waveform probe samples the boundary every cycle.
            return Some(now + 1);
        }
        self.horizon(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::types::BurstSize;
    use ha::dma::{Dma, DmaConfig};
    use hyperconnect::{HcConfig, HyperConnect};
    use mem::MemConfig;
    use smartconnect::{ScConfig, SmartConnect};

    #[test]
    fn runs_a_dma_to_completion_on_both_interconnects() {
        let run = |hc: bool| {
            let mem = MemoryController::new(MemConfig::default());
            let dma = Dma::new("d", DmaConfig::reader(16 * 1024, 16, BurstSize::B16));
            if hc {
                let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(2)), mem);
                sys.add_accelerator(Box::new(dma));
                let out = sys.run_until_done(1_000_000);
                (out.is_done(), sys.now())
            } else {
                let mut sys = SocSystem::new(SmartConnect::new(ScConfig::new(2)), mem);
                sys.add_accelerator(Box::new(dma));
                let out = sys.run_until_done(1_000_000);
                (out.is_done(), sys.now())
            }
        };
        let (hc_done, hc_cycles) = run(true);
        let (sc_done, sc_cycles) = run(false);
        assert!(hc_done && sc_done);
        // Same throughput regime; the HyperConnect is a bit faster on
        // latency but both complete in the same order of magnitude.
        let ratio = hc_cycles as f64 / sc_cycles as f64;
        assert!((0.5..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn irq_events_fire_per_job() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::ideal()),
        );
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(64, 16, BurstSize::B16).jobs(3),
        )));
        sys.run_until_done(100_000);
        let irqs = sys.take_irq_events();
        assert_eq!(irqs, vec![PortId(0); 3]);
        assert!(sys.take_irq_events().is_empty());
    }

    #[test]
    #[should_panic(expected = "ports are taken")]
    fn rejects_excess_accelerators() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::ideal()),
        );
        for _ in 0..2 {
            sys.add_accelerator(Box::new(Dma::new(
                "d",
                DmaConfig::reader(64, 16, BurstSize::B16),
            )));
        }
    }

    #[test]
    fn rate_per_second_uses_clock() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::ideal()),
        )
        .with_clock(ClockConfig::new(100));
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(64, 16, BurstSize::B16).jobs(1),
        )));
        sys.run_until_done(1_000);
        // 1 job over `now` cycles of a 100 Hz clock.
        let expected = 100.0 / sys.now() as f64;
        assert!((sys.rate_per_second(0) - expected).abs() < 1e-9);
    }

    #[test]
    fn waveform_records_boundary_activity() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::zcu102()),
        );
        sys.attach_waveform();
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(1024, 16, BurstSize::B16).jobs(1),
        )));
        assert!(sys.run_until_done(100_000).is_done());
        let vcd = sys.waveform_vcd().expect("recording enabled");
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("ar_valid"));
        // Activity was captured: at least one rising edge on AR and R.
        assert!(vcd.lines().any(|l| l == "1!"), "no ar_valid activity");
        let body = vcd.split("$enddefinitions $end").nth(1).unwrap();
        assert!(body.contains("b"), "no bus value recorded");
        // Without recording, nothing is returned.
        let mut plain = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::ideal()),
        );
        plain.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(64, 16, BurstSize::B16),
        )));
        plain.run_for(10);
        assert!(plain.waveform_vcd().is_none());
    }

    #[test]
    fn observability_snapshot_is_clean_and_complete() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(2)),
            MemoryController::new(MemConfig::zcu102()),
        );
        sys.enable_observability();
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(4096, 16, BurstSize::B16).jobs(1),
        )));
        assert!(sys.run_until_done(1_000_000).is_done());
        // The bound monitor checked real traffic and found nothing.
        assert!(sys.interconnect_ref().bound_violations().is_empty());
        let report = sys.interconnect_ref().bound_report().unwrap();
        assert!(report.checked_reads > 0, "{report:?}");
        assert_eq!(report.violations, 0);
        let json = sys.metrics_snapshot_json().unwrap();
        assert!(json.contains("\"schema\":\"axi-hyperconnect/metrics-snapshot/v1\""));
        assert!(json.contains("\"interconnect\":\"HyperConnect\""));
        assert!(json.contains("\"enabled\":true"));
        // Memory saw outstanding requests at some point.
        assert!(sys.memory().outstanding_gauge().peak() > 0);
    }

    #[test]
    fn snapshot_is_none_without_metrics() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::ideal()),
        );
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(64, 16, BurstSize::B16),
        )));
        sys.run_for(100);
        assert!(sys.metrics_snapshot_json().is_none());
    }

    #[test]
    fn protocol_monitor_stays_clean_under_load() {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(2)),
            MemoryController::new(MemConfig::default()),
        );
        sys.memory_mut().attach_monitor();
        sys.add_accelerator(Box::new(Dma::new(
            "a",
            DmaConfig {
                read_bytes: 8192,
                write_bytes: 8192,
                jobs: Some(2),
                ..DmaConfig::case_study()
            },
        )));
        sys.add_accelerator(Box::new(Dma::new(
            "b",
            DmaConfig {
                src_base: 0x3000_0000,
                dst_base: 0x3800_0000,
                read_bytes: 4096,
                write_bytes: 4096,
                jobs: Some(2),
                ..DmaConfig::case_study()
            },
        )));
        let out = sys.run_until_done(2_000_000);
        assert!(out.is_done(), "{out}");
        let monitor = sys.memory().monitor().unwrap();
        assert!(monitor.is_clean(), "{:?}", monitor.errors());
        assert!(monitor.reads_completed() > 0);
        assert!(monitor.writes_completed() > 0);
    }
}
