//! Integration tests of transaction equalization: every burst reaching
//! the memory is at most the nominal size, yet accelerators observe
//! exactly the transactions they issued (split → merge is identity).

use axi::beat::{ArBeat, AwBeat, WBeat};
use axi::types::BurstSize;
use axi::AxiInterconnect;
use axi_hyperconnect::SocSystem;
use ha::dma::{Dma, DmaConfig};
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use sim::Component;

#[test]
fn all_memory_bursts_at_most_nominal() {
    let hc = HyperConnect::new(HcConfig::new(2));
    let regs = hc.regs();
    regs.write32(hyperconnect::regfile::offsets::NOMINAL, 16);
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    let mut sys = SocSystem::new(hc, memory);
    // A DMA with huge 256-beat bursts.
    sys.add_accelerator(Box::new(Dma::new(
        "big",
        DmaConfig {
            read_bytes: 256 * 1024,
            write_bytes: 256 * 1024,
            burst_beats: 256,
            jobs: Some(1),
            ..DmaConfig::case_study()
        },
    )))
    .unwrap();
    // Watch burst lengths at the memory boundary via the monitor-side
    // trace: we re-derive them from reads/writes served plus beats.
    assert!(sys.run_until_done(10_000_000).is_done());
    let stats = sys.memory().stats();
    // 512 KiB at 16 B/beat = 32768 beats; at most 16 beats per burst
    // means at least 2048 bursts.
    assert_eq!(stats.beats_served, 32 * 1024);
    assert!(
        stats.reads_served + stats.writes_served >= 2048,
        "bursts were not equalized: only {} bursts",
        stats.reads_served + stats.writes_served
    );
    let m = sys.memory().monitor().unwrap();
    assert!(m.is_clean(), "{:?}", m.errors());
}

#[test]
fn nominal_burst_is_runtime_reconfigurable() {
    for nominal in [4u32, 8, 64] {
        let hc = HyperConnect::new(HcConfig::new(1));
        hc.regs()
            .write32(hyperconnect::regfile::offsets::NOMINAL, nominal);
        let mut memory = MemoryController::new(MemConfig::zcu102());
        memory.attach_request_trace();
        let mut sys = SocSystem::new(hc, memory);
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig {
                read_bytes: 64 * 256, // 1024 beats of 16 B
                write_bytes: 0,
                burst_beats: 256,
                jobs: Some(1),
                ..DmaConfig::case_study()
            },
        )))
        .unwrap();
        assert!(sys.run_until_done(1_000_000).is_done());
        let ars = sys.memory().ar_trace().unwrap().len() as u32;
        assert_eq!(
            ars,
            1024 / nominal,
            "nominal {nominal}: wrong sub-transaction count"
        );
    }
}

/// Manually drives one long read and one long write through a
/// HyperConnect wired to a real memory, checking that what comes back
/// to the accelerator side is byte-exact and correctly framed.
#[test]
fn split_then_merge_is_identity_at_the_accelerator() {
    let mut hc = HyperConnect::new(HcConfig::new(1));
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.memory_mut().fill_pattern(0x8000, 4096);

    // --- read of 96 beats x 4B (splits into 6 sub-bursts of 16) ---
    hc.port(0)
        .ar
        .push(0, ArBeat::new(0x8000, 96, BurstSize::B4).with_tag(7))
        .unwrap();
    let mut beats = Vec::new();
    for now in 0..5_000 {
        hc.tick(now);
        memory.tick(now, hc.mem_port());
        while let Some(r) = hc.port(0).r.pop_ready(now) {
            beats.push(r);
        }
    }
    assert_eq!(beats.len(), 96, "every requested beat arrives exactly once");
    // Only the final beat carries LAST; data matches the backing store.
    for (i, beat) in beats.iter().enumerate() {
        assert_eq!(beat.last, i == 95, "beat {i} last flag");
        assert_eq!(beat.tag, 7, "beat {i} tag");
        let expected = memory.memory().read(0x8000 + i as u64 * 4, 4);
        assert_eq!(beat.data, expected, "beat {i} data");
    }

    // --- write of 40 beats x 4B (splits into 3 sub-bursts) ---
    hc.port(0)
        .aw
        .push(5_000, AwBeat::new(0xA000, 40, BurstSize::B4).with_tag(9))
        .unwrap();
    let mut pending_w: std::collections::VecDeque<WBeat> = (0..40u32)
        .map(|i| WBeat::new(vec![i as u8; 4], i == 39).with_tag(9))
        .collect();
    let mut b_resps = Vec::new();
    for now in 5_000..12_000 {
        // Stream the W beats as the eFIFO accepts them (AXI handshake).
        if let Some(beat) = pending_w.front() {
            if hc.port(0).w.push(now, beat.clone()).is_ok() {
                pending_w.pop_front();
            }
        }
        hc.tick(now);
        memory.tick(now, hc.mem_port());
        while let Some(b) = hc.port(0).b.pop_ready(now) {
            b_resps.push(b);
        }
    }
    assert!(pending_w.is_empty(), "all W beats accepted");
    // Exactly one merged response, carrying the original tag.
    assert_eq!(b_resps.len(), 1, "responses must be merged into one");
    assert_eq!(b_resps[0].tag, 9);
    // Every byte committed.
    for i in 0..40u64 {
        assert_eq!(
            memory.memory().read(0xA000 + i * 4, 4),
            vec![i as u8; 4],
            "beat {i} committed"
        );
    }
}

#[test]
fn equalization_does_not_reduce_throughput() {
    // Same 1 MiB read issued as 256-beat bursts (equalized) versus
    // native 16-beat bursts: completion times must be nearly equal.
    let time = |burst: u32| {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::zcu102()),
        );
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig {
                read_bytes: 1 << 20,
                write_bytes: 0,
                burst_beats: burst,
                jobs: Some(1),
                ..DmaConfig::case_study()
            },
        )))
        .unwrap();
        let out = sys.run_until_done(10_000_000);
        assert!(out.is_done());
        out.cycle()
    };
    let native = time(16);
    let equalized = time(256);
    let ratio = equalized as f64 / native as f64;
    assert!(
        (0.9..1.1).contains(&ratio),
        "equalization cost: {native} vs {equalized}"
    );
}
