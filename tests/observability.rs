//! Transaction-level observability suite: the metrics registry and the
//! runtime bound monitor watching *real* end-to-end traffic.
//!
//! Three properties are pinned here:
//!
//! 1. **Propagation floors.** No observed per-channel latency may ever
//!    undercut the HyperConnect's pipeline propagation constants
//!    (`analysis::propagation`) — a sample below the floor means a
//!    timestamp was taken at the wrong hop, not that the fabric got
//!    faster.
//! 2. **Contention-free minima equal the Fig. 3(a) goldens.** With a
//!    single master and an idle fabric, the *minimum* observed channel
//!    latency equals the golden constant exactly: the observability
//!    layer measures the same d_AR/d_AW/d_R/d_W/d_B the conformance
//!    probes pin.
//! 3. **Zero bound violations on clean scenarios.** Randomized traffic
//!    against the real ZCU102-model memory controller must stay inside
//!    the closed-form worst-case bounds at every port count.

use axi::observe::ObsChannel;
use axi::types::BurstSize;
use axi::AxiInterconnect;
use axi_hyperconnect::SocSystem;
use ha::dma::{Dma, DmaConfig};
use ha::traffic::{PeriodicReader, RandomTraffic};
use hyperconnect::analysis::propagation;
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};

/// Builds an observed system: HyperConnect with metrics + bound monitor
/// armed, ZCU102-model memory with the protocol monitor attached.
fn observed_system(ports: usize) -> SocSystem<HyperConnect> {
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    memory.memory_mut().fill_pattern(0x1000_0000, 64 * 1024);
    let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(ports)), memory);
    sys.enable_observability();
    sys
}

/// Every channel's observed minimum latency must respect the pipeline
/// propagation floor; end-to-end transactions must respect the summed
/// address + data floors.
fn assert_propagation_floors(sys: &SocSystem<HyperConnect>) {
    let metrics = sys.interconnect_ref().metrics().expect("armed");
    let floors = [
        (ObsChannel::Ar, propagation::D_AR),
        (ObsChannel::Aw, propagation::D_AW),
        (ObsChannel::R, propagation::D_R),
        (ObsChannel::W, propagation::D_W),
        (ObsChannel::B, propagation::D_B),
    ];
    for port in 0..metrics.num_ports() {
        let p = metrics.port(port);
        for (channel, floor) in floors {
            if let Some(min) = p.channel(channel).latency.min() {
                assert!(
                    min >= floor,
                    "port {port} {channel:?} min latency {min} < propagation floor {floor}"
                );
            }
        }
        if let Some(min) = p.read_txns.min() {
            assert!(
                min >= propagation::READ_TOTAL,
                "port {port} read txn min {min} < {}",
                propagation::READ_TOTAL
            );
        }
        if let Some(min) = p.write_txns.min() {
            assert!(
                min >= propagation::WRITE_TOTAL,
                "port {port} write txn min {min} < {}",
                propagation::WRITE_TOTAL
            );
        }
    }
}

#[test]
fn randomized_traffic_respects_propagation_floors() {
    let mut sys = observed_system(4);
    for (i, seed) in [11u64, 23, 47].iter().enumerate() {
        sys.add_accelerator(Box::new(RandomTraffic::new(
            "rnd",
            0x1000_0000 + ((i as u64) << 24),
            1 << 20,
            BurstSize::B16,
            64,
            10,
            *seed,
        )))
        .unwrap();
    }
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "periodic",
        0x5000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        100,
    )))
    .unwrap();
    sys.run_for(400_000);

    assert_propagation_floors(&sys);
    let metrics = sys.interconnect_ref().metrics().unwrap();
    // Every master actually produced samples on its port.
    for port in 0..4 {
        assert!(
            metrics.port(port).read_txns.count() > 0,
            "port {port} recorded no read transactions"
        );
    }
    // And the fabric stayed inside the analytical worst case throughout.
    let report = sys.interconnect_ref().bound_report().unwrap();
    assert!(report.checked_reads > 100, "{report:?}");
    assert_eq!(
        report.violations,
        0,
        "{:?}",
        sys.interconnect_ref().bound_violations().first()
    );
    assert!(sys.memory().monitor().unwrap().is_clean());
}

#[test]
fn contention_free_minima_equal_fig3a_goldens() {
    // One DMA on an otherwise idle 2-port fabric: the minimum observed
    // latency of each channel is the pure pipeline propagation delay —
    // the same constants `tests/conformance.rs` pins with beat probes.
    let mut sys = observed_system(2);
    sys.add_accelerator(Box::new(Dma::new(
        "dma0",
        DmaConfig {
            src_base: 0x1000_0000,
            dst_base: 0x2000_0000,
            read_bytes: 16 * 1024,
            write_bytes: 16 * 1024,
            jobs: Some(2),
            ..DmaConfig::case_study()
        },
    )))
    .unwrap();
    let outcome = sys.run_until_done(4_000_000);
    assert!(outcome.is_done(), "DMA did not finish: {outcome}");

    let metrics = sys.interconnect_ref().metrics().unwrap();
    let p = metrics.port(0);
    assert_eq!(p.ar.latency.min(), Some(propagation::D_AR), "d_AR");
    assert_eq!(p.aw.latency.min(), Some(propagation::D_AW), "d_AW");
    assert_eq!(p.r.latency.min(), Some(propagation::D_R), "d_R");
    // The DMA streams W beats back-to-back, so even the fastest beat
    // queues one cycle behind its predecessor in the W stage; the pure
    // d_W propagation (an isolated beat on an established route) is
    // pinned by the injection probes in the conformance suite.
    assert_eq!(p.w.latency.min(), Some(propagation::D_W + 1), "d_W");
    assert_eq!(p.b.latency.min(), Some(propagation::D_B), "d_B");
    assert_propagation_floors(&sys);

    let report = sys.interconnect_ref().bound_report().unwrap();
    assert!(report.checked_reads > 0 && report.checked_writes > 0);
    assert_eq!(report.violations, 0, "{report:?}");
}

#[test]
fn bound_monitor_clean_across_port_counts() {
    for ports in [1usize, 2, 4] {
        let mut sys = observed_system(ports);
        for port in 0..ports {
            sys.add_accelerator(Box::new(RandomTraffic::new(
                "rnd",
                0x1000_0000 + ((port as u64) << 24),
                1 << 20,
                BurstSize::B16,
                64,
                20,
                100 + port as u64,
            )))
            .unwrap();
        }
        sys.run_for(200_000);
        let report = sys.interconnect_ref().bound_report().unwrap();
        assert!(report.checked_reads > 0, "{ports} ports: {report:?}");
        assert_eq!(
            report.violations,
            0,
            "{ports} ports: {:?}",
            sys.interconnect_ref().bound_violations().first()
        );
        assert_propagation_floors(&sys);
    }
}
