//! End-to-end integration tests: real data through the full stack
//! (accelerator → interconnect → memory controller → backing store).

use axi::types::BurstSize;
use axi_hyperconnect::SocSystem;
use ha::chaidnn::{Chaidnn, ChaidnnConfig};
use ha::dma::{Dma, DmaConfig};
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use smartconnect::{ScConfig, SmartConnect};

fn copy_config(src: u64, dst: u64, bytes: u64, burst: u32) -> DmaConfig {
    DmaConfig {
        src_base: src,
        dst_base: dst,
        read_bytes: bytes,
        write_bytes: bytes,
        burst_beats: burst,
        size: BurstSize::B16,
        max_outstanding: 4,
        jobs: Some(1),
    }
}

#[test]
fn dma_write_reaches_memory_through_hyperconnect() {
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(2)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.memory_mut().attach_monitor();
    sys.add_accelerator(Box::new(Dma::new(
        "copy",
        copy_config(0x1000_0000, 0x2000_0000, 64 * 1024, 16),
    )))
    .unwrap();
    assert!(sys.run_until_done(10_000_000).is_done());
    // The write engine fills the destination with the canonical
    // address-keyed pattern; verify every byte landed.
    assert!(sys
        .memory()
        .memory()
        .verify_pattern(0x2000_0000, 0x2000_0000, 64 * 1024));
    let m = sys.memory().monitor().unwrap();
    assert!(m.is_clean(), "{:?}", m.errors());
}

#[test]
fn dma_write_reaches_memory_through_smartconnect() {
    let mut sys = SocSystem::new(
        SmartConnect::new(ScConfig::new(2)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.memory_mut().attach_monitor();
    sys.add_accelerator(Box::new(Dma::new(
        "copy",
        copy_config(0x1000_0000, 0x2000_0000, 64 * 1024, 256),
    )))
    .unwrap();
    assert!(sys.run_until_done(10_000_000).is_done());
    assert!(sys
        .memory()
        .memory()
        .verify_pattern(0x2000_0000, 0x2000_0000, 64 * 1024));
    let m = sys.memory().monitor().unwrap();
    assert!(m.is_clean(), "{:?}", m.errors());
}

#[test]
fn concurrent_dmas_do_not_corrupt_each_other() {
    // Two DMAs copying into adjacent regions through the HyperConnect:
    // every byte of both destinations must be exact despite arbitration
    // interleaving their bursts.
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(2)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.memory_mut().attach_monitor();
    sys.add_accelerator(Box::new(Dma::new(
        "a",
        copy_config(0x1000_0000, 0x2000_0000, 32 * 1024, 16),
    )))
    .unwrap();
    sys.add_accelerator(Box::new(Dma::new(
        "b",
        copy_config(0x3000_0000, 0x2001_0000, 32 * 1024, 256),
    )))
    .unwrap();
    assert!(sys.run_until_done(10_000_000).is_done());
    assert!(sys
        .memory()
        .memory()
        .verify_pattern(0x2000_0000, 0x2000_0000, 32 * 1024));
    assert!(sys
        .memory()
        .memory()
        .verify_pattern(0x2001_0000, 0x2001_0000, 32 * 1024));
    let m = sys.memory().monitor().unwrap();
    assert!(m.is_clean(), "{:?}", m.errors());
}

#[test]
fn mixed_dnn_and_dma_workload_completes_cleanly() {
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(2)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.memory_mut().attach_monitor();
    let dnn_cfg = ChaidnnConfig {
        frames: Some(1),
        ..ChaidnnConfig::default()
    };
    sys.add_accelerator(Box::new(Chaidnn::googlenet(dnn_cfg)))
        .unwrap();
    sys.add_accelerator(Box::new(Dma::new(
        "dma",
        copy_config(0x1000_0000, 0x2000_0000, 256 * 1024, 256).jobs(2),
    )))
    .unwrap();
    assert!(sys.run_until_done(60_000_000).is_done());
    assert_eq!(sys.accelerator(0).unwrap().jobs_completed(), 1);
    assert_eq!(sys.accelerator(1).unwrap().jobs_completed(), 2);
    let m = sys.memory().monitor().unwrap();
    assert!(m.is_clean(), "{:?}", m.errors());
    assert_eq!(m.reads_outstanding(), 0);
    assert_eq!(m.writes_outstanding(), 0);
}

#[test]
fn strobed_writes_survive_equalization() {
    use axi::{AwBeat, AxiInterconnect, WBeat};
    use sim::Component;
    // A 20-beat strobed write (every other byte) split by the TS into
    // nominal sub-bursts: strobes must be preserved through the split.
    let mut hc = HyperConnect::new(HcConfig::new(1));
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.memory_mut().write(0x2000, &[0xFF; 80]);
    hc.port(0)
        .aw
        .push(0, AwBeat::new(0x2000, 20, BurstSize::B4))
        .unwrap();
    let mut pending: std::collections::VecDeque<WBeat> = (0..20u32)
        .map(|i| WBeat::new(vec![i as u8; 4], i == 19).with_strobe(0b0101))
        .collect();
    let mut acked = false;
    for now in 0..5_000 {
        if let Some(beat) = pending.front() {
            if hc.port(0).w.push(now, beat.clone()).is_ok() {
                pending.pop_front();
            }
        }
        hc.tick(now);
        memory.tick(now, hc.mem_port());
        if hc.port(0).b.pop_ready(now).is_some() {
            acked = true;
            break;
        }
    }
    assert!(acked, "write never acknowledged");
    for i in 0..20u64 {
        let got = memory.memory().read(0x2000 + i * 4, 4);
        // Bytes 0 and 2 written, bytes 1 and 3 untouched (0xFF).
        assert_eq!(got, vec![i as u8, 0xFF, i as u8, 0xFF], "beat {i}");
    }
}

#[test]
fn memory_utilization_saturates_under_greedy_load() {
    // A single saturating DMA should drive the modeled memory close to
    // one beat per cycle — the precondition for the paper's claim that
    // the DMAs "saturate the maximum memory bandwidth".
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(1)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.add_accelerator(Box::new(Dma::new("sat", DmaConfig::case_study())))
        .unwrap();
    sys.run_for(500_000);
    let util = sys.memory().stats().utilization(sys.now());
    assert!(util > 0.9, "utilization only {util}");
}

#[test]
fn interconnects_drain_to_idle() {
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(2)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.add_accelerator(Box::new(Dma::new(
        "d",
        copy_config(0x1000_0000, 0x2000_0000, 4096, 16),
    )))
    .unwrap();
    assert!(sys.run_until_done(1_000_000).is_done());
    // Let in-flight responses fully drain.
    sys.run_for(100);
    assert!(sys.memory().is_idle());
    use axi::AxiInterconnect;
    assert!(sys.interconnect().is_idle());
}
