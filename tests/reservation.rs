//! Integration tests of the bandwidth-reservation mechanism: the
//! per-period budget is a *hard* bound on issued sub-transactions, in
//! every period, under any load — the paper's isolation guarantee.
//! All observations are made at the memory side (independent of the
//! interconnect's own counters) via the controller's request trace.

use axi::lite::LiteBus;
use axi::types::BurstSize;
use axi_hyperconnect::SocSystem;
use ha::traffic::BandwidthStealer;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::Hypervisor;
use mem::{MemConfig, MemoryController};
use sim::stats::EventLog;

const HC_BASE: u64 = 0xA000_0000;
const REGION: u64 = 0x0100_0000; // 16 MiB per port

fn hv_system(budgets: &[u32], period: u32) -> (SocSystem<HyperConnect>, Hypervisor) {
    let hc = HyperConnect::new(HcConfig::new(budgets.len()));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let hv = Hypervisor::new(bus, HC_BASE).unwrap();
    hv.hc().set_period(period).unwrap();
    for (p, &b) in budgets.iter().enumerate() {
        hv.hc().set_budget(p, b).unwrap();
    }
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_request_trace();
    let mut sys = SocSystem::new(hc, memory);
    for (i, _) in budgets.iter().enumerate() {
        sys.add_accelerator(Box::new(BandwidthStealer::new(
            format!("gen{i}"),
            0x1000_0000 + (i as u64) * REGION,
            1 << 20,
            64,
            BurstSize::B16,
        )))
        .unwrap();
    }
    (sys, hv)
}

/// Splits the memory-side AR trace into one per-port [`EventLog`]
/// (the address identifies the issuing port: disjoint 16 MiB regions).
fn per_port_logs(sys: &SocSystem<HyperConnect>, num_ports: usize) -> Vec<EventLog> {
    let mut logs: Vec<EventLog> = (0..num_ports).map(|_| EventLog::new()).collect();
    for &(cycle, addr) in sys.memory().ar_trace().expect("trace attached") {
        let port = ((addr - 0x1000_0000) / REGION) as usize;
        logs[port].record(cycle);
    }
    logs
}

#[test]
fn budget_is_a_hard_per_period_bound() {
    const PERIOD: u32 = 5_000;
    const BUDGETS: [u32; 2] = [40, 10];
    let (mut sys, _hv) = hv_system(&BUDGETS, PERIOD);
    sys.run_for(20 * PERIOD as u64);
    let logs = per_port_logs(&sys, 2);
    for (port, log) in logs.iter().enumerate() {
        assert!(!log.is_empty(), "port {port} issued nothing");
        // Every aligned period window respects the budget. The trace is
        // recorded at the memory, 3 pipeline cycles after the issue
        // decision, so allow the window boundary that slack.
        for window_start in (0..20 * PERIOD as u64).step_by(PERIOD as usize) {
            let count = log.count_in_window(window_start + 3, PERIOD as u64);
            assert!(
                count as u32 <= BUDGETS[port],
                "port {port}: {count} sub-txns in period starting {window_start} \
                 exceeds budget {}",
                BUDGETS[port]
            );
        }
        // Any sliding window of one period length spans at most two
        // budget allocations.
        assert!(
            log.max_in_any_window(PERIOD as u64) as u32 <= 2 * BUDGETS[port],
            "port {port} violates the two-period sliding bound"
        );
    }
}

#[test]
fn unbudgeted_port_is_unthrottled() {
    const PERIOD: u32 = 5_000;
    let (mut sys, hv) = hv_system(&[20, 20], PERIOD);
    hv.hc()
        .set_budget(1, hyperconnect::BUDGET_UNLIMITED)
        .unwrap();
    sys.run_for(10 * PERIOD as u64);
    let logs = per_port_logs(&sys, 2);
    // Port 0 throttled hard; port 1 free to use the slack.
    assert!(logs[1].len() > 4 * logs[0].len());
}

#[test]
fn runtime_budget_change_applies_at_next_period() {
    const PERIOD: u32 = 5_000;
    let (mut sys, hv) = hv_system(&[10, 10], PERIOD);
    sys.run_for(5 * PERIOD as u64);
    let before = per_port_logs(&sys, 2)[0].len();
    // Reconfigure at runtime: port 0 gets 10x the budget.
    hv.hc().set_budget(0, 100).unwrap();
    sys.run_for(5 * PERIOD as u64);
    let after = per_port_logs(&sys, 2)[0].len() - before;
    assert!(
        after > 4 * before,
        "throughput must rise after the budget increase: {before} -> {after}"
    );
}

#[test]
fn decoupled_port_issues_nothing_and_recovers() {
    const PERIOD: u32 = 5_000;
    let (mut sys, hv) = hv_system(&[50, 50], PERIOD);
    sys.run_for(2 * PERIOD as u64);
    assert!(!per_port_logs(&sys, 2)[1].is_empty());

    hv.hc().set_decoupled(1, true).unwrap();
    // Let in-flight traffic drain, then measure a quiet interval.
    sys.run_for(PERIOD as u64);
    let quiesced = per_port_logs(&sys, 2)[1].len();
    sys.run_for(4 * PERIOD as u64);
    assert_eq!(
        per_port_logs(&sys, 2)[1].len(),
        quiesced,
        "a decoupled port must not reach memory"
    );
    // Port 0 keeps flowing the whole time.
    let p0_before = per_port_logs(&sys, 2)[0].len();
    sys.run_for(PERIOD as u64);
    assert!(per_port_logs(&sys, 2)[0].len() > p0_before);

    hv.hc().set_decoupled(1, false).unwrap();
    sys.run_for(4 * PERIOD as u64);
    assert!(
        per_port_logs(&sys, 2)[1].len() > quiesced,
        "a recoupled port must resume issuing"
    );
}

#[test]
fn budgets_partition_bandwidth_proportionally() {
    const PERIOD: u32 = 10_000;
    // 3 ports with 3:2:1 budgets, all saturating.
    let (mut sys, _hv) = hv_system(&[150, 100, 50], PERIOD);
    sys.run_for(40 * PERIOD as u64);
    let logs = per_port_logs(&sys, 3);
    let a = logs[0].len() as f64;
    let b = logs[1].len() as f64;
    let c = logs[2].len() as f64;
    assert!((a / b - 1.5).abs() < 0.1, "a/b = {}", a / b);
    assert!((b / c - 2.0).abs() < 0.15, "b/c = {}", b / c);
}
