//! The snapshot-exactness oracle: for every scenario family and every
//! scheduler, *run-to-cycle-K → snapshot → restore into a freshly built
//! system → finish* must land in a state **byte-identical** to the
//! uninterrupted run — compared via the full `hcsim-snapshot/v1` image,
//! which covers every persisted register, queue, counter and RNG across
//! all layers.
//!
//! Because snapshots deliberately exclude scheduler artifacts
//! (scheduler mode, fast-forward skip counters, shard reports), one
//! single naive-mode reference image pins *every* scheduler's split
//! run, and a snapshot taken under one scheduler must resume under
//! another without drift.

use axi::types::BurstSize;
use axi::BridgeConfig;
use axi_hyperconnect::{SchedulerMode, SocSystem, SocTopology, TopologyBuilder};
use ha::dma::{Dma, DmaConfig};
use ha::fault::{DelayedFault, StalledWriter, WlastViolator};
use ha::traffic::{BandwidthStealer, PeriodicReader, RandomTraffic};
use ha::Accelerator;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::HcDriver;
use mem::{MemConfig, MemoryController};
use sim::Cycle;

/// Every scheduler the split runs are swept over.
const MODES: [SchedulerMode; 3] = [
    SchedulerMode::Naive,
    SchedulerMode::FastForward,
    SchedulerMode::Sharded { workers: 2 },
];

/// Drives the oracle for a flat [`SocSystem`] scenario: `build` must
/// assemble the identical system every call (same shapes, same seeds —
/// only the scheduler differs).
fn oracle_system(
    build: &dyn Fn(SchedulerMode) -> SocSystem<HyperConnect>,
    cycles: Cycle,
    split_at: Cycle,
    label: &str,
) {
    let mut reference = build(SchedulerMode::Naive);
    reference.run_for(cycles);
    let reference_bytes = reference.snapshot_bytes();

    for mode in MODES {
        let mut first = build(mode);
        first.run_for(split_at);
        let mid = first.snapshot_bytes();

        let mut resumed = build(mode);
        resumed
            .restore_snapshot_bytes(&mid)
            .unwrap_or_else(|e| panic!("{label}: restore under {mode:?} failed: {e:?}"));
        assert_eq!(resumed.now(), split_at, "{label}: restored clock");
        resumed.run_for(cycles - split_at);
        assert_eq!(
            resumed.snapshot_bytes(),
            reference_bytes,
            "{label}: split run under {mode:?} diverged from uninterrupted naive run"
        );
    }

    // Cross-scheduler resume: freeze under fast-forward, thaw sharded.
    let mut first = build(SchedulerMode::FastForward);
    first.run_for(split_at);
    let mid = first.snapshot_bytes();
    let mut resumed = build(SchedulerMode::Sharded { workers: 2 });
    resumed
        .restore_snapshot_bytes(&mid)
        .unwrap_or_else(|e| panic!("{label}: cross-scheduler restore failed: {e:?}"));
    resumed.run_for(cycles - split_at);
    assert_eq!(
        resumed.snapshot_bytes(),
        reference_bytes,
        "{label}: fast-forward snapshot resumed under sharded diverged"
    );
}

/// Same oracle over a cascaded [`SocTopology`].
fn oracle_topology(
    build: &dyn Fn(SchedulerMode) -> SocTopology,
    cycles: Cycle,
    split_at: Cycle,
    label: &str,
) {
    let mut reference = build(SchedulerMode::Naive);
    reference.run_for(cycles);
    let reference_bytes = reference.snapshot_bytes();

    for mode in MODES {
        let mut first = build(mode);
        first.run_for(split_at);
        let mid = first.snapshot_bytes();

        let mut resumed = build(mode);
        resumed
            .restore_snapshot_bytes(&mid)
            .unwrap_or_else(|e| panic!("{label}: restore under {mode:?} failed: {e:?}"));
        assert_eq!(resumed.now(), split_at, "{label}: restored clock");
        resumed.run_for(cycles - split_at);
        assert_eq!(
            resumed.snapshot_bytes(),
            reference_bytes,
            "{label}: split run under {mode:?} diverged from uninterrupted naive run"
        );
    }
}

// ---------------------------------------------------------------------
// Scenario 1: the four-master stress soak.
// ---------------------------------------------------------------------

fn build_stress(mode: SchedulerMode) -> SocSystem<HyperConnect> {
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(4)), memory);
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd0",
        0x1000_0000,
        1 << 20,
        BurstSize::B16,
        64,
        10,
        11,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "steal",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "periodic",
        0x5000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        100,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd1",
        0x7000_0000,
        1 << 20,
        BurstSize::B4,
        32,
        50,
        23,
    )))
    .unwrap();
    sys
}

#[test]
fn stress_snapshot_split_is_exact() {
    oracle_system(&build_stress, 60_000, 26_371, "stress");
}

// ---------------------------------------------------------------------
// Scenario 2: fault injection (protocol violations mid-flight).
// ---------------------------------------------------------------------

fn build_fault(mode: SchedulerMode) -> SocSystem<HyperConnect> {
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(3)), memory);
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim_a",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(WlastViolator::new(
        "faulty",
        0x2000_0000,
        16,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim_b",
        0x3000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();
    sys
}

#[test]
fn fault_snapshot_split_is_exact() {
    oracle_system(&build_fault, 40_000, 17_203, "fault");
}

// ---------------------------------------------------------------------
// Scenario 3: QoS regulation (credit regulators + bound monitor live).
// ---------------------------------------------------------------------

fn build_qos(mode: SchedulerMode) -> SocSystem<HyperConnect> {
    let hc = HyperConnect::new(HcConfig::new(4));
    let mut bus = axi::lite::LiteBus::new();
    bus.map(0xA000_0000, 0x1000, hc.regs().clone());
    let drv = HcDriver::probe(&bus, 0xA000_0000).expect("HyperConnect regfile");
    drv.set_regulation_window(128).expect("window register");
    for p in 1..4 {
        drv.set_rate(p, 8).expect("rate register");
        drv.set_reg_burst(p, 4).expect("burst register");
        drv.set_out_cap(p, 2).expect("out-cap register");
    }
    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.set_scheduler(mode);
    sys.enable_observability();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "qos_victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        200,
    )))
    .unwrap();
    for p in 1..4u64 {
        sys.add_accelerator(Box::new(Dma::new(
            format!("qos_swarm{p}"),
            DmaConfig {
                src_base: 0x3000_0000 + p * 0x0100_0000,
                jobs: None,
                ..DmaConfig::reader(256 * 1024, 16, BurstSize::B16)
            },
        )))
        .unwrap();
    }
    sys
}

#[test]
fn qos_snapshot_split_is_exact() {
    oracle_system(&build_qos, 50_000, 23_917, "qos");
}

// ---------------------------------------------------------------------
// Scenario 4: chaos-seed — a dormant fault arming mid-run between
// seeded traffic, exercising DelayedFault + SimRng persistence. The
// split point lands *before* the fault arms, so the restore must carry
// the dormant wrapper's inner state faithfully into the injection.
// ---------------------------------------------------------------------

fn build_chaos_seed(mode: SchedulerMode) -> SocSystem<HyperConnect> {
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(3)), memory);
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "seeded0",
        0x1000_0000,
        1 << 20,
        BurstSize::B16,
        48,
        20,
        23, // PINNED_SEEDS member
    )))
    .unwrap();
    sys.add_accelerator(Box::new(DelayedFault::new(
        Box::new(StalledWriter::new("stall", 0x2000_0000, 16, BurstSize::B16)),
        21_000,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "seeded1",
        0x5000_0000,
        1 << 20,
        BurstSize::B4,
        32,
        60,
        29, // PINNED_SEEDS member
    )))
    .unwrap();
    sys
}

#[test]
fn chaos_seed_snapshot_split_is_exact() {
    oracle_system(&build_chaos_seed, 45_000, 15_551, "chaos-seed");
}

// ---------------------------------------------------------------------
// Scenario 5: a three-level cascade (leaf → mid → root → DDR) with
// registered bridges at both cuts, so the sharded scheduler actually
// partitions it.
// ---------------------------------------------------------------------

fn build_tree3(mode: SchedulerMode) -> SocTopology {
    let mut b = TopologyBuilder::new();
    let root = b
        .add_interconnect("root", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let mid = b
        .add_interconnect("mid", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let leaf = b
        .add_interconnect("leaf", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.cascade_with(leaf, mid, 0, BridgeConfig::wire().latency(2))
        .unwrap();
    b.cascade_with(mid, root, 0, BridgeConfig::wire().latency(1))
        .unwrap();
    b.connect_memory(root, mem).unwrap();
    let placements: [(&str, Box<dyn Accelerator>, _, usize); 4] = [
        (
            "l0",
            Box::new(RandomTraffic::new(
                "leaf_rnd",
                0x1000_0000,
                1 << 20,
                BurstSize::B16,
                40,
                15,
                31,
            )),
            leaf,
            0,
        ),
        (
            "l1",
            Box::new(PeriodicReader::new(
                "leaf_per",
                0x2000_0000,
                1 << 20,
                16,
                BurstSize::B16,
                90,
            )),
            leaf,
            1,
        ),
        (
            "m1",
            Box::new(PeriodicReader::new(
                "mid_per",
                0x5000_0000,
                1 << 20,
                16,
                BurstSize::B16,
                130,
            )),
            mid,
            1,
        ),
        (
            "r1",
            Box::new(RandomTraffic::new(
                "root_rnd",
                0x9000_0000,
                1 << 20,
                BurstSize::B16,
                48,
                35,
                47,
            )),
            root,
            1,
        ),
    ];
    for (name, acc, node, port) in placements {
        let a = b.add_accelerator(name, acc).unwrap();
        b.attach(a, node, port).unwrap();
    }
    let mut topo = b.build().unwrap();
    topo.set_scheduler(mode);
    topo
}

#[test]
fn tree3_snapshot_split_is_exact() {
    oracle_topology(&build_tree3, 80_000, 33_331, "tree3");
}

// ---------------------------------------------------------------------
// Scenario 6: fabric faults — an armed memory-side injector (spurious
// SLVERRs + ECC-corrected bit flips) under a retrying scoreboard
// oracle. The split must carry the injector's RNG and counters, the
// controller's error-region bookkeeping, and the scoreboard's
// mid-retry/backoff state byte-faithfully across the restore.
// ---------------------------------------------------------------------

fn build_fabric_fault(mode: SchedulerMode) -> SocSystem<HyperConnect> {
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_fault_injector(
        mem::MemFaultConfig::new(17)
            .spurious_slverr(0.08)
            .flip_single(0.05)
            .ecc(true),
    );
    let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(3)), memory);
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(
        ha::scoreboard::ScoreboardMaster::new(
            "fabric_oracle",
            0x2000_0000,
            16 * 256,
            16,
            BurstSize::B16,
            13,
        )
        .policy(axi::retry::RetryPolicy {
            max_attempts: 8,
            backoff_base: 2,
            backoff_cap: 64,
        })
        .gap(40),
    ))
    .unwrap();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        50,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd",
        0x5000_0000,
        1 << 20,
        BurstSize::B16,
        48,
        25,
        31, // FABRIC_PINNED_SEEDS member
    )))
    .unwrap();
    sys
}

#[test]
fn fabric_fault_snapshot_split_is_exact() {
    oracle_system(&build_fabric_fault, 45_000, 19_777, "fabric-fault");
}

// ---------------------------------------------------------------------
// Negative space: a snapshot must refuse a differently-shaped host.
// ---------------------------------------------------------------------

#[test]
fn snapshot_rejects_mismatched_shape() {
    let mut donor = build_stress(SchedulerMode::FastForward);
    donor.run_for(5_000);
    let bytes = donor.snapshot_bytes();
    let mut other = build_fault(SchedulerMode::FastForward);
    assert!(
        other.restore_snapshot_bytes(&bytes).is_err(),
        "a stress snapshot must not restore into the fault topology"
    );
}

// ---------------------------------------------------------------------
// Satellite sweep: snapshot at EVERY cycle of a short Fig 3(a)-style
// run. Restore-and-finish from every split point must reproduce the
// pinned goldens: the run's completion cycle and the CRC of the final
// state image. This is the exhaustive version of the spot-check oracles
// above — no cycle, including the cycles around channel-stage
// boundaries (the d_AR/d_R latency pipeline of Fig. 3(a)), may hold
// unserialized state.
// ---------------------------------------------------------------------

/// Two finite DMA readers through a 2-port HyperConnect — the Fig 3(a)
/// measurement shape, sized to finish in a few hundred cycles.
fn build_fig3a_short(mode: SchedulerMode) -> SocSystem<HyperConnect> {
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(2)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.set_scheduler(mode);
    for p in 0..2u64 {
        sys.add_accelerator(Box::new(Dma::new(
            format!("fig3a_dma{p}"),
            DmaConfig {
                src_base: 0x1000_0000 + p * 0x0100_0000,
                jobs: Some(2),
                ..DmaConfig::reader(1024, 16, BurstSize::B16)
            },
        )))
        .unwrap();
    }
    sys
}

#[test]
fn fig3a_snapshot_sweep_every_cycle() {
    // Goldens pinned from the uninterrupted naive run; a change here
    // means the simulated microarchitecture itself changed.
    const DONE_CYCLE: Cycle = 296;
    const FINAL_STATE_CRC: u32 = 0x7890_99F8;

    let mut reference = build_fig3a_short(SchedulerMode::Naive);
    let outcome = reference.run_until_done(5_000);
    assert_eq!(
        outcome,
        sim::RunOutcome::Done(DONE_CYCLE),
        "golden completion cycle moved"
    );
    let reference_bytes = reference.snapshot_bytes();
    assert_eq!(
        sim::persist::crc32(&reference_bytes),
        FINAL_STATE_CRC,
        "golden final-state CRC moved"
    );

    // One continuous pass captures the snapshot at every cycle...
    let mut sweeper = build_fig3a_short(SchedulerMode::Naive);
    let mut per_cycle: Vec<Vec<u8>> = vec![sweeper.snapshot_bytes()];
    for _ in 0..DONE_CYCLE {
        sweeper.run_for(1);
        per_cycle.push(sweeper.snapshot_bytes());
    }

    // ...and every one of them must restore and finish on the goldens.
    for (k, bytes) in per_cycle.iter().enumerate() {
        let mut resumed = build_fig3a_short(SchedulerMode::FastForward);
        resumed
            .restore_snapshot_bytes(bytes)
            .unwrap_or_else(|e| panic!("cycle {k}: restore failed: {e:?}"));
        assert_eq!(resumed.now(), k as Cycle, "cycle {k}: restored clock");
        resumed.run_for(DONE_CYCLE - k as Cycle);
        assert_eq!(
            resumed.snapshot_bytes(),
            reference_bytes,
            "cycle {k}: restore-and-finish diverged from the pinned final state"
        );
    }
}
