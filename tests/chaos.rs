//! Seeded chaos campaigns over the recovery lifecycle: every pinned
//! seed derives a full inject → detect → drain → reset → reattach
//! scenario (fault kind, port, permanence, policies, poll cadence) and
//! must satisfy the three campaign invariants — bounded victims,
//! SLA-compliant recovery, and naive/fast-forward equivalence (see
//! `axi_hyperconnect::chaos`).
//!
//! The CI chaos-smoke job runs exactly these tests and uploads the
//! campaign summary JSON written by `campaign_summary_artifact`.

use axi_hyperconnect::chaos::{
    campaign_summary_json, fabric_campaign_summary_json, fabric_scenario_rng_position,
    run_fabric_flat_campaign, run_fabric_tree_campaign, run_flat_campaign,
    run_noisy_neighbor_campaign, run_tree_campaign, scenario_rng_position, ChaosConfig,
    ChaosOutcome, FabricOutcome, FaultKind, FABRIC_PINNED_SEEDS, PINNED_SEEDS,
};
use axi_hyperconnect::SchedulerMode;

fn assert_invariants(outcome: &ChaosOutcome) {
    let violations = outcome.invariant_violations();
    assert!(
        violations.is_empty(),
        "seed {} ({} {}) violated invariants: {:?}\n{}",
        outcome.seed,
        outcome.scenario,
        outcome.fault_kind.as_str(),
        violations,
        outcome.to_json(),
    );
}

/// Every pinned seed passes invariants 1 and 2 on the flat Fig. 1
/// shape, and the campaign visited the full recovery lifecycle.
#[test]
fn flat_campaigns_pass_invariants_on_pinned_seeds() {
    for &seed in &PINNED_SEEDS {
        let outcome = run_flat_campaign(&ChaosConfig::new(seed));
        assert_invariants(&outcome);
        // The lifecycle really ran: detection, a completed drain, at
        // least one reset-and-reattach round trip.
        for to in ["Draining", "Decoupled", "Resetting", "Probation"] {
            assert!(
                outcome.transitions.iter().any(|t| t.to == to),
                "seed {seed}: lifecycle never reached {to}: {:?}",
                outcome.transitions
            );
        }
        assert!(outcome.resets >= 1, "seed {seed}: no reset pulsed");
    }
}

/// Same invariants over the two-level tree (fault on the child
/// interconnect, victims on both levels).
#[test]
fn tree_campaigns_pass_invariants_on_pinned_seeds() {
    for &seed in &PINNED_SEEDS {
        let outcome = run_tree_campaign(&ChaosConfig::new(seed));
        assert_invariants(&outcome);
        assert!(outcome.resets >= 1, "seed {seed}: no reset pulsed");
    }
}

/// The pinned set was chosen to cover all four fault kinds, each in
/// both the recoverable and the permanent variant — so the drain
/// force-flush path (stalled writer), the resume-nominal path (cured
/// WLAST violator) and the quarantine path are all exercised.
#[test]
fn pinned_seeds_cover_the_fault_matrix() {
    let outcomes: Vec<ChaosOutcome> = PINNED_SEEDS
        .iter()
        .map(|&s| run_flat_campaign(&ChaosConfig::new(s)))
        .collect();
    for kind in [
        FaultKind::StalledWriter,
        FaultKind::WlastViolator,
        FaultKind::RogueReader,
        FaultKind::RunawayMaster,
    ] {
        for permanent in [false, true] {
            assert!(
                outcomes
                    .iter()
                    .any(|o| o.fault_kind == kind && o.permanent == permanent),
                "no pinned seed covers {} permanent={permanent}",
                kind.as_str()
            );
        }
    }
    // Permanent faults quarantine, recoverable ones return to service.
    for o in &outcomes {
        let expected = if o.permanent {
            "Quarantined"
        } else {
            "Healthy"
        };
        assert_eq!(o.final_state, expected, "seed {}", o.seed);
    }
}

/// Invariant 3: the event-horizon fast-forward scheduler must not
/// change anything recovery observes. The full campaign record —
/// transition cycles, drop counts, victim latencies and job counts —
/// is byte-identical under naive and fast-forward scheduling.
#[test]
fn recovery_is_scheduler_equivalent_on_pinned_seeds() {
    for &seed in &PINNED_SEEDS {
        let ff = run_flat_campaign(&ChaosConfig::new(seed));
        let naive = run_flat_campaign(&ChaosConfig::new(seed).scheduler(SchedulerMode::Naive));
        assert_eq!(
            ff.fingerprint(),
            naive.fingerprint(),
            "seed {seed}: flat campaign diverges across schedulers"
        );
    }
}

/// Scheduler equivalence also holds through the cascaded tree (a
/// subset of seeds keeps the naive runs cheap).
#[test]
fn tree_recovery_is_scheduler_equivalent() {
    for &seed in &PINNED_SEEDS[..3] {
        let ff = run_tree_campaign(&ChaosConfig::new(seed));
        let naive = run_tree_campaign(&ChaosConfig::new(seed).scheduler(SchedulerMode::Naive));
        assert_eq!(
            ff.fingerprint(),
            naive.fingerprint(),
            "seed {seed}: tree campaign diverges across schedulers"
        );
    }
}

/// A campaign is replayable: the same seed and config produce the same
/// outcome, and different seeds produce different scenarios.
#[test]
fn campaigns_are_deterministic_per_seed() {
    let a = run_flat_campaign(&ChaosConfig::new(PINNED_SEEDS[0]));
    let b = run_flat_campaign(&ChaosConfig::new(PINNED_SEEDS[0]));
    assert_eq!(a.fingerprint(), b.fingerprint());
    let c = run_flat_campaign(&ChaosConfig::new(PINNED_SEEDS[1]));
    assert_ne!(a.fingerprint(), c.fingerprint());
}

/// Writes the campaign summary JSON the CI job uploads as an artifact
/// (to `target/chaos-campaign-summary.json`, or `$CHAOS_SUMMARY_PATH`),
/// and sanity-checks its shape.
#[test]
fn campaign_summary_artifact() {
    let mut outcomes: Vec<ChaosOutcome> = Vec::new();
    for &seed in &PINNED_SEEDS {
        outcomes.push(run_flat_campaign(&ChaosConfig::new(seed)));
        outcomes.push(run_tree_campaign(&ChaosConfig::new(seed)));
    }
    let json = campaign_summary_json(&outcomes);
    assert!(json.contains("\"schema\":\"axi-hyperconnect/chaos-campaign/v1\""));
    assert!(json.contains("\"campaigns\":16"));
    assert!(json.contains("\"invariant_violations\":0"));
    let path = std::env::var("CHAOS_SUMMARY_PATH")
        .unwrap_or_else(|_| "target/chaos-campaign-summary.json".to_owned());
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("note: could not write {path}: {e}");
    }
}

/// The QoS campaign family: every pinned seed derives a noisy-neighbor
/// scenario (victim + greedy reader swarm, seeded credit programming)
/// and must hold its *tightened* victim bound with every regulator
/// demonstrably engaged.
#[test]
fn qos_campaigns_hold_tightened_bounds_on_pinned_seeds() {
    for &seed in &PINNED_SEEDS {
        let outcome = run_noisy_neighbor_campaign(&ChaosConfig::new(seed));
        let violations = outcome.invariant_violations();
        assert!(
            violations.is_empty(),
            "seed {seed}: QoS invariants violated: {violations:?}\n{}",
            outcome.fingerprint(),
        );
    }
}

/// Regulation is scheduler-transparent: the full QoS campaign record —
/// victim latency, job count, per-port throttle tallies — is
/// byte-identical under naive, fast-forward and sharded scheduling.
#[test]
fn qos_campaigns_are_scheduler_equivalent() {
    for &seed in &PINNED_SEEDS[..4] {
        let ff = run_noisy_neighbor_campaign(&ChaosConfig::new(seed));
        let naive =
            run_noisy_neighbor_campaign(&ChaosConfig::new(seed).scheduler(SchedulerMode::Naive));
        let sharded = run_noisy_neighbor_campaign(
            &ChaosConfig::new(seed).scheduler(SchedulerMode::Sharded { workers: 2 }),
        );
        assert_eq!(
            ff.fingerprint(),
            naive.fingerprint(),
            "seed {seed}: QoS campaign diverges under naive scheduling"
        );
        assert_eq!(
            ff.fingerprint(),
            sharded.fingerprint(),
            "seed {seed}: QoS campaign diverges under sharded scheduling"
        );
    }
}

/// A pulled-from-JSON integer field, by exact key.
fn json_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} missing from {json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer field")
}

/// The campaign summary must record each scenario's RNG stream position
/// (raw 64-bit draws consumed deriving it), and that position must
/// round-trip: re-deriving the scenario from the recorded seed consumes
/// exactly the recorded number of draws, so a campaign resumed from its
/// summary replays the same scenarios.
#[test]
fn summary_records_reproducible_rng_positions() {
    for &seed in &PINNED_SEEDS[..4] {
        let flat = run_flat_campaign(&ChaosConfig::new(seed));
        assert_eq!(
            flat.rng_position,
            scenario_rng_position(seed),
            "seed {seed}"
        );
        let json = flat.to_json();
        assert_eq!(json_u64(&json, "seed"), seed);
        assert_eq!(
            json_u64(&json, "rng_position"),
            scenario_rng_position(seed),
            "seed {seed}: JSON rng_position does not round-trip"
        );
        // The aggregated summary carries the field for every run too.
        let summary = campaign_summary_json(&[flat]);
        assert_eq!(
            json_u64(&summary, "rng_position"),
            scenario_rng_position(seed)
        );
    }
}

fn assert_fabric_invariants(outcome: &FabricOutcome) {
    let violations = outcome.invariant_violations();
    assert!(
        violations.is_empty(),
        "seed {} ({} hard={}) violated invariants: {:?}\n{}",
        outcome.seed,
        outcome.scenario,
        outcome.hard,
        violations,
        outcome.to_json(),
    );
}

/// The fabric-fault family on the flat shape: every pinned seed holds
/// zero-silent-corruption, bounded victims, the derived retry
/// completion bound, and — for hard seeds — the quarantine path.
#[test]
fn fabric_flat_campaigns_pass_invariants_on_pinned_seeds() {
    for &seed in &FABRIC_PINNED_SEEDS {
        assert_fabric_invariants(&run_fabric_flat_campaign(&ChaosConfig::new(seed)));
    }
}

/// Same invariants through the cascaded tree: faults at the memory
/// behind the parent, the oracle and the hypervisor one level down.
#[test]
fn fabric_tree_campaigns_pass_invariants_on_pinned_seeds() {
    for &seed in &FABRIC_PINNED_SEEDS {
        assert_fabric_invariants(&run_fabric_tree_campaign(&ChaosConfig::new(seed)));
    }
}

/// The pinned set covers both fault modes in both shapes: transient
/// scenarios that retry to success, and hard scenarios that end in a
/// hypervisor-commanded quarantine with verified traffic on the spare.
#[test]
fn fabric_pinned_seeds_cover_both_fault_modes() {
    for run in [run_fabric_flat_campaign, run_fabric_tree_campaign] {
        let outcomes: Vec<FabricOutcome> = FABRIC_PINNED_SEEDS
            .iter()
            .map(|&s| run(&ChaosConfig::new(s)))
            .collect();
        for hard in [false, true] {
            assert!(
                outcomes.iter().any(|o| o.hard == hard),
                "no pinned fabric seed covers hard={hard} in {}",
                outcomes[0].scenario
            );
        }
        for o in &outcomes {
            if o.hard {
                assert!(o.quarantines >= 1, "seed {}: no quarantine", o.seed);
                assert!(
                    o.oracle.verified_after_remap > 0,
                    "seed {}: spare region never verified",
                    o.seed
                );
            } else {
                assert!(
                    o.oracle.retries > 0,
                    "seed {}: no retries exercised",
                    o.seed
                );
                assert_eq!(o.quarantines, 0, "seed {}: spurious quarantine", o.seed);
            }
            assert_eq!(o.oracle.silent_corruptions, 0, "seed {}", o.seed);
        }
    }
}

/// Fault injection is scheduler-transparent: draws are tied to beat
/// crossings, not bare cycles, so the full fabric campaign record is
/// byte-identical under naive, fast-forward and sharded scheduling.
#[test]
fn fabric_campaigns_are_scheduler_equivalent() {
    for &seed in &FABRIC_PINNED_SEEDS[..4] {
        let ff = run_fabric_flat_campaign(&ChaosConfig::new(seed));
        let naive =
            run_fabric_flat_campaign(&ChaosConfig::new(seed).scheduler(SchedulerMode::Naive));
        let sharded = run_fabric_flat_campaign(
            &ChaosConfig::new(seed).scheduler(SchedulerMode::Sharded { workers: 2 }),
        );
        assert_eq!(
            ff.fingerprint(),
            naive.fingerprint(),
            "seed {seed}: fabric campaign diverges under naive scheduling"
        );
        assert_eq!(
            ff.fingerprint(),
            sharded.fingerprint(),
            "seed {seed}: fabric campaign diverges under sharded scheduling"
        );
    }
}

/// Scheduler equivalence also holds through the cascade (a subset of
/// seeds keeps the naive runs cheap).
#[test]
fn fabric_tree_campaigns_are_scheduler_equivalent() {
    for &seed in &FABRIC_PINNED_SEEDS[..3] {
        let ff = run_fabric_tree_campaign(&ChaosConfig::new(seed));
        let naive =
            run_fabric_tree_campaign(&ChaosConfig::new(seed).scheduler(SchedulerMode::Naive));
        assert_eq!(
            ff.fingerprint(),
            naive.fingerprint(),
            "seed {seed}: fabric tree campaign diverges across schedulers"
        );
    }
}

/// A fabric campaign is replayable: same seed, same record; different
/// seed, different scenario.
#[test]
fn fabric_campaigns_are_deterministic_per_seed() {
    let a = run_fabric_flat_campaign(&ChaosConfig::new(FABRIC_PINNED_SEEDS[0]));
    let b = run_fabric_flat_campaign(&ChaosConfig::new(FABRIC_PINNED_SEEDS[0]));
    assert_eq!(a.fingerprint(), b.fingerprint());
    let c = run_fabric_flat_campaign(&ChaosConfig::new(FABRIC_PINNED_SEEDS[1]));
    assert_ne!(a.fingerprint(), c.fingerprint());
}

/// Writes the fabric campaign summary the CI integrity-smoke job
/// uploads (to `target/fabric-campaign-summary.json`, or
/// `$FABRIC_SUMMARY_PATH`), and sanity-checks its shape. Separate from
/// `campaign_summary_artifact` so the two CI jobs upload independent
/// artifacts.
#[test]
fn fabric_campaign_summary_artifact() {
    let mut outcomes: Vec<FabricOutcome> = Vec::new();
    for &seed in &FABRIC_PINNED_SEEDS {
        outcomes.push(run_fabric_flat_campaign(&ChaosConfig::new(seed)));
        outcomes.push(run_fabric_tree_campaign(&ChaosConfig::new(seed)));
    }
    let json = fabric_campaign_summary_json(&outcomes);
    assert!(json.contains("\"schema\":\"axi-hyperconnect/chaos-campaign/v1\""));
    assert!(json.contains("\"schema\":\"axi-hyperconnect/fabric-run/v1\""));
    assert!(json.contains("\"campaigns\":16"));
    assert!(json.contains("\"invariant_violations\":0"));
    let path = std::env::var("FABRIC_SUMMARY_PATH")
        .unwrap_or_else(|_| "target/fabric-campaign-summary.json".to_owned());
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("note: could not write {path}: {e}");
    }
}

/// Fabric campaign JSON records a reproducible RNG stream position,
/// exactly like the recovery family.
#[test]
fn fabric_summary_records_reproducible_rng_positions() {
    for &seed in &FABRIC_PINNED_SEEDS[..4] {
        let flat = run_fabric_flat_campaign(&ChaosConfig::new(seed));
        assert_eq!(
            flat.rng_position,
            fabric_scenario_rng_position(seed),
            "seed {seed}"
        );
        let json = flat.to_json();
        assert_eq!(json_u64(&json, "seed"), seed);
        assert_eq!(
            json_u64(&json, "rng_position"),
            fabric_scenario_rng_position(seed),
            "seed {seed}: JSON rng_position does not round-trip"
        );
    }
}
