//! The paper's future work, demonstrated end to end: a memory
//! controller that completes read bursts *out of order* (as future
//! platforms might), bridged back to the HyperConnect — whose routing
//! scheme assumes in-order responses — through the
//! [`hyperconnect::reorder::ReorderBuffer`].

use std::collections::VecDeque;

use axi::beat::{ArBeat, RBeat};
use axi::types::BurstSize;
use axi::AxiInterconnect;
use hyperconnect::reorder::ReorderBuffer;
use hyperconnect::{HcConfig, HyperConnect};
use mem::SparseMemory;
use sim::{Component, Cycle};

/// A deliberately out-of-order read-only memory: bursts become ready
/// after a latency *inversely* related to their length, so short bursts
/// overtake long ones — the worst case for order-assuming routing.
struct OooMemory {
    store: SparseMemory,
    jobs: Vec<(Cycle, ArBeat)>,
    accepted: u64,
    completed_order: Vec<u64>,
}

impl OooMemory {
    fn new(store: SparseMemory) -> Self {
        Self {
            store,
            jobs: Vec::new(),
            accepted: 0,
            completed_order: Vec::new(),
        }
    }

    /// Accepts one AR per cycle; returns its tag if accepted.
    fn accept(&mut self, now: Cycle, port: &mut axi::AxiPort) -> Option<u64> {
        let ar = port.ar.pop_ready(now)?;
        // Long bursts take much longer to become ready.
        let ready_at = now + 10 + 2 * ar.len as u64;
        let tag = ar.tag;
        self.jobs.push((ready_at, ar));
        self.accepted += 1;
        Some(tag)
    }

    /// Emits every beat of one ready burst (whole-burst completion).
    fn complete_one(&mut self, now: Cycle) -> Option<Vec<RBeat>> {
        let idx = self.jobs.iter().position(|(ready, _)| *ready <= now)?;
        let (_, ar) = self.jobs.swap_remove(idx);
        self.completed_order.push(ar.tag);
        let beats = (0..ar.len)
            .map(|i| {
                let addr = ar.addr + i as u64 * ar.size.bytes();
                let data = self.store.read(addr, ar.size.bytes() as usize);
                RBeat::new(ar.id, data, i + 1 == ar.len)
                    .with_tag(ar.tag)
                    .with_issued_at(ar.issued_at)
            })
            .collect();
        Some(beats)
    }
}

#[test]
fn reorder_buffer_bridges_ooo_memory_to_the_hyperconnect() {
    let mut store = SparseMemory::new();
    store.fill_pattern(0x1000, 8192);

    let mut hc = HyperConnect::new(HcConfig::new(1));
    // Allow several sub-transactions in flight so disorder can happen.
    let off =
        hyperconnect::regfile::port_block_offset(0) + hyperconnect::regfile::offsets::PORT_MAX_OUT;
    hc.regs().write32(off, 8);

    let mut memory = OooMemory::new(store);
    let mut rob = ReorderBuffer::new(4096);
    let mut release_queue: VecDeque<RBeat> = VecDeque::new();

    // One long read then several short ones: the shorts complete first
    // in the OoO memory, but the HA must see strictly its issue order.
    let requests: Vec<(u64, u32)> = vec![
        (0x1000, 64), // long: completes last in the OoO memory
        (0x2000, 4),
        (0x2100, 4),
        (0x2200, 4),
    ];
    // Nominal 64 so nothing is split (tags stay per-request).
    hc.regs()
        .write32(hyperconnect::regfile::offsets::NOMINAL, 64);
    for (i, &(addr, len)) in requests.iter().enumerate() {
        hc.port(0)
            .ar
            .push(
                0,
                ArBeat::new(addr, len, BurstSize::B4).with_tag(i as u64 + 1),
            )
            .unwrap();
    }

    let mut received: Vec<RBeat> = Vec::new();
    for now in 0..5_000 {
        hc.tick(now);
        // Memory side: accept in arrival order, registering with the ROB.
        if let Some(tag) = memory.accept(now, hc.mem_port()) {
            rob.expect(tag);
        }
        // Complete at most one burst per cycle, out of order.
        if let Some(beats) = memory.complete_one(now) {
            for beat in beats {
                release_queue.extend(rob.accept(beat).expect("capacity"));
            }
        }
        // Feed restored-order beats back at one per cycle.
        if let Some(beat) = release_queue.front() {
            if hc.mem_port().r.push(now, beat.clone()).is_ok() {
                release_queue.pop_front();
            }
        }
        while let Some(beat) = hc.port(0).r.pop_ready(now) {
            received.push(beat);
        }
    }

    // The memory really did complete out of order...
    assert_ne!(
        memory.completed_order,
        vec![1, 2, 3, 4],
        "test premise: completion must be out of order"
    );
    // ...but the accelerator saw every burst in issue order, complete
    // and with the right data.
    let total_beats: u32 = requests.iter().map(|&(_, l)| l).sum();
    assert_eq!(received.len(), total_beats as usize);
    let mut cursor = 0usize;
    for (i, &(addr, len)) in requests.iter().enumerate() {
        for k in 0..len as usize {
            let beat = &received[cursor + k];
            assert_eq!(beat.tag, i as u64 + 1, "beat {cursor}+{k} order");
            assert_eq!(beat.last, k + 1 == len as usize);
            let expected = memory.store.read(addr + k as u64 * 4, 4);
            assert_eq!(beat.data, expected, "data of burst {i} beat {k}");
        }
        cursor += len as usize;
    }
    assert!(rob.is_empty());
}
