//! Stress/soak tests: long randomized runs on both interconnects with
//! the protocol monitor armed — nothing may deadlock, leak, or violate
//! channel ordering.

use axi::types::BurstSize;
use axi::AxiInterconnect;
use axi_hyperconnect::SocSystem;
use ha::traffic::{BandwidthStealer, PeriodicReader, RandomTraffic};
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController, RowPolicy};
use smartconnect::{ScConfig, SmartConnect};

fn stress<I: AxiInterconnect>(interconnect: I, cycles: u64) -> SocSystem<I> {
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    let mut sys = SocSystem::new(interconnect, memory);
    populate(&mut sys);
    sys.run_for(cycles);
    sys
}

/// The four-master soak mix shared by all stress scenarios.
fn populate<I: AxiInterconnect>(sys: &mut SocSystem<I>) {
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd0",
        0x1000_0000,
        1 << 20,
        BurstSize::B16,
        64,
        10,
        11,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "steal",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "periodic",
        0x5000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        100,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd1",
        0x7000_0000,
        1 << 20,
        BurstSize::B4,
        32,
        50,
        23,
    )))
    .unwrap();
}

#[test]
fn hyperconnect_soak_four_masters() {
    // Same scenario as `stress()`, but with the transaction-level
    // observability layer armed: the runtime bound monitor must agree
    // that every completed transaction met its closed-form worst-case
    // bound, even over 1.5M cycles of saturating four-master traffic.
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(4)), memory);
    sys.enable_observability();
    populate(&mut sys);
    sys.run_for(1_500_000);
    let sys = sys;
    let monitor = sys.memory().monitor().unwrap();
    assert!(
        monitor.is_clean(),
        "{:?}",
        &monitor.errors()[..5.min(monitor.errors().len())]
    );
    // Every master made progress.
    for i in 0..4 {
        assert!(
            sys.accelerator(i).unwrap().jobs_completed() > 0,
            "{} starved",
            sys.accelerator(i).unwrap().name()
        );
    }
    // High sustained utilization: the system never wedged.
    let util = sys.memory().stats().utilization(sys.now());
    assert!(util > 0.8, "utilization {util}");
    // Outstanding work is bounded (no leak): the monitor's in-flight
    // count can never exceed what the queues and pipeline can hold.
    let outstanding = sys.memory().monitor().unwrap().reads_outstanding();
    assert!(outstanding < 64, "leaked outstanding reads: {outstanding}");
    // The runtime bound monitor checked real traffic and found every
    // transaction inside its analytical worst case.
    let report = sys.interconnect_ref().bound_report().unwrap();
    assert!(report.checked_reads > 1_000, "{report:?}");
    assert!(report.checked_writes > 1_000, "{report:?}");
    assert_eq!(
        report.violations,
        0,
        "bound violations under soak: {:?}",
        &sys.interconnect_ref().bound_violations()
            [..8.min(sys.interconnect_ref().bound_violations().len())]
    );
}

#[test]
fn smartconnect_soak_four_masters() {
    let sys = stress(SmartConnect::new(ScConfig::new(4)), 1_500_000);
    let monitor = sys.memory().monitor().unwrap();
    assert!(
        monitor.is_clean(),
        "{:?}",
        &monitor.errors()[..5.min(monitor.errors().len())]
    );
    for i in 0..4 {
        assert!(sys.accelerator(i).unwrap().jobs_completed() > 0);
    }
}

#[test]
fn hyperconnect_soak_with_row_policy_memory() {
    let mut memory = MemoryController::new(MemConfig::zcu102().row_policy(RowPolicy::default()));
    memory.attach_monitor();
    let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(2)), memory);
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd",
        0x1000_0000,
        1 << 20,
        BurstSize::B16,
        64,
        10,
        5,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "steal",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();
    sys.run_for(1_000_000);
    let monitor = sys.memory().monitor().unwrap();
    assert!(monitor.is_clean(), "{:?}", monitor.errors().first());
    let stats = sys.memory().stats();
    assert!(stats.row_hits + stats.row_misses > 0);
    // The streaming stealer should produce mostly row hits.
    assert!(stats.row_hits > stats.row_misses);
}

#[test]
fn tiny_buffer_configuration_never_deadlocks() {
    // Deliberately hostile sizing: minimal queues everywhere.
    let cfg = HcConfig {
        efifo_addr_depth: 1,
        efifo_data_depth: 2,
        efifo_resp_depth: 1,
        routing_depth: 2,
        ..HcConfig::new(2)
    };
    let mut memory = MemoryController::new(MemConfig::zcu102().pipeline_depth(1));
    memory.attach_monitor();
    let mut sys = SocSystem::new(HyperConnect::new(cfg), memory);
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "a",
        0x1000_0000,
        1 << 18,
        BurstSize::B4,
        32,
        5,
        1,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "b",
        0x2000_0000,
        1 << 18,
        BurstSize::B4,
        32,
        5,
        2,
    )))
    .unwrap();
    sys.run_for(500_000);
    for i in 0..2 {
        assert!(
            sys.accelerator(i).unwrap().jobs_completed() > 50,
            "master {i} made little progress: {}",
            sys.accelerator(i).unwrap().jobs_completed()
        );
    }
    assert!(sys.memory().monitor().unwrap().is_clean());
}

/// An order-insensitive fingerprint of everything observable after a
/// run: per-master completions plus the memory-side service counters.
/// Two runs with the same seeds must match exactly — the whole stack is
/// deterministic (the only randomness is the seeded xoshiro streams in
/// `RandomTraffic` and the SmartConnect's granularity draw).
fn fingerprint<I: AxiInterconnect>(sys: &SocSystem<I>) -> Vec<u64> {
    let stats = sys.memory().stats();
    let mut fp: Vec<u64> = (0..sys.num_accelerators())
        .map(|i| sys.accelerator(i).unwrap().jobs_completed())
        .collect();
    fp.extend([
        stats.reads_served,
        stats.writes_served,
        stats.beats_served,
        stats.bytes_served,
        stats.busy_cycles,
        stats.error_responses,
    ]);
    fp
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let hc_a = fingerprint(&stress(HyperConnect::new(HcConfig::new(4)), 200_000));
    let hc_b = fingerprint(&stress(HyperConnect::new(HcConfig::new(4)), 200_000));
    assert_eq!(
        hc_a, hc_b,
        "HyperConnect run diverged between same-seed runs"
    );

    let sc_a = fingerprint(&stress(SmartConnect::new(ScConfig::new(4)), 200_000));
    let sc_b = fingerprint(&stress(SmartConnect::new(ScConfig::new(4)), 200_000));
    assert_eq!(
        sc_a, sc_b,
        "SmartConnect run diverged between same-seed runs"
    );

    // A different SmartConnect seed must actually change the execution,
    // proving the fingerprint is sensitive enough to catch divergence.
    let sc_c = fingerprint(&stress(
        SmartConnect::new(ScConfig::new(4).seed(0xDEAD_BEEF)),
        200_000,
    ));
    assert_ne!(sc_a, sc_c, "fingerprint is insensitive to the seed");
}

#[test]
fn wrap_bursts_flow_end_to_end() {
    use axi::txn::ReadRequest;
    use sim::Component;
    // WRAP reads (cache-line fills) through the HyperConnect: passed
    // through unsplit, data returned in wrap order.
    let mut hc = HyperConnect::new(HcConfig::new(1));
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.memory_mut().fill_pattern(0x100, 64);
    let req = ReadRequest::new_wrap(0x120, 4, BurstSize::B8).unwrap();
    hc.port(0).ar.push(0, req.to_ar(1, 0)).unwrap();
    let mut data = Vec::new();
    for now in 0..2_000 {
        hc.tick(now);
        memory.tick(now, hc.mem_port());
        while let Some(r) = hc.port(0).r.pop_ready(now) {
            data.push(r);
        }
    }
    assert_eq!(data.len(), 4);
    assert!(data[3].last);
    // Wrap container is 32 bytes: [0x100, 0x120); starting at 0x120 the
    // container is [0x120, 0x140).
    let expected: Vec<Vec<u8>> = [0x120u64, 0x128, 0x130, 0x138]
        .iter()
        .map(|&a| memory.memory().read(a, 8))
        .collect();
    for (beat, want) in data.iter().zip(&expected) {
        assert_eq!(&beat.data, want);
    }
}
