//! Fault-injection acceptance tests: a misbehaving accelerator must
//! trigger structured violations, the hypervisor watchdog must decouple
//! it within one reservation period, and every well-behaved victim must
//! stay within its `analysis` worst-case bounds for the whole run —
//! before, during and after the fault (the paper's §III/§V isolation
//! argument, exercised end to end).

use axi::checker::ViolationKind;
use axi::lite::LiteBus;
use axi::types::{BurstSize, PortId};
use axi::{ArBeat, AxiPort};
use axi_hyperconnect::SocSystem;
use ha::dma::{Dma, DmaConfig};
use ha::fault::{BoundaryViolator, RogueReader, RunawayMaster, StalledWriter, WlastViolator};
use ha::traffic::PeriodicReader;
use hyperconnect::analysis::ServiceModel;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::{Hypervisor, WatchdogPolicy, WatchdogReason};
use mem::{MemConfig, MemoryController};
use sim::Cycle;

const HC_BASE: u64 = 0xA000_0000;
const PERIOD: u32 = 2_000;

/// Builds a hypervisor owning the given HyperConnect's register file.
/// Must be called before the interconnect moves into the `SocSystem`;
/// the AXI-Lite handle stays shared afterwards.
fn boot_hypervisor(hc: &HyperConnect) -> Hypervisor {
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let hv = Hypervisor::new(bus, HC_BASE).unwrap();
    hv.hc().set_period(PERIOD).unwrap();
    hv
}

/// The analysis bound every victim is held to: nominal-sized bursts
/// through an `ports`-port HyperConnect against the ZCU102 memory
/// model, with the default outstanding limit K=4 programmed at reset.
fn victim_model(ports: usize) -> ServiceModel {
    ServiceModel::hyperconnect(ports, 16, MemConfig::zcu102().first_word_latency).max_outstanding(4)
}

/// The full acceptance scenario: two well-behaved periodic readers
/// around a WLAST-corrupting writer. The interconnect reports the
/// violation, the watchdog decouples the offender within one
/// reservation period of the first report, and both victims' worst-case
/// read latencies stay within the analysis bound across the entire run.
#[test]
fn wlast_fault_is_reported_decoupled_and_victims_stay_bounded() {
    let hc = HyperConnect::new(HcConfig::new(3));
    let mut hv = boot_hypervisor(&hc);
    hv.set_watchdog_policy(
        PortId(1),
        WatchdogPolicy {
            violations_allowed: 0,
            outstanding_allowed: None,
            stall_polls_allowed: None,
        },
    );

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim_a",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(WlastViolator::new(
        "faulty",
        0x2000_0000,
        16,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim_b",
        0x3000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();

    // The hypervisor polls the watchdog registers every 100 cycles.
    let mut decoupled_at: Option<Cycle> = None;
    sys.run_for_with(40_000, |now, _sys| {
        if now % 100 != 0 {
            return;
        }
        let events = hv.poll_watchdog().unwrap();
        if decoupled_at.is_none() && !events.is_empty() {
            decoupled_at = Some(now);
        }
    });

    // 1. The fault produced at least one structured violation, on the
    //    right port and of the right kind.
    let violations = sys.interconnect_ref().violations(1);
    assert!(!violations.is_empty(), "no violation reported");
    let first = &violations[0];
    assert_eq!(first.kind, ViolationKind::WlastMismatch);
    assert_eq!(first.port, Some(1));
    assert!(
        sys.interconnect_ref()
            .violation_count(1, ViolationKind::WlastMismatch)
            >= 1
    );
    // The well-behaved ports reported nothing.
    assert_eq!(sys.interconnect_ref().total_violations(0), 0);
    assert_eq!(sys.interconnect_ref().total_violations(2), 0);

    // 2. The watchdog decoupled the offender within one reservation
    //    period of the first violation.
    let decoupled_at = decoupled_at.expect("watchdog never fired");
    assert!(hv.hc().is_decoupled(1).unwrap());
    assert!(!hv.hc().is_decoupled(0).unwrap());
    assert!(!hv.hc().is_decoupled(2).unwrap());
    assert!(
        decoupled_at - first.cycle <= PERIOD as u64,
        "decouple at {} but first violation at {} (period {})",
        decoupled_at,
        first.cycle,
        PERIOD
    );
    let event = &hv.watchdog_log()[0];
    assert_eq!(event.port, PortId(1));
    assert_eq!(event.reason, WatchdogReason::Violations);
    assert!(event.violations >= 1);

    // 3. Every victim's worst-case latency over the whole run — fault
    //    onset included — is within the analysis bound.
    let bound = victim_model(3).worst_case_read_latency();
    for port in [0usize, 2] {
        let observed = sys.interconnect_ref().read_latency(port).max().unwrap();
        assert!(
            observed <= bound,
            "victim on port {} saw {} > bound {}",
            port,
            observed,
            bound
        );
    }

    // 4. Victims keep progressing after the decoupling; the decoupled
    //    offender completes nothing more.
    let victim_jobs = sys.accelerator(0).unwrap().jobs_completed();
    let faulty_jobs = sys.accelerator(1).unwrap().jobs_completed();
    sys.run_for(10_000);
    assert!(sys.accelerator(0).unwrap().jobs_completed() > victim_jobs);
    assert_eq!(sys.accelerator(1).unwrap().jobs_completed(), faulty_jobs);
}

/// A writer that posts an address and never drives data would wedge an
/// unprotected write pipeline forever. Here the hang is reported, the
/// watchdog decouples the port, and the EXBAR's firewall beats complete
/// the granted burst so the victim's writes flow again.
#[test]
fn stalled_writer_cannot_wedge_the_write_path() {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut hv = boot_hypervisor(&hc);
    hv.set_watchdog_policy(
        PortId(1),
        WatchdogPolicy {
            violations_allowed: 0,
            outstanding_allowed: None,
            stall_polls_allowed: None,
        },
    );

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    // Write-only victim streaming 16-beat bursts.
    sys.add_accelerator(Box::new(Dma::new(
        "victim",
        DmaConfig {
            src_base: 0,
            dst_base: 0x2000_0000,
            read_bytes: 0,
            write_bytes: 16 * 1024,
            burst_beats: 16,
            max_outstanding: 1,
            jobs: None,
            size: BurstSize::B16,
        },
    )))
    .unwrap();
    sys.add_accelerator(Box::new(StalledWriter::new(
        "hung",
        0x3000_0000,
        16,
        BurstSize::B16,
    )))
    .unwrap();

    let mut decoupled_at: Option<Cycle> = None;
    sys.run_for_with(20_000, |now, _sys| {
        if now % 64 != 0 {
            return;
        }
        let events = hv.poll_watchdog().unwrap();
        if decoupled_at.is_none() && !events.is_empty() {
            decoupled_at = Some(now);
        }
    });

    // The hang was classified, the port decoupled, and the stranded
    // write burst completed with strobe-disabled firewall beats.
    assert!(
        sys.interconnect_ref()
            .violation_count(1, ViolationKind::HandshakeHang)
            >= 1,
        "hang not reported: {:?}",
        sys.interconnect_ref().violations(1)
    );
    assert!(decoupled_at.is_some(), "watchdog never fired");
    assert!(hv.hc().is_decoupled(1).unwrap());
    assert!(
        sys.interconnect_ref().firewall_beats() > 0,
        "firewall never completed the stranded burst"
    );

    // The victim makes progress after the decoupling...
    let jobs = sys.accelerator(0).unwrap().jobs_completed();
    sys.run_for(20_000);
    assert!(sys.accelerator(0).unwrap().jobs_completed() > jobs);
    // ...and its worst write latency is the steady-state bound plus the
    // bounded reaction window: a hung W channel genuinely suspends the
    // shared write pipeline until the hang detector fires
    // (`W_HANG_THRESHOLD` starved cycles) and the next watchdog poll
    // (every 64 cycles here) decouples the offender. No interconnect
    // can hide that window, but it is a constant, not an open-ended
    // denial of service.
    let reaction = hyperconnect::supervisor::W_HANG_THRESHOLD as u64 + 64;
    let bound = victim_model(2).worst_case_write_latency() + reaction;
    let observed = sys.interconnect_ref().write_latency(0).max().unwrap();
    assert!(observed <= bound, "victim saw {observed} > bound {bound}");
    // Nothing the stalled port did corrupted memory: the firewall beats
    // carry no strobes, so the victim's region is intact and the hung
    // port's target region was never written.
    assert!(sys.memory().stats().error_responses == 0);
}

/// Reads beyond the decoded address range earn real DECERRs end to end:
/// the memory reports them, the TS classifies them as address-decode
/// violations, the rogue master observes the error responses, and the
/// victim is untouched.
#[test]
fn rogue_reader_gets_decerr_and_victims_are_unaffected() {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut hv = boot_hypervisor(&hc);
    hv.set_watchdog_policy(
        PortId(1),
        WatchdogPolicy {
            violations_allowed: 2,
            outstanding_allowed: None,
            stall_polls_allowed: None,
        },
    );

    let memory = MemoryController::new(MemConfig::zcu102().decode_limit(0x4000_0000));
    let mut sys = SocSystem::new(hc, memory);
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(RogueReader::new(
        "rogue",
        0x8000_0000,
        16,
        BurstSize::B16,
    )))
    .unwrap();

    sys.run_for_with(20_000, |now, _sys| {
        if now % 100 == 0 {
            hv.poll_watchdog().unwrap();
        }
    });

    // The error propagated through every layer: memory decode → R
    // response → TS classification → watchdog decouple.
    assert!(sys.memory().stats().error_responses > 0);
    assert!(
        sys.interconnect_ref()
            .violation_count(1, ViolationKind::AddressDecode)
            >= 1,
        "{:?}",
        sys.interconnect_ref().violations(1)
    );
    let rogue = sys
        .accelerator(1)
        .unwrap()
        .as_any()
        .downcast_ref::<RogueReader>()
        .unwrap();
    assert!(rogue.error_responses() > 0, "rogue never saw its DECERRs");
    assert!(hv.hc().is_decoupled(1).unwrap());
    assert_eq!(hv.watchdog_log()[0].reason, WatchdogReason::Violations);

    // The victim never saw an error and stays within its bound.
    assert_eq!(sys.interconnect_ref().total_violations(0), 0);
    let bound = victim_model(2).worst_case_read_latency();
    let observed = sys.interconnect_ref().read_latency(0).max().unwrap();
    assert!(observed <= bound, "victim saw {observed} > bound {bound}");
    assert!(sys.accelerator(0).unwrap().jobs_completed() > 0);
}

/// INCR bursts crossing a 4 KiB boundary are detected at the TS on
/// arrival (before splitting hides them from the memory).
#[test]
fn boundary_crossing_bursts_are_reported() {
    let hc = HyperConnect::new(HcConfig::new(1));
    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.add_accelerator(Box::new(BoundaryViolator::new(
        "cross",
        0x1000_0000,
        16,
        BurstSize::B16,
    )))
    .unwrap();
    sys.run_for(2_000);
    assert!(
        sys.interconnect_ref()
            .violation_count(0, ViolationKind::Boundary4K)
            >= 1,
        "{:?}",
        sys.interconnect_ref().violations(0)
    );
    // Splitting still clamps the burst, so the memory stays clean.
    assert_eq!(sys.memory().stats().error_responses, 0);
}

/// A runaway master issuing protocol-legal reads as fast as the port
/// accepts them produces no violations — it is caught by the
/// outstanding-transaction counter instead.
#[test]
fn runaway_master_is_decoupled_on_outstanding_cap() {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut hv = boot_hypervisor(&hc);
    hv.set_watchdog_policy(
        PortId(1),
        WatchdogPolicy {
            violations_allowed: u32::MAX,
            outstanding_allowed: Some(2),
            stall_polls_allowed: None,
        },
    );

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(RunawayMaster::new(
        "runaway",
        0x3000_0000,
        1 << 20,
        64,
        BurstSize::B16,
    )))
    .unwrap();

    sys.run_for_with(20_000, |now, _sys| {
        if now % 50 == 0 {
            hv.poll_watchdog().unwrap();
        }
    });

    assert!(hv.hc().is_decoupled(1).unwrap());
    let event = &hv.watchdog_log()[0];
    assert_eq!(event.reason, WatchdogReason::Outstanding);
    assert!(event.outstanding > 2);
    // Legal traffic, so the interconnect reported no protocol
    // violations — the envelope breach is a resource-policy matter.
    assert_eq!(sys.interconnect_ref().total_violations(1), 0);
    // The victim is unharmed either way.
    let bound = victim_model(2).worst_case_read_latency();
    let observed = sys.interconnect_ref().read_latency(0).max().unwrap();
    assert!(observed <= bound, "victim saw {observed} > bound {bound}");
}

/// Stuck-VALID stall detection: a writer that asserts AWVALID and then
/// never drives a W beat freezes the port's progress fingerprint
/// (completed transactions and outstanding count both stop moving while
/// work is outstanding). With the violation and outstanding triggers
/// disabled, only the stall detector can catch it — and it does,
/// classifying the event as [`WatchdogReason::Stalled`].
#[test]
fn stuck_valid_writer_trips_the_stall_detector() {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut hv = boot_hypervisor(&hc);
    hv.set_watchdog_policy(
        PortId(1),
        WatchdogPolicy {
            violations_allowed: u32::MAX, // ignore the HandshakeHang report
            outstanding_allowed: None,
            stall_polls_allowed: Some(2),
        },
    );

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(StalledWriter::new(
        "stuck_valid",
        0x3000_0000,
        16,
        BurstSize::B16,
    )))
    .unwrap();

    let mut decoupled_at: Option<Cycle> = None;
    sys.run_for_with(10_000, |now, _sys| {
        if now % 100 != 0 {
            return;
        }
        let events = hv.poll_watchdog().unwrap();
        if decoupled_at.is_none() && !events.is_empty() {
            decoupled_at = Some(now);
        }
    });

    let decoupled_at = decoupled_at.expect("stall detector never fired");
    assert!(hv.hc().is_decoupled(1).unwrap());
    let event = &hv.watchdog_log()[0];
    assert_eq!(event.port, PortId(1));
    assert_eq!(event.reason, WatchdogReason::Stalled);
    assert!(
        event.outstanding >= 1,
        "stall tripped with nothing in flight"
    );
    // The fingerprint must be observed frozen for stall_polls_allowed+1
    // consecutive polls past the first sample before the trip.
    assert!(
        decoupled_at <= 100 * 5,
        "detection took too long: {decoupled_at}"
    );
    // The read-only victim never shared a pipeline with the hung W
    // channel, so it is held to the plain analysis bound.
    let bound = victim_model(2).worst_case_read_latency();
    let observed = sys.interconnect_ref().read_latency(0).max().unwrap();
    assert!(observed <= bound, "victim saw {observed} > bound {bound}");
}

/// A reader that issues one legal burst and then never accepts a single
/// R beat — RREADY wedged low forever. The response path backs up behind
/// its full eFIFO R queue; the transaction can never retire.
struct StuckReadyReader {
    posted: bool,
}

impl ha::Accelerator for StuckReadyReader {
    fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        if !self.posted && !port.ar.is_full() {
            // Longer than the eFIFO R queue (32 beats), so the burst can
            // never fully retire into the buffer: the consumer must pop.
            let beat = ArBeat::new(0x1080_0000, 64, BurstSize::B16).with_issued_at(now);
            port.ar.push(now, beat).expect("checked space");
            self.posted = true;
            return true;
        }
        // Never pops R: the consumer side of the handshake is wedged.
        false
    }
    fn name(&self) -> &str {
        "stuck_ready"
    }
    fn is_done(&self) -> bool {
        false
    }
    fn jobs_completed(&self) -> u64 {
        0
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_bool(self.posted);
    }
    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        self.posted = r.take_bool()?;
        Ok(())
    }
}

/// Stuck-READY stall detection: the wedged consumer issues no protocol
/// violation at all — every beat it *did* exchange was legal — yet its
/// read can never complete, so the progress fingerprint freezes with
/// one transaction outstanding. The stall detector classifies it,
/// decoupling grounds the blocked response path (the eFIFO accepts and
/// drops the stranded beats on the dead port's behalf), and the victim
/// resumes within a bounded reaction window.
#[test]
fn stuck_ready_reader_trips_the_stall_detector() {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut hv = boot_hypervisor(&hc);
    hv.set_watchdog_policy(
        PortId(1),
        WatchdogPolicy {
            violations_allowed: u32::MAX,
            outstanding_allowed: None,
            stall_polls_allowed: Some(2),
        },
    );

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(StuckReadyReader { posted: false }))
        .unwrap();

    let mut decoupled_at: Option<Cycle> = None;
    sys.run_for_with(10_000, |now, _sys| {
        if now % 100 != 0 {
            return;
        }
        let events = hv.poll_watchdog().unwrap();
        if decoupled_at.is_none() && !events.is_empty() {
            decoupled_at = Some(now);
        }
    });

    assert!(decoupled_at.is_some(), "stall detector never fired");
    assert!(hv.hc().is_decoupled(1).unwrap());
    let event = &hv.watchdog_log()[0];
    assert_eq!(event.port, PortId(1));
    assert_eq!(event.reason, WatchdogReason::Stalled);
    // Legal traffic throughout: the checker saw nothing.
    assert_eq!(sys.interconnect_ref().total_violations(1), 0);
    // The stranded burst drained into the decoupler's grounded R path.
    assert!(
        sys.interconnect_ref().dropped_responses(1) > 0,
        "decoupling never grounded the stranded R beats"
    );
    // Until the decouple, beats routed to the wedged port head-of-line
    // block the shared return path, so the victim is held to the bound
    // plus the stall-detection reaction window (frozen fingerprint must
    // persist for stall_polls_allowed+1 polls past the first sample).
    let reaction = 6 * 100u64;
    let bound = victim_model(2).worst_case_read_latency() + reaction;
    let observed = sys.interconnect_ref().read_latency(0).max().unwrap();
    assert!(observed <= bound, "victim saw {observed} > bound {bound}");
    // And it keeps progressing once the path is unclogged.
    let jobs = sys.accelerator(0).unwrap().jobs_completed();
    sys.run_for(10_000);
    assert!(sys.accelerator(0).unwrap().jobs_completed() > jobs);
}
