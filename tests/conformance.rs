//! Conformance goldens: per-channel propagation latencies of both
//! interconnect models, measured through the shared
//! [`axi::AxiInterconnect`] trait with one harness and pinned to the
//! paper's Fig. 3(a) numbers:
//!
//! | channel | HyperConnect | SmartConnect |
//! |---------|--------------|--------------|
//! | AR      | 4            | 12           |
//! | AW      | 4            | 12           |
//! | W       | 2            | 3            |
//! | R       | 2            | 11           |
//! | B       | 2            | 2            |
//!
//! W is the steady-state data-channel traversal (routing already
//! established by a granted AW), matching how the paper's FPGA timer
//! measures d_W. Any model change that shifts a pipeline stage fails
//! here with the exact channel named.

use axi::types::{AxiId, BurstSize};
use axi::{ArBeat, AwBeat, AxiInterconnect, AxiPort, BBeat, RBeat, WBeat};
use hyperconnect::{HcConfig, HyperConnect};
use sim::{Component, Cycle};
use smartconnect::{ScConfig, SmartConnect};

/// Per-channel propagation latencies in cycles.
#[derive(Debug, PartialEq, Eq)]
struct ChannelLatencies {
    ar: Cycle,
    aw: Cycle,
    w: Cycle,
    r: Cycle,
    b: Cycle,
}

/// Cycles with routing warm on both models (covers the SmartConnect's
/// 12-cycle address pipe with margin).
const WARMUP: Cycle = 20;

fn first_arrival(
    interconnect: &mut impl AxiInterconnect,
    from: Cycle,
    mut ready: impl FnMut(&mut dyn AxiInterconnect, Cycle) -> bool,
) -> Cycle {
    for now in from..from + 40 {
        interconnect.tick(now);
        if ready(interconnect, now) {
            return now - from;
        }
    }
    panic!("beat never arrived within 40 cycles");
}

fn drain(port: &mut AxiPort, now: Cycle) {
    while port.ar.pop_ready(now).is_some() {}
    while port.aw.pop_ready(now).is_some() {}
    while port.w.pop_ready(now).is_some() {}
}

/// Measures all five channels on fresh instances of one interconnect.
fn measure<I: AxiInterconnect + Component>(mk: impl Fn() -> I) -> ChannelLatencies {
    // AR: slave port 0 to the master port, quiet interconnect.
    let mut ic = mk();
    ic.port(0)
        .ar
        .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    let ar = first_arrival(&mut ic, 0, |ic, now| ic.mem_port().ar.has_ready(now));

    // AW: same measurement on the write-address channel.
    let mut ic = mk();
    ic.port(0)
        .aw
        .push(0, AwBeat::new(0x200, 1, BurstSize::B4))
        .unwrap();
    let aw = first_arrival(&mut ic, 0, |ic, now| ic.mem_port().aw.has_ready(now));

    // W: steady state — the AW won its grant during warmup, so the
    // measured beat sees only the data path.
    let mut ic = mk();
    ic.port(0)
        .aw
        .push(0, AwBeat::new(0x200, 2, BurstSize::B4))
        .unwrap();
    for now in 0..WARMUP {
        ic.tick(now);
        drain(ic.mem_port(), now);
    }
    ic.port(0)
        .w
        .push(WARMUP, WBeat::new(vec![1; 4], false))
        .unwrap();
    let w = first_arrival(&mut ic, WARMUP, |ic, now| ic.mem_port().w.has_ready(now));

    // R: memory to slave port, with the read's routing established.
    let mut ic = mk();
    ic.port(0)
        .ar
        .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    for now in 0..WARMUP {
        ic.tick(now);
        drain(ic.mem_port(), now);
    }
    ic.mem_port()
        .r
        .push(WARMUP, RBeat::new(AxiId(0), vec![0; 4], true))
        .unwrap();
    let r = first_arrival(&mut ic, WARMUP, |ic, now| ic.port(0).r.has_ready(now));

    // B: memory to slave port, after a complete write went through.
    let mut ic = mk();
    ic.port(0)
        .aw
        .push(0, AwBeat::new(0, 1, BurstSize::B4))
        .unwrap();
    ic.port(0).w.push(0, WBeat::new(vec![0; 4], true)).unwrap();
    for now in 0..WARMUP {
        ic.tick(now);
        drain(ic.mem_port(), now);
    }
    ic.mem_port().b.push(WARMUP, BBeat::new(AxiId(0))).unwrap();
    let b = first_arrival(&mut ic, WARMUP, |ic, now| ic.port(0).b.has_ready(now));

    ChannelLatencies { ar, aw, w, r, b }
}

#[test]
fn hyperconnect_matches_fig3a_goldens() {
    let measured = measure(|| HyperConnect::new(HcConfig::new(2)));
    assert_eq!(
        measured,
        ChannelLatencies {
            ar: 4,
            aw: 4,
            w: 2,
            r: 2,
            b: 2
        }
    );
}

#[test]
fn smartconnect_matches_fig3a_goldens() {
    let measured = measure(|| SmartConnect::new(ScConfig::new(2)));
    assert_eq!(
        measured,
        ChannelLatencies {
            ar: 12,
            aw: 12,
            w: 3,
            r: 11,
            b: 2
        }
    );
}

/// Arming the observability layer (metrics registry + runtime bound
/// monitor) must be timing-neutral: the instrumented fabric pins the
/// exact same Fig. 3(a) goldens, and the probes themselves complete
/// with a clean bound verdict.
#[test]
fn observability_is_timing_neutral_on_goldens() {
    let measured = measure(|| {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.enable_metrics();
        hc.enable_bound_monitor(hyperconnect::analysis::ServiceModel::hyperconnect(
            2, 16, 22,
        ));
        hc
    });
    assert_eq!(
        measured,
        ChannelLatencies {
            ar: 4,
            aw: 4,
            w: 2,
            r: 2,
            b: 2
        }
    );
}

/// The goldens hold regardless of port count — propagation is a
/// pipeline property, not an arbitration property.
#[test]
fn goldens_are_port_count_independent() {
    for ports in [1usize, 4, 8] {
        let hc = measure(move || HyperConnect::new(HcConfig::new(ports)));
        assert_eq!(hc.ar, 4, "HC AR with {ports} ports");
        assert_eq!(hc.r, 2, "HC R with {ports} ports");
        let sc = measure(move || SmartConnect::new(ScConfig::new(ports)));
        assert_eq!(sc.ar, 12, "SC AR with {ports} ports");
        assert_eq!(sc.r, 11, "SC R with {ports} ports");
    }
}
