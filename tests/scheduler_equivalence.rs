//! Scheduler-equivalence suite: the event-horizon fast-forward
//! scheduler must be *observationally identical* to naive per-cycle
//! stepping. Every scenario here runs twice with the same seeds — once
//! under `SchedulerMode::Naive`, once under `SchedulerMode::FastForward`
//! — and the two runs must produce byte-identical fingerprints: cycle
//! counts, per-master completions, memory-side service counters,
//! protocol-monitor tallies and structured violation logs.
//!
//! The suite also re-pins the Fig. 3(a) channel-latency goldens (the
//! paper's d_AR = d_AW = 4, d_R = d_W = d_B = 2 for the HyperConnect),
//! so a scheduler or component-hint change that warps timing is caught
//! at the source, and asserts that fast-forward actually skips cycles
//! on idle-heavy workloads (the optimization is live, not vacuous).

use axi::beat::{ArBeat, AwBeat, BBeat, RBeat, WBeat};
use axi::lite::LiteBus;
use axi::types::{AxiId, BurstSize, PortId};
use axi::AxiInterconnect;
use axi_hyperconnect::{SchedulerMode, SocSystem};
use ha::chaidnn::{Chaidnn, ChaidnnConfig, Layer};
use ha::dma::{Dma, DmaConfig};
use ha::fault::WlastViolator;
use ha::traffic::{BandwidthStealer, PeriodicReader, RandomTraffic};
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::{Hypervisor, WatchdogPolicy};
use mem::{MemConfig, MemoryController};
use sim::{Component, Cycle};
use smartconnect::{ScConfig, SmartConnect};

/// A byte-exact fingerprint of everything observable after a run.
/// Debug-formats the violation log so even diagnostic strings and
/// cycle stamps must match between schedulers.
fn fingerprint<I: AxiInterconnect>(sys: &SocSystem<I>, violations: &str) -> String {
    let stats = sys.memory().stats();
    let mut fp = format!("now={}", sys.now());
    for i in 0..sys.num_accelerators() {
        fp.push_str(&format!(
            " {}={}",
            sys.accelerator(i).unwrap().name(),
            sys.accelerator(i).unwrap().jobs_completed()
        ));
    }
    fp.push_str(&format!(
        " mem=[{} {} {} {} {} {}]",
        stats.reads_served,
        stats.writes_served,
        stats.beats_served,
        stats.bytes_served,
        stats.busy_cycles,
        stats.error_responses,
    ));
    if let Some(monitor) = sys.memory().monitor() {
        fp.push_str(&format!(
            " mon=[{} {} {}]",
            monitor.reads_completed(),
            monitor.writes_completed(),
            monitor.errors().len(),
        ));
    }
    fp.push_str(" violations=");
    fp.push_str(violations);
    fp
}

/// The four-master soak scenario from `tests/stress.rs`, parameterized
/// by scheduler mode.
fn stress<I: AxiInterconnect>(interconnect: I, mode: SchedulerMode, cycles: u64) -> SocSystem<I> {
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    let mut sys = SocSystem::new(interconnect, memory);
    sys.set_scheduler(mode);
    populate(&mut sys);
    sys.run_for(cycles);
    sys
}

/// The four-master accelerator mix of the soak scenario.
fn populate<I: AxiInterconnect>(sys: &mut SocSystem<I>) {
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd0",
        0x1000_0000,
        1 << 20,
        BurstSize::B16,
        64,
        10,
        11,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "steal",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "periodic",
        0x5000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        100,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(RandomTraffic::new(
        "rnd1",
        0x7000_0000,
        1 << 20,
        BurstSize::B4,
        32,
        50,
        23,
    )))
    .unwrap();
}

#[test]
fn stress_suite_fingerprints_identical() {
    const CYCLES: u64 = 300_000;
    let naive = stress(
        HyperConnect::new(HcConfig::new(4)),
        SchedulerMode::Naive,
        CYCLES,
    );
    let fast = stress(
        HyperConnect::new(HcConfig::new(4)),
        SchedulerMode::FastForward,
        CYCLES,
    );
    let hc_violations = |sys: &SocSystem<HyperConnect>| {
        format!(
            "{:?}",
            (0..4)
                .map(|i| sys.interconnect_ref().violations(i))
                .collect::<Vec<_>>()
        )
    };
    assert_eq!(
        fingerprint(&naive, &hc_violations(&naive)),
        fingerprint(&fast, &hc_violations(&fast)),
        "HyperConnect stress run diverged between schedulers"
    );

    let naive = stress(
        SmartConnect::new(ScConfig::new(4)),
        SchedulerMode::Naive,
        CYCLES,
    );
    let fast = stress(
        SmartConnect::new(ScConfig::new(4)),
        SchedulerMode::FastForward,
        CYCLES,
    );
    assert_eq!(
        fingerprint(&naive, "[]"),
        fingerprint(&fast, "[]"),
        "SmartConnect stress run diverged between schedulers"
    );
}

/// The observability layer is part of the equivalence contract: every
/// latency sample, histogram bucket, bandwidth count, occupancy gauge
/// and bound-monitor verdict is recorded at event sites inside `tick`,
/// so the full metrics snapshot must be *byte-identical* between naive
/// stepping and fast-forward — a skipped cycle that would have produced
/// (or suppressed) a sample shows up here as a JSON diff.
#[test]
fn metrics_snapshot_byte_identical_across_schedulers() {
    const CYCLES: u64 = 300_000;
    let run = |mode: SchedulerMode| {
        let mut memory = MemoryController::new(MemConfig::zcu102());
        memory.attach_monitor();
        let mut sys = SocSystem::new(HyperConnect::new(HcConfig::new(4)), memory);
        sys.set_scheduler(mode);
        sys.enable_observability();
        // Sparse traffic with long idle gaps: the fast path must skip
        // real spans *and* still record identical metrics.
        sys.add_accelerator(Box::new(RandomTraffic::new(
            "sparse0",
            0x1000_0000,
            1 << 20,
            BurstSize::B16,
            64,
            300,
            11,
        )))
        .unwrap();
        sys.add_accelerator(Box::new(RandomTraffic::new(
            "sparse1",
            0x3000_0000,
            1 << 20,
            BurstSize::B16,
            32,
            500,
            23,
        )))
        .unwrap();
        sys.add_accelerator(Box::new(PeriodicReader::new(
            "periodic",
            0x5000_0000,
            1 << 20,
            16,
            BurstSize::B16,
            1_000,
        )))
        .unwrap();
        sys.add_accelerator(Box::new(RandomTraffic::new(
            "sparse2",
            0x7000_0000,
            1 << 20,
            BurstSize::B4,
            32,
            400,
            47,
        )))
        .unwrap();
        sys.run_for(CYCLES);
        sys
    };
    let naive = run(SchedulerMode::Naive);
    let fast = run(SchedulerMode::FastForward);
    let naive_json = naive.metrics_snapshot_json().expect("metrics armed");
    let fast_json = fast.metrics_snapshot_json().expect("metrics armed");
    assert!(
        fast.skipped_cycles() > 0,
        "fast-forward never skipped — the comparison is vacuous"
    );
    assert_eq!(
        naive_json, fast_json,
        "metrics snapshot diverged between schedulers"
    );
    // The snapshot carried real content, and a clean bound verdict.
    assert!(naive_json.contains("\"read_txns\":{\"count\":"));
    let report = naive.interconnect_ref().bound_report().unwrap();
    assert!(report.checked_reads > 0, "{report:?}");
    assert_eq!(report.violations, 0, "{report:?}");
}

/// The fault-injection scenario from `tests/fault_injection.rs`: a
/// WLAST-corrupting writer between two periodic victims, with the
/// hypervisor watchdog polling through a `run_for_with` hook. The
/// violation log, the decoupling cycle and the hook cadence must all
/// be identical under both schedulers.
fn fault_run(mode: SchedulerMode) -> (String, Option<Cycle>, u64) {
    const HC_BASE: u64 = 0xA000_0000;
    let hc = HyperConnect::new(HcConfig::new(3));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).unwrap();
    hv.hc().set_period(2_000).unwrap();
    hv.set_watchdog_policy(
        PortId(1),
        WatchdogPolicy {
            violations_allowed: 0,
            outstanding_allowed: None,
            stall_polls_allowed: None,
        },
    );

    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim_a",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(WlastViolator::new(
        "faulty",
        0x2000_0000,
        16,
        BurstSize::B16,
    )))
    .unwrap();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim_b",
        0x3000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();

    let mut decoupled_at: Option<Cycle> = None;
    let mut hook_calls = 0u64;
    sys.run_for_with(40_000, |now, _sys| {
        hook_calls += 1;
        if now % 100 != 0 {
            return;
        }
        let events = hv.poll_watchdog().unwrap();
        if decoupled_at.is_none() && !events.is_empty() {
            decoupled_at = Some(now);
        }
    });

    let violations = format!(
        "{:?}",
        (0..3)
            .map(|i| sys.interconnect_ref().violations(i))
            .collect::<Vec<_>>()
    );
    (fingerprint(&sys, &violations), decoupled_at, hook_calls)
}

#[test]
fn fault_suite_violation_logs_byte_identical() {
    let (fp_naive, decoupled_naive, hooks_naive) = fault_run(SchedulerMode::Naive);
    let (fp_fast, decoupled_fast, hooks_fast) = fault_run(SchedulerMode::FastForward);
    assert_eq!(fp_naive, fp_fast, "fault run diverged between schedulers");
    assert_eq!(decoupled_naive, decoupled_fast, "decoupling cycle moved");
    // The hook must keep exact per-cycle cadence even across skips.
    assert_eq!(hooks_naive, 40_000);
    assert_eq!(hooks_fast, 40_000);
    // Sanity: the scenario actually reported the fault.
    assert!(fp_naive.contains("WlastMismatch"), "{fp_naive}");
    assert!(decoupled_naive.is_some(), "watchdog never fired");
}

/// Compute-heavy DNN frames: long bus-idle stretches that the
/// fast-forward scheduler must skip without moving the completion
/// cycle of `run_until_done` by even one cycle.
fn chaidnn_run(mode: SchedulerMode) -> (SocSystem<HyperConnect>, Cycle, bool) {
    let layers = vec![
        Layer {
            name: "conv1",
            weight_bytes: 4 << 10,
            input_bytes: 2 << 10,
            output_bytes: 2 << 10,
            compute_cycles: 20_000,
        },
        Layer {
            name: "fc",
            weight_bytes: 8 << 10,
            input_bytes: 1 << 10,
            output_bytes: 512,
            compute_cycles: 35_000,
        },
    ];
    let dnn = Chaidnn::new(
        "dnn",
        layers,
        ChaidnnConfig {
            frames: Some(2),
            ..ChaidnnConfig::default()
        },
    );
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(1)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(dnn)).unwrap();
    let outcome = sys.run_until_done(10_000_000);
    let done = outcome.is_done();
    let now = sys.now();
    (sys, now, done)
}

#[test]
fn chaidnn_completion_cycle_exact_and_compute_skipped() {
    let (naive_sys, naive_now, naive_done) = chaidnn_run(SchedulerMode::Naive);
    let (fast_sys, fast_now, fast_done) = chaidnn_run(SchedulerMode::FastForward);
    assert!(naive_done && fast_done, "DNN did not finish");
    assert_eq!(naive_now, fast_now, "completion cycle moved");
    assert_eq!(fingerprint(&naive_sys, "[]"), fingerprint(&fast_sys, "[]"));
    assert_eq!(naive_sys.skipped_cycles(), 0);
    // Four compute phases of 20k/35k cycles each: the fast path must
    // have skipped the bulk of them.
    assert!(
        fast_sys.skipped_cycles() > 100_000,
        "fast-forward only skipped {} cycles",
        fast_sys.skipped_cycles()
    );
}

/// Idle-heavy periodic traffic: a short burst every 5 000 cycles. This
/// is the scenario class the optimization targets; equivalence must
/// hold *and* the skip counter must show the scheduler is live.
#[test]
fn idle_heavy_periodic_equivalence_with_skips() {
    let run = |mode: SchedulerMode| {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(1)),
            MemoryController::new(MemConfig::zcu102()),
        );
        sys.set_scheduler(mode);
        sys.add_accelerator(Box::new(PeriodicReader::new(
            "sparse",
            0x1000_0000,
            1 << 20,
            16,
            BurstSize::B16,
            5_000,
        )))
        .unwrap();
        sys.run_for(1_000_000);
        sys
    };
    let naive = run(SchedulerMode::Naive);
    let fast = run(SchedulerMode::FastForward);
    assert_eq!(fingerprint(&naive, "[]"), fingerprint(&fast, "[]"));
    assert!(
        fast.skipped_cycles() > 500_000,
        "idle-heavy run only skipped {} of 1M cycles",
        fast.skipped_cycles()
    );
}

/// `run_until_done` must report the same completion cycle under both
/// schedulers for a plain DMA workload, and an attached waveform probe
/// must force cycle-exact stepping (no skips while sampling).
#[test]
fn run_until_done_and_waveform_disable_skipping() {
    let run = |mode: SchedulerMode, wave: bool| {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(2)),
            MemoryController::new(MemConfig::zcu102()),
        );
        sys.set_scheduler(mode);
        if wave {
            sys.attach_waveform();
        }
        sys.add_accelerator(Box::new(Dma::new(
            "dma0",
            DmaConfig {
                jobs: Some(3),
                ..DmaConfig::reader(64 * 1024, 16, BurstSize::B16)
            },
        )))
        .unwrap();
        let outcome = sys.run_until_done(5_000_000);
        assert!(outcome.is_done());
        sys
    };
    let naive = run(SchedulerMode::Naive, false);
    let fast = run(SchedulerMode::FastForward, false);
    assert_eq!(naive.now(), fast.now(), "completion cycle moved");
    assert_eq!(fingerprint(&naive, "[]"), fingerprint(&fast, "[]"));

    let traced = run(SchedulerMode::FastForward, true);
    assert_eq!(traced.now(), naive.now());
    assert_eq!(
        traced.skipped_cycles(),
        0,
        "waveform capture must force naive stepping"
    );
}

/// Re-pins the Fig. 3(a) channel-latency goldens at the source: the
/// HyperConnect's per-channel propagation latencies (paper, ZCU102:
/// d_AR = d_AW = 4 cycles, d_R = d_W = d_B = 2 cycles) measured with
/// the same beat-injection probes the bench harness uses. A component
/// `next_event` hint that warps pipeline timing shows up here.
#[test]
fn fig3a_channel_latency_goldens_hold() {
    const PROBE_LIMIT: Cycle = 200;
    fn tick_until(
        hc: &mut HyperConnect,
        start: Cycle,
        mut probe: impl FnMut(&mut HyperConnect, Cycle) -> bool,
    ) -> Cycle {
        for now in start..start + PROBE_LIMIT {
            hc.tick(now);
            if probe(hc, now) {
                return now;
            }
        }
        panic!("probe not observed within {PROBE_LIMIT} cycles");
    }

    // d_AR: inject at the slave port, observe at the master port.
    let mut hc = HyperConnect::new(HcConfig::new(2));
    hc.port(0)
        .ar
        .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    let d_ar = tick_until(&mut hc, 0, |hc, now| hc.mem_port().ar.has_ready(now));
    assert_eq!(d_ar, 4, "d_AR golden");

    // d_AW.
    let mut hc = HyperConnect::new(HcConfig::new(2));
    hc.port(0)
        .aw
        .push(0, AwBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    let d_aw = tick_until(&mut hc, 0, |hc, now| hc.mem_port().aw.has_ready(now));
    assert_eq!(d_aw, 4, "d_AW golden");

    // d_R: establish routing with a read, then time a data beat.
    let mut hc = HyperConnect::new(HcConfig::new(2));
    hc.port(0)
        .ar
        .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    let granted = tick_until(&mut hc, 0, |hc, now| {
        hc.mem_port().ar.pop_ready(now).is_some()
    });
    let inject = granted + 1;
    hc.mem_port()
        .r
        .push(inject, RBeat::new(AxiId(0), vec![0; 4], true))
        .unwrap();
    let seen = tick_until(&mut hc, inject, |hc, now| hc.port(0).r.has_ready(now));
    assert_eq!(seen - inject, 2, "d_R golden");

    // d_W: steady-state write-data beat after routing is established.
    let mut hc = HyperConnect::new(HcConfig::new(2));
    hc.port(0)
        .aw
        .push(0, AwBeat::new(0x100, 2, BurstSize::B4))
        .unwrap();
    hc.port(0).w.push(0, WBeat::new(vec![0; 4], false)).unwrap();
    let first = tick_until(&mut hc, 0, |hc, now| {
        hc.mem_port().w.pop_ready(now).is_some()
    });
    let inject = first + 1;
    hc.port(0)
        .w
        .push(inject, WBeat::new(vec![0; 4], true))
        .unwrap();
    let seen = tick_until(&mut hc, inject, |hc, now| hc.mem_port().w.has_ready(now));
    assert_eq!(seen - inject, 2, "d_W golden");

    // d_B: complete the write's routing, then inject the response.
    let mut hc = HyperConnect::new(HcConfig::new(2));
    hc.port(0)
        .aw
        .push(0, AwBeat::new(0x100, 1, BurstSize::B4))
        .unwrap();
    hc.port(0).w.push(0, WBeat::new(vec![0; 4], true)).unwrap();
    let drained = tick_until(&mut hc, 0, |hc, now| {
        hc.mem_port().aw.pop_ready(now);
        hc.mem_port().w.pop_ready(now).is_some()
    });
    let inject = drained + 1;
    hc.mem_port().b.push(inject, BBeat::new(AxiId(0))).unwrap();
    let seen = tick_until(&mut hc, inject, |hc, now| hc.port(0).b.has_ready(now));
    assert_eq!(seen - inject, 2, "d_B golden");
}

/// Tight-budget reservation with sparse demand: between bursts every
/// component reports a far horizon, but port 0 still holds a finite
/// budget, so the central unit must keep surfacing the period boundary
/// as its event horizon. Dropping the finite-budget guard in
/// `CentralUnit::boundary_horizon` lets fast-forward jump across
/// recharges and diverge from the naive run (periods elapsed, budget
/// stalls and issue counts all drift) — this test pins the fix.
fn tight_budget_run(mode: SchedulerMode) -> (String, Cycle) {
    let hc = HyperConnect::new(HcConfig::new(2));
    hc.regs()
        .write32(hyperconnect::regfile::offsets::PERIOD, 1_000);
    let p0 =
        hyperconnect::regfile::port_block_offset(0) + hyperconnect::regfile::offsets::PORT_BUDGET;
    hc.regs().write32(p0, 2);
    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.set_scheduler(mode);
    // Bursty but sparse: 8 subs of demand every 5_000 cycles, idle in
    // between.
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim",
        0x1000_0000,
        1 << 20,
        128,
        BurstSize::B16,
        5_000,
    )))
    .unwrap();
    sys.run_for(100_000);
    let stats = sys.memory().stats();
    let hc = sys.interconnect_ref();
    let ts = hc.port_stats(0);
    let fp = format!(
        "now={} mem=[{} {} {}] periods={} subs={} stall={} txn_total={}",
        sys.now(),
        stats.reads_served,
        stats.beats_served,
        stats.busy_cycles,
        hc.periods_elapsed(),
        ts.subs_issued,
        ts.budget_stall_cycles,
        hc.regs().read32(
            hyperconnect::regfile::port_block_offset(0)
                + hyperconnect::regfile::offsets::PORT_TXN_TOTAL
        ),
    );
    (fp, sys.skipped_cycles())
}

#[test]
fn tight_budget_reservation_identical_under_fast_forward() {
    let (naive, naive_skipped) = tight_budget_run(SchedulerMode::Naive);
    let (fast, fast_skipped) = tight_budget_run(SchedulerMode::FastForward);
    let (sharded, _) = tight_budget_run(SchedulerMode::Sharded { workers: 2 });
    assert_eq!(naive, fast);
    assert_eq!(naive, sharded);
    // The equivalence must not be vacuous: fast-forward really skipped
    // idle spans (without ever skipping a recharge boundary).
    assert_eq!(naive_skipped, 0);
    assert!(fast_skipped > 0, "fast-forward never engaged");
}
