//! QoS traffic-regulation scenarios: per-port credit regulators keep
//! hard real-time victims inside *tightened* worst-case bounds while
//! best-effort swarms run free — under every scheduler, byte-identical.
//!
//! Three layers of evidence:
//! 1. a mixed-criticality matrix (hard-RT victim + best-effort DMA
//!    swarm + bursty ChaiDNN) where the armed bound monitor verifies
//!    the victim against the regulated (tighter) bound with zero
//!    violations under naive, fast-forward and sharded scheduling;
//! 2. a 16-port noisy-neighbor suite where regulated HyperConnect
//!    holds the victim's tightened bound while SmartConnect — no
//!    regulation, positional round-robin — blows straight through it;
//! 3. a cascaded tree where regulation programmed on a leaf register
//!    file keeps working at depth, byte-identically across schedulers.

use axi::observe::ObsChannel;
use axi::types::BurstSize;
use axi::AxiInterconnect;
use axi_hyperconnect::{SchedulerMode, SocSystem, TopologyBuilder};
use ha::chaidnn::{Chaidnn, ChaidnnConfig, Layer};
use ha::dma::{Dma, DmaConfig};
use ha::traffic::PeriodicReader;
use hyperconnect::regfile::{offsets, port_block_offset};
use hyperconnect::regulate::{CreditRegulator, RegulatorConfig};
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use proptest::prelude::*;
use smartconnect::{ScConfig, SmartConnect};

/// Programs one port's regulator over the AXI-Lite register file — the
/// same path a hypervisor takes, no model internals touched.
fn regulate(hc: &HyperConnect, port: usize, rate: u32, burst: u32, out_cap: u32) {
    let block = port_block_offset(port);
    hc.regs().write32(block + offsets::PORT_REG_RATE, rate);
    hc.regs().write32(block + offsets::PORT_REG_BURST, burst);
    hc.regs()
        .write32(block + offsets::PORT_REG_OUT_CAP, out_cap);
}

/// The hard-RT victim: one 16-beat read burst every 200 cycles.
fn victim() -> PeriodicReader {
    PeriodicReader::new("victim", 0x1000_0000, 1 << 20, 16, BurstSize::B16, 200)
}

/// One free-running best-effort DMA of the swarm.
fn swarm_dma(i: u64) -> Dma {
    Dma::new(
        format!("swarm{i}"),
        DmaConfig {
            src_base: 0x3000_0000 + i * 0x0100_0000,
            jobs: None,
            ..DmaConfig::reader(256 * 1024, 16, BurstSize::B16)
        },
    )
}

/// The bursty ChaiDNN: weight/feature bursts separated by compute.
fn bursty_dnn() -> Chaidnn {
    Chaidnn::new(
        "dnn",
        vec![
            Layer {
                name: "conv",
                weight_bytes: 8 << 10,
                input_bytes: 4 << 10,
                output_bytes: 4 << 10,
                compute_cycles: 3_000,
            },
            Layer {
                name: "fc",
                weight_bytes: 16 << 10,
                input_bytes: 2 << 10,
                output_bytes: 1 << 10,
                compute_cycles: 5_000,
            },
        ],
        ChaidnnConfig::default(),
    )
}

/// Mixed-criticality matrix run: returns the full metrics snapshot,
/// the bound-violation count, the victim's armed read bound and the
/// unregulated global read bound.
fn mixed_criticality(mode: SchedulerMode) -> (String, usize, u64, u64, u64) {
    let hc = HyperConnect::new(HcConfig::new(4));
    hc.regs().write32(offsets::REG_WINDOW, 256);
    // Aggressors throttled hard; the victim (port 0) runs unregulated.
    for p in 1..4 {
        regulate(&hc, p, 2, 2, 2);
    }
    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(victim())).unwrap();
    sys.add_accelerator(Box::new(swarm_dma(0))).unwrap();
    sys.add_accelerator(Box::new(swarm_dma(1))).unwrap();
    sys.add_accelerator(Box::new(bursty_dnn())).unwrap();
    sys.enable_observability();
    sys.run_for(60_000);
    let victim_jobs = sys.accelerator(0).unwrap().jobs_completed();
    let mon = sys.interconnect_ref().bound_monitor().expect("armed");
    (
        sys.metrics_snapshot_json().expect("metrics armed"),
        mon.violations().len(),
        mon.port_read_bound(0),
        mon.read_bound(),
        victim_jobs,
    )
}

#[test]
fn mixed_criticality_matrix_holds_tightened_victim_bound() {
    let (json, violations, victim_bound, global_bound, victim_jobs) =
        mixed_criticality(SchedulerMode::Naive);
    // The monitor armed the regulated (tighter) bound for the victim
    // and nothing — victim or best-effort — violated it.
    assert!(
        victim_bound < global_bound,
        "regulation did not tighten the victim bound ({victim_bound} vs {global_bound})"
    );
    assert_eq!(violations, 0, "bound violations under regulation");
    assert!(victim_jobs > 100, "victim starved: {victim_jobs} bursts");
    // Regulated ports surface throttle counters in the snapshot; the
    // unregulated victim keeps the flat schema.
    assert!(json.contains("\"regulator\":{\"throttle_events\":"));
    let port0 = json.split("{\"port\":1").next().unwrap();
    assert!(
        !port0.contains("\"regulator\""),
        "unregulated port 0 grew a regulator section"
    );
}

#[test]
fn mixed_criticality_matrix_byte_identical_across_schedulers() {
    let naive = mixed_criticality(SchedulerMode::Naive);
    let fast = mixed_criticality(SchedulerMode::FastForward);
    let sharded = mixed_criticality(SchedulerMode::Sharded { workers: 2 });
    assert_eq!(naive, fast, "naive vs fast-forward diverged");
    assert_eq!(naive, sharded, "naive vs sharded diverged");
}

/// 16-port noisy-neighbor run on HyperConnect with regulation: the
/// victim shares the fabric with fifteen greedy DMAs, each capped to a
/// single in-flight transaction.
fn hc_noisy_neighbor(mode: SchedulerMode) -> (usize, u64, u64, u64) {
    let hc = HyperConnect::new(HcConfig::new(16));
    for p in 1..16 {
        regulate(&hc, p, u32::MAX, 1, 1);
    }
    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.set_scheduler(mode);
    sys.add_accelerator(Box::new(victim())).unwrap();
    for i in 0..15 {
        sys.add_accelerator(Box::new(swarm_dma(i))).unwrap();
    }
    sys.enable_observability();
    sys.run_for(60_000);
    let mon = sys.interconnect_ref().bound_monitor().expect("armed");
    let worst = sys
        .interconnect_ref()
        .metrics()
        .expect("metrics armed")
        .port(0)
        .read_txns
        .max()
        .expect("victim completed reads");
    (
        mon.violations().len(),
        mon.port_read_bound(0),
        mon.read_bound(),
        worst,
    )
}

/// The same 16-port workload on SmartConnect, which has no regulator.
/// SmartConnect's registry tracks channel-level latencies only, so
/// this returns the victim's worst AR-grant latency — a *lower* bound
/// on its worst end-to-end read latency (data return and memory
/// service come on top), which makes the comparison conservative.
fn sc_noisy_neighbor() -> u64 {
    let mut sc = SmartConnect::new(ScConfig::new(16));
    sc.enable_metrics();
    let mut sys = SocSystem::new(sc, MemoryController::new(MemConfig::zcu102()));
    sys.add_accelerator(Box::new(victim())).unwrap();
    for i in 0..15 {
        sys.add_accelerator(Box::new(swarm_dma(i))).unwrap();
    }
    sys.run_for(60_000);
    sys.interconnect_ref()
        .metrics()
        .expect("metrics armed")
        .port(0)
        .channel(ObsChannel::Ar)
        .latency
        .max()
        .expect("victim issued reads")
}

#[test]
fn noisy_neighbor_16_ports_regulated_hc_holds_where_smartconnect_does_not() {
    let (violations, victim_bound, global_bound, hc_worst) =
        hc_noisy_neighbor(SchedulerMode::FastForward);
    assert_eq!(violations, 0, "regulated HyperConnect blew a bound");
    assert!(
        victim_bound < global_bound,
        "out-capped swarm did not tighten the victim bound"
    );
    assert!(
        hc_worst <= victim_bound,
        "victim latency {hc_worst} above the tightened bound {victim_bound}"
    );
    // SmartConnect, same workload, no regulation: even the victim's
    // worst *grant* latency (a lower bound on end-to-end) lands beyond
    // the bound regulation guarantees on HyperConnect.
    let sc_worst = sc_noisy_neighbor();
    assert!(
        sc_worst > victim_bound,
        "SmartConnect victim worst {sc_worst} unexpectedly within {victim_bound}"
    );
}

#[test]
fn noisy_neighbor_byte_identical_across_schedulers() {
    let naive = hc_noisy_neighbor(SchedulerMode::Naive);
    let fast = hc_noisy_neighbor(SchedulerMode::FastForward);
    let sharded = hc_noisy_neighbor(SchedulerMode::Sharded { workers: 3 });
    assert_eq!(naive, fast);
    assert_eq!(naive, sharded);
}

/// Two-level tree with regulation programmed on a leaf register file:
/// `victim` and a greedy DMA share leaf0; leaf1 carries another DMA.
/// Returns (topology snapshot, aggressor throttle events, aggressor
/// subs issued, victim bursts completed).
fn tree_run(mode: SchedulerMode, regulated: bool) -> (String, u32, u64, u64) {
    let mut b = TopologyBuilder::new();
    let leaf0_hc = {
        let mut hc = HyperConnect::new(HcConfig::new(2));
        hc.enable_metrics();
        if regulated {
            hc.regs().write32(offsets::REG_WINDOW, 128);
            regulate(&hc, 1, 2, 1, 1);
        }
        hc
    };
    let root = b
        .add_interconnect("root", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let leaf0 = b.add_interconnect("leaf0", leaf0_hc).unwrap();
    let leaf1 = b
        .add_interconnect("leaf1", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.cascade(leaf0, root, 0).unwrap();
    b.cascade(leaf1, root, 1).unwrap();
    let v = b.add_accelerator("victim", Box::new(victim())).unwrap();
    b.attach(v, leaf0, 0).unwrap();
    let a0 = b.add_accelerator("swarm0", Box::new(swarm_dma(0))).unwrap();
    b.attach(a0, leaf0, 1).unwrap();
    let a1 = b.add_accelerator("swarm1", Box::new(swarm_dma(1))).unwrap();
    b.attach(a1, leaf1, 0).unwrap();
    b.connect_memory(root, mem).unwrap();
    let mut topo = b.build().unwrap();
    topo.set_scheduler(mode);
    topo.run_for(40_000);
    let leaf = topo
        .interconnect_as::<HyperConnect>(leaf0)
        .expect("leaf0 is a HyperConnect");
    let throttle = leaf
        .regs()
        .read32(port_block_offset(1) + offsets::PORT_REG_THROTTLE);
    let aggressor_subs = leaf.port_stats(1).subs_issued;
    // The victim was added first: insertion order index 0.
    let victim_jobs = topo.accelerator(0).expect("victim").jobs_completed();
    (
        topo.metrics_snapshot_json(),
        throttle,
        aggressor_subs,
        victim_jobs,
    )
}

#[test]
fn regulation_works_at_tree_depth_under_all_schedulers() {
    let naive = tree_run(SchedulerMode::Naive, true);
    let fast = tree_run(SchedulerMode::FastForward, true);
    let sharded = tree_run(SchedulerMode::Sharded { workers: 2 }, true);
    assert_eq!(naive, fast, "regulated tree diverged under fast-forward");
    assert_eq!(naive, sharded, "regulated tree diverged under sharding");
    let (_, throttle, regulated_subs, victim_regulated) = naive;
    assert!(throttle > 0, "leaf regulator never throttled");
    // Against the unregulated baseline the aggressor is visibly paced
    // and the victim's progress does not degrade.
    let (_, baseline_throttle, baseline_subs, victim_baseline) =
        tree_run(SchedulerMode::Naive, false);
    assert_eq!(baseline_throttle, 0);
    assert!(
        regulated_subs < baseline_subs,
        "regulation did not pace the aggressor ({regulated_subs} vs {baseline_subs})"
    );
    assert!(victim_regulated >= victim_baseline);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Liveness: a regulator with a nonzero rate can never deadlock a
    /// demanding port — from any cycle, credits become available again
    /// within one refill window, so across `windows` full windows at
    /// least one consume per window succeeds.
    #[test]
    fn regulator_with_nonzero_rate_never_deadlocks(
        rate in 1u32..5,
        burst in 1u32..6,
        window in 1u32..40,
        windows in 2u64..20,
    ) {
        let cfg = RegulatorConfig {
            rate,
            burst,
            out_cap: hyperconnect::regulate::OUT_CAP_UNLIMITED,
            window,
        };
        let mut reg = CreditRegulator::default();
        reg.sync(0, cfg);
        let horizon = windows * u64::from(window);
        let mut issued = 0u64;
        let mut last_issue = 0u64;
        for now in 0..horizon {
            if reg.read_available(now) {
                reg.consume_read(now);
                issued += 1;
                last_issue = now;
            } else {
                // Blocked ports always learn a finite wake-up cycle
                // within one window.
                let refill = reg.next_refill(now);
                prop_assert!(refill > now && refill - now <= u64::from(window));
            }
        }
        prop_assert!(issued >= windows - 1, "starved: {} issues in {} windows", issued, windows);
        prop_assert!(horizon - last_issue <= 2 * u64::from(window));
    }

    /// An unlimited-rate regulator is inert regardless of burst/window
    /// programming: the full metrics snapshot — every latency, every
    /// gauge — is byte-identical to a run that never touched the
    /// regulator registers.
    #[test]
    fn unlimited_rate_is_byte_identical_to_unregulated(
        burst in 1u32..8,
        window in 1u32..200,
    ) {
        let run = |program: bool| {
            let hc = HyperConnect::new(HcConfig::new(2));
            if program {
                hc.regs().write32(offsets::REG_WINDOW, window);
                let block = port_block_offset(1);
                hc.regs().write32(block + offsets::PORT_REG_BURST, burst);
                // Rate and out-cap stay unlimited: the regulator must
                // remain inert.
            }
            let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
            sys.add_accelerator(Box::new(victim())).unwrap();
            sys.add_accelerator(Box::new(swarm_dma(0))).unwrap();
            sys.enable_observability();
            sys.run_for(3_000);
            sys.metrics_snapshot_json().expect("metrics armed")
        };
        prop_assert_eq!(run(true), run(false));
    }
}
