//! Acceptance tests for the topology graph layer: deep cascades stay
//! byte-identical between naive and fast-forward scheduling, metrics
//! namespace per interconnect instance, the hypervisor watchdog
//! decouples faults at any tree level, and the builder rejects every
//! misconfiguration with a typed error.

use axi::types::{BurstSize, PortId};
use axi::AxiInterconnect;
use axi_hyperconnect::{SchedulerMode, SocSystem, TopologyBuilder, TopologyError};
use ha::dma::{Dma, DmaConfig};
use ha::fault::WlastViolator;
use ha::traffic::PeriodicReader;
use ha::Accelerator;
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use sim::{RunOutcome, Runner};
use smartconnect::{ScConfig, SmartConnect};

fn copy_dma(i: u64) -> Box<dyn Accelerator> {
    Box::new(Dma::new(
        format!("dma{i}"),
        DmaConfig {
            src_base: 0x1000_0000 + i * 0x0100_0000,
            dst_base: 0x5000_0000 + i * 0x0100_0000,
            read_bytes: 8 * 1024,
            write_bytes: 8 * 1024,
            burst_beats: 32,
            size: BurstSize::B16,
            max_outstanding: 4,
            jobs: Some(1),
        },
    ))
}

/// A 3-level HC → HC → HC chain with two DMAs at the deepest level and
/// one DMA at each intermediate level.
fn build_three_level_cascade(mode: SchedulerMode) -> axi_hyperconnect::SocTopology {
    let mut b = TopologyBuilder::new();
    let root = b
        .add_interconnect("root", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let mid = b
        .add_interconnect("mid", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let leaf = b
        .add_interconnect("leaf", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.cascade(mid, root, 0).unwrap();
    b.cascade(leaf, mid, 0).unwrap();
    b.connect_memory(root, mem).unwrap();
    for (i, (ic, port)) in [(leaf, 0), (leaf, 1), (mid, 1), (root, 1)]
        .into_iter()
        .enumerate()
    {
        let d = b
            .add_accelerator(format!("d{i}"), copy_dma(i as u64))
            .unwrap();
        b.attach(d, ic, port).unwrap();
    }
    let mut topo = b.build().unwrap();
    topo.set_scheduler(mode);
    topo
}

#[test]
fn three_level_cascade_is_identical_under_both_schedulers() {
    let mut naive = build_three_level_cascade(SchedulerMode::Naive);
    let mut fast = build_three_level_cascade(SchedulerMode::FastForward);
    let out_naive = naive.run_until_done(10_000_000);
    let out_fast = fast.run_until_done(10_000_000);
    assert!(out_naive.is_done(), "{out_naive}");
    assert_eq!(out_naive, out_fast, "fast-forward diverged from naive");
    assert_eq!(naive.now(), fast.now());
    assert!(fast.skipped_cycles() > 0, "nothing was fast-forwarded");
    assert_eq!(naive.skipped_cycles(), 0);
    // Same observable state on every hop: per-port stats of each level
    // and the bridge beat counters.
    for label in ["root", "mid", "leaf"] {
        let id_n = naive.node_by_label(label).unwrap();
        let id_f = fast.node_by_label(label).unwrap();
        let hc_n = naive.interconnect_as::<HyperConnect>(id_n).unwrap();
        let hc_f = fast.interconnect_as::<HyperConnect>(id_f).unwrap();
        for p in 0..2 {
            assert_eq!(
                hc_n.port_stats(p).subs_issued,
                hc_f.port_stats(p).subs_issued,
                "{label} port {p} diverged"
            );
        }
    }
    for label in ["mid", "leaf"] {
        let id_n = naive.node_by_label(label).unwrap();
        let id_f = fast.node_by_label(label).unwrap();
        let s_n = naive.bridge_stats(id_n).unwrap();
        let s_f = fast.bridge_stats(id_f).unwrap();
        assert_eq!(
            (s_n.beats_down, s_n.beats_up),
            (s_f.beats_down, s_f.beats_up)
        );
        assert!(s_n.beats_down > 0);
    }
    // Data integrity through three levels.
    let mem_id = naive.node_by_label("ddr").unwrap();
    let memory = naive.memory(mem_id).unwrap();
    for i in 0..4u64 {
        let dst = 0x5000_0000 + i * 0x0100_0000;
        assert!(
            memory.memory().verify_pattern(dst, dst, 8 * 1024),
            "dma{i} corrupted through the cascade"
        );
    }
}

fn build_hc_under_smartconnect(mode: SchedulerMode) -> axi_hyperconnect::SocTopology {
    let mut b = TopologyBuilder::new();
    let root = b
        .add_interconnect("sc_root", SmartConnect::new(ScConfig::new(2)))
        .unwrap();
    let leaf = b
        .add_interconnect("hc_leaf", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.cascade(leaf, root, 0).unwrap();
    b.connect_memory(root, mem).unwrap();
    for (i, (ic, port)) in [(leaf, 0), (leaf, 1), (root, 1)].into_iter().enumerate() {
        let d = b
            .add_accelerator(format!("d{i}"), copy_dma(i as u64))
            .unwrap();
        b.attach(d, ic, port).unwrap();
    }
    let mut topo = b.build().unwrap();
    topo.set_scheduler(mode);
    topo
}

#[test]
fn hyperconnect_under_smartconnect_is_identical_under_both_schedulers() {
    let mut naive = build_hc_under_smartconnect(SchedulerMode::Naive);
    let mut fast = build_hc_under_smartconnect(SchedulerMode::FastForward);
    let out_naive = naive.run_until_done(10_000_000);
    let out_fast = fast.run_until_done(10_000_000);
    assert!(out_naive.is_done(), "{out_naive}");
    assert_eq!(out_naive, out_fast, "fast-forward diverged from naive");
    assert!(fast.skipped_cycles() > 0);
    for i in 0..3 {
        assert_eq!(
            naive.accelerator(i).unwrap().jobs_completed(),
            fast.accelerator(i).unwrap().jobs_completed()
        );
    }
    let mem_id = naive.node_by_label("ddr").unwrap();
    let memory = naive.memory(mem_id).unwrap();
    for i in 0..3u64 {
        let dst = 0x5000_0000 + i * 0x0100_0000;
        assert!(memory.memory().verify_pattern(dst, dst, 8 * 1024));
    }
}

#[test]
fn metrics_are_namespaced_per_interconnect_instance() {
    let mut b = TopologyBuilder::new();
    let mut root_hc = HyperConnect::new(HcConfig::new(2));
    let mut leaf_hc = HyperConnect::new(HcConfig::new(2));
    root_hc.enable_metrics();
    leaf_hc.enable_metrics();
    let root = b.add_interconnect("tree_root", root_hc).unwrap();
    let leaf = b.add_interconnect("tree_leaf", leaf_hc).unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.cascade(leaf, root, 0).unwrap();
    b.connect_memory(root, mem).unwrap();
    let d0 = b.add_accelerator("d0", copy_dma(0)).unwrap();
    let d1 = b.add_accelerator("d1", copy_dma(1)).unwrap();
    b.attach(d0, leaf, 0).unwrap();
    b.attach(d1, root, 1).unwrap();
    let mut topo = b.build().unwrap();
    assert!(topo.run_until_done(10_000_000).is_done());

    // Each instance's registry is stamped with its node label.
    for (id, label) in [(root, "tree_root"), (leaf, "tree_leaf")] {
        let hc = topo.interconnect_as::<HyperConnect>(id).unwrap();
        let metrics = hc.metrics().expect("metrics enabled");
        assert_eq!(metrics.instance(), label);
    }
    // The tree snapshot keys every section on node labels, so the two
    // HyperConnects don't collide.
    let json = topo.metrics_snapshot_json();
    assert!(json.contains("\"schema\":\"axi-hyperconnect/topology-metrics/v1\""));
    assert!(json.contains("\"node\":\"tree_root\""));
    assert!(json.contains("\"node\":\"tree_leaf\""));
    assert!(json.contains("\"node\":\"ddr\""));
    assert_eq!(json.matches("\"model\":\"HyperConnect\"").count(), 2);
    // The leaf appears in the bridge section with real traffic counted.
    assert!(json.contains("\"beats_down\""));
    let stats = topo.bridge_stats(leaf).unwrap();
    assert!(stats.beats_down > 0 && stats.beats_up > 0);
}

#[test]
fn watchdog_decouples_a_faulty_accelerator_on_a_leaf() {
    use axi::lite::LiteBus;
    use hypervisor::{Hypervisor, WatchdogPolicy};

    const LEAF_BASE: u64 = 0xA000_0000;
    const PERIOD: u32 = 2_000;

    let leaf_hc = HyperConnect::new(HcConfig::new(2));
    let mut bus = LiteBus::new();
    bus.map(LEAF_BASE, 0x1000, leaf_hc.regs().clone());
    let mut hv = Hypervisor::new(bus, LEAF_BASE).unwrap();
    hv.hc().set_period(PERIOD).unwrap();
    hv.set_watchdog_policy(
        PortId(1),
        WatchdogPolicy {
            violations_allowed: 0,
            outstanding_allowed: None,
            stall_polls_allowed: None,
        },
    );

    let mut b = TopologyBuilder::new();
    let root = b
        .add_interconnect("root", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let leaf = b.add_interconnect("leaf", leaf_hc).unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.cascade(leaf, root, 0).unwrap();
    b.connect_memory(root, mem).unwrap();
    let victim_leaf = b
        .add_accelerator(
            "victim_leaf",
            Box::new(PeriodicReader::new(
                "victim_leaf",
                0x1000_0000,
                1 << 20,
                16,
                BurstSize::B16,
                40,
            )),
        )
        .unwrap();
    let faulty = b
        .add_accelerator(
            "faulty",
            Box::new(WlastViolator::new(
                "faulty",
                0x2000_0000,
                16,
                BurstSize::B16,
            )),
        )
        .unwrap();
    let victim_root = b
        .add_accelerator(
            "victim_root",
            Box::new(PeriodicReader::new(
                "victim_root",
                0x3000_0000,
                1 << 20,
                16,
                BurstSize::B16,
                40,
            )),
        )
        .unwrap();
    b.attach(victim_leaf, leaf, 0).unwrap();
    b.attach(faulty, leaf, 1).unwrap();
    b.attach(victim_root, root, 1).unwrap();
    let mut topo = b.build().unwrap();

    // The hypervisor polls the *leaf's* watchdog registers while the
    // whole tree runs.
    let mut decoupled_at = None;
    topo.run_for_with(40_000, |now, _topo| {
        if now % 100 != 0 {
            return;
        }
        let events = hv.poll_watchdog().unwrap();
        if decoupled_at.is_none() && !events.is_empty() {
            decoupled_at = Some(now);
        }
    });
    assert!(decoupled_at.is_some(), "watchdog never fired on the leaf");
    assert!(hv.hc().is_decoupled(1).unwrap());
    assert!(!hv.hc().is_decoupled(0).unwrap());

    // The leaf reported the violation; both victims keep working after
    // the fault is fenced off.
    let leaf_hc = topo.interconnect_as::<HyperConnect>(leaf).unwrap();
    assert!(!leaf_hc.violations(1).is_empty());
    assert_eq!(leaf_hc.total_violations(0), 0);
    let before = (
        topo.accelerator(0).unwrap().jobs_completed(),
        topo.accelerator(2).unwrap().jobs_completed(),
    );
    topo.run_for(40_000);
    assert!(topo.accelerator(0).unwrap().jobs_completed() > before.0);
    assert!(topo.accelerator(2).unwrap().jobs_completed() > before.1);
}

#[test]
fn stall_diagnostics_name_the_quiet_tree() {
    let mut b = TopologyBuilder::new();
    let root = b
        .add_interconnect("root", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    let d = b.add_accelerator("d0", copy_dma(0)).unwrap();
    b.attach(d, root, 0).unwrap();
    b.connect_memory(root, mem).unwrap();
    let mut topo = b.build().unwrap();
    assert!(topo.run_until_done(10_000_000).is_done());

    // With every job finished nothing can ever progress again; the
    // runner's stall report names the component(s) that moved last.
    let outcome = Runner::new()
        .start_cycle(topo.now())
        .stall_limit(1_000)
        .run_until(&mut topo, |_| false);
    let RunOutcome::Stalled(_, diagnostics) = &outcome else {
        panic!("expected a stall, got {outcome}");
    };
    assert!(
        !diagnostics.last_active.is_empty(),
        "stall attribution lost the active set"
    );
    // The last movement in a drained run is the response path: memory
    // and/or the interconnect above it.
    for name in &diagnostics.last_active {
        assert!(
            ["root", "ddr", "d0"].contains(&name.as_str()),
            "unknown component {name:?} in stall diagnostics"
        );
    }
    assert!(outcome.to_string().contains("stalled at cycle"));
}

#[test]
fn facade_matches_raw_topology_cycle_for_cycle() {
    // The flat SocSystem facade and a hand-built single-interconnect
    // topology must be the same machine.
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(2)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.add_accelerator(copy_dma(0)).unwrap();
    sys.add_accelerator(copy_dma(1)).unwrap();
    let out_sys = sys.run_until_done(10_000_000);

    let mut b = TopologyBuilder::new();
    let ic = b
        .add_interconnect("hc", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.connect_memory(ic, mem).unwrap();
    let d0 = b.add_accelerator("d0", copy_dma(0)).unwrap();
    let d1 = b.add_accelerator("d1", copy_dma(1)).unwrap();
    b.attach(d0, ic, 0).unwrap();
    b.attach(d1, ic, 1).unwrap();
    let mut topo = b.build().unwrap();
    let out_topo = topo.run_until_done(10_000_000);

    assert!(out_sys.is_done());
    assert_eq!(out_sys, out_topo);
    assert_eq!(sys.now(), topo.now());
    assert_eq!(sys.skipped_cycles(), topo.skipped_cycles());
}

#[test]
fn builder_rejects_kind_mismatches_and_foreign_handles() {
    let mut b = TopologyBuilder::new();
    let ic = b
        .add_interconnect("hc", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::ideal()))
        .unwrap();
    let acc = b.add_accelerator("d", copy_dma(0)).unwrap();
    // Wrong kinds in every slot.
    assert!(matches!(
        b.attach(mem, ic, 0).unwrap_err(),
        TopologyError::KindMismatch { .. }
    ));
    assert!(matches!(
        b.attach(acc, mem, 0).unwrap_err(),
        TopologyError::KindMismatch { .. }
    ));
    assert!(matches!(
        b.connect_memory(ic, acc).unwrap_err(),
        TopologyError::KindMismatch { .. }
    ));
    assert!(matches!(
        b.cascade(acc, ic, 0).unwrap_err(),
        TopologyError::KindMismatch { .. }
    ));
    // A handle from a different (larger) builder is rejected, not
    // misinterpreted.
    let mut other = TopologyBuilder::new();
    other
        .add_interconnect("a", HyperConnect::new(HcConfig::new(1)))
        .unwrap();
    other
        .add_interconnect("b", HyperConnect::new(HcConfig::new(1)))
        .unwrap();
    other
        .add_interconnect("c", HyperConnect::new(HcConfig::new(1)))
        .unwrap();
    let foreign = other
        .add_interconnect("dd", HyperConnect::new(HcConfig::new(1)))
        .unwrap();
    assert!(matches!(
        b.attach(acc, foreign, 0).unwrap_err(),
        TopologyError::UnknownNode { .. }
    ));
}

#[test]
fn builder_rejects_double_driven_memory() {
    let mut b = TopologyBuilder::new();
    let ic0 = b
        .add_interconnect("hc0", HyperConnect::new(HcConfig::new(1)))
        .unwrap();
    let ic1 = b
        .add_interconnect("hc1", HyperConnect::new(HcConfig::new(1)))
        .unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::ideal()))
        .unwrap();
    b.connect_memory(ic0, mem).unwrap();
    assert_eq!(
        b.connect_memory(ic1, mem).unwrap_err(),
        TopologyError::MemoryAlreadyBound {
            label: "ddr".to_owned()
        }
    );
}

#[test]
fn two_root_forest_with_independent_memories() {
    // Two PS ports: each root interconnect drives its own memory
    // controller; both subtrees complete independently.
    let mut b = TopologyBuilder::new();
    let hc0 = b
        .add_interconnect("hc0", HyperConnect::new(HcConfig::new(1)))
        .unwrap();
    let hc1 = b
        .add_interconnect("hc1", HyperConnect::new(HcConfig::new(1)))
        .unwrap();
    let mem0 = b
        .add_memory("ddr0", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    let mem1 = b
        .add_memory("ddr1", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.connect_memory(hc0, mem0).unwrap();
    b.connect_memory(hc1, mem1).unwrap();
    let d0 = b.add_accelerator("d0", copy_dma(0)).unwrap();
    let d1 = b.add_accelerator("d1", copy_dma(1)).unwrap();
    b.attach(d0, hc0, 0).unwrap();
    b.attach(d1, hc1, 0).unwrap();
    let mut topo = b.build().unwrap();
    assert!(topo.run_until_done(10_000_000).is_done());
    for (label, i) in [("ddr0", 0u64), ("ddr1", 1)] {
        let id = topo.node_by_label(label).unwrap();
        let dst = 0x5000_0000 + i * 0x0100_0000;
        assert!(topo
            .memory(id)
            .unwrap()
            .memory()
            .verify_pattern(dst, dst, 8 * 1024));
    }
}

#[test]
fn topology_exports_an_integration_design() {
    let mut b = TopologyBuilder::new();
    let root = b
        .add_interconnect("root", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let leaf = b
        .add_interconnect("leaf", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::ideal()))
        .unwrap();
    b.cascade(leaf, root, 0).unwrap();
    b.connect_memory(root, mem).unwrap();
    let d0 = b.add_accelerator("d0", copy_dma(0)).unwrap();
    b.attach(d0, leaf, 0).unwrap();
    let topo = b.build().unwrap();

    let design = topo.export_design();
    let conns: Vec<String> = design
        .connections
        .iter()
        .map(|c| format!("{} -> {}", c.from, c.to))
        .collect();
    assert!(conns.contains(&"leaf.M00_AXI -> root.S00_AXI".to_string()));
    assert!(conns.contains(&"d0.M_AXI -> leaf.S00_AXI".to_string()));
    assert!(conns.contains(&"root.M00_AXI -> ps.ddr".to_string()));
    assert!(conns.contains(&"ps.M_AXI_HPM0 -> leaf.S_AXI_CTRL".to_string()));
    assert_eq!(design.instances.len(), 3);
}
