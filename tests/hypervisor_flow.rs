//! Full hypervisor workflow over a live system: integration (IP-XACT),
//! domain creation, bandwidth partitioning, interrupt routing and
//! run-time health enforcement — the paper's §IV framework end to end.

use axi::lite::LiteBus;
use axi::types::{BurstSize, PortId};
use axi_hyperconnect::SocSystem;
use ha::dma::{Dma, DmaConfig};
use ha::traffic::BandwidthStealer;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::integrator::{ComponentDesc, Design};
use hypervisor::{Criticality, Hypervisor, MonitorPolicy};
use mem::{MemConfig, MemoryController};

const HC_BASE: u64 = 0xA000_0000;

#[test]
fn integration_then_runtime_management() {
    // --- integration time: the system integrator assembles the design.
    let design = Design::assemble(
        ComponentDesc::hyperconnect(2),
        vec![
            ComponentDesc::accelerator("critical_dma"),
            ComponentDesc::accelerator("untrusted_gen"),
        ],
    )
    .expect("valid design");
    assert_eq!(design.accelerators.len(), 2);
    let xml = design.interconnect.to_ipxact_xml();
    assert!(xml.contains("axi_hyperconnect"));

    // --- boot: the hypervisor probes and owns the control interface.
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).unwrap();
    let crit = hv.create_domain("critical", Criticality::Safety);
    let best = hv.create_domain("untrusted", Criticality::BestEffort);
    hv.assign_port(crit, PortId(0)).unwrap();
    hv.assign_port(best, PortId(1)).unwrap();
    hv.hc().set_period(10_000).unwrap();
    hv.set_bandwidth_shares(&[70, 30], MemConfig::zcu102().first_word_latency)
        .unwrap();
    // The generator declared 100 sub-txns/period; its 30% budget (186
    // at this period) still lets it exceed that, so the monitor trips.
    hv.set_monitor_policy(
        PortId(1),
        MonitorPolicy {
            declared_txns_per_period: 100,
            violations_allowed: 1,
        },
    );

    // --- runtime: the critical DMA works in bounded jobs; the
    // untrusted generator behaves at first.
    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.add_accelerator(Box::new(Dma::new(
        "critical_dma",
        DmaConfig {
            read_bytes: 64 * 1024,
            write_bytes: 0,
            burst_beats: 16,
            jobs: None,
            ..DmaConfig::case_study()
        },
    )))
    .unwrap();
    sys.add_accelerator(Box::new(BandwidthStealer::new(
        "untrusted_gen",
        0x3000_0000,
        1 << 20,
        256,
        BurstSize::B16,
    )))
    .unwrap();

    // Run several periods; the stealer's budget (30% of capacity) is
    // above its declared 100 sub-txns/period, so the monitor trips.
    let mut decoupled = false;
    for _ in 0..8 {
        sys.run_for(10_000);
        for port in sys.take_irq_events() {
            hv.route_irq(port).unwrap();
        }
        if !hv.poll_health().unwrap().is_empty() {
            decoupled = true;
            break;
        }
    }
    assert!(decoupled, "the untrusted generator must be decoupled");
    assert!(hv.hc().is_decoupled(1).unwrap());
    assert!(!hv.hc().is_decoupled(0).unwrap());

    // Each domain received exactly its own accelerator's completion
    // interrupts (the stealer reports one per finished burst).
    assert!(hv.domain(crit).unwrap().total_irqs() > 0);
    let crit_jobs = sys.accelerator(0).unwrap().jobs_completed();
    assert_eq!(hv.domain(crit).unwrap().total_irqs(), crit_jobs);

    // The critical DMA keeps making progress after the decoupling.
    let jobs_at_decouple = sys.accelerator(0).unwrap().jobs_completed();
    sys.run_for(100_000);
    assert!(sys.accelerator(0).unwrap().jobs_completed() > jobs_at_decouple);

    // Operator intervention: recouple and verify traffic resumes.
    hv.recouple(PortId(1)).unwrap();
    let stolen_before = sys.accelerator(1).unwrap().jobs_completed();
    sys.run_for(50_000);
    assert!(sys.accelerator(1).unwrap().jobs_completed() > stolen_before);
}

#[test]
fn per_domain_counters_match_device_counters() {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let hv = Hypervisor::new(bus, HC_BASE).unwrap();
    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.add_accelerator(Box::new(Dma::new(
        "d0",
        DmaConfig {
            read_bytes: 16 * 1024, // 1024 beats = 64 subs of 16
            write_bytes: 0,
            burst_beats: 16,
            jobs: Some(1),
            ..DmaConfig::case_study()
        },
    )))
    .unwrap();
    assert!(sys.run_until_done(1_000_000).is_done());
    // 16 KiB at 16 B/beat = 1024 beats = 64 nominal sub-transactions.
    assert_eq!(hv.hc().txns_total(0).unwrap(), 64);
    assert_eq!(hv.hc().txns_total(1).unwrap(), 0);
}
