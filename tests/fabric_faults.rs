//! End-to-end fabric/memory fault injection and data integrity: the
//! seeded memory-side injector and the `FaultyBridge` wrapper corrupt
//! real traffic, the `ScoreboardMaster` oracle proves every mismatch is
//! announced (or catches the silent ones when protection is off), the
//! retry policy absorbs transient SLVERRs within its closed-form bound,
//! and the hypervisor quarantines hard-error regions through the
//! `ERR_TOTAL` health register path.

use axi::fault::{FaultyBridge, FaultyBridgeConfig};
use axi::lite::LiteBus;
use axi::retry::RetryPolicy;
use axi::types::{BurstSize, PortId};
use axi::AxiPort;
use axi_hyperconnect::SocSystem;
use ha::dma::{Dma, DmaConfig};
use ha::scoreboard::ScoreboardMaster;
use ha::traffic::PeriodicReader;
use ha::Accelerator;
use hyperconnect::analysis::ServiceModel;
use hyperconnect::{HcConfig, HyperConnect};
use hypervisor::{HcDriver, Hypervisor, IntegrityPolicy};
use mem::{MemConfig, MemFaultConfig, MemoryController, RegionRemap};

const HC_BASE: u64 = 0xA000_0000;
const ORACLE_BASE: u64 = 0x2000_0000;
const ORACLE_SPAN: u64 = 16 * 256;

fn oracle(seed: u64) -> ScoreboardMaster {
    ScoreboardMaster::new("oracle", ORACLE_BASE, ORACLE_SPAN, 16, BurstSize::B16, seed).jobs(25)
}

fn oracle_stats(
    sys: &SocSystem<HyperConnect>,
    port: usize,
) -> (ha::scoreboard::ScoreboardStats, bool) {
    let sb = sys
        .accelerator(port)
        .expect("oracle port")
        .as_any()
        .downcast_ref::<ScoreboardMaster>()
        .expect("scoreboard on oracle port");
    (sb.stats(), sb.is_done())
}

/// Unprotected single-bit flips reach the master as wrong payloads with
/// OK responses — the oracle must flag every one as silent corruption.
#[test]
fn scoreboard_catches_silent_flips_through_the_full_system() {
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(2)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.memory_mut()
        .attach_fault_injector(MemFaultConfig::new(7).flip_single(0.6));
    sys.add_accelerator(Box::new(oracle(3))).unwrap();
    sys.run_for(40_000);
    let (s, done) = oracle_stats(&sys, 0);
    assert!(done, "{s:?}");
    assert!(s.silent_corruptions > 0, "{s:?}");
    assert_eq!(s.announced_errors, 0, "flips were silent, not announced");
    let inj = sys.memory().fault_stats().expect("injector armed");
    assert!(inj.single_flips > 0);
    assert_eq!(inj.corrected, 0, "no ECC armed");
}

/// The same flip stream under the ECC model: every single-bit flip is
/// detected and corrected in-line, so the oracle sees clean data and
/// the injector accounts every correction.
#[test]
fn ecc_scrubs_the_same_flips_end_to_end() {
    let mut sys = SocSystem::new(
        HyperConnect::new(HcConfig::new(2)),
        MemoryController::new(MemConfig::zcu102()),
    );
    sys.memory_mut()
        .attach_fault_injector(MemFaultConfig::new(7).flip_single(0.6).ecc(true));
    sys.add_accelerator(Box::new(oracle(3))).unwrap();
    sys.run_for(40_000);
    let (s, done) = oracle_stats(&sys, 0);
    assert!(done, "{s:?}");
    assert_eq!(s.silent_corruptions, 0, "{s:?}");
    assert_eq!(s.bursts_verified, 25);
    let inj = sys.memory().fault_stats().expect("injector armed");
    assert!(inj.corrected > 0, "{inj:?}");
    assert_eq!(inj.silent_flips(), 0, "{inj:?}");
}

/// Transient SLVERR bursts through the full interconnect: the retry
/// policy re-issues them with capped exponential backoff, every burst
/// eventually completes with correct data, the worst completion stays
/// within the analysis bound, and the `ERR_TOTAL` health register
/// surfaced the announced errors to the (would-be) hypervisor.
#[test]
fn transient_slverr_bursts_retry_within_the_derived_bound() {
    let policy = RetryPolicy {
        max_attempts: 12,
        backoff_base: 2,
        backoff_cap: 64,
    };
    let hc = HyperConnect::new(HcConfig::new(3));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let drv = HcDriver::probe(&bus, HC_BASE).expect("HyperConnect at HC_BASE");

    let first_word = MemConfig::zcu102().first_word_latency;
    let model = ServiceModel::hyperconnect(3, 16, first_word).max_outstanding(4);
    let mut sys = SocSystem::new(hc, MemoryController::new(MemConfig::zcu102()));
    sys.memory_mut()
        .attach_fault_injector(MemFaultConfig::new(11).spurious_slverr(0.25));
    sys.add_accelerator(Box::new(oracle(5).policy(policy)))
        .unwrap();
    sys.add_accelerator(Box::new(PeriodicReader::new(
        "victim",
        0x1000_0000,
        1 << 20,
        16,
        BurstSize::B16,
        40,
    )))
    .unwrap();
    sys.run_for(60_000);

    let (s, done) = oracle_stats(&sys, 0);
    assert!(done, "{s:?}");
    assert_eq!(s.silent_corruptions, 0, "{s:?}");
    assert_eq!(s.aborted_ops, 0, "{s:?}");
    assert_eq!(s.bursts_verified, 25);
    assert!(s.retries > 0, "fault rate 0.25 must trigger retries");
    let bound = model.retry_completion_bound(&policy, s.worst_faults_per_op + 1);
    assert!(
        s.worst_completion <= bound,
        "worst {} exceeds bound {bound}",
        s.worst_completion
    );
    // The announced errors are visible through the health register the
    // hypervisor polls. The injector is memory-side, so both the oracle
    // and the victim accumulate per-port counts.
    assert!(drv.err_total(0).expect("ERR_TOTAL register") > 0);
    assert_eq!(
        drv.err_total(2).expect("ERR_TOTAL register"),
        0,
        "idle port"
    );
}

/// A `FaultyBridge` on the fabric edge corrupting R payloads: requests
/// pass unfaulted, flipped read data arrives with OK responses, and the
/// oracle convicts every flip as silent corruption.
#[test]
fn faulty_bridge_flips_are_caught_by_the_oracle() {
    let mut sb = ScoreboardMaster::new("sb", 0x1000, 4096, 4, BurstSize::B4, 9).jobs(15);
    let mut bridge = FaultyBridge::new(FaultyBridgeConfig::new(21).flip_r(0.5));
    let mut ctrl = MemoryController::new(MemConfig::ideal());
    let mut up = AxiPort::default();
    let mut down = AxiPort::default();
    for now in 0..6_000 {
        sb.tick(now, &mut up);
        bridge.transfer(now, &mut up, &mut down);
        ctrl.tick(now, &mut down);
    }
    let s = sb.stats();
    assert!(sb.is_done(), "{s:?}");
    assert!(s.silent_corruptions > 0, "{s:?}");
    let b = bridge.stats();
    assert!(b.flipped_beats > 0, "{b:?}");
    assert!(b.beats_down > 0 && b.beats_up > 0);
}

/// Bridge stalls freeze the edge for a window but corrupt nothing:
/// traffic is delayed, never damaged.
#[test]
fn faulty_bridge_stalls_only_delay_traffic() {
    let mut sb = ScoreboardMaster::new("sb", 0x1000, 4096, 4, BurstSize::B4, 9).jobs(15);
    let mut bridge = FaultyBridge::new(FaultyBridgeConfig::new(21).stall(0.2, 5));
    let mut ctrl = MemoryController::new(MemConfig::ideal());
    let mut up = AxiPort::default();
    let mut down = AxiPort::default();
    for now in 0..10_000 {
        sb.tick(now, &mut up);
        bridge.transfer(now, &mut up, &mut down);
        ctrl.tick(now, &mut down);
    }
    let s = sb.stats();
    assert!(sb.is_done(), "{s:?}");
    assert_eq!(s.silent_corruptions, 0, "{s:?}");
    assert_eq!(s.bursts_verified, 15);
    assert!(bridge.stats().stalls > 0, "{:?}", bridge.stats());
}

/// The full degraded-mode story on one system: a hard-error region
/// under the oracle's window aborts its first ops, the hypervisor's
/// integrity monitor trips past its error budget via the `ERR_TOTAL`
/// register, the region is quarantined onto a zeroed spare, and
/// verified round trips resume — with zero silent corruption across
/// the whole episode.
#[test]
fn hard_errors_quarantine_and_recover_end_to_end() {
    let hc = HyperConnect::new(HcConfig::new(2));
    let mut bus = LiteBus::new();
    bus.map(HC_BASE, 0x1000, hc.regs().clone());
    let mut hv = Hypervisor::new(bus, HC_BASE).expect("valid regfile");
    hv.set_integrity_policy(PortId(0), IntegrityPolicy { errors_allowed: 2 })
        .unwrap();

    let mut sys = SocSystem::new(
        hc,
        MemoryController::new(
            MemConfig::zcu102().slverr_range(ORACLE_BASE, ORACLE_BASE + ORACLE_SPAN),
        ),
    );
    sys.add_accelerator(Box::new(oracle(13).policy(RetryPolicy {
        max_attempts: 6,
        backoff_base: 2,
        backoff_cap: 32,
    })))
    .unwrap();

    let mut quarantines = 0u64;
    sys.run_for_with(60_000, |now, sys| {
        if now % 50 != 0 {
            return;
        }
        for ev in hv.poll_integrity().expect("AXI-Lite poll") {
            assert_eq!(ev.port, PortId(0));
            assert!(ev.err_total > ev.errors_allowed);
            sys.memory_mut().quarantine_remap(RegionRemap {
                lo: ORACLE_BASE,
                hi: ORACLE_BASE + ORACLE_SPAN,
                spare_base: 0x2800_0000,
            });
            let sb = (sys.accelerator_mut(0).expect("oracle port") as &mut dyn std::any::Any)
                .downcast_mut::<ScoreboardMaster>()
                .expect("scoreboard on port 0");
            sb.note_remap(ORACLE_BASE, ORACLE_BASE + ORACLE_SPAN);
            quarantines += 1;
        }
    });

    assert_eq!(quarantines, 1, "integrity event latches after firing once");
    assert_eq!(hv.integrity_log().len(), 1);
    assert_eq!(sys.memory().remaps().len(), 1);
    let (s, done) = oracle_stats(&sys, 0);
    assert!(done, "{s:?}");
    assert_eq!(s.silent_corruptions, 0, "{s:?}");
    assert!(s.announced_errors > 0, "{s:?}");
    assert!(s.verified_after_remap > 0, "{s:?}");
}

/// The metrics snapshot grows an `"ecc"` section only when a fault
/// injector is armed — fault-free systems keep the exact pre-fault JSON
/// shape, so the flat schema golden never churns.
#[test]
fn metrics_snapshot_gains_ecc_section_only_when_armed() {
    let run = |armed: bool| {
        let mut sys = SocSystem::new(
            HyperConnect::new(HcConfig::new(2)),
            MemoryController::new(MemConfig::zcu102()),
        );
        if armed {
            sys.memory_mut()
                .attach_fault_injector(MemFaultConfig::new(5).flip_single(0.3).ecc(true));
        }
        sys.enable_observability();
        sys.add_accelerator(Box::new(Dma::new(
            "d",
            DmaConfig::reader(4096, 16, BurstSize::B16).jobs(1),
        )))
        .unwrap();
        assert!(sys.run_until_done(1_000_000).is_done());
        sys.metrics_snapshot_json().expect("metrics armed")
    };
    let clean = run(false);
    assert!(!clean.contains("\"ecc\""), "clean snapshot must not change");
    let armed = run(true);
    assert!(armed.contains("\"ecc\":{\"spurious_errors\":0"), "{armed}");
    assert!(armed.contains("\"corrected\":"), "{armed}");
}
