//! Soundness and schema tests for the snapshot-forking campaign
//! service: a forked variant must be indistinguishable from a cold
//! replay of the same seed, the summary JSON must carry the forking
//! fields, and bisection must localize a fault's first architectural
//! effect at or after its injection cycle.

use axi_hyperconnect::campaign::{
    bisect_variant, run_campaign, run_variant_cold, variant_seed, CampaignConfig, CampaignEvent,
};
use axi_hyperconnect::SchedulerMode;

/// A small campaign that still detects and recovers faults: the chaos
/// engine's invariants need enough post-injection cycles to observe the
/// full recovery arc.
fn small_cfg(seed: u64) -> CampaignConfig {
    CampaignConfig::new(seed)
        .variants(3)
        .warm_cycles(2_000)
        .cycles(40_000)
        .workers(2)
        .bisect(false)
}

#[test]
fn forked_variants_match_cold_replays() {
    for base_seed in [1, 7] {
        let cfg = small_cfg(base_seed);
        let report = run_campaign(&cfg, |_| {});
        assert_eq!(report.runs.len(), cfg.variants);
        for (i, run) in report.runs.iter().enumerate() {
            let seed = variant_seed(base_seed, i);
            assert_eq!(run.outcome.seed, seed);
            let cold = run_variant_cold(&cfg, seed);
            assert_eq!(
                run.outcome.fingerprint(),
                cold.outcome.fingerprint(),
                "fork of seed {seed} (base {base_seed}) diverged from cold replay"
            );
        }
    }
}

#[test]
fn forked_campaign_is_scheduler_independent() {
    let ff = run_campaign(&small_cfg(5), |_| {});
    let naive = run_campaign(&small_cfg(5).scheduler(SchedulerMode::Naive), |_| {});
    for (a, b) in ff.runs.iter().zip(naive.runs.iter()) {
        // Fingerprints embed the scheduler-agnostic trajectory; only the
        // scheduler tag itself may differ, and it is not part of the
        // fingerprint.
        assert_eq!(a.outcome.fingerprint(), b.outcome.fingerprint());
    }
}

#[test]
fn campaign_events_stream_and_cover_every_variant() {
    let cfg = small_cfg(3);
    let mut warmed = 0usize;
    let mut finished = Vec::new();
    let report = run_campaign(&cfg, |ev| match ev {
        CampaignEvent::Warmed {
            cycle,
            snapshot_bytes,
            ..
        } => {
            warmed += 1;
            assert_eq!(cycle, cfg.warm_cycles);
            assert!(snapshot_bytes > 0);
        }
        CampaignEvent::VariantFinished {
            total,
            seed,
            inject_at,
            ..
        } => {
            assert_eq!(total, cfg.variants);
            assert!(inject_at >= cfg.warm_cycles);
            finished.push(seed);
        }
        CampaignEvent::Bisected { .. } => {}
    });
    assert_eq!(warmed, 1);
    finished.sort_unstable();
    let mut expected: Vec<u64> = (0..cfg.variants)
        .map(|i| variant_seed(cfg.base_seed, i))
        .collect();
    expected.sort_unstable();
    assert_eq!(finished, expected);
    assert!(report.snapshot_bytes > 0);
    assert!(report.warm_wall_ms >= 0.0);
}

#[test]
fn summary_json_carries_forking_fields() {
    let cfg = small_cfg(1);
    let report = run_campaign(&cfg, |_| {});
    let json = report.summary_json();
    assert!(json.starts_with("{\"schema\":\"axi-hyperconnect/chaos-campaign/v1\""));
    assert!(json.contains("\"mode\":\"forked\""));
    assert!(json.contains(&format!("\"base_seed\":{}", cfg.base_seed)));
    assert!(json.contains(&format!("\"warm_cycle\":{}", cfg.warm_cycles)));
    assert!(json.contains(&format!("\"campaigns\":{}", cfg.variants)));
    assert!(json.contains("\"rng_position\":"));
    assert!(json.contains("\"inject_at\":"));
    assert!(json.contains("\"first_divergence\":"));
    // Every run object must remain valid JSON after the splice: count
    // braces balance.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes);

    let metrics = report.metrics_json();
    assert!(metrics.starts_with("{\"schema\":\"axi-hyperconnect/campaign-metrics/v1\""));
    assert!(metrics.contains("\"forked_cycles_per_sec\":"));
    assert!(metrics.contains("\"warm_cycles_amortized\":"));
}

#[test]
fn bisection_localizes_first_divergence_after_injection() {
    let cfg = small_cfg(1).cycles(12_000);
    let seed = variant_seed(cfg.base_seed, 0);
    let run = run_variant_cold(&cfg, seed);
    let divergence = bisect_variant(&cfg, seed);
    let k = divergence.expect("an injected fault must perturb architectural state");
    // The fault arms at inject_at and first ticks on that cycle, so the
    // earliest possible divergence is the snapshot taken after it —
    // cycle inject_at + 1 from the state_at() perspective.
    assert!(
        k > run.inject_at,
        "divergence cycle {k} not after injection {}",
        run.inject_at
    );
    assert!(k <= cfg.cycles);
}
