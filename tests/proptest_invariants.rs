//! Property-based tests of the system-level invariants, driven by a
//! scripted master executing randomized operation sequences through the
//! full stack (HyperConnect + memory controller).

use std::collections::VecDeque;

use axi::checker::ProtocolMonitor;
use axi::txn::{ReadRequest, WriteRequest};
use axi::types::BurstSize;
use axi::{AxiInterconnect, AxiPort, BridgeConfig, WBeat};
use axi_hyperconnect::{SchedulerMode, SocTopology, TopologyBuilder};
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use proptest::prelude::*;
use sim::{Component, Cycle};

/// One randomized operation.
#[derive(Debug, Clone)]
enum Op {
    Read { addr: u64, beats: u32 },
    Write { addr: u64, beats: u32, seed: u8 },
}

/// A master that executes operations strictly in sequence (one at a
/// time), recording read-back data for comparison with a shadow model.
struct ScriptedMaster {
    ops: VecDeque<Op>,
    current: Option<Op>,
    // Progress within the current op.
    issued: bool,
    w_sent: u32,
    beats_seen: u32,
    read_back: Vec<u8>,
    tag: u64,
    /// (op index, data) for each completed read.
    reads_done: Vec<Vec<u8>>,
    writes_done: usize,
}

impl ScriptedMaster {
    fn new(ops: Vec<Op>) -> Self {
        Self {
            ops: ops.into(),
            current: None,
            issued: false,
            w_sent: 0,
            beats_seen: 0,
            read_back: Vec::new(),
            tag: 0,
            reads_done: Vec::new(),
            writes_done: 0,
        }
    }

    fn is_done(&self) -> bool {
        self.ops.is_empty() && self.current.is_none()
    }

    fn fill_byte(addr: u64, seed: u8) -> u8 {
        (addr as u8).wrapping_mul(31).wrapping_add(seed)
    }

    fn tick(&mut self, now: Cycle, port: &mut AxiPort) {
        if self.current.is_none() {
            self.current = self.ops.pop_front();
            self.issued = false;
            self.w_sent = 0;
            self.beats_seen = 0;
            self.read_back.clear();
        }
        let Some(op) = self.current.clone() else {
            return;
        };
        match op {
            Op::Read { addr, beats } => {
                if !self.issued && !port.ar.is_full() {
                    let req = ReadRequest::new(addr, beats, BurstSize::B4)
                        .expect("generated reads are legal");
                    port.ar.push(now, req.to_ar(self.tag, now)).unwrap();
                    self.tag += 1;
                    self.issued = true;
                }
                while let Some(beat) = port.r.pop_ready(now) {
                    self.read_back.extend_from_slice(&beat.data);
                    self.beats_seen += 1;
                    if beat.last {
                        assert_eq!(self.beats_seen, beats, "merged read beat count");
                        self.reads_done.push(std::mem::take(&mut self.read_back));
                        self.current = None;
                    }
                }
            }
            Op::Write { addr, beats, seed } => {
                if !self.issued && !port.aw.is_full() {
                    let req = WriteRequest::new(addr, beats, BurstSize::B4)
                        .expect("generated writes are legal");
                    let (aw, _) = req.to_beats(self.tag, now, |_, _| 0);
                    port.aw.push(now, aw).unwrap();
                    self.tag += 1;
                    self.issued = true;
                }
                if self.issued && self.w_sent < beats && !port.w.is_full() {
                    let beat_addr = addr + self.w_sent as u64 * 4;
                    let data: Vec<u8> = (0..4)
                        .map(|b| Self::fill_byte(beat_addr + b, seed))
                        .collect();
                    port.w
                        .push(now, WBeat::new(data, self.w_sent + 1 == beats))
                        .unwrap();
                    self.w_sent += 1;
                }
                if port.b.pop_ready(now).is_some() {
                    self.writes_done += 1;
                    self.current = None;
                }
            }
        }
    }
}

/// A shadow memory model: applies the same ops in order.
fn shadow_expected_reads(ops: &[Op]) -> Vec<Vec<u8>> {
    let mut mem = std::collections::HashMap::<u64, u8>::new();
    let mut reads = Vec::new();
    for op in ops {
        match *op {
            Op::Write { addr, beats, seed } => {
                for i in 0..beats as u64 * 4 {
                    mem.insert(addr + i, ScriptedMaster::fill_byte(addr + i, seed));
                }
            }
            Op::Read { addr, beats } => {
                let data: Vec<u8> = (0..beats as u64 * 4)
                    .map(|i| mem.get(&(addr + i)).copied().unwrap_or(0))
                    .collect();
                reads.push(data);
            }
        }
    }
    reads
}

/// Strategy: ops at 4-byte-aligned addresses inside one 4 KiB page per
/// slot so no burst crosses a page.
fn op_strategy() -> impl Strategy<Value = Op> {
    let place = (0u64..16, 1u32..64).prop_flat_map(|(page, beats)| {
        // Keep the burst inside the page.
        let max_start = 4096 - beats as u64 * 4;
        (Just(page), Just(beats), 0..=max_start / 4)
    });
    prop_oneof![
        place.clone().prop_map(|(page, beats, slot)| Op::Read {
            addr: 0x1_0000 + page * 4096 + slot * 4,
            beats,
        }),
        (place, any::<u8>()).prop_map(|((page, beats, slot), seed)| Op::Write {
            addr: 0x1_0000 + page * 4096 + slot * 4,
            beats,
            seed,
        }),
    ]
}

fn run_script(ops: Vec<Op>, nominal: u32) -> (ScriptedMaster, ProtocolMonitor) {
    let hc = HyperConnect::new(HcConfig::new(2));
    hc.regs()
        .write32(hyperconnect::regfile::offsets::NOMINAL, nominal);
    let mut hc = hc;
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    let mut master = ScriptedMaster::new(ops);
    let mut now = 0;
    while !master.is_done() {
        master.tick(now, hc.port(0));
        hc.tick(now);
        memory.tick(now, hc.mem_port());
        now += 1;
        assert!(now < 5_000_000, "script did not complete");
    }
    // Drain the pipeline.
    for extra in now..now + 200 {
        hc.tick(extra);
        memory.tick(extra, hc.mem_port());
    }
    let monitor = memory.monitor().unwrap().clone();
    (master, monitor)
}

/// Deterministically interprets a byte string as a cascaded topology: a
/// worklist of open slave ports is consumed one command byte at a time,
/// each byte either cascading a child interconnect behind a bridge of
/// pseudo-random latency (0 = wire, up to 4), leaving the port empty,
/// or attaching an accelerator. Byte strings are the proptest search
/// space; the interpreter guarantees every produced graph is legal.
fn topology_from_bytes(bytes: &[u8]) -> SocTopology {
    let mut b = TopologyBuilder::new();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    let root = b
        .add_interconnect("ic0", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    b.connect_memory(root, mem).unwrap();
    let mut ics = 1usize;
    let mut accs = 0usize;
    // Open (interconnect, slave port, depth) slots, consumed LIFO.
    let mut slots = vec![(root, 0usize, 0usize), (root, 1, 0)];
    let attach_acc = |b: &mut TopologyBuilder,
                      accs: &mut usize,
                      ic: axi_hyperconnect::NodeId,
                      port: usize,
                      cmd: u8| {
        let name = format!("acc{accs}");
        let base = 0x1000_0000 + *accs as u64 * 0x0080_0000;
        let acc: Box<dyn ha::Accelerator> = if cmd.is_multiple_of(2) {
            Box::new(ha::traffic::PeriodicReader::new(
                name.clone(),
                base,
                1 << 19,
                16,
                BurstSize::B16,
                20 + u64::from(cmd) * 3,
            ))
        } else {
            Box::new(ha::dma::Dma::new(
                name.clone(),
                ha::dma::DmaConfig {
                    src_base: base,
                    dst_base: base + 0x0040_0000,
                    ..ha::dma::DmaConfig::reader(4096, 16, BurstSize::B16).jobs(2)
                },
            ))
        };
        let a = b.add_accelerator(name, acc).unwrap();
        b.attach(a, ic, port).unwrap();
        *accs += 1;
    };
    let mut cmds = bytes.iter().copied();
    let mut freed: Option<(axi_hyperconnect::NodeId, usize)> = None;
    while let Some((ic, port, depth)) = slots.pop() {
        let Some(cmd) = cmds.next() else {
            slots.push((ic, port, depth));
            break;
        };
        match cmd % 3 {
            0 if depth < 3 && ics < 6 => {
                let ports = 1 + (cmd as usize / 3) % 2;
                let child = b
                    .add_interconnect(format!("ic{ics}"), HyperConnect::new(HcConfig::new(ports)))
                    .unwrap();
                let latency = u64::from(cmd / 16) % 5;
                b.cascade_with(child, ic, port, BridgeConfig::wire().latency(latency))
                    .unwrap();
                for p in (0..ports).rev() {
                    slots.push((child, p, depth + 1));
                }
                ics += 1;
            }
            1 => freed = Some((ic, port)), // port left unconnected
            _ => attach_acc(&mut b, &mut accs, ic, port, cmd),
        }
    }
    // Keep the workload non-trivial: at least one traffic source. The
    // worklist starts with the root's two ports and only shrinks when a
    // port is dropped or filled, so with zero accelerators either an
    // open slot or a dropped port must exist.
    if accs == 0 {
        let (ic, port) = slots
            .pop()
            .map(|(ic, p, _)| (ic, p))
            .or(freed)
            .expect("no open or dropped port despite zero accelerators");
        attach_acc(&mut b, &mut accs, ic, port, 5);
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partition totality: for any randomly generated topology, the
    /// shard plan places every node in exactly one shard, cuts exactly
    /// the registered (latency ≥ 1) cascade edges, and uses the
    /// minimum cut latency as the exchange window.
    #[test]
    fn shard_plans_partition_any_topology(
        bytes in proptest::collection::vec(any::<u8>(), 4..48),
    ) {
        let topo = topology_from_bytes(&bytes);
        let plan = topo.shard_plan();
        let mut seen = std::collections::HashMap::new();
        for (s, shard) in plan.shards.iter().enumerate() {
            prop_assert!(!shard.is_empty(), "shard {} is empty", s);
            for &id in shard {
                prop_assert!(
                    seen.insert(id, s).is_none(),
                    "node {:?} landed in two shards", id
                );
            }
        }
        prop_assert_eq!(seen.len(), topo.num_nodes(), "a node was left unassigned");
        prop_assert_eq!(plan.cuts.len() + 1, plan.shards.len(), "one tree, so cuts = shards - 1");
        for cut in &plan.cuts {
            prop_assert!(cut.latency >= 1, "wire edge {:?} was cut", cut);
            // A cut separates the parent's shard from the child's.
            prop_assert_eq!(seen[&cut.parent], cut.parent_shard);
            prop_assert_eq!(seen[&cut.child], cut.child_shard);
            prop_assert!(cut.parent_shard != cut.child_shard);
        }
        prop_assert_eq!(plan.window, plan.cuts.iter().map(|c| c.latency).min());
    }

    /// Scheduler equivalence on arbitrary graphs: the sharded run of
    /// any generated topology is byte-identical (clock, IRQ order, full
    /// metrics snapshot) to the sequential fast-forward run, and its
    /// entry gates prove it (zero ambiguous stalls).
    #[test]
    fn sharded_runs_match_sequential_on_any_topology(
        bytes in proptest::collection::vec(any::<u8>(), 4..48),
        workers in 1usize..5,
    ) {
        const CYCLES: Cycle = 15_000;
        let mut seq = topology_from_bytes(&bytes);
        seq.run_for(CYCLES);
        let mut sharded = topology_from_bytes(&bytes);
        sharded.set_scheduler(SchedulerMode::Sharded { workers });
        sharded.run_for(CYCLES);
        prop_assert_eq!(seq.now(), sharded.now());
        prop_assert_eq!(seq.take_irq_events(), sharded.take_irq_events());
        prop_assert_eq!(seq.metrics_snapshot_json(), sharded.metrics_snapshot_json());
        let rep = *sharded.shard_run_report().expect("sharded mode reports");
        prop_assert_eq!(rep.ambiguous_stalls, 0, "could not prove the sequential schedule");
    }

    /// End-to-end sequential consistency: reads observe exactly the
    /// data of the writes that preceded them, through splitting,
    /// merging, arbitration and the real memory controller — for any
    /// operation sequence and any nominal burst size.
    #[test]
    fn scripted_ops_are_sequentially_consistent(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        nominal in 1u32..32,
    ) {
        let expected = shadow_expected_reads(&ops);
        let (master, monitor) = run_script(ops, nominal);
        prop_assert_eq!(master.reads_done.len(), expected.len());
        for (i, (got, want)) in master.reads_done.iter().zip(&expected).enumerate() {
            prop_assert_eq!(got, want, "read {} data mismatch", i);
        }
        prop_assert!(monitor.is_clean(), "{:?}", monitor.errors());
        prop_assert_eq!(monitor.reads_outstanding(), 0);
        prop_assert_eq!(monitor.writes_outstanding(), 0);
    }

    /// The reservation budget is never exceeded in any period, for any
    /// budget/period combination, measured at the memory boundary.
    #[test]
    fn budget_never_exceeded(
        budget in 1u32..40,
        period in 500u32..4000,
    ) {
        use ha::Accelerator;
        let hc = HyperConnect::new(HcConfig::new(1));
        hc.regs().write32(hyperconnect::regfile::offsets::PERIOD, period);
        let p0 = hyperconnect::regfile::port_block_offset(0);
        hc.regs().write32(p0 + hyperconnect::regfile::offsets::PORT_BUDGET, budget);
        let mut hc = hc;
        let mut memory = MemoryController::new(MemConfig::zcu102());
        memory.attach_request_trace();
        let mut gen = ha::traffic::BandwidthStealer::new(
            "g", 0x1000_0000, 1 << 20, 64, BurstSize::B16);
        for now in 0..20_000u64 {
            gen.tick(now, hc.port(0));
            hc.tick(now);
            memory.tick(now, hc.mem_port());
        }
        let mut log = sim::stats::EventLog::new();
        for &(cycle, _) in memory.ar_trace().unwrap() {
            log.record(cycle);
        }
        // Aligned windows, shifted by the 3-cycle EXBAR-to-memory lag.
        for start in (0..20_000u64).step_by(period as usize) {
            let n = log.count_in_window(start + 3, period as u64);
            prop_assert!(
                n as u32 <= budget,
                "{} sub-txns in period at {} exceeds budget {}", n, start, budget
            );
        }
    }

    /// The worst-case latency bound holds for random nominal sizes and
    /// outstanding limits under adversarial two-port contention.
    #[test]
    fn analysis_bound_is_sound(
        nominal_pow in 2u32..6, // nominal = 4..32
        max_out in 1u32..6,
    ) {
        use ha::Accelerator;
        let nominal = 1 << nominal_pow;
        let hc = HyperConnect::new(HcConfig::new(2));
        hc.regs().write32(hyperconnect::regfile::offsets::NOMINAL, nominal);
        for p in 0..2 {
            let off = hyperconnect::regfile::port_block_offset(p)
                + hyperconnect::regfile::offsets::PORT_MAX_OUT;
            hc.regs().write32(off, max_out);
        }
        let mut hc = hc;
        let mut memory = MemoryController::new(MemConfig::zcu102());
        let mut probe = ha::dma::Dma::new("probe", ha::dma::DmaConfig {
            read_bytes: 1 << 16,
            write_bytes: 0,
            burst_beats: nominal,
            max_outstanding: 1,
            jobs: None,
            ..ha::dma::DmaConfig::case_study()
        });
        let mut aggr = ha::traffic::BandwidthStealer::new(
            "a", 0x3000_0000, 1 << 20, 256, BurstSize::B16);
        for now in 0..300_000u64 {
            probe.tick(now, hc.port(0));
            aggr.tick(now, hc.port(1));
            hc.tick(now);
            memory.tick(now, hc.mem_port());
        }
        let observed = probe.read_txn_latency().and_then(|l| l.max()).unwrap_or(0);
        let model = hyperconnect::analysis::ServiceModel::hyperconnect(
            2, nominal, MemConfig::zcu102().first_word_latency,
        ).max_outstanding(max_out);
        prop_assert!(
            observed <= model.worst_case_read_latency(),
            "observed {} > bound {} (nominal {}, K {})",
            observed, model.worst_case_read_latency(), nominal, max_out
        );
    }

    /// Interleaving any misbehaving master with a well-behaved scripted
    /// master never corrupts the well-behaved port's data: reads still
    /// observe exactly the writes that preceded them, the memory-side
    /// protocol monitor stays clean, and a zero-tolerance watchdog
    /// (decouple at the first structured violation) is enough to keep
    /// the script completing.
    #[test]
    fn faults_never_corrupt_well_behaved_data(
        ops in proptest::collection::vec(op_strategy(), 1..16),
        nominal in 4u32..32,
        fault in 0usize..5,
    ) {
        use ha::Accelerator;
        let expected = shadow_expected_reads(&ops);
        let hc = HyperConnect::new(HcConfig::new(2));
        hc.regs().write32(hyperconnect::regfile::offsets::NOMINAL, nominal);
        let mut hc = hc;
        let mut memory = MemoryController::new(
            MemConfig::zcu102().decode_limit(0x4000_0000));
        memory.attach_monitor();
        let mut faulty: Box<dyn Accelerator> = match fault {
            0 => Box::new(ha::fault::RogueReader::new(
                "rogue", 0x8000_0000, 8, BurstSize::B16)),
            1 => Box::new(ha::fault::BoundaryViolator::new(
                "cross", 0x2000_0000, 16, BurstSize::B16)),
            2 => Box::new(ha::fault::WlastViolator::new(
                "wlast", 0x2000_0000, 8, BurstSize::B16)),
            3 => Box::new(ha::fault::StalledWriter::new(
                "hung", 0x2000_0000, 8, BurstSize::B16)),
            _ => Box::new(ha::fault::RunawayMaster::new(
                "runaway", 0x2000_0000, 1 << 20, 16, BurstSize::B16)),
        };
        let mut master = ScriptedMaster::new(ops);
        let mut decoupled = false;
        let mut now = 0;
        while !master.is_done() {
            master.tick(now, hc.port(0));
            if !decoupled {
                faulty.tick(now, hc.port(1));
            }
            hc.tick(now);
            memory.tick(now, hc.mem_port());
            // Zero-tolerance watchdog: the first structured violation
            // decouples the offender.
            if !decoupled && hc.total_violations(1) > 0 {
                let off = hyperconnect::regfile::port_block_offset(1)
                    + hyperconnect::regfile::offsets::PORT_CTRL;
                hc.regs().write32(off, 0);
                decoupled = true;
            }
            now += 1;
            prop_assert!(now < 5_000_000, "script did not complete");
        }
        for extra in now..now + 400 {
            hc.tick(extra);
            memory.tick(extra, hc.mem_port());
        }
        prop_assert_eq!(master.reads_done.len(), expected.len());
        for (i, (got, want)) in master.reads_done.iter().zip(&expected).enumerate() {
            prop_assert_eq!(got, want, "read {} data mismatch under fault {}", i, fault);
        }
        let monitor = memory.monitor().unwrap();
        prop_assert!(monitor.is_clean(), "{:?}", monitor.errors());
        // The well-behaved port itself reported nothing.
        prop_assert_eq!(hc.total_violations(0), 0);
    }

    /// A decoupled port never completes a transfer, whatever traffic its
    /// master generates — the eFIFO grounds everything.
    #[test]
    fn decoupled_port_never_completes(
        seed in any::<u64>(),
        nominal in 4u32..32,
    ) {
        use ha::Accelerator;
        let hc = HyperConnect::new(HcConfig::new(2));
        hc.regs().write32(hyperconnect::regfile::offsets::NOMINAL, nominal);
        let off = hyperconnect::regfile::port_block_offset(0)
            + hyperconnect::regfile::offsets::PORT_CTRL;
        hc.regs().write32(off, 0); // decoupled before any traffic
        let mut hc = hc;
        let mut memory = MemoryController::new(MemConfig::zcu102());
        let mut gen = ha::traffic::RandomTraffic::new(
            "g", 0x1000_0000, 1 << 20, BurstSize::B16, 16, 3, seed);
        for now in 0..20_000u64 {
            gen.tick(now, hc.port(0));
            hc.tick(now);
            memory.tick(now, hc.mem_port());
        }
        prop_assert_eq!(gen.jobs_completed(), 0);
        // Nothing from the decoupled port ever reached the memory.
        prop_assert_eq!(memory.stats().reads_served, 0);
        prop_assert_eq!(memory.stats().writes_served, 0);
    }

    /// The write-path bound holds under adversarial write interference.
    #[test]
    fn write_bound_is_sound(
        nominal_pow in 2u32..6,
        max_out in 1u32..5,
    ) {
        use ha::Accelerator;
        let nominal = 1 << nominal_pow;
        let hc = HyperConnect::new(HcConfig::new(2));
        hc.regs().write32(hyperconnect::regfile::offsets::NOMINAL, nominal);
        for p in 0..2 {
            let off = hyperconnect::regfile::port_block_offset(p)
                + hyperconnect::regfile::offsets::PORT_MAX_OUT;
            hc.regs().write32(off, max_out);
        }
        let mut hc = hc;
        let mut memory = MemoryController::new(MemConfig::zcu102());
        // Write-only probe with a one-transaction window.
        let mut probe = ha::dma::Dma::new("probe", ha::dma::DmaConfig {
            src_base: 0,
            dst_base: 0x2000_0000,
            read_bytes: 0,
            write_bytes: 1 << 16,
            burst_beats: nominal,
            max_outstanding: 1,
            jobs: None,
            size: axi::types::BurstSize::B16,
        });
        // Write-only aggressor saturating the bus.
        let mut aggr = ha::dma::Dma::new("aggr", ha::dma::DmaConfig {
            src_base: 0,
            dst_base: 0x3000_0000,
            read_bytes: 0,
            write_bytes: 1 << 20,
            burst_beats: 256,
            max_outstanding: 8,
            jobs: None,
            size: axi::types::BurstSize::B16,
        });
        for now in 0..300_000u64 {
            probe.tick(now, hc.port(0));
            aggr.tick(now, hc.port(1));
            hc.tick(now);
            memory.tick(now, hc.mem_port());
        }
        let observed = hc.write_latency(0).max().unwrap_or(0);
        prop_assert!(observed > 0, "probe never completed a write");
        let model = hyperconnect::analysis::ServiceModel::hyperconnect(
            2, nominal, MemConfig::zcu102().first_word_latency,
        ).max_outstanding(max_out);
        prop_assert!(
            observed <= model.worst_case_write_latency(),
            "observed {} > bound {} (nominal {}, K {})",
            observed, model.worst_case_write_latency(), nominal, max_out
        );
    }

    /// Quiescent drain terminates within the analysis-derived deadline
    /// for protocol-compliant masters: after a quiesce request the port
    /// reports `DRAINED` within `ServiceModel::drain_deadline()` cycles
    /// and never needs the force-flush escape hatch — for any nominal
    /// size, outstanding limit and request instant, under adversarial
    /// interference on the other port.
    #[test]
    fn drain_completes_within_deadline_for_compliant_masters(
        nominal_pow in 2u32..6, // nominal = 4..32
        max_out in 1u32..5,
        warmup in 500u64..3000,
    ) {
        use ha::Accelerator;
        let nominal = 1 << nominal_pow;
        let mut model = hyperconnect::analysis::ServiceModel::hyperconnect(
            2, nominal, MemConfig::zcu102().first_word_latency,
        ).max_outstanding(max_out);
        model.write_resp_latency = MemConfig::zcu102().write_resp_latency;
        let hc = HyperConnect::new(HcConfig::new(2));
        hc.regs().write32(hyperconnect::regfile::offsets::NOMINAL, nominal);
        for p in 0..2 {
            let off = hyperconnect::regfile::port_block_offset(p)
                + hyperconnect::regfile::offsets::PORT_MAX_OUT;
            hc.regs().write32(off, max_out);
        }
        let mut hc = hc;
        hc.set_drain_model(model);
        let mut memory = MemoryController::new(MemConfig::zcu102());
        // Mixed read+write compliant master on the quiesced port; an
        // aggressor keeps the shared pipeline saturated throughout.
        let mut probe = ha::dma::Dma::new("probe", ha::dma::DmaConfig {
            read_bytes: 1 << 14,
            write_bytes: 1 << 14,
            burst_beats: nominal,
            max_outstanding: max_out,
            jobs: None,
            ..ha::dma::DmaConfig::case_study()
        });
        let mut aggr = ha::traffic::BandwidthStealer::new(
            "a", 0x3000_0000, 1 << 20, 64, BurstSize::B16);
        for now in 0..warmup {
            probe.tick(now, hc.port(0));
            aggr.tick(now, hc.port(1));
            hc.tick(now);
            memory.tick(now, hc.mem_port());
        }
        let q = hyperconnect::regfile::port_block_offset(0)
            + hyperconnect::regfile::offsets::PORT_QUIESCE;
        hc.regs().write32(q, hyperconnect::regfile::QUIESCE_REQUESTED);
        let deadline = model.drain_deadline();
        let mut drained_at = None;
        for now in warmup..warmup + deadline + 2 {
            // The compliant master keeps ticking: a quiesced port still
            // owes W beats for writes already ingested.
            probe.tick(now, hc.port(0));
            aggr.tick(now, hc.port(1));
            hc.tick(now);
            memory.tick(now, hc.mem_port());
            let status = hc.regs().read32(q);
            prop_assert_eq!(
                status & hyperconnect::regfile::QUIESCE_FLUSHED, 0,
                "compliant drain force-flushed at cycle {}", now
            );
            if status & hyperconnect::regfile::QUIESCE_DRAINED != 0 {
                drained_at = Some(now);
                break;
            }
        }
        prop_assert!(
            drained_at.is_some(),
            "drain missed deadline {} (nominal {}, K {}, warmup {})",
            deadline, nominal, max_out, warmup
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Transient-fault liveness and integrity: for ANY bounded
    /// transient-fault stream (random seed, spurious-SLVERR and
    /// single-bit-flip rates) the retry policy eventually completes
    /// every burst with correct, verified data — no aborts, no silent
    /// corruption, and every completion inside the closed-form bound.
    /// The naive and fast-forward schedulers must agree byte-for-byte
    /// on the final system image, so fault draws are schedule-invariant.
    #[test]
    fn retries_complete_any_bounded_transient_fault_stream(
        seed in 1u64..u64::MAX,
        slverr_milli in 10u64..180,
        flip_milli in 0u64..80,
        oracle_seed in 1u64..1u64 << 32,
    ) {
        let policy = axi::retry::RetryPolicy {
            max_attempts: 12,
            backoff_base: 2,
            backoff_cap: 64,
        };
        let build = |mode: SchedulerMode| {
            let mut memory = MemoryController::new(MemConfig::zcu102());
            memory.attach_fault_injector(
                mem::MemFaultConfig::new(seed)
                    .spurious_slverr(slverr_milli as f64 / 1000.0)
                    .flip_single(flip_milli as f64 / 1000.0)
                    .ecc(true),
            );
            let mut sys = axi_hyperconnect::SocSystem::new(
                HyperConnect::new(HcConfig::new(2)),
                memory,
            );
            sys.set_scheduler(mode);
            sys.add_accelerator(Box::new(
                ha::scoreboard::ScoreboardMaster::new(
                    "oracle", 0x2000_0000, 16 * 256, 16, BurstSize::B16, oracle_seed,
                )
                .policy(policy)
                .jobs(12),
            ))
            .unwrap();
            sys.add_accelerator(Box::new(ha::traffic::PeriodicReader::new(
                "victim", 0x1000_0000, 1 << 20, 16, BurstSize::B16, 60,
            )))
            .unwrap();
            sys
        };

        use ha::Accelerator as _;
        let mut naive = build(SchedulerMode::Naive);
        naive.run_for(60_000);
        let sb = naive
            .accelerator(0)
            .unwrap()
            .as_any()
            .downcast_ref::<ha::scoreboard::ScoreboardMaster>()
            .unwrap();
        let s = sb.stats();
        prop_assert!(sb.is_done(), "oracle did not finish: {:?}", s);
        prop_assert_eq!(s.bursts_verified, 12, "{:?}", s);
        prop_assert_eq!(s.silent_corruptions, 0, "{:?}", s);
        prop_assert_eq!(s.aborted_ops, 0, "{:?}", s);
        let model = hyperconnect::analysis::ServiceModel::hyperconnect(
            2, 16, MemConfig::zcu102().first_word_latency,
        ).max_outstanding(4);
        let bound = model.retry_completion_bound(&policy, s.worst_faults_per_op + 1);
        prop_assert!(
            s.worst_completion <= bound,
            "worst completion {} exceeds bound {}", s.worst_completion, bound
        );

        let mut ff = build(SchedulerMode::FastForward);
        ff.run_for(60_000);
        prop_assert_eq!(
            naive.snapshot_bytes(),
            ff.snapshot_bytes(),
            "fault draws drifted between naive and fast-forward schedules"
        );
    }
}
