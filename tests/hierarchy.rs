//! Hierarchical composition: two leaf HyperConnects cascaded into a
//! root HyperConnect (4 accelerators over a 2×2 tree). The paper's
//! integration framework connects any AXI master to any slave port, so
//! an interconnect's master port can feed another's slave port; this
//! test checks the composition stays correct and live, and that the
//! declarative [`axi_hyperconnect::TopologyBuilder`] reproduces the
//! hand-rolled reference loop cycle for cycle.

use axi::bridge::{AxiBridge, BridgeConfig};
use axi::types::BurstSize;
use axi::{AxiInterconnect, AxiPort};
use axi_hyperconnect::{SchedulerMode, TopologyBuilder};
use ha::dma::{Dma, DmaConfig};
use ha::Accelerator;
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use sim::{Component, Cycle};

/// Moves every ready beat between an upstream master port and a
/// downstream slave port (a zero-latency wire adapter, as the system
/// integrator's tool would infer for a direct connection).
fn bridge(now: Cycle, upstream: &mut AxiPort, downstream: &mut AxiPort) {
    // Requests flow down.
    while upstream.ar.has_ready(now) && !downstream.ar.is_full() {
        let b = upstream.ar.pop_ready(now).expect("ready");
        downstream.ar.push(now, b).expect("space");
    }
    while upstream.aw.has_ready(now) && !downstream.aw.is_full() {
        let b = upstream.aw.pop_ready(now).expect("ready");
        downstream.aw.push(now, b).expect("space");
    }
    while upstream.w.has_ready(now) && !downstream.w.is_full() {
        let b = upstream.w.pop_ready(now).expect("ready");
        downstream.w.push(now, b).expect("space");
    }
    // Responses flow up.
    while downstream.r.has_ready(now) && !upstream.r.is_full() {
        let b = downstream.r.pop_ready(now).expect("ready");
        upstream.r.push(now, b).expect("space");
    }
    while downstream.b.has_ready(now) && !upstream.b.is_full() {
        let b = downstream.b.pop_ready(now).expect("ready");
        upstream.b.push(now, b).expect("space");
    }
}

/// The 2×2 tree workload: four copy DMAs with disjoint regions.
fn tree_dma(i: u64) -> Dma {
    Dma::new(
        format!("dma{i}"),
        DmaConfig {
            src_base: 0x1000_0000 + i * 0x0100_0000,
            dst_base: 0x5000_0000 + i * 0x0100_0000,
            read_bytes: 16 * 1024,
            write_bytes: 16 * 1024,
            burst_beats: 64,
            size: BurstSize::B16,
            max_outstanding: 4,
            jobs: Some(1),
        },
    )
}

/// Hand-rolled reference: ticks each piece explicitly and returns the
/// cycle the last DMA finished on, plus the root's per-port
/// sub-transaction counts.
fn run_reference_tree() -> (Cycle, [u64; 2], MemoryController) {
    let mut leaves = [
        HyperConnect::new(HcConfig::new(2)),
        HyperConnect::new(HcConfig::new(2)),
    ];
    let mut root = HyperConnect::new(HcConfig::new(2));
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();

    let mut dmas: Vec<Dma> = (0..4u64).map(tree_dma).collect();

    let mut finished_at = None;
    for now in 0..10_000_000u64 {
        for (i, dma) in dmas.iter_mut().enumerate() {
            dma.tick(now, leaves[i / 2].port(i % 2));
        }
        for leaf in leaves.iter_mut() {
            leaf.tick(now);
        }
        // Wire each leaf's master port to one root slave port.
        for (i, leaf) in leaves.iter_mut().enumerate() {
            let (leaf_mem, root_slave) = (leaf.mem_port(), &mut root);
            bridge(now, leaf_mem, root_slave.port(i));
        }
        root.tick(now);
        memory.tick(now, root.mem_port());
        if dmas.iter().all(Dma::is_done) {
            finished_at = Some(now);
            break;
        }
    }
    let finished_at = finished_at.expect("tree deadlocked or starved");
    let subs = [
        root.port_stats(0).subs_issued,
        root.port_stats(1).subs_issued,
    ];
    (finished_at, subs, memory)
}

/// The same tree assembled declaratively. Returns the completion cycle
/// (the cycle the last DMA's tick observed done), the root's per-port
/// sub counts and a destination-pattern verdict.
fn run_builder_tree(mode: SchedulerMode) -> (Cycle, [u64; 2], bool, bool) {
    let mut b = TopologyBuilder::new();
    let root = b
        .add_interconnect("root", HyperConnect::new(HcConfig::new(2)))
        .unwrap();
    let leaves = [
        b.add_interconnect("leaf0", HyperConnect::new(HcConfig::new(2)))
            .unwrap(),
        b.add_interconnect("leaf1", HyperConnect::new(HcConfig::new(2)))
            .unwrap(),
    ];
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();
    let mem = b.add_memory("ddr", memory).unwrap();
    for (i, &leaf) in leaves.iter().enumerate() {
        b.cascade(leaf, root, i).unwrap();
    }
    for i in 0..4u64 {
        let dma = b
            .add_accelerator(format!("dma{i}"), Box::new(tree_dma(i)))
            .unwrap();
        b.attach(dma, leaves[i as usize / 2], i as usize % 2)
            .unwrap();
    }
    b.connect_memory(root, mem).unwrap();
    let mut topo = b.build().unwrap();
    topo.set_scheduler(mode);

    let out = topo.run_until_done(10_000_000);
    assert!(out.is_done(), "{out}");
    // `run_until_done` observes completion at the top of the next
    // cycle, so the last productive tick was at `now - 1`.
    let finished_at = topo.now() - 1;

    let root_hc = topo
        .interconnect_as::<HyperConnect>(root)
        .expect("root is a HyperConnect");
    let subs = [
        root_hc.port_stats(0).subs_issued,
        root_hc.port_stats(1).subs_issued,
    ];
    let memory = topo.memory(mem).unwrap();
    let patterns_ok = (0..4u64).all(|i| {
        let dst = 0x5000_0000 + i * 0x0100_0000;
        memory.memory().verify_pattern(dst, dst, 16 * 1024)
    });
    let monitor_clean = memory.monitor().unwrap().is_clean();
    (finished_at, subs, patterns_ok, monitor_clean)
}

#[test]
fn two_level_tree_of_hyperconnects() {
    let (finished_at, subs, memory) = run_reference_tree();
    assert!(finished_at > 0);

    // Every destination region holds exactly its own pattern.
    for i in 0..4u64 {
        let dst = 0x5000_0000 + i * 0x0100_0000;
        assert!(
            memory.memory().verify_pattern(dst, dst, 16 * 1024),
            "dma{i} data corrupted through the tree"
        );
    }
    let monitor = memory.monitor().unwrap();
    assert!(monitor.is_clean(), "{:?}", monitor.errors().first());
    // The root's equalization re-splits nothing (leaves already
    // equalized to 16), so sub-transaction counts match: 16 KiB at
    // 16 B/beat = 1024 beats = 64 subs per direction per DMA.
    for s in subs {
        assert_eq!(s, 2 * 2 * 64);
    }
}

#[test]
fn builder_tree_matches_reference_cycle_for_cycle() {
    let (ref_finished, ref_subs, _) = run_reference_tree();
    for mode in [SchedulerMode::Naive, SchedulerMode::FastForward] {
        let (finished, subs, patterns_ok, monitor_clean) = run_builder_tree(mode);
        assert_eq!(
            finished, ref_finished,
            "builder tree timing diverged from the hand-rolled tree under {mode:?}"
        );
        assert_eq!(
            subs, ref_subs,
            "sub-transaction counts diverged under {mode:?}"
        );
        assert!(patterns_ok, "data corrupted through the builder tree");
        assert!(monitor_clean);
    }
}

#[test]
fn tree_latency_is_additive() {
    // AR latency through two cascaded HyperConnects = 4 + 4 cycles
    // (plus nothing for the zero-latency bridge).
    let arrival = |bridge_cfg: BridgeConfig| {
        let mut leaf = HyperConnect::new(HcConfig::new(1));
        let mut root = HyperConnect::new(HcConfig::new(1));
        let mut hop = AxiBridge::new(bridge_cfg);
        leaf.port(0)
            .ar
            .push(0, axi::ArBeat::new(0x40, 1, BurstSize::B4))
            .unwrap();
        let mut arrival = None;
        for now in 0..40 {
            leaf.tick(now);
            hop.transfer(now, leaf.mem_port(), root.port(0));
            root.tick(now);
            if arrival.is_none() && root.mem_port().ar.has_ready(now) {
                arrival = Some(now);
            }
        }
        arrival
    };
    assert_eq!(
        arrival(BridgeConfig::wire()),
        Some(8),
        "cascaded AR latency must be 4 + 4 through a wire bridge"
    );
    // A registered bridge adds exactly its configured latency.
    assert_eq!(
        arrival(BridgeConfig::registered()),
        Some(9),
        "a 1-cycle bridge must add exactly 1 cycle"
    );
}
