//! Hierarchical composition: two leaf HyperConnects cascaded into a
//! root HyperConnect (4 accelerators over a 2×2 tree). The paper's
//! integration framework connects any AXI master to any slave port, so
//! an interconnect's master port can feed another's slave port; this
//! test checks the composition stays correct and live.

use axi::types::BurstSize;
use axi::{AxiInterconnect, AxiPort};
use ha::dma::{Dma, DmaConfig};
use ha::Accelerator;
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use sim::{Component, Cycle};

/// Moves every ready beat between an upstream master port and a
/// downstream slave port (a zero-latency wire adapter, as the system
/// integrator's tool would infer for a direct connection).
fn bridge(now: Cycle, upstream: &mut AxiPort, downstream: &mut AxiPort) {
    // Requests flow down.
    while upstream.ar.has_ready(now) && !downstream.ar.is_full() {
        let b = upstream.ar.pop_ready(now).expect("ready");
        downstream.ar.push(now, b).expect("space");
    }
    while upstream.aw.has_ready(now) && !downstream.aw.is_full() {
        let b = upstream.aw.pop_ready(now).expect("ready");
        downstream.aw.push(now, b).expect("space");
    }
    while upstream.w.has_ready(now) && !downstream.w.is_full() {
        let b = upstream.w.pop_ready(now).expect("ready");
        downstream.w.push(now, b).expect("space");
    }
    // Responses flow up.
    while downstream.r.has_ready(now) && !upstream.r.is_full() {
        let b = downstream.r.pop_ready(now).expect("ready");
        upstream.r.push(now, b).expect("space");
    }
    while downstream.b.has_ready(now) && !upstream.b.is_full() {
        let b = downstream.b.pop_ready(now).expect("ready");
        upstream.b.push(now, b).expect("space");
    }
}

#[test]
fn two_level_tree_of_hyperconnects() {
    let mut leaves = [
        HyperConnect::new(HcConfig::new(2)),
        HyperConnect::new(HcConfig::new(2)),
    ];
    let mut root = HyperConnect::new(HcConfig::new(2));
    let mut memory = MemoryController::new(MemConfig::zcu102());
    memory.attach_monitor();

    // Four copy DMAs, one per leaf port, with disjoint regions.
    let mut dmas: Vec<Dma> = (0..4u64)
        .map(|i| {
            Dma::new(
                format!("dma{i}"),
                DmaConfig {
                    src_base: 0x1000_0000 + i * 0x0100_0000,
                    dst_base: 0x5000_0000 + i * 0x0100_0000,
                    read_bytes: 16 * 1024,
                    write_bytes: 16 * 1024,
                    burst_beats: 64,
                    size: BurstSize::B16,
                    max_outstanding: 4,
                    jobs: Some(1),
                },
            )
        })
        .collect();

    let mut finished_at = None;
    for now in 0..10_000_000u64 {
        for (i, dma) in dmas.iter_mut().enumerate() {
            dma.tick(now, leaves[i / 2].port(i % 2));
        }
        for leaf in leaves.iter_mut() {
            leaf.tick(now);
        }
        // Wire each leaf's master port to one root slave port.
        for (i, leaf) in leaves.iter_mut().enumerate() {
            let (leaf_mem, root_slave) = (leaf.mem_port(), &mut root);
            bridge(now, leaf_mem, root_slave.port(i));
        }
        root.tick(now);
        memory.tick(now, root.mem_port());
        if dmas.iter().all(Dma::is_done) {
            finished_at = Some(now);
            break;
        }
    }
    let finished_at = finished_at.expect("tree deadlocked or starved");
    assert!(finished_at > 0);

    // Every destination region holds exactly its own pattern.
    for i in 0..4u64 {
        let dst = 0x5000_0000 + i * 0x0100_0000;
        assert!(
            memory.memory().verify_pattern(dst, dst, 16 * 1024),
            "dma{i} data corrupted through the tree"
        );
    }
    let monitor = memory.monitor().unwrap();
    assert!(monitor.is_clean(), "{:?}", monitor.errors().first());
    // The root's equalization re-splits nothing (leaves already
    // equalized to 16), so sub-transaction counts match: 16 KiB at
    // 16 B/beat = 1024 beats = 64 subs per direction per DMA.
    for p in 0..2 {
        assert_eq!(root.port_stats(p).subs_issued, 2 * 2 * 64);
    }
}

#[test]
fn tree_latency_is_additive() {
    // AR latency through two cascaded HyperConnects = 4 + 4 cycles
    // (plus nothing for the zero-latency bridge).
    let mut leaf = HyperConnect::new(HcConfig::new(1));
    let mut root = HyperConnect::new(HcConfig::new(1));
    leaf.port(0)
        .ar
        .push(0, axi::ArBeat::new(0x40, 1, BurstSize::B4))
        .unwrap();
    let mut arrival = None;
    for now in 0..40 {
        leaf.tick(now);
        bridge(now, leaf.mem_port(), root.port(0));
        root.tick(now);
        if arrival.is_none() && root.mem_port().ar.has_ready(now) {
            arrival = Some(now);
        }
    }
    assert_eq!(arrival, Some(8), "cascaded AR latency must be 4 + 4");
}
