//! Sharded-scheduler differential suite: runs under
//! `SchedulerMode::Sharded` must be *byte-identical* to the sequential
//! schedulers on every scenario family — stress soaks, fault injection,
//! compute-heavy ChaiDNN frames, seeded chaos campaigns and deep
//! cascades — at 1, 2 and 4 workers.
//!
//! Each scenario builds a cascaded topology whose cut edges carry
//! registered (latency ≥ 1) bridges, runs it under `Naive`,
//! `FastForward` and `Sharded { workers }`, and compares a fingerprint
//! covering the clock, every accelerator's job count, every
//! HyperConnect's per-port Transaction-Supervisor counters and
//! protocol-violation log (debug-formatted, so cycle stamps must
//! match), the memory controller's service counters, every bridge's
//! beat counters, the IRQ emission order and the full topology metrics
//! snapshot JSON. Every sharded run must additionally report **zero
//! ambiguous entry-gate stalls** — the executor's own proof that its
//! schedule was the sequential one.

use axi::types::BurstSize;
use axi::{AxiInterconnect, BridgeConfig};
use axi_hyperconnect::chaos::{run_flat_campaign, run_tree_campaign, ChaosConfig, PINNED_SEEDS};
use axi_hyperconnect::{NodeId, SchedulerMode, SocTopology, TopologyBuilder};
use ha::chaidnn::{Chaidnn, ChaidnnConfig, Layer};
use ha::dma::{Dma, DmaConfig};
use ha::fault::WlastViolator;
use ha::traffic::{BandwidthStealer, PeriodicReader, RandomTraffic};
use ha::Accelerator;
use hyperconnect::{HcConfig, HyperConnect};
use mem::{MemConfig, MemoryController};
use sim::Cycle;

/// The worker counts every scenario is swept over.
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

/// Byte-exact digest of everything observable in a topology after a
/// run. `hc_labels` names the HyperConnect nodes whose supervisor
/// stats and violation logs are folded in; `bridge_children` names the
/// cascaded children whose bridge counters are folded in.
fn tree_fingerprint(
    topo: &mut SocTopology,
    hc_labels: &[&str],
    bridge_children: &[&str],
    mem_label: &str,
) -> String {
    let mut fp = format!("now={}", topo.now());
    for i in 0..topo.num_accelerators() {
        let acc = topo.accelerator(i).unwrap();
        fp.push_str(&format!(" {}={}", acc.name(), acc.jobs_completed()));
    }
    for &label in hc_labels {
        let id = topo.node_by_label(label).unwrap();
        let hc = topo.interconnect_as::<HyperConnect>(id).unwrap();
        for p in 0..hc.num_ports() {
            fp.push_str(&format!(
                " {label}.p{p}={:?}/{:?}",
                hc.port_stats(p),
                hc.violations(p)
            ));
        }
    }
    for &label in bridge_children {
        let id = topo.node_by_label(label).unwrap();
        let s = topo.bridge_stats(id).unwrap();
        fp.push_str(&format!(" bridge[{label}]={}/{}", s.beats_down, s.beats_up));
    }
    let mem_id = topo.node_by_label(mem_label).unwrap();
    let stats = topo.memory(mem_id).unwrap().stats();
    fp.push_str(&format!(
        " mem=[{} {} {} {} {} {}]",
        stats.reads_served,
        stats.writes_served,
        stats.beats_served,
        stats.bytes_served,
        stats.busy_cycles,
        stats.error_responses,
    ));
    fp.push_str(&format!(" irq={:?}", topo.take_irq_events()));
    fp.push_str(" metrics=");
    fp.push_str(&topo.metrics_snapshot_json());
    fp
}

/// Asserts the sharded run actually sharded, used every worker count
/// it was asked for (bounded by the shard count), and proved its own
/// exactness via the ambiguous-stall counter.
fn assert_sharded_report(topo: &SocTopology, shards: usize, workers: usize) {
    let rep = *topo.shard_run_report().expect("sharded run reports");
    assert_eq!(rep.shards, shards, "unexpected partition");
    assert_eq!(rep.workers, workers.min(shards).max(1), "worker clamp");
    assert_eq!(
        rep.ambiguous_stalls, 0,
        "entry gates could not prove the sequential schedule"
    );
    assert!(rep.rounds > 0, "engine never ran a round");
}

fn num_hc(ports: usize) -> HyperConnect {
    HyperConnect::new(HcConfig::new(ports))
}

// ---------------------------------------------------------------------
// Family 1: the four-master stress soak, behind a registered bridge.
// ---------------------------------------------------------------------

/// Root HC(3): cascaded stress cluster on port 0 (latency-2 bridge),
/// two more masters flat on the root.
fn build_stress_tree(mode: SchedulerMode) -> SocTopology {
    let mut b = TopologyBuilder::new();
    let root = b.add_interconnect("root", num_hc(3)).unwrap();
    let cluster = b.add_interconnect("cluster", num_hc(4)).unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.cascade_with(cluster, root, 0, BridgeConfig::wire().latency(2))
        .unwrap();
    b.connect_memory(root, mem).unwrap();
    let cluster_accs: [Box<dyn Accelerator>; 4] = [
        Box::new(RandomTraffic::new(
            "rnd0",
            0x1000_0000,
            1 << 20,
            BurstSize::B16,
            64,
            10,
            11,
        )),
        Box::new(BandwidthStealer::new(
            "steal",
            0x3000_0000,
            1 << 20,
            256,
            BurstSize::B16,
        )),
        Box::new(PeriodicReader::new(
            "periodic",
            0x5000_0000,
            1 << 20,
            16,
            BurstSize::B16,
            100,
        )),
        Box::new(RandomTraffic::new(
            "rnd1",
            0x7000_0000,
            1 << 20,
            BurstSize::B4,
            32,
            50,
            23,
        )),
    ];
    for (i, acc) in cluster_accs.into_iter().enumerate() {
        let a = b.add_accelerator(format!("c{i}"), acc).unwrap();
        b.attach(a, cluster, i).unwrap();
    }
    let r0 = b
        .add_accelerator(
            "root_rnd",
            Box::new(RandomTraffic::new(
                "root_rnd",
                0x9000_0000,
                1 << 20,
                BurstSize::B16,
                48,
                30,
                47,
            )) as Box<dyn Accelerator>,
        )
        .unwrap();
    b.attach(r0, root, 1).unwrap();
    let r1 = b
        .add_accelerator(
            "root_per",
            Box::new(PeriodicReader::new(
                "root_per",
                0xB000_0000,
                1 << 20,
                16,
                BurstSize::B16,
                250,
            )) as Box<dyn Accelerator>,
        )
        .unwrap();
    b.attach(r1, root, 2).unwrap();
    let mut topo = b.build().unwrap();
    topo.set_scheduler(mode);
    topo
}

#[test]
fn stress_tree_fingerprints_identical_across_all_schedulers() {
    const CYCLES: Cycle = 120_000;
    let fp = |mode: SchedulerMode| {
        let mut topo = build_stress_tree(mode);
        topo.run_for(CYCLES);
        let fp = tree_fingerprint(&mut topo, &["root", "cluster"], &["cluster"], "ddr");
        (topo, fp)
    };
    let (_, naive) = fp(SchedulerMode::Naive);
    let (_, fast) = fp(SchedulerMode::FastForward);
    assert_eq!(naive, fast, "fast-forward diverged from naive");
    for workers in WORKER_SWEEP {
        let (topo, sharded) = fp(SchedulerMode::Sharded { workers });
        assert_eq!(naive, sharded, "sharded({workers}) diverged from naive");
        assert_sharded_report(&topo, 2, workers);
    }
}

// ---------------------------------------------------------------------
// Family 2: fault injection across a cut.
// ---------------------------------------------------------------------

/// A WLAST-corrupting writer between two periodic victims, all three in
/// a cascaded cluster behind a latency-1 bridge. The protocol-monitor
/// violation log (with cycle stamps) must survive sharding unchanged.
fn build_fault_tree(mode: SchedulerMode) -> SocTopology {
    let mut b = TopologyBuilder::new();
    let root = b.add_interconnect("root", num_hc(2)).unwrap();
    let cluster = b.add_interconnect("cluster", num_hc(3)).unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.cascade_with(cluster, root, 0, BridgeConfig::wire().latency(1))
        .unwrap();
    b.connect_memory(root, mem).unwrap();
    let accs: [(usize, Box<dyn Accelerator>); 3] = [
        (
            0,
            Box::new(PeriodicReader::new(
                "victim_a",
                0x1000_0000,
                1 << 20,
                16,
                BurstSize::B16,
                40,
            )),
        ),
        (
            1,
            Box::new(WlastViolator::new(
                "faulty",
                0x2000_0000,
                16,
                BurstSize::B16,
            )),
        ),
        (
            2,
            Box::new(PeriodicReader::new(
                "victim_b",
                0x3000_0000,
                1 << 20,
                16,
                BurstSize::B16,
                40,
            )),
        ),
    ];
    for (port, acc) in accs {
        let a = b.add_accelerator(format!("f{port}"), acc).unwrap();
        b.attach(a, cluster, port).unwrap();
    }
    let d = b
        .add_accelerator(
            "root_dma",
            Box::new(Dma::new(
                "root_dma",
                DmaConfig::reader(32 * 1024, 16, BurstSize::B16).jobs(4),
            )) as Box<dyn Accelerator>,
        )
        .unwrap();
    b.attach(d, root, 1).unwrap();
    let mut topo = b.build().unwrap();
    topo.set_scheduler(mode);
    topo
}

#[test]
fn fault_tree_violation_logs_byte_identical_when_sharded() {
    const CYCLES: Cycle = 40_000;
    let fp = |mode: SchedulerMode| {
        let mut topo = build_fault_tree(mode);
        topo.run_for(CYCLES);
        let fp = tree_fingerprint(&mut topo, &["root", "cluster"], &["cluster"], "ddr");
        (topo, fp)
    };
    let (_, naive) = fp(SchedulerMode::Naive);
    let (_, fast) = fp(SchedulerMode::FastForward);
    assert_eq!(naive, fast);
    assert!(
        naive.contains("WlastMismatch"),
        "scenario never reported the fault: {naive}"
    );
    for workers in WORKER_SWEEP {
        let (topo, sharded) = fp(SchedulerMode::Sharded { workers });
        assert_eq!(naive, sharded, "sharded({workers}) diverged");
        assert_sharded_report(&topo, 2, workers);
    }
}

// ---------------------------------------------------------------------
// Family 3: compute-heavy ChaiDNN frames behind a deep-latency cut.
// ---------------------------------------------------------------------

/// ChaiDNN alone in a leaf cluster behind a latency-4 bridge; a DMA on
/// the root keeps the other shard busy. The long compute phases force
/// the engine-level fast-forward across both shards at once.
fn build_chaidnn_tree(mode: SchedulerMode) -> SocTopology {
    let layers = vec![
        Layer {
            name: "conv1",
            weight_bytes: 4 << 10,
            input_bytes: 2 << 10,
            output_bytes: 2 << 10,
            compute_cycles: 20_000,
        },
        Layer {
            name: "fc",
            weight_bytes: 8 << 10,
            input_bytes: 1 << 10,
            output_bytes: 512,
            compute_cycles: 35_000,
        },
    ];
    let dnn = Chaidnn::new(
        "dnn",
        layers,
        ChaidnnConfig {
            frames: Some(2),
            ..ChaidnnConfig::default()
        },
    );
    let mut b = TopologyBuilder::new();
    let root = b.add_interconnect("root", num_hc(2)).unwrap();
    let leaf = b.add_interconnect("leaf", num_hc(1)).unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.cascade_with(leaf, root, 0, BridgeConfig::wire().latency(4))
        .unwrap();
    b.connect_memory(root, mem).unwrap();
    let a = b
        .add_accelerator("dnn", Box::new(dnn) as Box<dyn Accelerator>)
        .unwrap();
    b.attach(a, leaf, 0).unwrap();
    let d = b
        .add_accelerator(
            "root_dma",
            Box::new(Dma::new(
                "root_dma",
                DmaConfig::reader(64 * 1024, 16, BurstSize::B16).jobs(3),
            )) as Box<dyn Accelerator>,
        )
        .unwrap();
    b.attach(d, root, 1).unwrap();
    let mut topo = b.build().unwrap();
    topo.set_scheduler(mode);
    topo
}

#[test]
fn chaidnn_tree_state_byte_identical_and_completion_window_quantized() {
    // Learn the exact sequential completion cycle, then compare the
    // sharded state over precisely that many cycles (run_for is the
    // byte-identity contract; run_until_done under sharding is
    // window-quantized by design).
    let mut seq = build_chaidnn_tree(SchedulerMode::FastForward);
    assert!(seq.run_until_done(10_000_000).is_done());
    let done_at = seq.now();

    let mut naive = build_chaidnn_tree(SchedulerMode::Naive);
    naive.run_for(done_at);
    let naive_fp = tree_fingerprint(&mut naive, &["root", "leaf"], &["leaf"], "ddr");
    for workers in WORKER_SWEEP {
        let mut sh = build_chaidnn_tree(SchedulerMode::Sharded { workers });
        sh.run_for(done_at);
        let fp = tree_fingerprint(&mut sh, &["root", "leaf"], &["leaf"], "ddr");
        assert_eq!(
            naive_fp, fp,
            "sharded({workers}) diverged over {done_at} cycles"
        );
        assert_sharded_report(&sh, 2, workers);
        // The compute phases are idle on the bus: the engine-level
        // fast-forward must have skipped real spans in *both* shards.
        let rep = *sh.shard_run_report().unwrap();
        assert!(
            rep.engine_skipped > 10_000,
            "engine skipped only {} cycles across the compute phases",
            rep.engine_skipped
        );
    }

    // run_until_done: completion within one exchange window of the
    // sequential cycle, deterministic across worker counts.
    let mut baseline: Option<Cycle> = None;
    for workers in WORKER_SWEEP {
        let mut sh = build_chaidnn_tree(SchedulerMode::Sharded { workers });
        let out = sh.run_until_done(10_000_000);
        assert!(out.is_done(), "sharded({workers}): {out}");
        assert!(
            sh.now() >= done_at && sh.now() < done_at + 4,
            "sharded({workers}) done at {} vs sequential {done_at}",
            sh.now()
        );
        match baseline {
            None => baseline = Some(sh.now()),
            Some(b) => assert_eq!(b, sh.now(), "sharded({workers}) nondeterministic"),
        }
    }
}

// ---------------------------------------------------------------------
// Family 4: seeded chaos campaigns.
// ---------------------------------------------------------------------

/// The recovery-lifecycle campaigns drive their scenarios through
/// `run_for_with` polling hooks, where the sharded mode degrades to the
/// (exact) sequential fast-forward path — the campaign record must
/// still be byte-identical on every pinned seed.
#[test]
fn chaos_campaign_records_identical_under_sharded_mode() {
    for &seed in &PINNED_SEEDS[..3] {
        let ff = run_flat_campaign(&ChaosConfig::new(seed));
        let sharded = run_flat_campaign(
            &ChaosConfig::new(seed).scheduler(SchedulerMode::Sharded { workers: 2 }),
        );
        assert_eq!(
            ff.fingerprint(),
            sharded.fingerprint(),
            "seed {seed}: flat campaign diverged under sharded mode"
        );
    }
    for &seed in &PINNED_SEEDS[..2] {
        let ff = run_tree_campaign(&ChaosConfig::new(seed));
        let sharded = run_tree_campaign(
            &ChaosConfig::new(seed).scheduler(SchedulerMode::Sharded { workers: 2 }),
        );
        assert_eq!(
            ff.fingerprint(),
            sharded.fingerprint(),
            "seed {seed}: tree campaign diverged under sharded mode"
        );
    }
}

// ---------------------------------------------------------------------
// Family 5: three-level cascades — two nested cuts, three shards.
// ---------------------------------------------------------------------

/// root ←(latency 1)─ mid ←(latency 3)─ leaf, a DMA on every spare
/// port. The exchange window is the *minimum* cut latency (1), so the
/// deeper bridge runs with surplus lookahead.
fn build_three_level(mode: SchedulerMode) -> SocTopology {
    let mut b = TopologyBuilder::new();
    let root = b.add_interconnect("root", num_hc(2)).unwrap();
    let mid = b.add_interconnect("mid", num_hc(2)).unwrap();
    let leaf = b.add_interconnect("leaf", num_hc(2)).unwrap();
    let mem = b
        .add_memory("ddr", MemoryController::new(MemConfig::zcu102()))
        .unwrap();
    b.cascade_with(mid, root, 0, BridgeConfig::wire().latency(1))
        .unwrap();
    b.cascade_with(leaf, mid, 0, BridgeConfig::wire().latency(3))
        .unwrap();
    b.connect_memory(root, mem).unwrap();
    for (i, (ic, port)) in [(leaf, 0), (leaf, 1), (mid, 1), (root, 1)]
        .into_iter()
        .enumerate()
    {
        let d = b
            .add_accelerator(
                format!("d{i}"),
                Box::new(Dma::new(
                    format!("d{i}"),
                    DmaConfig {
                        src_base: 0x1000_0000 + i as u64 * 0x0100_0000,
                        dst_base: 0x5000_0000 + i as u64 * 0x0100_0000,
                        read_bytes: 8 * 1024,
                        write_bytes: 8 * 1024,
                        burst_beats: 32,
                        size: BurstSize::B16,
                        max_outstanding: 4,
                        jobs: Some(2),
                    },
                )) as Box<dyn Accelerator>,
            )
            .unwrap();
        b.attach(d, ic, port).unwrap();
    }
    let mut topo = b.build().unwrap();
    topo.set_scheduler(mode);
    topo
}

#[test]
fn three_level_cascade_byte_identical_across_all_schedulers() {
    const CYCLES: Cycle = 60_000;
    let fp = |mode: SchedulerMode| {
        let mut topo = build_three_level(mode);
        topo.run_for(CYCLES);
        let fp = tree_fingerprint(&mut topo, &["root", "mid", "leaf"], &["mid", "leaf"], "ddr");
        (topo, fp)
    };
    let (_, naive) = fp(SchedulerMode::Naive);
    let (_, fast) = fp(SchedulerMode::FastForward);
    assert_eq!(naive, fast);
    for workers in WORKER_SWEEP {
        let (topo, sharded) = fp(SchedulerMode::Sharded { workers });
        assert_eq!(naive, sharded, "sharded({workers}) diverged");
        assert_sharded_report(&topo, 3, workers);
        let rep = *topo.shard_run_report().unwrap();
        assert_eq!(rep.window, 1, "window must be the minimum cut latency");
        // Data integrity end to end: every DMA's copy landed intact.
        let mem_id = topo.node_by_label("ddr").unwrap();
        let memory = topo.memory(mem_id).unwrap();
        for i in 0..4u64 {
            let dst = 0x5000_0000 + i * 0x0100_0000;
            assert!(
                memory.memory().verify_pattern(dst, dst, 8 * 1024),
                "sharded({workers}): d{i} corrupted across the cuts"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Waveform capture under sharding.
// ---------------------------------------------------------------------

/// A waveform probe samples the FPGA–PS boundary every cycle; the
/// probe-owning shard must therefore never skip, and the recorded VCD
/// must be byte-identical to the sequential capture.
#[test]
fn waveform_vcd_byte_identical_under_sharding() {
    const CYCLES: Cycle = 20_000;
    let run = |mode: SchedulerMode| {
        let mut topo = build_fault_tree(mode);
        let mem = topo.node_by_label("ddr").unwrap();
        topo.attach_waveform(mem);
        topo.run_for(CYCLES);
        let vcd = topo.waveform_vcd(mem).expect("probe attached");
        (topo, vcd)
    };
    let (_, seq_vcd) = run(SchedulerMode::FastForward);
    let (topo, sh_vcd) = run(SchedulerMode::Sharded { workers: 2 });
    assert_eq!(seq_vcd, sh_vcd, "sharded VCD diverged");
    assert_eq!(
        topo.skipped_cycles(),
        0,
        "waveform capture must pin the probe shard to every cycle"
    );
}

/// `NodeId` coverage invariant on the suite's own topologies (the
/// random-topology version lives in the proptest suite): every node in
/// exactly one shard, cut count = shards − 1 on a single tree.
#[test]
fn shard_plans_cover_every_node_exactly_once() {
    for (topo, shards) in [
        (build_stress_tree(SchedulerMode::FastForward), 2usize),
        (build_fault_tree(SchedulerMode::FastForward), 2),
        (build_chaidnn_tree(SchedulerMode::FastForward), 2),
        (build_three_level(SchedulerMode::FastForward), 3),
    ] {
        let plan = topo.shard_plan();
        assert_eq!(plan.shards.len(), shards);
        assert_eq!(plan.cuts.len(), shards - 1);
        let mut seen: Vec<NodeId> = plan.shards.iter().flatten().copied().collect();
        let total = seen.len();
        seen.sort_by_key(|id| format!("{id:?}"));
        seen.dedup();
        assert_eq!(seen.len(), total, "a node landed in two shards");
    }
}
