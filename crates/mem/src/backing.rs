//! A sparse, byte-addressable backing store for the modeled DRAM.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse memory image: pages are allocated on first write; unwritten
/// bytes read as zero (as freshly initialized DRAM is modeled here).
///
/// Pages live in a flat `Vec` of boxed 4 KiB frames with a `HashMap`
/// translating page numbers to frame indices, plus a one-entry
/// last-page cache: sequential burst traffic (the common case — beats
/// walk linearly through a page) costs one hash lookup per 4 KiB
/// instead of one per beat. [`read_into`](Self::read_into) is the
/// zero-allocation read path used by the memory controller's per-beat
/// serve loop; [`read`](Self::read) stays for cold paths and tests.
///
/// # Example
///
/// ```
/// use mem::SparseMemory;
///
/// let mut m = SparseMemory::new();
/// m.write(0x1000, &[1, 2, 3]);
/// assert_eq!(m.read(0x1000, 4), vec![1, 2, 3, 0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    /// Flat frame storage; never shrinks.
    frames: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Page number → frame index.
    index: HashMap<u64, u32>,
    /// Last (page number, frame index) touched by a cached-path access.
    last: Option<(u64, u32)>,
}

impl SparseMemory {
    /// Creates an empty (all-zero) memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of 4 KiB pages currently allocated.
    pub fn allocated_pages(&self) -> usize {
        self.frames.len()
    }

    /// Looks up a page's frame without touching the cache (shared-ref
    /// paths).
    #[inline]
    fn frame_of(&self, page: u64) -> Option<u32> {
        if let Some((p, f)) = self.last {
            if p == page {
                return Some(f);
            }
        }
        self.index.get(&page).copied()
    }

    /// Looks up a page's frame, refreshing the last-page cache.
    #[inline]
    fn frame_of_cached(&mut self, page: u64) -> Option<u32> {
        if let Some((p, f)) = self.last {
            if p == page {
                return Some(f);
            }
        }
        let f = self.index.get(&page).copied();
        if let Some(f) = f {
            self.last = Some((page, f));
        }
        f
    }

    /// Looks up or allocates a page's frame, refreshing the cache.
    #[inline]
    fn frame_of_or_alloc(&mut self, page: u64) -> u32 {
        if let Some(f) = self.frame_of_cached(page) {
            return f;
        }
        let f = self.frames.len() as u32;
        self.frames.push(Box::new([0u8; PAGE_SIZE]));
        self.index.insert(page, f);
        self.last = Some((page, f));
        f
    }

    /// Reads `len` bytes starting at `addr`, crossing pages as needed.
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut cursor = addr;
        let mut remaining = len;
        while remaining > 0 {
            let page = cursor >> PAGE_SHIFT;
            let offset = (cursor & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = remaining.min(PAGE_SIZE - offset);
            match self.frame_of(page) {
                Some(f) => out.extend_from_slice(&self.frames[f as usize][offset..offset + chunk]),
                None => out.extend(std::iter::repeat_n(0, chunk)),
            }
            cursor += chunk as u64;
            remaining -= chunk;
        }
        out
    }

    /// Reads `out.len()` bytes starting at `addr` into `out`, crossing
    /// pages as needed. Allocation-free; the hot-path counterpart of
    /// [`read`](Self::read).
    pub fn read_into(&mut self, addr: u64, out: &mut [u8]) {
        let mut cursor = addr;
        let mut dst = out;
        while !dst.is_empty() {
            let page = cursor >> PAGE_SHIFT;
            let offset = (cursor & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = dst.len().min(PAGE_SIZE - offset);
            let (head, rest) = dst.split_at_mut(chunk);
            match self.frame_of_cached(page) {
                Some(f) => head.copy_from_slice(&self.frames[f as usize][offset..offset + chunk]),
                None => head.fill(0),
            }
            cursor += chunk as u64;
            dst = rest;
        }
    }

    /// Writes `data` starting at `addr`, crossing pages as needed.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut cursor = addr;
        let mut src = data;
        while !src.is_empty() {
            let page = cursor >> PAGE_SHIFT;
            let offset = (cursor & (PAGE_SIZE as u64 - 1)) as usize;
            let chunk = src.len().min(PAGE_SIZE - offset);
            let f = self.frame_of_or_alloc(page);
            self.frames[f as usize][offset..offset + chunk].copy_from_slice(&src[..chunk]);
            cursor += chunk as u64;
            src = &src[chunk..];
        }
    }

    /// Fills `[addr, addr + len)` with a deterministic pattern derived
    /// from the address — handy for preparing DMA source buffers.
    pub fn fill_pattern(&mut self, addr: u64, len: usize) {
        let data: Vec<u8> = (0..len as u64).map(|i| pattern_byte(addr + i)).collect();
        self.write(addr, &data);
    }

    /// Checks that `[addr, addr + len)` holds the [`Self::fill_pattern`]
    /// for `source_addr` (i.e. the data was copied from there).
    pub fn verify_pattern(&self, addr: u64, source_addr: u64, len: usize) -> bool {
        let data = self.read(addr, len);
        data.iter()
            .enumerate()
            .all(|(i, &b)| b == pattern_byte(source_addr + i as u64))
    }
}

impl sim::persist::PersistValue for SparseMemory {
    /// Pages serialize sorted by page number, so the byte stream is
    /// independent of allocation order. The last-page cache is
    /// performance-only state and restarts cold.
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_usize(self.index.len());
        let mut pages: Vec<(u64, u32)> = self.index.iter().map(|(&p, &f)| (p, f)).collect();
        pages.sort_unstable_by_key(|&(p, _)| p);
        for (page, frame) in pages {
            w.put_u64(page);
            w.put_bytes(&self.frames[frame as usize][..]);
        }
    }

    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        let n = r.take_usize()?;
        if n > r.remaining() {
            return Err(sim::persist::PersistError::Corrupt(
                "page count exceeds stream",
            ));
        }
        let mut mem = SparseMemory::new();
        for _ in 0..n {
            let page = r.take_u64()?;
            let data = r.take_bytes()?;
            if data.len() != PAGE_SIZE {
                return Err(sim::persist::PersistError::Corrupt("page frame size"));
            }
            let f = mem.frames.len() as u32;
            let mut frame = Box::new([0u8; PAGE_SIZE]);
            frame.copy_from_slice(data);
            mem.frames.push(frame);
            mem.index.insert(page, f);
        }
        Ok(mem)
    }
}

/// The deterministic byte pattern used by [`SparseMemory::fill_pattern`].
pub fn pattern_byte(addr: u64) -> u8 {
    // A cheap mix so adjacent addresses differ and aliasing is caught.
    let x = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (x >> 56) as u8 ^ (addr as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read(0xDEAD_BEEF, 8), vec![0; 8]);
        assert_eq!(m.allocated_pages(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = SparseMemory::new();
        m.write(100, &[9, 8, 7]);
        assert_eq!(m.read(100, 3), vec![9, 8, 7]);
        assert_eq!(m.read(99, 5), vec![0, 9, 8, 7, 0]);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut m = SparseMemory::new();
        let addr = 0x1000 - 2; // straddles the first page boundary
        m.write(addr, &[1, 2, 3, 4]);
        assert_eq!(m.read(addr, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.allocated_pages(), 2);
    }

    #[test]
    fn overwrite_updates_bytes() {
        let mut m = SparseMemory::new();
        m.write(0, &[1, 1, 1, 1]);
        m.write(1, &[2, 2]);
        assert_eq!(m.read(0, 4), vec![1, 2, 2, 1]);
    }

    #[test]
    fn read_into_matches_read() {
        let mut m = SparseMemory::new();
        m.fill_pattern(0x0FF0, 64); // straddles a page boundary
        let mut buf = [0xAAu8; 64];
        m.read_into(0x0FF0, &mut buf);
        assert_eq!(buf.to_vec(), m.read(0x0FF0, 64));
        // Unallocated span reads zero through the buffered path too.
        let mut hole = [0x55u8; 16];
        m.read_into(0x8000_0000, &mut hole);
        assert_eq!(hole, [0u8; 16]);
    }

    #[test]
    fn cached_path_sees_later_writes() {
        let mut m = SparseMemory::new();
        m.write(0x2000, &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        m.read_into(0x2000, &mut buf); // warm the last-page cache
        m.write(0x2001, &[9]);
        m.read_into(0x2000, &mut buf);
        assert_eq!(buf, [1, 9, 3, 4]);
    }

    #[test]
    fn pattern_fill_and_verify() {
        let mut m = SparseMemory::new();
        m.fill_pattern(0x4000, 256);
        assert!(m.verify_pattern(0x4000, 0x4000, 256));
        // Copy elsewhere and verify against the source address.
        let data = m.read(0x4000, 256);
        m.write(0x9000, &data);
        assert!(m.verify_pattern(0x9000, 0x4000, 256));
        // A corrupted byte is caught.
        m.write(0x9003, &[0xFF]);
        assert!(!m.verify_pattern(0x9000, 0x4000, 256));
    }

    #[test]
    fn pattern_bytes_vary() {
        let distinct: std::collections::HashSet<u8> = (0u64..64).map(pattern_byte).collect();
        assert!(distinct.len() > 16, "pattern should not be constant");
    }

    #[test]
    fn large_span_read() {
        let mut m = SparseMemory::new();
        m.fill_pattern(0, 3 * 4096 + 17);
        let data = m.read(0, 3 * 4096 + 17);
        assert_eq!(data.len(), 3 * 4096 + 17);
        assert!(m.verify_pattern(0, 0, 3 * 4096 + 17));
    }
}
