//! The in-order memory controller model.

use axi::beat::{AwBeat, BBeat, RBeat, WBeat};
use axi::burst::beat_addr;
use axi::checker::ProtocolMonitor;
use axi::types::{BurstKind, BurstSize, Resp};
use axi::{AxiPort, Payload, PortConfig};
use sim::fifo::DelayQueue;
use sim::ring::Ring;
use sim::stats::Gauge;
use sim::{Cycle, TimedFifo};

use crate::backing::SparseMemory;
use crate::config::MemConfig;
use crate::fault::{BeatAction, FaultInjector, FaultStats, MemFaultConfig};

/// Per-port attribution slots in [`MemStats::error_responses_by_port`]:
/// slot 0 collects untagged traffic (the PS port, or masters wired
/// directly without observability), slots `1..` map interconnect slave
/// ports `0..` via the transaction uid's 10-bit port salt, and the last
/// slot aggregates any higher-numbered ports.
pub const ERROR_PORT_SLOTS: usize = 16;

/// Aggregate counters exposed by [`MemoryController::stats`].
///
/// The error counters saturate instead of wrapping: a fault campaign
/// left running arbitrarily long degrades to a pinned `u64::MAX`
/// reading rather than silently restarting from zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Read bursts fully served.
    pub reads_served: u64,
    /// Write bursts fully served (data committed, B issued).
    pub writes_served: u64,
    /// Data beats moved in either direction.
    pub beats_served: u64,
    /// Bytes moved in either direction.
    pub bytes_served: u64,
    /// Cycles the data path was busy serving a burst.
    pub busy_cycles: u64,
    /// Read bursts served for the PS-side port.
    pub ps_reads_served: u64,
    /// Row-buffer hits (0 unless a row policy is enabled).
    pub row_hits: u64,
    /// Row-buffer misses (0 unless a row policy is enabled).
    pub row_misses: u64,
    /// Bursts completed with an SLVERR or DECERR response (saturating).
    pub error_responses: u64,
    /// [`Self::error_responses`] split by requesting port (saturating;
    /// see [`ERROR_PORT_SLOTS`] for the slot mapping).
    pub error_responses_by_port: [u64; ERROR_PORT_SLOTS],
}

impl MemStats {
    /// Data-path utilization over `elapsed` cycles (0.0 when `elapsed`
    /// is zero).
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / elapsed as f64
        }
    }

    /// Error responses attributed to interconnect slave port `port`
    /// (ports at or above the last slot share it).
    pub fn errors_for_port(&self, port: usize) -> u64 {
        self.error_responses_by_port[(port + 1).min(ERROR_PORT_SLOTS - 1)]
    }

    /// Error responses that carried no port attribution (PS traffic or
    /// directly wired masters without observability uids).
    pub fn untagged_errors(&self) -> u64 {
        self.error_responses_by_port[0]
    }

    /// Records one completed error burst, attributed through the uid's
    /// port salt. Both the aggregate and the per-port slot saturate.
    fn note_error(&mut self, uid: u64) {
        self.error_responses = self.error_responses.saturating_add(1);
        let slot = ((uid & 0x3FF) as usize).min(ERROR_PORT_SLOTS - 1);
        let per_port = &mut self.error_responses_by_port[slot];
        *per_port = per_port.saturating_add(1);
    }
}

/// A quarantine remap installed by [`MemoryController::quarantine_remap`]:
/// bursts whose start address lands in `[lo, hi)` are redirected to the
/// spare region before decode and service. Remap whole, burst-aligned
/// regions — a burst straddling the boundary translates by its start
/// address only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionRemap {
    /// Inclusive start of the quarantined region.
    pub lo: u64,
    /// Exclusive end of the quarantined region.
    pub hi: u64,
    /// Base address of the spare region standing in for `[lo, hi)`.
    pub spare_base: u64,
}

/// Which requester a job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// The FPGA-PS interface (the interconnect under test).
    Fpga,
    /// The processing system's own port (CPU traffic).
    Ps,
}

#[derive(Debug)]
enum Job {
    Read(axi::ArBeat, Origin, Resp),
    Write(AwBeat, Vec<WBeat>, Resp),
}

/// Byte extent `[start, end)` a burst's data transfer touches, used for
/// address decoding.
fn burst_extent(burst: BurstKind, addr: u64, len: u32, size: BurstSize) -> (u64, u64) {
    let bytes = size.bytes();
    match burst {
        BurstKind::Fixed => (addr, addr.saturating_add(bytes)),
        BurstKind::Incr => (addr, addr.saturating_add(len as u64 * bytes)),
        BurstKind::Wrap => {
            let container = len as u64 * bytes;
            let base = addr - (addr % container.max(1));
            (base, base.saturating_add(container))
        }
    }
}

#[derive(Debug)]
struct Active {
    job: Job,
    beats_done: u32,
    /// Whether any delivered beat of this burst carried an error
    /// response (the acceptance-time response, or an ECC-uncorrectable
    /// beat injected mid-burst).
    errored: bool,
}

/// An in-order AXI memory controller with a real backing store.
///
/// # Example
///
/// ```
/// use mem::{MemConfig, MemoryController};
///
/// let mut ctrl = MemoryController::new(MemConfig::zcu102());
/// ctrl.memory_mut().write(0x100, &[1, 2, 3]);
/// assert_eq!(ctrl.memory().read(0x100, 3), vec![1, 2, 3]);
/// assert!(ctrl.is_idle());
/// ```
///
/// Service model: accepted requests enter a fixed-latency service
/// pipeline (`first_word_latency` cycles, overlapped across requests as
/// in a real pipelined controller), then stream on the single data path
/// at one beat per cycle. Reads and writes share the data path; requests
/// are served strictly in acceptance order. Writes are accepted into
/// service only once all their data beats have arrived; when a read
/// request and a fully assembled write compete for a service slot they
/// are admitted alternately (write-starvation avoidance — under strict
/// read priority, masters recycling their read-outstanding slots could
/// delay an assembled write without bound).
pub struct MemoryController {
    config: MemConfig,
    memory: SparseMemory,
    service: DelayQueue<Job>,
    /// Open row per bank, when a row policy is enabled.
    open_rows: Vec<Option<u64>>,
    /// Optional PS-side read port (CPU traffic), accepted with priority
    /// over the FPGA port as on real Zynq DDR controllers.
    ps_port: Option<AxiPort>,
    active: Option<Active>,
    /// AWs accepted, oldest first; data is assembled for the head.
    aw_pending: Ring<AwBeat>,
    assembly: Vec<WBeat>,
    /// Cleared assembly buffers recycled by [`finalize_write`]
    /// (zero-alloc steady state: one buffer per concurrent write job,
    /// returned when the job's beats finish committing).
    spare_assemblies: Vec<Vec<WBeat>>,
    b_pipe: TimedFifo<BBeat>,
    stats: MemStats,
    monitor: Option<ProtocolMonitor>,
    /// Optional `(cycle, address)` trace of accepted read requests.
    ar_trace: Option<Vec<(Cycle, u64)>>,
    /// Optional `(cycle, address)` trace of accepted write requests.
    aw_trace: Option<Vec<(Cycle, u64)>>,
    /// Outstanding-request gauge: accepted jobs not yet fully served
    /// (service pipeline + active burst + assembling writes).
    outstanding: Gauge,
    /// Write-starvation avoidance: set when a read is admitted to
    /// service, cleared when a write is; an assembled write contending
    /// with reads for a slot waits for at most one of them.
    prefer_write: bool,
    /// Optional seeded fault injector (transient errors, bit flips,
    /// ECC model) — see [`crate::fault`].
    fault: Option<FaultInjector>,
    /// Active quarantine remaps, applied at acceptance in installation
    /// order (first match wins).
    remaps: Vec<RegionRemap>,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("config", &self.config)
            .field("pipeline", &self.service.len())
            .field("active", &self.active.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

impl MemoryController {
    /// Creates a controller with an empty backing store.
    pub fn new(config: MemConfig) -> Self {
        Self::with_memory(config, SparseMemory::new())
    }

    /// Creates a controller around an existing memory image.
    pub fn with_memory(config: MemConfig, memory: SparseMemory) -> Self {
        Self {
            config,
            memory,
            service: DelayQueue::new(config.pipeline_depth),
            open_rows: vec![None; config.row_policy.map_or(0, |p| p.banks as usize)],
            ps_port: None,
            active: None,
            aw_pending: Ring::new(),
            assembly: Vec::new(),
            spare_assemblies: Vec::new(),
            b_pipe: TimedFifo::new(16, config.write_resp_latency),
            stats: MemStats::default(),
            monitor: None,
            ar_trace: None,
            aw_trace: None,
            outstanding: Gauge::default(),
            prefer_write: false,
            fault: None,
            remaps: Vec::new(),
        }
    }

    /// The service configuration this controller was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Current and peak outstanding requests (accepted but not fully
    /// served). Updated once per tick, idempotently, so identical under
    /// the fast-forward scheduler.
    pub fn outstanding_gauge(&self) -> Gauge {
        self.outstanding
    }

    /// Attaches an AXI protocol monitor at the FPGA-PS boundary: every
    /// beat the controller accepts or produces is checked against the
    /// channel-ordering rules.
    pub fn attach_monitor(&mut self) {
        self.monitor = Some(ProtocolMonitor::new());
    }

    /// The attached protocol monitor, if any.
    pub fn monitor(&self) -> Option<&ProtocolMonitor> {
        self.monitor.as_ref()
    }

    /// Starts recording a `(cycle, address)` trace of every accepted
    /// request (used by tests to verify reservation bounds at the
    /// memory side, independently of the interconnect's own counters).
    pub fn attach_request_trace(&mut self) {
        self.ar_trace = Some(Vec::new());
        self.aw_trace = Some(Vec::new());
    }

    /// Accepted read requests, if tracing is on.
    pub fn ar_trace(&self) -> Option<&[(Cycle, u64)]> {
        self.ar_trace.as_deref()
    }

    /// Accepted write requests, if tracing is on.
    pub fn aw_trace(&self) -> Option<&[(Cycle, u64)]> {
        self.aw_trace.as_deref()
    }

    /// Enables the PS-side read port: a second requester (the
    /// processing system's CPUs) whose requests are accepted with
    /// priority but share the in-order service path — the reason the
    /// paper wants to bound "the overall memory traffic coming from the
    /// FPGA fabric" (§V-A).
    pub fn enable_ps_port(&mut self) {
        self.ps_port = Some(AxiPort::new(PortConfig::wire()));
    }

    /// The PS-side port, if enabled (push AR, pop R).
    ///
    /// # Panics
    ///
    /// Panics if [`Self::enable_ps_port`] was not called.
    pub fn ps_port_mut(&mut self) -> &mut AxiPort {
        self.ps_port.as_mut().expect("PS port not enabled")
    }

    /// The PS-side port, if enabled (read-only view — e.g. for the
    /// fast-forward scheduler's mutation fingerprint).
    pub fn ps_port(&self) -> Option<&AxiPort> {
        self.ps_port.as_ref()
    }

    /// First-word latency for a request at `addr`: flat, or row-buffer
    /// dependent when a row policy is enabled (bank state updates at
    /// acceptance, approximating an open-page controller).
    fn service_delay(&mut self, addr: u64) -> Cycle {
        match self.config.row_policy {
            None => self.config.first_word_latency,
            Some(p) => {
                let bank = ((addr / p.row_bytes) % p.banks as u64) as usize;
                let row = addr / (p.row_bytes * p.banks as u64);
                if self.open_rows[bank] == Some(row) {
                    self.stats.row_hits += 1;
                    p.hit_latency
                } else {
                    self.open_rows[bank] = Some(row);
                    self.stats.row_misses += 1;
                    p.miss_latency
                }
            }
        }
    }

    /// Arms seeded fault injection (transient SLVERRs, payload bit
    /// flips, the ECC model) — see [`crate::fault`] for the fault
    /// surface. Re-arming replaces any previous injector and restarts
    /// its RNG stream.
    pub fn attach_fault_injector(&mut self, config: MemFaultConfig) {
        self.fault = Some(FaultInjector::new(config));
    }

    /// The armed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// Injection counters, when a fault injector is armed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(|f| f.stats())
    }

    /// Installs a quarantine remap: bursts starting inside the region
    /// are redirected to the spare region before decode and service —
    /// the hypervisor's degraded-mode answer to a region that keeps
    /// returning hard errors. Remaps stack; the first matching region
    /// wins.
    pub fn quarantine_remap(&mut self, remap: RegionRemap) {
        self.remaps.push(remap);
    }

    /// The quarantine remaps installed so far, in installation order.
    pub fn remaps(&self) -> &[RegionRemap] {
        &self.remaps
    }

    /// Applies quarantine remaps to a burst's start address.
    fn translate(&self, addr: u64) -> u64 {
        for m in &self.remaps {
            if addr >= m.lo && addr < m.hi {
                return m.spare_base + (addr - m.lo);
            }
        }
        addr
    }

    /// The backing store (e.g. to pre-fill DMA source buffers).
    pub fn memory(&self) -> &SparseMemory {
        &self.memory
    }

    /// Mutable access to the backing store.
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.memory
    }

    /// Aggregate service counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Whether no request is queued, assembling, in service or awaiting
    /// a response.
    pub fn is_idle(&self) -> bool {
        self.service.is_empty()
            && self.active.is_none()
            && self.aw_pending.is_empty()
            && self.b_pipe.is_empty()
    }

    /// Advances the controller one cycle against the interconnect's
    /// master port. Returns `true` if any state changed.
    pub fn tick(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        let mut progress = false;
        progress |= self.drain_b(now, port);
        progress |= self.accept_aw(now, port);
        // Fair service-slot arbitration: when an assembled write is due
        // a slot, let it finalize before reads claim the space.
        if self.prefer_write && self.write_assembled() {
            progress |= self.accept_w(now, port);
            progress |= self.accept_ar(now, port);
        } else {
            progress |= self.accept_ar(now, port);
            progress |= self.accept_w(now, port);
        }
        progress |= self.promote(now);
        progress |= self.serve(now, port);
        self.outstanding.set(
            (self.service.len() + usize::from(self.active.is_some()) + self.aw_pending.len())
                as u64,
        );
        progress
    }

    /// Event-horizon hint (see [`sim::Component::next_event`]): the
    /// earliest future cycle this controller could make progress at,
    /// assuming nothing new arrives on the interconnect's master port
    /// before then (arrivals there are covered by the interconnect's own
    /// hint). `None` means fully idle.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // An active job streams (or retries a blocked) beat every cycle.
        if self.active.is_some() {
            return Some(now + 1);
        }
        let ps_ar = self.ps_port.as_ref().and_then(|p| p.ar.next_ready_at());
        [
            self.service.next_ready_at(),
            self.b_pipe.next_ready_at(),
            ps_ar,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn drain_b(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        if self.b_pipe.has_ready(now) && !port.b.is_full() {
            let mut beat = self.b_pipe.pop_ready(now).expect("checked ready");
            // Observability: the response-latency pipe is part of the
            // memory's service, so the emission stamp is taken here.
            beat.hopped_at = now;
            if let Some(m) = self.monitor.as_mut() {
                m.observe_b(now, &beat);
            }
            port.b.push(now, beat).expect("checked space");
            return true;
        }
        false
    }

    /// Whether the head write has all its data and is waiting only for
    /// a service slot.
    fn write_assembled(&self) -> bool {
        self.aw_pending
            .front()
            .is_some_and(|aw| self.assembly.len() >= aw.len as usize)
    }

    fn accept_ar(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        if self.service.is_full() {
            return false;
        }
        // PS port has acceptance priority.
        let ps_ready = self.ps_port.as_ref().is_some_and(|p| p.ar.has_ready(now));
        if ps_ready {
            let mut ar = self
                .ps_port
                .as_mut()
                .expect("checked above")
                .ar
                .pop_ready(now)
                .expect("checked ready");
            ar.addr = self.translate(ar.addr);
            let delay = self.service_delay(ar.addr);
            let (lo, hi) = burst_extent(ar.burst, ar.addr, ar.len, ar.size);
            let mut resp = self.config.response_for(lo, hi);
            if let Some(f) = self.fault.as_mut() {
                resp = f.override_response(resp);
            }
            self.service
                .push(now, delay, Job::Read(ar, Origin::Ps, resp))
                .expect("checked space");
            self.prefer_write = true;
            return true;
        }
        if port.ar.has_ready(now) {
            let mut ar = port.ar.pop_ready(now).expect("checked ready");
            if let Some(m) = self.monitor.as_mut() {
                m.observe_ar(now, &ar);
            }
            if let Some(t) = self.ar_trace.as_mut() {
                t.push((now, ar.addr));
            }
            ar.addr = self.translate(ar.addr);
            let delay = self.service_delay(ar.addr);
            let (lo, hi) = burst_extent(ar.burst, ar.addr, ar.len, ar.size);
            let mut resp = self.config.response_for(lo, hi);
            if let Some(f) = self.fault.as_mut() {
                resp = f.override_response(resp);
            }
            self.service
                .push(now, delay, Job::Read(ar, Origin::Fpga, resp))
                .expect("checked space");
            self.prefer_write = true;
            return true;
        }
        false
    }

    fn accept_aw(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        if port.aw.has_ready(now) && self.aw_pending.len() < self.config.write_buffer_depth {
            let aw = port.aw.pop_ready(now).expect("checked ready");
            if let Some(m) = self.monitor.as_mut() {
                m.observe_aw(now, &aw);
            }
            if let Some(t) = self.aw_trace.as_mut() {
                t.push((now, aw.addr));
            }
            self.aw_pending.push_back(aw);
            return true;
        }
        false
    }

    fn accept_w(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        let Some(head) = self.aw_pending.front() else {
            return false; // data may not lead its address in this model
        };
        let needed = head.len as usize;
        if self.assembly.len() >= needed {
            // Assembly complete but the service pipeline is full; wait.
            return self.finalize_write(now);
        }
        if let Some(w) = port.w.pop_ready(now) {
            if let Some(m) = self.monitor.as_mut() {
                m.observe_w(now, &w);
            }
            self.assembly.push(w);
            if self.assembly.len() >= needed {
                self.finalize_write(now);
            }
            return true;
        }
        false
    }

    fn finalize_write(&mut self, now: Cycle) -> bool {
        if self.service.is_full() {
            return false;
        }
        let mut aw = self.aw_pending.pop_front().expect("assembly implies head");
        aw.addr = self.translate(aw.addr);
        let fresh = self.spare_assemblies.pop().unwrap_or_default();
        let data = std::mem::replace(&mut self.assembly, fresh);
        let delay = self.service_delay(aw.addr);
        let (lo, hi) = burst_extent(aw.burst, aw.addr, aw.len, aw.size);
        let mut resp = self.config.response_for(lo, hi);
        if let Some(f) = self.fault.as_mut() {
            resp = f.override_response(resp);
        }
        self.service
            .push(now, delay, Job::Write(aw, data, resp))
            .expect("checked space");
        self.prefer_write = false;
        true
    }

    fn promote(&mut self, now: Cycle) -> bool {
        if self.active.is_none() && self.service.has_ready(now) {
            let job = self.service.pop_ready(now).expect("checked ready");
            self.active = Some(Active {
                job,
                beats_done: 0,
                errored: false,
            });
            return true;
        }
        false
    }

    fn serve(&mut self, now: Cycle, port: &mut AxiPort) -> bool {
        let Some(active) = self.active.as_mut() else {
            return false;
        };
        match &mut active.job {
            Job::Read(ar, origin, resp) => {
                let origin = *origin;
                let resp = *resp;
                let target_full = match origin {
                    Origin::Fpga => port.r.is_full(),
                    Origin::Ps => self
                        .ps_port
                        .as_ref()
                        .expect("PS job implies PS port")
                        .r
                        .is_full(),
                };
                if target_full {
                    return false;
                }
                let idx = active.beats_done;
                let addr = beat_addr(ar.burst, ar.addr, ar.len, ar.size, idx);
                let bytes = ar.size.bytes() as usize;
                // Error reads still stream the full beat count (AXI
                // requires it), but data is undefined — modeled as
                // zeros, never touching backing storage.
                let mut data = Payload::zeroed(bytes);
                if resp.is_ok() {
                    self.memory.read_into(addr, data.as_mut_slice());
                }
                // Fabric/ECC fault hooks perturb OK beats only: flips
                // (possibly caught by ECC) and return-path loss.
                let mut beat_resp = resp;
                let mut action = BeatAction::Deliver;
                if resp.is_ok() {
                    if let Some(f) = self.fault.as_mut() {
                        beat_resp = f.mutate_read_beat(data.as_mut_slice());
                        action = f.beat_action();
                    }
                }
                if !beat_resp.is_ok() {
                    active.errored = true;
                }
                let last = idx + 1 == ar.len;
                let uid = ar.uid;
                if action != BeatAction::Drop {
                    let mut beat = RBeat::new(ar.id, data, last)
                        .with_tag(ar.tag)
                        .with_issued_at(ar.issued_at)
                        .with_uid(uid)
                        .with_resp(beat_resp);
                    // Observability: when the controller emitted this beat.
                    beat.hopped_at = now;
                    let dup = (action == BeatAction::Duplicate).then(|| beat.clone());
                    match origin {
                        Origin::Fpga => {
                            if let Some(m) = self.monitor.as_mut() {
                                m.observe_r(now, &beat);
                            }
                            port.r.push(now, beat).expect("checked space");
                            if let Some(extra) = dup {
                                if !port.r.is_full() {
                                    let _ = port.r.push(now, extra);
                                }
                            }
                        }
                        Origin::Ps => {
                            let ps = self.ps_port.as_mut().expect("PS job implies PS port");
                            ps.r.push(now, beat).expect("checked space");
                            if let Some(extra) = dup {
                                if !ps.r.is_full() {
                                    let _ = ps.r.push(now, extra);
                                }
                            }
                        }
                    }
                }
                active.beats_done += 1;
                let errored = active.errored;
                self.stats.beats_served += 1;
                self.stats.bytes_served += bytes as u64;
                self.stats.busy_cycles += 1;
                if last {
                    match origin {
                        Origin::Fpga => self.stats.reads_served += 1,
                        Origin::Ps => self.stats.ps_reads_served += 1,
                    }
                    if errored {
                        self.stats.note_error(uid);
                    }
                    self.active = None;
                }
                true
            }
            Job::Write(aw, data, resp) => {
                let resp = *resp;
                let idx = active.beats_done;
                if (idx as usize) < data.len() {
                    let addr = beat_addr(aw.burst, aw.addr, aw.len, aw.size, idx);
                    let beat = &data[idx as usize];
                    // Erroring writes occupy the data path but never
                    // commit to backing storage.
                    if !resp.is_ok() {
                        // no commit
                    } else if beat.strb == axi::beat::STRB_ALL {
                        self.memory.write(addr, &beat.data);
                    } else {
                        // Sparse (strobed) commit: only enabled bytes.
                        for (i, &byte) in beat.data.iter().enumerate() {
                            if beat.byte_enabled(i) {
                                self.memory.write(addr + i as u64, &[byte]);
                            }
                        }
                    }
                    let payload = &data[idx as usize].data;
                    active.beats_done += 1;
                    self.stats.beats_served += 1;
                    self.stats.bytes_served += payload.len() as u64;
                    self.stats.busy_cycles += 1;
                    true
                } else {
                    // All beats committed; issue the response.
                    if self.b_pipe.is_full() {
                        return false;
                    }
                    let uid = aw.uid;
                    let beat = BBeat::new(aw.id)
                        .with_tag(aw.tag)
                        .with_issued_at(aw.issued_at)
                        .with_uid(uid)
                        .with_resp(resp);
                    self.b_pipe.push(now, beat).expect("checked space");
                    self.stats.writes_served += 1;
                    if !resp.is_ok() {
                        self.stats.note_error(uid);
                    }
                    // Recycle the assembly buffer for future writes.
                    if let Some(done) = self.active.take() {
                        if let Job::Write(_, mut buf, _) = done.job {
                            buf.clear();
                            self.spare_assemblies.push(buf);
                        }
                    }
                    true
                }
            }
        }
    }
}

mod persist_impls {
    use super::*;
    use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};

    impl PersistValue for MemStats {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.reads_served);
            w.put_u64(self.writes_served);
            w.put_u64(self.beats_served);
            w.put_u64(self.bytes_served);
            w.put_u64(self.busy_cycles);
            w.put_u64(self.ps_reads_served);
            w.put_u64(self.row_hits);
            w.put_u64(self.row_misses);
            w.put_u64(self.error_responses);
            self.error_responses_by_port.save_value(w);
        }

        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                reads_served: r.take_u64()?,
                writes_served: r.take_u64()?,
                beats_served: r.take_u64()?,
                bytes_served: r.take_u64()?,
                busy_cycles: r.take_u64()?,
                ps_reads_served: r.take_u64()?,
                row_hits: r.take_u64()?,
                row_misses: r.take_u64()?,
                error_responses: r.take_u64()?,
                error_responses_by_port: <[u64; ERROR_PORT_SLOTS]>::load_value(r)?,
            })
        }
    }

    impl PersistValue for RegionRemap {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.lo);
            w.put_u64(self.hi);
            w.put_u64(self.spare_base);
        }

        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                lo: r.take_u64()?,
                hi: r.take_u64()?,
                spare_base: r.take_u64()?,
            })
        }
    }

    /// Wire order of [`Origin`] variants; append-only for compatibility.
    const ORIGINS: [Origin; 2] = [Origin::Fpga, Origin::Ps];

    impl PersistValue for Origin {
        fn save_value(&self, w: &mut SnapshotWriter) {
            let code = ORIGINS.iter().position(|o| o == self).expect("in table");
            w.put_u8(code as u8);
        }

        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            let code = r.take_u8()? as usize;
            ORIGINS
                .get(code)
                .copied()
                .ok_or(PersistError::Corrupt("unknown job origin"))
        }
    }

    impl PersistValue for Job {
        fn save_value(&self, w: &mut SnapshotWriter) {
            match self {
                Job::Read(ar, origin, resp) => {
                    w.put_u8(0);
                    ar.save_value(w);
                    origin.save_value(w);
                    resp.save_value(w);
                }
                Job::Write(aw, data, resp) => {
                    w.put_u8(1);
                    aw.save_value(w);
                    data.save_value(w);
                    resp.save_value(w);
                }
            }
        }

        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            match r.take_u8()? {
                0 => Ok(Job::Read(
                    axi::ArBeat::load_value(r)?,
                    Origin::load_value(r)?,
                    Resp::load_value(r)?,
                )),
                1 => Ok(Job::Write(
                    AwBeat::load_value(r)?,
                    Vec::load_value(r)?,
                    Resp::load_value(r)?,
                )),
                _ => Err(PersistError::Corrupt("unknown memory job kind")),
            }
        }
    }

    impl PersistValue for Active {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.job.save_value(w);
            w.put_u32(self.beats_done);
            w.put_bool(self.errored);
        }

        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                job: Job::load_value(r)?,
                beats_done: r.take_u32()?,
                errored: r.take_bool()?,
            })
        }
    }

    impl MemoryController {
        /// Serializes the controller's full dynamic state: backing
        /// store, service pipeline, assembling writes, response pipe,
        /// row-buffer state, traces, counters, the fault injector (with
        /// its RNG position) and quarantine remaps. The spare-assembly
        /// recycling pool holds only emptied buffers and is not part of
        /// the observable state, so it is skipped.
        pub fn save_state(&self, w: &mut SnapshotWriter) {
            self.memory.save_value(w);
            self.service.save_value(w);
            self.open_rows.save_value(w);
            self.ps_port.save_value(w);
            self.active.save_value(w);
            self.aw_pending.save_value(w);
            self.assembly.save_value(w);
            self.b_pipe.save_value(w);
            self.stats.save_value(w);
            self.monitor.save_value(w);
            self.ar_trace.save_value(w);
            self.aw_trace.save_value(w);
            self.outstanding.save_value(w);
            w.put_bool(self.prefer_write);
            self.fault.save_value(w);
            self.remaps.save_value(w);
        }

        /// Restores state saved by [`Self::save_state`] into a
        /// controller built with the same [`MemConfig`]. Decodes the
        /// whole stream before mutating `self`, so a corrupt snapshot
        /// leaves the controller unchanged.
        pub fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
            let memory = SparseMemory::load_value(r)?;
            let service = DelayQueue::<Job>::load_value(r)?;
            let open_rows = Vec::<Option<u64>>::load_value(r)?;
            let ps_port = Option::<AxiPort>::load_value(r)?;
            let active = Option::<Active>::load_value(r)?;
            let aw_pending = Ring::<AwBeat>::load_value(r)?;
            let assembly = Vec::<WBeat>::load_value(r)?;
            let b_pipe = TimedFifo::<BBeat>::load_value(r)?;
            let stats = MemStats::load_value(r)?;
            let monitor = Option::<ProtocolMonitor>::load_value(r)?;
            let ar_trace = Option::<Vec<(Cycle, u64)>>::load_value(r)?;
            let aw_trace = Option::<Vec<(Cycle, u64)>>::load_value(r)?;
            let outstanding = Gauge::load_value(r)?;
            let prefer_write = r.take_bool()?;
            let fault = Option::<FaultInjector>::load_value(r)?;
            let remaps = Vec::<RegionRemap>::load_value(r)?;
            let banks = self.config.row_policy.map_or(0, |p| p.banks as usize);
            if open_rows.len() != banks {
                return Err(PersistError::ShapeMismatch("memory controller bank count"));
            }
            self.memory = memory;
            self.service = service;
            self.open_rows = open_rows;
            self.ps_port = ps_port;
            self.active = active;
            self.aw_pending = aw_pending;
            self.assembly = assembly;
            self.spare_assemblies.clear();
            self.b_pipe = b_pipe;
            self.stats = stats;
            self.monitor = monitor;
            self.ar_trace = ar_trace;
            self.aw_trace = aw_trace;
            self.outstanding = outstanding;
            self.prefer_write = prefer_write;
            self.fault = fault;
            self.remaps = remaps;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::types::BurstSize;
    use axi::ArBeat;

    fn run(ctrl: &mut MemoryController, port: &mut AxiPort, cycles: Cycle) {
        for now in 0..cycles {
            ctrl.tick(now, port);
        }
    }

    fn drain_r(port: &mut AxiPort, now: Cycle) -> Vec<RBeat> {
        let mut out = Vec::new();
        while let Some(beat) = port.r.pop_ready(now) {
            out.push(beat);
        }
        out
    }

    #[test]
    fn single_beat_read_latency() {
        let cfg = MemConfig::default().first_word_latency(10);
        let mut ctrl = MemoryController::new(cfg);
        ctrl.memory_mut().write(0x100, &[0xAB, 0xCD, 0xEF, 0x01]);
        let mut port = AxiPort::default();
        port.ar
            .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        // Accepted at cycle 0, enters service pipe (latency 10), first
        // beat served the cycle it becomes ready.
        let mut first_beat_at = None;
        for now in 0..40 {
            ctrl.tick(now, &mut port);
            if first_beat_at.is_none() && port.r.has_ready(now) {
                first_beat_at = Some(now);
            }
        }
        assert_eq!(first_beat_at, Some(10));
        let beats = drain_r(&mut port, 40);
        assert_eq!(beats.len(), 1);
        assert!(beats[0].last);
        assert_eq!(beats[0].data, vec![0xAB, 0xCD, 0xEF, 0x01]);
    }

    #[test]
    fn burst_read_streams_one_beat_per_cycle() {
        let mut ctrl = MemoryController::new(MemConfig::default().first_word_latency(5));
        let mut port = AxiPort::default();
        port.ar.push(0, ArBeat::new(0, 8, BurstSize::B16)).unwrap();
        let mut beat_cycles = Vec::new();
        for now in 0..40 {
            ctrl.tick(now, &mut port);
            for _ in drain_r(&mut port, now) {
                beat_cycles.push(now);
            }
        }
        assert_eq!(beat_cycles.len(), 8);
        // Consecutive beats on consecutive cycles.
        for pair in beat_cycles.windows(2) {
            assert_eq!(pair[1], pair[0] + 1);
        }
    }

    #[test]
    fn back_to_back_bursts_have_no_bubble() {
        // The pipeline overlaps first-word latency across requests.
        let mut ctrl = MemoryController::new(MemConfig::default().first_word_latency(6));
        let mut port = AxiPort::default();
        port.ar.push(0, ArBeat::new(0, 16, BurstSize::B16)).unwrap();
        port.ar
            .push(0, ArBeat::new(4096, 16, BurstSize::B16))
            .unwrap();
        let mut beat_cycles = Vec::new();
        for now in 0..100 {
            ctrl.tick(now, &mut port);
            for _ in drain_r(&mut port, now) {
                beat_cycles.push(now);
            }
        }
        assert_eq!(beat_cycles.len(), 32);
        // All 32 beats within a contiguous window: latency + 32 cycles.
        assert_eq!(beat_cycles.last().unwrap() - beat_cycles[0], 31);
    }

    #[test]
    fn write_then_read_returns_data() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        let mut port = AxiPort::default();
        let aw = AwBeat::new(0x200, 2, BurstSize::B4);
        port.aw.push(0, aw).unwrap();
        port.w.push(0, WBeat::new(vec![1, 2, 3, 4], false)).unwrap();
        port.w.push(0, WBeat::new(vec![5, 6, 7, 8], true)).unwrap();
        run(&mut ctrl, &mut port, 30);
        // B response arrived.
        let b = port.b.pop_ready(30);
        assert!(b.is_some());
        assert_eq!(ctrl.memory().read(0x200, 8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(ctrl.stats().writes_served, 1);
    }

    #[test]
    fn write_waits_for_all_data() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        let mut port = AxiPort::default();
        port.aw.push(0, AwBeat::new(0, 2, BurstSize::B4)).unwrap();
        port.w.push(0, WBeat::new(vec![9; 4], false)).unwrap();
        run(&mut ctrl, &mut port, 20);
        // Only one beat arrived: no commit, no B.
        assert!(port.b.pop_ready(20).is_none());
        assert_eq!(ctrl.stats().writes_served, 0);
        // Supply the final beat; the write completes.
        port.w.push(20, WBeat::new(vec![7; 4], true)).unwrap();
        for now in 20..40 {
            ctrl.tick(now, &mut port);
        }
        assert!(port.b.pop_ready(40).is_some());
        assert_eq!(ctrl.memory().read(4, 4), vec![7; 4]);
    }

    #[test]
    fn reads_and_writes_served_in_acceptance_order() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        let mut port = AxiPort::default();
        ctrl.memory_mut().fill_pattern(0, 64);
        // Write at cycle 0, read accepted after it.
        port.aw
            .push(0, AwBeat::new(0x100, 1, BurstSize::B4).with_tag(1))
            .unwrap();
        port.w.push(0, WBeat::new(vec![1; 4], true)).unwrap();
        port.ar
            .push(0, ArBeat::new(0, 1, BurstSize::B4).with_tag(2))
            .unwrap();
        run(&mut ctrl, &mut port, 30);
        assert_eq!(ctrl.stats().reads_served, 1);
        assert_eq!(ctrl.stats().writes_served, 1);
    }

    #[test]
    fn respects_r_backpressure() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        let mut port = AxiPort::new(axi::PortConfig::wire().data_capacity(2));
        port.ar.push(0, ArBeat::new(0, 8, BurstSize::B4)).unwrap();
        run(&mut ctrl, &mut port, 50);
        // Only 2 beats fit; the controller must not lose the rest.
        assert_eq!(port.r.len(), 2);
        let mut got = 0;
        for now in 50..200 {
            got += drain_r(&mut port, now).len();
            ctrl.tick(now, &mut port);
        }
        assert_eq!(got, 8);
        assert_eq!(ctrl.stats().reads_served, 1);
    }

    #[test]
    fn pipeline_depth_limits_acceptance() {
        let mut ctrl = MemoryController::new(MemConfig::ideal().pipeline_depth(2));
        let mut port = AxiPort::default();
        for i in 0..4 {
            port.ar
                .push(0, ArBeat::new(i * 64, 1, BurstSize::B4))
                .unwrap();
        }
        // One tick at cycle 0: at most one AR accepted per cycle.
        ctrl.tick(0, &mut port);
        assert_eq!(port.ar.len(), 3);
        ctrl.tick(1, &mut port);
        assert_eq!(port.ar.len(), 2);
        // Pipe is now full (depth 2) and nothing is served yet at cycle 2
        // (latency 1 means the first job becomes active this cycle).
        run(&mut ctrl, &mut port, 100);
        assert_eq!(ctrl.stats().reads_served, 4);
    }

    #[test]
    fn utilization_and_idle() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        assert!(ctrl.is_idle());
        let mut port = AxiPort::default();
        port.ar.push(0, ArBeat::new(0, 4, BurstSize::B4)).unwrap();
        run(&mut ctrl, &mut port, 50);
        drain_r(&mut port, 50);
        assert!(ctrl.is_idle());
        let stats = ctrl.stats();
        assert_eq!(stats.beats_served, 4);
        assert_eq!(stats.bytes_served, 16);
        assert!(stats.utilization(50) > 0.0);
        assert_eq!(stats.utilization(0), 0.0);
    }

    #[test]
    fn row_policy_hits_are_faster_than_misses() {
        use crate::config::RowPolicy;
        let policy = RowPolicy::default();
        let cfg = MemConfig::zcu102().row_policy(policy);
        // Second read issued once the pipe is empty, to the same row
        // (hit) versus another row of the same bank (miss).
        let run = |second_addr: u64| {
            let mut ctrl = MemoryController::new(cfg);
            let mut port = AxiPort::default();
            port.ar.push(0, ArBeat::new(0, 1, BurstSize::B16)).unwrap();
            port.ar
                .push(100, ArBeat::new(second_addr, 1, BurstSize::B16))
                .unwrap();
            let mut arrivals = Vec::new();
            for now in 0..400 {
                ctrl.tick(now, &mut port);
                while drain_r(&mut port, now).pop().is_some() {
                    arrivals.push(now);
                }
            }
            assert_eq!(arrivals.len(), 2);
            (arrivals[1], ctrl.stats())
        };
        let (hit_at, hit_stats) = run(16);
        let stride = policy.row_bytes * policy.banks as u64;
        let (miss_at, miss_stats) = run(stride);
        assert_eq!(hit_stats.row_hits, 1);
        assert_eq!(hit_stats.row_misses, 1);
        assert_eq!(miss_stats.row_misses, 2);
        assert_eq!(
            miss_at - hit_at,
            policy.miss_latency - policy.hit_latency,
            "latency gap must equal the policy delta"
        );
    }

    #[test]
    fn row_policy_off_counts_nothing() {
        let mut ctrl = MemoryController::new(MemConfig::zcu102());
        let mut port = AxiPort::default();
        port.ar.push(0, ArBeat::new(0, 4, BurstSize::B16)).unwrap();
        for now in 0..100 {
            ctrl.tick(now, &mut port);
            drain_r(&mut port, now);
        }
        assert_eq!(ctrl.stats().row_hits, 0);
        assert_eq!(ctrl.stats().row_misses, 0);
    }

    #[test]
    fn sequential_streaming_is_mostly_row_hits() {
        let cfg = MemConfig::zcu102().row_policy(crate::config::RowPolicy::default());
        let mut ctrl = MemoryController::new(cfg);
        let mut port = AxiPort::default();
        let mut pushed = 0u64;
        for now in 0..4_000u64 {
            if pushed < 64 && !port.ar.is_full() {
                let _ = port
                    .ar
                    .push(now, ArBeat::new(pushed * 256, 16, BurstSize::B16));
                pushed += 1;
            }
            ctrl.tick(now, &mut port);
            drain_r(&mut port, now);
        }
        let s = ctrl.stats();
        assert!(
            s.row_hits > 3 * s.row_misses,
            "hits {} misses {}",
            s.row_hits,
            s.row_misses
        );
    }

    #[test]
    fn strobed_write_touches_only_enabled_bytes() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.memory_mut().write(0x100, &[0xAA; 8]);
        let mut port = AxiPort::default();
        port.aw
            .push(0, AwBeat::new(0x100, 2, BurstSize::B4))
            .unwrap();
        // First beat writes bytes 0 and 3; second beat writes byte 1.
        port.w
            .push(0, WBeat::new(vec![1, 2, 3, 4], false).with_strobe(0b1001))
            .unwrap();
        port.w
            .push(0, WBeat::new(vec![5, 6, 7, 8], true).with_strobe(0b0010))
            .unwrap();
        for now in 0..30 {
            ctrl.tick(now, &mut port);
        }
        assert!(port.b.pop_ready(30).is_some());
        assert_eq!(
            ctrl.memory().read(0x100, 8),
            vec![1, 0xAA, 0xAA, 4, 0xAA, 6, 0xAA, 0xAA]
        );
    }

    #[test]
    fn read_beyond_decode_limit_returns_decerr() {
        let cfg = MemConfig::ideal().decode_limit(0x1000);
        let mut ctrl = MemoryController::new(cfg);
        ctrl.memory_mut().write(0x2000, &[0xFF; 16]);
        let mut port = AxiPort::default();
        port.ar
            .push(0, ArBeat::new(0x2000, 4, BurstSize::B4))
            .unwrap();
        run(&mut ctrl, &mut port, 30);
        let beats = drain_r(&mut port, 30);
        assert_eq!(beats.len(), 4, "error reads still stream every beat");
        for beat in &beats {
            assert_eq!(beat.resp, axi::types::Resp::DecErr);
            assert_eq!(beat.data, vec![0; 4], "no backing-store data on DECERR");
        }
        assert!(beats[3].last);
        assert_eq!(ctrl.stats().error_responses, 1);
    }

    #[test]
    fn write_into_fault_region_returns_slverr_and_does_not_commit() {
        let cfg = MemConfig::ideal().slverr_range(0x100, 0x200);
        let mut ctrl = MemoryController::new(cfg);
        ctrl.memory_mut().write(0x100, &[0xAA; 8]);
        let mut port = AxiPort::default();
        port.aw
            .push(0, AwBeat::new(0x100, 2, BurstSize::B4))
            .unwrap();
        port.w.push(0, WBeat::new(vec![1; 4], false)).unwrap();
        port.w.push(0, WBeat::new(vec![2; 4], true)).unwrap();
        run(&mut ctrl, &mut port, 30);
        let b = port.b.pop_ready(30).expect("B response issued");
        assert_eq!(b.resp, axi::types::Resp::SlvErr);
        assert_eq!(ctrl.memory().read(0x100, 8), vec![0xAA; 8]);
        assert_eq!(ctrl.stats().error_responses, 1);
    }

    #[test]
    fn in_range_traffic_unaffected_by_error_regions() {
        let cfg = MemConfig::ideal()
            .decode_limit(0x1_0000)
            .slverr_range(0x8000, 0x9000);
        let mut ctrl = MemoryController::new(cfg);
        ctrl.memory_mut().write(0x400, &[7; 4]);
        let mut port = AxiPort::default();
        port.ar
            .push(0, ArBeat::new(0x400, 1, BurstSize::B4))
            .unwrap();
        run(&mut ctrl, &mut port, 30);
        let beats = drain_r(&mut port, 30);
        assert_eq!(beats[0].resp, axi::types::Resp::Okay);
        assert_eq!(beats[0].data, vec![7; 4]);
        assert_eq!(ctrl.stats().error_responses, 0);
    }

    #[test]
    fn snapshot_roundtrip_resumes_byte_identical() {
        use sim::persist::{PersistValue, SnapshotReader, SnapshotWriter};
        let cfg = MemConfig::zcu102().row_policy(crate::config::RowPolicy::default());
        let mut ctrl = MemoryController::new(cfg);
        ctrl.enable_ps_port();
        ctrl.attach_monitor();
        ctrl.attach_request_trace();
        ctrl.memory_mut().fill_pattern(0, 8192);
        let mut port = AxiPort::default();
        // Split mid-burst, mid-assembly, with a PS read in flight.
        port.ar.push(0, ArBeat::new(0, 16, BurstSize::B16)).unwrap();
        port.aw
            .push(0, AwBeat::new(0x3000, 4, BurstSize::B4))
            .unwrap();
        port.w.push(0, WBeat::new(vec![1; 4], false)).unwrap();
        port.w.push(0, WBeat::new(vec![2; 4], false)).unwrap();
        ctrl.ps_port_mut()
            .ar
            .push(0, ArBeat::new(0x1000, 4, BurstSize::B16))
            .unwrap();
        for now in 0..25 {
            ctrl.tick(now, &mut port);
        }
        let mut w = SnapshotWriter::new();
        ctrl.save_state(&mut w);
        port.save_value(&mut w);
        let bytes = w.into_bytes();

        // Restore into a fresh controller built with the same config but
        // none of the optional features pre-enabled at the call sites.
        let mut restored = MemoryController::new(cfg);
        let mut r = SnapshotReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        let mut restored_port = AxiPort::load_value(&mut r).unwrap();

        let drive = |ctrl: &mut MemoryController, port: &mut AxiPort| {
            for now in 25..120u64 {
                // Finish the write burst and keep draining responses.
                if now == 30 {
                    let _ = port.w.push(now, WBeat::new(vec![3; 4], false));
                    let _ = port.w.push(now, WBeat::new(vec![4; 4], true));
                }
                ctrl.tick(now, port);
                while port.r.pop_ready(now).is_some() {}
                while port.b.pop_ready(now).is_some() {}
                while ctrl.ps_port_mut().r.pop_ready(now).is_some() {}
            }
            let mut w = SnapshotWriter::new();
            ctrl.save_state(&mut w);
            port.save_value(&mut w);
            w.into_bytes()
        };
        assert_eq!(
            drive(&mut ctrl, &mut port),
            drive(&mut restored, &mut restored_port)
        );
        assert_eq!(restored.stats().writes_served, 1);
    }

    #[test]
    fn restore_rejects_bank_count_mismatch() {
        use sim::persist::{PersistError, SnapshotReader, SnapshotWriter};
        let ctrl = MemoryController::new(
            MemConfig::zcu102().row_policy(crate::config::RowPolicy::default()),
        );
        let mut w = SnapshotWriter::new();
        ctrl.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut flat = MemoryController::new(MemConfig::zcu102());
        let err = flat
            .restore_state(&mut SnapshotReader::new(&bytes))
            .unwrap_err();
        assert!(matches!(err, PersistError::ShapeMismatch(_)));
    }

    #[test]
    fn spurious_slverr_reads_are_zeroed_and_counted() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.memory_mut().fill_pattern(0, 256);
        ctrl.attach_fault_injector(MemFaultConfig::new(5).spurious_slverr(1.0));
        let mut port = AxiPort::default();
        port.ar.push(0, ArBeat::new(0, 4, BurstSize::B4)).unwrap();
        run(&mut ctrl, &mut port, 30);
        let beats = drain_r(&mut port, 30);
        assert_eq!(beats.len(), 4, "error reads still stream every beat");
        for beat in &beats {
            assert_eq!(beat.resp, axi::types::Resp::SlvErr);
            assert_eq!(beat.data, vec![0; 4], "no backing-store data on SLVERR");
        }
        assert_eq!(ctrl.stats().error_responses, 1);
        assert_eq!(ctrl.fault_stats().unwrap().spurious_errors, 1);
    }

    #[test]
    fn spurious_slverr_writes_do_not_commit_so_retry_is_idempotent() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.memory_mut().write(0x100, &[0xAA; 4]);
        ctrl.attach_fault_injector(MemFaultConfig::new(5).spurious_slverr(1.0));
        let mut port = AxiPort::default();
        port.aw
            .push(0, AwBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        port.w.push(0, WBeat::new(vec![1; 4], true)).unwrap();
        run(&mut ctrl, &mut port, 30);
        let b = port.b.pop_ready(30).expect("B response issued");
        assert_eq!(b.resp, axi::types::Resp::SlvErr);
        assert_eq!(ctrl.memory().read(0x100, 4), vec![0xAA; 4], "no commit");
        assert_eq!(ctrl.stats().error_responses, 1);
    }

    #[test]
    fn ecc_corrects_single_flips_end_to_end() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.memory_mut().fill_pattern(0, 256);
        ctrl.attach_fault_injector(MemFaultConfig::new(9).flip_single(1.0).ecc(true));
        let mut port = AxiPort::default();
        port.ar.push(0, ArBeat::new(0, 8, BurstSize::B16)).unwrap();
        run(&mut ctrl, &mut port, 40);
        let beats = drain_r(&mut port, 40);
        assert_eq!(beats.len(), 8);
        for (i, beat) in beats.iter().enumerate() {
            assert_eq!(beat.resp, axi::types::Resp::Okay);
            let expect: Vec<u8> = (0..16)
                .map(|b| crate::backing::pattern_byte(i as u64 * 16 + b))
                .collect();
            assert_eq!(beat.data, expect, "beat {i} delivered corrected data");
        }
        let fs = ctrl.fault_stats().unwrap();
        assert_eq!(fs.corrected, 8);
        assert_eq!(fs.silent_flips(), 0);
        assert_eq!(ctrl.stats().error_responses, 0);
    }

    #[test]
    fn ecc_double_flip_fails_the_beat_with_slverr() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.memory_mut().fill_pattern(0, 256);
        ctrl.attach_fault_injector(MemFaultConfig::new(9).flip_double(1.0).ecc(true));
        let mut port = AxiPort::default();
        port.ar.push(0, ArBeat::new(0, 4, BurstSize::B16)).unwrap();
        run(&mut ctrl, &mut port, 30);
        let beats = drain_r(&mut port, 30);
        assert_eq!(beats.len(), 4);
        for beat in &beats {
            assert_eq!(beat.resp, axi::types::Resp::SlvErr, "uncorrectable beat");
        }
        let fs = ctrl.fault_stats().unwrap();
        assert_eq!(fs.uncorrectable, 4);
        assert_eq!(fs.silent_flips(), 0);
        // One burst, one error response (even though the acceptance-time
        // response was OK — the error arose mid-burst in the ECC model).
        assert_eq!(ctrl.stats().error_responses, 1);
    }

    #[test]
    fn flips_without_ecc_corrupt_silently() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.memory_mut().fill_pattern(0, 256);
        ctrl.attach_fault_injector(MemFaultConfig::new(13).flip_single(1.0));
        let mut port = AxiPort::default();
        port.ar.push(0, ArBeat::new(0, 4, BurstSize::B16)).unwrap();
        run(&mut ctrl, &mut port, 30);
        let beats = drain_r(&mut port, 30);
        assert_eq!(beats.len(), 4);
        let mut wrong = 0;
        for (i, beat) in beats.iter().enumerate() {
            assert_eq!(beat.resp, axi::types::Resp::Okay, "nothing announced");
            let expect: Vec<u8> = (0..16)
                .map(|b| crate::backing::pattern_byte(i as u64 * 16 + b))
                .collect();
            if beat.data.as_slice() != expect.as_slice() {
                wrong += 1;
            }
        }
        assert_eq!(wrong, 4, "every beat silently corrupted");
        assert_eq!(ctrl.fault_stats().unwrap().silent_flips(), 4);
        assert_eq!(ctrl.stats().error_responses, 0, "and nothing counted");
    }

    #[test]
    fn dropped_beats_never_reach_the_port() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.attach_fault_injector(MemFaultConfig::new(21).drop_r(1.0));
        let mut port = AxiPort::default();
        port.ar.push(0, ArBeat::new(0, 4, BurstSize::B4)).unwrap();
        run(&mut ctrl, &mut port, 40);
        assert!(drain_r(&mut port, 40).is_empty(), "all beats lost");
        // The controller itself completed the burst and is reusable.
        assert_eq!(ctrl.stats().reads_served, 1);
        assert_eq!(ctrl.fault_stats().unwrap().dropped_beats, 4);
        assert!(ctrl.is_idle());
    }

    #[test]
    fn duplicated_beats_arrive_twice() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.attach_fault_injector(MemFaultConfig::new(21).dup_r(1.0));
        let mut port = AxiPort::default();
        port.ar.push(0, ArBeat::new(0, 2, BurstSize::B4)).unwrap();
        let mut got = 0;
        for now in 0..40 {
            ctrl.tick(now, &mut port);
            got += drain_r(&mut port, now).len();
        }
        assert_eq!(got, 4, "every beat delivered twice");
        assert_eq!(ctrl.fault_stats().unwrap().duplicated_beats, 2);
    }

    #[test]
    fn error_attribution_follows_the_uid_port_salt() {
        let mut ctrl = MemoryController::new(MemConfig::ideal().slverr_range(0x100, 0x200));
        let mut port = AxiPort::default();
        // uid salted as port 2 (salt = port + 1).
        port.ar
            .push(
                0,
                ArBeat::new(0x100, 1, BurstSize::B4).with_uid((1 << 10) | 3),
            )
            .unwrap();
        // Untagged read into the same fault region.
        port.ar
            .push(0, ArBeat::new(0x140, 1, BurstSize::B4))
            .unwrap();
        run(&mut ctrl, &mut port, 40);
        drain_r(&mut port, 40);
        let stats = ctrl.stats();
        assert_eq!(stats.error_responses, 2);
        assert_eq!(stats.errors_for_port(2), 1);
        assert_eq!(stats.untagged_errors(), 1);
        assert_eq!(stats.errors_for_port(5), 0);
    }

    #[test]
    fn error_counters_saturate_instead_of_wrapping() {
        let mut stats = MemStats {
            error_responses: u64::MAX,
            ..MemStats::default()
        };
        stats.error_responses_by_port[0] = u64::MAX;
        stats.note_error(0);
        assert_eq!(stats.error_responses, u64::MAX, "aggregate pinned");
        assert_eq!(stats.untagged_errors(), u64::MAX, "per-port pinned");
    }

    #[test]
    fn quarantine_remap_redirects_bursts_to_the_spare_region() {
        // [0x100, 0x200) is a hard-error region; the spare lives at
        // 0x10_0000.
        let mut ctrl = MemoryController::new(MemConfig::ideal().slverr_range(0x100, 0x200));
        let mut port = AxiPort::default();
        port.aw
            .push(0, AwBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        port.w.push(0, WBeat::new(vec![7; 4], true)).unwrap();
        run(&mut ctrl, &mut port, 20);
        assert_eq!(
            port.b.pop_ready(20).unwrap().resp,
            axi::types::Resp::SlvErr,
            "hard error before quarantine"
        );
        ctrl.quarantine_remap(RegionRemap {
            lo: 0x100,
            hi: 0x200,
            spare_base: 0x10_0000,
        });
        // The retried write now lands in the spare region and succeeds.
        port.aw
            .push(20, AwBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        port.w.push(20, WBeat::new(vec![7; 4], true)).unwrap();
        for now in 20..40 {
            ctrl.tick(now, &mut port);
        }
        assert_eq!(port.b.pop_ready(40).unwrap().resp, axi::types::Resp::Okay);
        // Reading back through the same logical address sees the data.
        port.ar
            .push(40, ArBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        for now in 40..60 {
            ctrl.tick(now, &mut port);
        }
        let beats = drain_r(&mut port, 60);
        assert_eq!(beats[0].resp, axi::types::Resp::Okay);
        assert_eq!(beats[0].data, vec![7; 4]);
        // Physically the bytes live in the spare region.
        assert_eq!(ctrl.memory().read(0x10_0000, 4), vec![7; 4]);
        assert_eq!(ctrl.memory().read(0x100, 4), vec![0; 4]);
    }

    #[test]
    fn fault_and_remap_state_survive_snapshots() {
        use sim::persist::{PersistValue, SnapshotReader, SnapshotWriter};
        let cfg = MemConfig::zcu102();
        let build = || {
            let mut ctrl = MemoryController::new(cfg);
            ctrl.memory_mut().fill_pattern(0, 4096);
            ctrl
        };
        let mut ctrl = build();
        ctrl.attach_fault_injector(
            MemFaultConfig::new(31)
                .spurious_slverr(0.3)
                .flip_single(0.2)
                .ecc(true),
        );
        ctrl.quarantine_remap(RegionRemap {
            lo: 0x800,
            hi: 0xC00,
            spare_base: 0x20_0000,
        });
        let mut port = AxiPort::default();
        for i in 0..6u64 {
            port.ar
                .push(0, ArBeat::new(i * 256, 4, BurstSize::B16))
                .unwrap();
        }
        for now in 0..40 {
            ctrl.tick(now, &mut port);
        }
        let mut w = SnapshotWriter::new();
        ctrl.save_state(&mut w);
        port.save_value(&mut w);
        let bytes = w.into_bytes();

        // The restored controller was never armed by API — the injector
        // and remaps arrive purely through the snapshot.
        let mut restored = build();
        let mut r = SnapshotReader::new(&bytes);
        restored.restore_state(&mut r).unwrap();
        let mut restored_port = AxiPort::load_value(&mut r).unwrap();
        assert!(restored.fault_injector().is_some());
        assert_eq!(restored.remaps().len(), 1);

        let drive = |ctrl: &mut MemoryController, port: &mut AxiPort| {
            for now in 40..200u64 {
                if now == 50 {
                    let _ = port.ar.push(now, ArBeat::new(0x900, 4, BurstSize::B16));
                }
                ctrl.tick(now, port);
                while port.r.pop_ready(now).is_some() {}
            }
            let mut w = SnapshotWriter::new();
            ctrl.save_state(&mut w);
            port.save_value(&mut w);
            w.into_bytes()
        };
        assert_eq!(
            drive(&mut ctrl, &mut port),
            drive(&mut restored, &mut restored_port),
            "fault draws diverged after restore"
        );
    }

    #[test]
    fn wrap_burst_reads_container() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        ctrl.memory_mut()
            .write(0x100, &(0u8..16).collect::<Vec<_>>());
        let mut port = AxiPort::default();
        let mut ar = ArBeat::new(0x108, 4, BurstSize::B4);
        ar.burst = axi::types::BurstKind::Wrap;
        port.ar.push(0, ar).unwrap();
        run(&mut ctrl, &mut port, 30);
        let beats = drain_r(&mut port, 30);
        assert_eq!(beats.len(), 4);
        let data: Vec<u8> = beats.iter().flat_map(|b| b.data.to_vec()).collect();
        // 0x108..0x110 then wrap to 0x100..0x108.
        assert_eq!(
            data,
            vec![8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7]
        );
    }
}
