//! Memory-controller configuration.

use sim::Cycle;

/// Open-page DRAM row-buffer policy: per-bank row buffers make the
/// first-word latency depend on locality (row hit vs row miss) instead
/// of being flat.
///
/// Addresses map to banks by low-order row interleaving:
/// `bank = (addr / row_bytes) % banks`, `row = addr / (row_bytes *
/// banks)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowPolicy {
    /// Number of banks (power of two).
    pub banks: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// First-word latency on a row hit.
    pub hit_latency: Cycle,
    /// First-word latency on a row miss (precharge + activate).
    pub miss_latency: Cycle,
}

impl Default for RowPolicy {
    /// DDR4-flavoured defaults at the modeled 150 MHz fabric clock.
    fn default() -> Self {
        Self {
            banks: 4,
            row_bytes: 2048,
            hit_latency: 12,
            miss_latency: 34,
        }
    }
}

/// Timing and capacity parameters of the modeled DRAM controller.
///
/// Defaults approximate a Zynq UltraScale+ DDR controller seen from the
/// programmable logic at 150 MHz through an HP port: a couple dozen
/// cycles to the first word, then one (128-bit) beat per cycle while a
/// burst streams, with a handful of outstanding transactions in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Cycles from a request entering service to its first data beat
    /// (row activation + controller pipeline + FPGA-PS interface).
    pub first_word_latency: Cycle,
    /// Cycles from the end of a write burst's bus occupancy to its B
    /// response.
    pub write_resp_latency: Cycle,
    /// Maximum requests in the service pipeline (accepted but not yet
    /// serving). Models the controller's outstanding-transaction depth.
    pub pipeline_depth: usize,
    /// Maximum completed-but-unserved write bursts buffered.
    pub write_buffer_depth: usize,
    /// Optional open-page row-buffer model; `None` uses the flat
    /// `first_word_latency` for every request.
    pub row_policy: Option<RowPolicy>,
    /// Optional top of the decoded address range: requests touching any
    /// address at or above this limit complete with a DECERR response
    /// and do not access backing storage. `None` decodes the full
    /// address space (the historical behavior).
    pub decode_limit: Option<u64>,
    /// Optional faulty slave region `[start, end)`: requests touching
    /// it complete with SLVERR and writes are dropped. Models a
    /// misconfigured or failing slave for fault-injection runs.
    pub slverr_range: Option<(u64, u64)>,
}

impl MemConfig {
    /// The default ZCU102-like configuration used across experiments.
    pub fn zcu102() -> Self {
        Self {
            first_word_latency: 22,
            write_resp_latency: 4,
            pipeline_depth: 8,
            write_buffer_depth: 8,
            row_policy: None,
            decode_limit: None,
            slverr_range: None,
        }
    }

    /// A fast, almost-ideal memory (useful to isolate interconnect
    /// effects in unit tests).
    pub fn ideal() -> Self {
        Self {
            first_word_latency: 1,
            write_resp_latency: 1,
            pipeline_depth: 16,
            write_buffer_depth: 16,
            row_policy: None,
            decode_limit: None,
            slverr_range: None,
        }
    }

    /// Overrides the first-word latency.
    pub fn first_word_latency(mut self, cycles: Cycle) -> Self {
        self.first_word_latency = cycles;
        self
    }

    /// Overrides the pipeline depth.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Enables the open-page row-buffer model.
    pub fn row_policy(mut self, policy: RowPolicy) -> Self {
        self.row_policy = Some(policy);
        self
    }

    /// Limits the decoded address range to `[0, limit)`; accesses at or
    /// beyond it return DECERR.
    pub fn decode_limit(mut self, limit: u64) -> Self {
        self.decode_limit = Some(limit);
        self
    }

    /// Marks `[start, end)` as a faulty region returning SLVERR.
    pub fn slverr_range(mut self, start: u64, end: u64) -> Self {
        self.slverr_range = Some((start, end));
        self
    }

    /// The response a burst occupying `[start, end)` bytes deserves
    /// under this configuration's decode and fault regions.
    pub fn response_for(&self, start: u64, end: u64) -> axi::types::Resp {
        if let Some(limit) = self.decode_limit {
            if end > limit {
                return axi::types::Resp::DecErr;
            }
        }
        if let Some((lo, hi)) = self.slverr_range {
            if start < hi && end > lo {
                return axi::types::Resp::SlvErr;
            }
        }
        axi::types::Resp::Okay
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::zcu102()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zcu102() {
        assert_eq!(MemConfig::default(), MemConfig::zcu102());
        assert_eq!(MemConfig::default().first_word_latency, 22);
    }

    #[test]
    fn ideal_is_faster() {
        assert!(MemConfig::ideal().first_word_latency < MemConfig::zcu102().first_word_latency);
    }

    #[test]
    fn builder_overrides() {
        let cfg = MemConfig::default().first_word_latency(5).pipeline_depth(2);
        assert_eq!(cfg.first_word_latency, 5);
        assert_eq!(cfg.pipeline_depth, 2);
    }

    #[test]
    fn response_regions() {
        use axi::types::Resp;
        let cfg = MemConfig::zcu102()
            .decode_limit(0x8000_0000)
            .slverr_range(0x1000, 0x2000);
        // Fully decoded, outside the fault region.
        assert_eq!(cfg.response_for(0x4000, 0x4040), Resp::Okay);
        // Touching the top of the decoded range.
        assert_eq!(cfg.response_for(0x7FFF_FFF0, 0x8000_0010), Resp::DecErr);
        assert_eq!(cfg.response_for(0x9000_0000, 0x9000_0040), Resp::DecErr);
        // Overlapping the faulty region (decode wins over slave fault).
        assert_eq!(cfg.response_for(0x0FF0, 0x1010), Resp::SlvErr);
        assert_eq!(cfg.response_for(0x1FFF, 0x2001), Resp::SlvErr);
        assert_eq!(cfg.response_for(0x2000, 0x2040), Resp::Okay);
        // Unconfigured controller decodes everything.
        assert_eq!(
            MemConfig::zcu102().response_for(u64::MAX - 64, u64::MAX),
            Resp::Okay
        );
    }
}
