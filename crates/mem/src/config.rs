//! Memory-controller configuration.

use sim::Cycle;

/// Open-page DRAM row-buffer policy: per-bank row buffers make the
/// first-word latency depend on locality (row hit vs row miss) instead
/// of being flat.
///
/// Addresses map to banks by low-order row interleaving:
/// `bank = (addr / row_bytes) % banks`, `row = addr / (row_bytes *
/// banks)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowPolicy {
    /// Number of banks (power of two).
    pub banks: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// First-word latency on a row hit.
    pub hit_latency: Cycle,
    /// First-word latency on a row miss (precharge + activate).
    pub miss_latency: Cycle,
}

impl Default for RowPolicy {
    /// DDR4-flavoured defaults at the modeled 150 MHz fabric clock.
    fn default() -> Self {
        Self {
            banks: 4,
            row_bytes: 2048,
            hit_latency: 12,
            miss_latency: 34,
        }
    }
}

/// Timing and capacity parameters of the modeled DRAM controller.
///
/// Defaults approximate a Zynq UltraScale+ DDR controller seen from the
/// programmable logic at 150 MHz through an HP port: a couple dozen
/// cycles to the first word, then one (128-bit) beat per cycle while a
/// burst streams, with a handful of outstanding transactions in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Cycles from a request entering service to its first data beat
    /// (row activation + controller pipeline + FPGA-PS interface).
    pub first_word_latency: Cycle,
    /// Cycles from the end of a write burst's bus occupancy to its B
    /// response.
    pub write_resp_latency: Cycle,
    /// Maximum requests in the service pipeline (accepted but not yet
    /// serving). Models the controller's outstanding-transaction depth.
    pub pipeline_depth: usize,
    /// Maximum completed-but-unserved write bursts buffered.
    pub write_buffer_depth: usize,
    /// Optional open-page row-buffer model; `None` uses the flat
    /// `first_word_latency` for every request.
    pub row_policy: Option<RowPolicy>,
}

impl MemConfig {
    /// The default ZCU102-like configuration used across experiments.
    pub fn zcu102() -> Self {
        Self {
            first_word_latency: 22,
            write_resp_latency: 4,
            pipeline_depth: 8,
            write_buffer_depth: 8,
            row_policy: None,
        }
    }

    /// A fast, almost-ideal memory (useful to isolate interconnect
    /// effects in unit tests).
    pub fn ideal() -> Self {
        Self {
            first_word_latency: 1,
            write_resp_latency: 1,
            pipeline_depth: 16,
            write_buffer_depth: 16,
            row_policy: None,
        }
    }

    /// Overrides the first-word latency.
    pub fn first_word_latency(mut self, cycles: Cycle) -> Self {
        self.first_word_latency = cycles;
        self
    }

    /// Overrides the pipeline depth.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Enables the open-page row-buffer model.
    pub fn row_policy(mut self, policy: RowPolicy) -> Self {
        self.row_policy = Some(policy);
        self
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::zcu102()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zcu102() {
        assert_eq!(MemConfig::default(), MemConfig::zcu102());
        assert_eq!(MemConfig::default().first_word_latency, 22);
    }

    #[test]
    fn ideal_is_faster() {
        assert!(MemConfig::ideal().first_word_latency < MemConfig::zcu102().first_word_latency);
    }

    #[test]
    fn builder_overrides() {
        let cfg = MemConfig::default().first_word_latency(5).pipeline_depth(2);
        assert_eq!(cfg.first_word_latency, 5);
        assert_eq!(cfg.pipeline_depth, 2);
    }
}
