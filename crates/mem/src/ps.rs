//! A processing-system CPU traffic model for the PS-side memory port.
//!
//! The paper motivates bounding FPGA-originated traffic partly because
//! it "can delay the execution of software running on the processors of
//! the PS" (§V-A). This model issues periodic cache-line-sized reads on
//! the controller's PS port and records their latency, so experiments
//! can quantify how much FPGA throttling protects PS software.

use axi::beat::ArBeat;
use axi::types::{AxiId, BurstSize};
use axi::AxiPort;
use sim::stats::LatencyStat;
use sim::Cycle;

/// Periodic CPU-like reader: one cache-line read every `period` cycles
/// (if the previous one completed), latency recorded per access.
#[derive(Debug)]
pub struct PsCpu {
    period: Cycle,
    line_beats: u32,
    size: BurstSize,
    next_issue: Cycle,
    outstanding: Option<Cycle>,
    beats_left: u32,
    addr: u64,
    latency: LatencyStat,
    completed: u64,
}

impl PsCpu {
    /// Creates a CPU model issuing a 64-byte line read every `period`
    /// cycles.
    pub fn new(period: Cycle) -> Self {
        Self {
            period: period.max(1),
            line_beats: 4,
            size: BurstSize::B16,
            next_issue: 0,
            outstanding: None,
            beats_left: 0,
            addr: 0x0100_0000,
            latency: LatencyStat::new(),
            completed: 0,
        }
    }

    /// Access-latency distribution (issue to final beat).
    pub fn latency(&self) -> &LatencyStat {
        &self.latency
    }

    /// Completed line reads.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Advances the model one cycle against the controller's PS port.
    pub fn tick(&mut self, now: Cycle, ps_port: &mut AxiPort) {
        if let Some(issued_at) = self.outstanding {
            while let Some(beat) = ps_port.r.pop_ready(now) {
                self.beats_left = self.beats_left.saturating_sub(1);
                if beat.last {
                    self.latency.record(now - issued_at);
                    self.completed += 1;
                    self.outstanding = None;
                    self.next_issue = now + self.period;
                }
            }
            return;
        }
        if now >= self.next_issue && !ps_port.ar.is_full() {
            let ar = ArBeat::new(self.addr, self.line_beats, self.size)
                .with_id(AxiId(0x30))
                .with_issued_at(now);
            ps_port.ar.push(now, ar).expect("checked space");
            self.addr = 0x0100_0000 + (self.addr + 64) % 0x10_0000;
            self.outstanding = Some(now);
            self.beats_left = self.line_beats;
        }
    }
}

impl sim::persist::PersistValue for PsCpu {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_u64(self.period);
        w.put_u32(self.line_beats);
        self.size.save_value(w);
        w.put_u64(self.next_issue);
        self.outstanding.save_value(w);
        w.put_u32(self.beats_left);
        w.put_u64(self.addr);
        self.latency.save_value(w);
        w.put_u64(self.completed);
    }

    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self {
            period: r.take_u64()?,
            line_beats: r.take_u32()?,
            size: BurstSize::load_value(r)?,
            next_issue: r.take_u64()?,
            outstanding: Option::load_value(r)?,
            beats_left: r.take_u32()?,
            addr: r.take_u64()?,
            latency: LatencyStat::load_value(r)?,
            completed: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemConfig, MemoryController};

    #[test]
    fn ps_cpu_reads_complete_through_ps_port() {
        let mut ctrl = MemoryController::new(MemConfig::zcu102());
        ctrl.enable_ps_port();
        let mut cpu = PsCpu::new(100);
        let mut fpga = AxiPort::default();
        for now in 0..5_000 {
            cpu.tick(now, ctrl.ps_port_mut());
            ctrl.tick(now, &mut fpga);
        }
        assert!(cpu.completed() > 10, "only {}", cpu.completed());
        assert_eq!(ctrl.stats().ps_reads_served, cpu.completed());
        // Uncontended latency: first-word + 4 beats, plus issue skew.
        assert!(cpu.latency().max().unwrap() < 40);
    }

    #[test]
    fn fpga_contention_inflates_ps_latency() {
        use axi::types::BurstSize;
        use axi::ArBeat;
        // Saturate the FPGA port with long bursts and compare PS
        // latency against the uncontended run above.
        let mut ctrl = MemoryController::new(MemConfig::zcu102());
        ctrl.enable_ps_port();
        let mut cpu = PsCpu::new(100);
        let mut fpga = AxiPort::default();
        for now in 0..5_000u64 {
            // Keep the FPGA queue full of 256-beat reads.
            let _ = fpga
                .ar
                .push(now, ArBeat::new((now % 64) * 4096, 256, BurstSize::B16));
            cpu.tick(now, ctrl.ps_port_mut());
            ctrl.tick(now, &mut fpga);
            while fpga.r.pop_ready(now).is_some() {}
        }
        assert!(cpu.completed() > 0);
        // Head-of-line blocking behind 256-beat bursts: much worse.
        assert!(
            cpu.latency().max().unwrap() > 100,
            "PS latency unexpectedly low: {:?}",
            cpu.latency().max()
        );
    }

    #[test]
    #[should_panic(expected = "PS port not enabled")]
    fn ps_port_requires_enable() {
        let mut ctrl = MemoryController::new(MemConfig::ideal());
        let _ = ctrl.ps_port_mut();
    }
}
