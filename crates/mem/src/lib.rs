//! PS-side memory substrate: FPGA-PS interface + in-order DRAM
//! controller model with a real backing store.
//!
//! The paper's architecture funnels all accelerator traffic through one
//! FPGA-PS interface port into the processing system's DRAM controller
//! (Fig. 1). This crate models that endpoint:
//!
//! * [`SparseMemory`] — a byte-addressable backing store, so reads
//!   return previously written data and end-to-end data-integrity tests
//!   are possible;
//! * [`MemoryController`] — an in-order AXI slave that accepts requests
//!   from an interconnect's master port and serves them with a
//!   configurable first-word latency and one beat per cycle of streaming
//!   bandwidth (the paper notes today's FPGA SoC memory controllers
//!   serve transactions in order, §V-A *Compatibility*).
//!
//! # Example
//!
//! ```
//! use axi::{ArBeat, AxiPort};
//! use axi::types::BurstSize;
//! use mem::{MemConfig, MemoryController};
//!
//! let mut port = AxiPort::default();
//! let mut ctrl = MemoryController::new(MemConfig::default());
//! port.ar.push(0, ArBeat::new(0x1000, 4, BurstSize::B16)).unwrap();
//! // Tick until all four beats come back.
//! let mut got = 0;
//! for now in 0..200 {
//!     ctrl.tick(now, &mut port);
//!     while port.r.pop_ready(now).is_some() { got += 1; }
//! }
//! assert_eq!(got, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backing;
pub mod config;
pub mod controller;
pub mod fault;
pub mod ps;

pub use backing::SparseMemory;
pub use config::{MemConfig, RowPolicy};
pub use controller::{MemStats, MemoryController, RegionRemap, ERROR_PORT_SLOTS};
pub use fault::{FaultInjector, FaultStats, MemFaultConfig};
pub use ps::PsCpu;
