//! Seeded transient-fault injection and the ECC model for the memory
//! controller.
//!
//! The master-side fault library (`ha::fault`) covers everything an
//! accelerator can do wrong; this module covers the other half of the
//! fault surface — the slave and the fabric between the interconnect
//! and the DRAM. An armed [`FaultInjector`] perturbs the controller at
//! exactly two deterministic event classes:
//!
//! * **acceptance** — an otherwise-good burst may be spuriously failed
//!   with `SLVERR` ([`MemFaultConfig::spurious_slverr`]). The
//!   controller's existing error semantics then apply unchanged: error
//!   reads stream zeroed beats, error writes never commit, so a
//!   spuriously failed transaction is always safe to retry;
//! * **read service** — each delivered OK beat may take a single- or
//!   double-bit payload flip, be dropped, or be duplicated.
//!
//! When the ECC model is armed ([`MemFaultConfig::ecc`]), single-bit
//! flips are detected and corrected (the payload reaches the master
//! intact and [`FaultStats::corrected`] counts the scrub) while
//! double-bit flips are detected but uncorrectable — the beat is
//! delivered with `SLVERR` so the master knows to discard and retry.
//! Without ECC, every flip is *silent corruption*: the data is wrong
//! and nothing announces it. That case exists precisely so the
//! `ha::ScoreboardMaster` data-integrity oracle has something to catch.
//!
//! Because every RNG draw happens on a controller accept/serve event —
//! all of which occur inside the controller's own `tick`, in one
//! scheduler shard — an armed injector is transparent to the naive,
//! fast-forward and sharded schedulers alike.
//!
//! Beat **drops** and **duplicates** model loss on the return fabric.
//! They violate the AXI beat-count contract by design (that is the
//! fault), so they must only be armed on directly wired ports: routed
//! through an interconnect's EXBAR they would desynchronize R-routing
//! records. Campaign scenarios therefore keep
//! [`MemFaultConfig::drop_r`] and [`MemFaultConfig::dup_r`] at zero and
//! exercise them in unit tests instead.

use axi::types::Resp;
use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};
use sim::SimRng;

/// Seeded fault probabilities for a [`FaultInjector`].
///
/// All probabilities are per-event (per accepted burst, or per
/// delivered OK read beat) and default to zero; a default config with
/// only a seed injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemFaultConfig {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Probability an otherwise-good accepted burst is failed with
    /// `SLVERR` (a transient slave error: retrying succeeds).
    pub spurious_slverr: f64,
    /// Probability a delivered OK read beat takes a single-bit flip.
    pub flip_single: f64,
    /// Probability a delivered OK read beat takes a double-bit flip.
    pub flip_double: f64,
    /// Probability a delivered OK read beat is dropped (never reaches
    /// the port). Unit-test only — see the module docs.
    pub drop_r: f64,
    /// Probability a delivered OK read beat is duplicated. Unit-test
    /// only — see the module docs.
    pub dup_r: f64,
    /// Arms the ECC model: single-bit flips are corrected in flight,
    /// double-bit flips are detected and fail the beat with `SLVERR`.
    pub ecc: bool,
}

impl MemFaultConfig {
    /// A config that injects nothing yet (all probabilities zero).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            spurious_slverr: 0.0,
            flip_single: 0.0,
            flip_double: 0.0,
            drop_r: 0.0,
            dup_r: 0.0,
            ecc: false,
        }
    }

    /// Sets the spurious-`SLVERR` probability per accepted burst.
    pub fn spurious_slverr(mut self, p: f64) -> Self {
        self.spurious_slverr = p;
        self
    }

    /// Sets the single-bit-flip probability per delivered OK read beat.
    pub fn flip_single(mut self, p: f64) -> Self {
        self.flip_single = p;
        self
    }

    /// Sets the double-bit-flip probability per delivered OK read beat.
    pub fn flip_double(mut self, p: f64) -> Self {
        self.flip_double = p;
        self
    }

    /// Sets the R-beat drop probability (unit-test only).
    pub fn drop_r(mut self, p: f64) -> Self {
        self.drop_r = p;
        self
    }

    /// Sets the R-beat duplication probability (unit-test only).
    pub fn dup_r(mut self, p: f64) -> Self {
        self.dup_r = p;
        self
    }

    /// Arms the ECC model.
    pub fn ecc(mut self, on: bool) -> Self {
        self.ecc = on;
        self
    }
}

/// Saturating counters kept by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Otherwise-good bursts spuriously failed with `SLVERR`.
    pub spurious_errors: u64,
    /// Single-bit payload flips injected.
    pub single_flips: u64,
    /// Double-bit payload flips injected.
    pub double_flips: u64,
    /// Single-bit flips the ECC model detected and corrected.
    pub corrected: u64,
    /// Double-bit flips the ECC model detected but could not correct
    /// (the beat was failed with `SLVERR`).
    pub uncorrectable: u64,
    /// R beats dropped on the return path.
    pub dropped_beats: u64,
    /// R beats duplicated on the return path.
    pub duplicated_beats: u64,
}

impl FaultStats {
    /// Flips delivered to the master as wrong data with an OK response
    /// — the injector's own tally of the silent corruption it caused
    /// (what a scoreboard must catch).
    pub fn silent_flips(&self) -> u64 {
        (self.single_flips + self.double_flips).saturating_sub(self.corrected + self.uncorrectable)
    }
}

/// What happens to one delivered read beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeatAction {
    /// Deliver normally.
    Deliver,
    /// The beat is lost on the return fabric.
    Drop,
    /// The beat arrives twice.
    Duplicate,
}

fn saturating_bump(counter: &mut u64) {
    *counter = counter.saturating_add(1);
}

fn flip_bit(data: &mut [u8], bit: usize) {
    data[bit / 8] ^= 1 << (bit % 8);
}

/// The seeded fault source the controller consults on accept and serve
/// events. See the module docs for the fault surface and determinism
/// argument.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: MemFaultConfig,
    rng: SimRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector, seeding its private RNG from the config.
    pub fn new(config: MemFaultConfig) -> Self {
        Self {
            config,
            rng: SimRng::seed(config.seed),
            stats: FaultStats::default(),
        }
    }

    /// The config this injector was armed with.
    pub fn config(&self) -> &MemFaultConfig {
        &self.config
    }

    /// Saturating injection counters.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Acceptance hook: may spuriously fail an otherwise-good burst.
    /// Already-failing responses (decode errors, static fault regions)
    /// pass through untouched.
    pub(crate) fn override_response(&mut self, resp: Resp) -> Resp {
        if resp.is_ok()
            && self.config.spurious_slverr > 0.0
            && self.rng.chance(self.config.spurious_slverr)
        {
            saturating_bump(&mut self.stats.spurious_errors);
            return Resp::SlvErr;
        }
        resp
    }

    /// Read-service hook: may flip payload bits in a delivered OK beat.
    /// Returns the beat's response after the ECC model has had its say.
    pub(crate) fn mutate_read_beat(&mut self, data: &mut [u8]) -> Resp {
        let bits = data.len() * 8;
        if bits == 0 {
            return Resp::Okay;
        }
        if self.config.flip_double > 0.0 && self.rng.chance(self.config.flip_double) {
            saturating_bump(&mut self.stats.double_flips);
            // Two distinct bits in one draw pair (a repeated bit would
            // cancel itself out).
            let first = self.rng.range_usize(0, bits - 1);
            let second = (first + 1 + self.rng.range_usize(0, bits - 2)) % bits;
            flip_bit(data, first);
            flip_bit(data, second);
            if self.config.ecc {
                // Detected but uncorrectable: fail the beat so the
                // master discards the (corrupt) payload.
                saturating_bump(&mut self.stats.uncorrectable);
                return Resp::SlvErr;
            }
            return Resp::Okay; // silent corruption
        }
        if self.config.flip_single > 0.0 && self.rng.chance(self.config.flip_single) {
            saturating_bump(&mut self.stats.single_flips);
            if self.config.ecc {
                // Detected and corrected: the payload stays intact.
                saturating_bump(&mut self.stats.corrected);
                return Resp::Okay;
            }
            let bit = self.rng.range_usize(0, bits - 1);
            flip_bit(data, bit);
            return Resp::Okay; // silent corruption
        }
        Resp::Okay
    }

    /// Read-service hook: fate of the current beat on the return path.
    pub(crate) fn beat_action(&mut self) -> BeatAction {
        if self.config.drop_r > 0.0 && self.rng.chance(self.config.drop_r) {
            saturating_bump(&mut self.stats.dropped_beats);
            return BeatAction::Drop;
        }
        if self.config.dup_r > 0.0 && self.rng.chance(self.config.dup_r) {
            saturating_bump(&mut self.stats.duplicated_beats);
            return BeatAction::Duplicate;
        }
        BeatAction::Deliver
    }
}

impl PersistValue for MemFaultConfig {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.seed);
        w.put_u64(self.spurious_slverr.to_bits());
        w.put_u64(self.flip_single.to_bits());
        w.put_u64(self.flip_double.to_bits());
        w.put_u64(self.drop_r.to_bits());
        w.put_u64(self.dup_r.to_bits());
        w.put_bool(self.ecc);
    }

    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            seed: r.take_u64()?,
            spurious_slverr: f64::from_bits(r.take_u64()?),
            flip_single: f64::from_bits(r.take_u64()?),
            flip_double: f64::from_bits(r.take_u64()?),
            drop_r: f64::from_bits(r.take_u64()?),
            dup_r: f64::from_bits(r.take_u64()?),
            ecc: r.take_bool()?,
        })
    }
}

impl PersistValue for FaultStats {
    fn save_value(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.spurious_errors);
        w.put_u64(self.single_flips);
        w.put_u64(self.double_flips);
        w.put_u64(self.corrected);
        w.put_u64(self.uncorrectable);
        w.put_u64(self.dropped_beats);
        w.put_u64(self.duplicated_beats);
    }

    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            spurious_errors: r.take_u64()?,
            single_flips: r.take_u64()?,
            double_flips: r.take_u64()?,
            corrected: r.take_u64()?,
            uncorrectable: r.take_u64()?,
            dropped_beats: r.take_u64()?,
            duplicated_beats: r.take_u64()?,
        })
    }
}

impl PersistValue for FaultInjector {
    /// The config rides along with the RNG position and counters, so a
    /// forked chaos campaign restoring this state replays the exact
    /// same fault sequence without re-arming anything.
    fn save_value(&self, w: &mut SnapshotWriter) {
        self.config.save_value(w);
        self.rng.save_value(w);
        self.stats.save_value(w);
    }

    fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            config: MemFaultConfig::load_value(r)?,
            rng: SimRng::load_value(r)?,
            stats: FaultStats::load_value(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spurious_override_only_touches_ok_responses() {
        let mut f = FaultInjector::new(MemFaultConfig::new(7).spurious_slverr(1.0));
        assert_eq!(f.override_response(Resp::Okay), Resp::SlvErr);
        assert_eq!(f.override_response(Resp::DecErr), Resp::DecErr);
        assert_eq!(f.stats().spurious_errors, 1);
    }

    #[test]
    fn single_flip_without_ecc_corrupts_silently() {
        let mut f = FaultInjector::new(MemFaultConfig::new(3).flip_single(1.0));
        let mut data = [0u8; 16];
        assert_eq!(f.mutate_read_beat(&mut data), Resp::Okay);
        let flipped: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
        assert_eq!(f.stats().silent_flips(), 1);
    }

    #[test]
    fn ecc_corrects_single_and_fails_double() {
        let mut f = FaultInjector::new(MemFaultConfig::new(3).flip_single(1.0).ecc(true));
        let mut data = [0u8; 16];
        assert_eq!(f.mutate_read_beat(&mut data), Resp::Okay);
        assert_eq!(data, [0u8; 16], "corrected payload is intact");
        assert_eq!(f.stats().corrected, 1);

        let mut f = FaultInjector::new(MemFaultConfig::new(3).flip_double(1.0).ecc(true));
        let mut data = [0u8; 16];
        assert_eq!(f.mutate_read_beat(&mut data), Resp::SlvErr);
        let flipped: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 2, "double flip hits two distinct bits");
        assert_eq!(f.stats().uncorrectable, 1);
        assert_eq!(f.stats().silent_flips(), 0);
    }

    #[test]
    fn injector_state_round_trips() {
        let mut f = FaultInjector::new(
            MemFaultConfig::new(11)
                .spurious_slverr(0.5)
                .flip_single(0.25)
                .ecc(true),
        );
        let mut data = [0xAAu8; 8];
        for _ in 0..10 {
            f.override_response(Resp::Okay);
            f.mutate_read_beat(&mut data);
        }
        let mut w = SnapshotWriter::new();
        f.save_value(&mut w);
        let bytes = w.into_bytes();
        let restored = FaultInjector::load_value(&mut SnapshotReader::new(&bytes)).unwrap();
        assert_eq!(restored.config(), f.config());
        assert_eq!(restored.stats(), f.stats());
        let mut w2 = SnapshotWriter::new();
        restored.save_value(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "re-encode is byte-identical");
    }
}
