//! Behavioral model of the Xilinx AXI SmartConnect — the closed-source
//! state-of-the-art interconnect the paper compares against.
//!
//! The real SmartConnect's internals are not public; the paper (and the
//! prior work it builds on) characterizes it through externally
//! measurable behaviour, which is exactly what this model reproduces:
//!
//! * deeper pipelines than the HyperConnect — per-channel propagation
//!   latencies calibrated to the paper's Fig. 3(a) measurements
//!   (AR/AW ≈ 12 cycles, R ≈ 11, W ≈ 3, B ≈ 2);
//! * round-robin arbitration with **variable granularity**: once a port
//!   is selected it may be granted up to `g` consecutive transactions,
//!   so a port can suffer up to `g × (N − 1)` interfering transactions
//!   (paper §V-B);
//! * **no burst equalization**: heterogeneous burst sizes translate
//!   directly into unfair bandwidth shares (Restuccia et al., TECS
//!   2019);
//! * **no bandwidth reservation, no decoupling, no runtime
//!   reconfiguration**; QoS signals are ignored (SmartConnect PG247).
//!
//! The model implements the same [`axi::AxiInterconnect`] trait as the
//! HyperConnect so every experiment in the benchmark harness runs
//! unchanged on both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sim::ring::Ring;

use axi::beat::{ArBeat, AwBeat, RBeat};
use axi::observe::ObsChannel;
use axi::routing::{RouteEntry, RouteQueue};
use axi::{AxiInterconnect, AxiPort, MetricsRegistry, PortConfig};
use sim::{Component, Cycle, SimRng, TimedFifo};

/// How the arbiter chooses its per-port grant granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GranularityPolicy {
    /// Always grant exactly `g` consecutive transactions per selection.
    Fixed(u32),
    /// Grant a uniformly random 1..=`g` consecutive transactions per
    /// selection (the observed, timing-dependent behaviour).
    UpTo(u32),
}

impl GranularityPolicy {
    /// The largest granularity the policy can produce.
    pub fn max(&self) -> u32 {
        match *self {
            GranularityPolicy::Fixed(g) | GranularityPolicy::UpTo(g) => g,
        }
    }
}

/// Configuration of a [`SmartConnect`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScConfig {
    /// Number of slave (accelerator-facing) ports.
    pub num_ports: usize,
    /// Internal AR/AW pipeline latency (cycles), excluding the boundary
    /// registers and the arbitration stage.
    pub addr_pipe_latency: Cycle,
    /// Internal R return-path latency (cycles), excluding boundaries.
    pub r_pipe_latency: Cycle,
    /// Internal W path latency (cycles), excluding boundaries.
    pub w_pipe_latency: Cycle,
    /// Internal B return-path latency (cycles), excluding boundaries.
    pub b_pipe_latency: Cycle,
    /// Arbitration granularity policy.
    pub granularity: GranularityPolicy,
    /// Outstanding transaction limit per port per direction.
    pub max_outstanding: u32,
    /// Boundary queue depths.
    pub addr_depth: usize,
    /// Data queue depths (W/R), in beats.
    pub data_depth: usize,
    /// Routing buffer depth (outstanding transactions).
    pub routing_depth: usize,
    /// RNG seed for the granularity draw.
    pub seed: u64,
}

impl ScConfig {
    /// A SmartConnect calibrated to the paper's measured latencies:
    /// with the two boundary registers and one arbitration stage this
    /// yields AR/AW = 12, R = 11, W = 3 and B = 2 cycles end to end.
    pub fn new(num_ports: usize) -> Self {
        assert!(num_ports > 0, "an interconnect needs at least one port");
        Self {
            num_ports,
            addr_pipe_latency: 9,
            r_pipe_latency: 9,
            w_pipe_latency: 1,
            b_pipe_latency: 0,
            granularity: GranularityPolicy::UpTo(4),
            max_outstanding: 8,
            addr_depth: 8,
            data_depth: 64,
            routing_depth: 64,
            seed: 0x5C05_C05C,
        }
    }

    /// Sets the granularity policy.
    pub fn granularity(mut self, policy: GranularityPolicy) -> Self {
        self.granularity = policy;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for ScConfig {
    fn default() -> Self {
        Self::new(2)
    }
}

/// Per-port counters of the SmartConnect model.
#[derive(Debug, Clone, Default)]
pub struct ScStats {
    /// Read grants per port.
    pub ar_grants: Vec<u64>,
    /// Write grants per port.
    pub aw_grants: Vec<u64>,
    /// Bytes of read data returned per port.
    pub bytes_read: Vec<u64>,
    /// Bytes of write data forwarded per port.
    pub bytes_written: Vec<u64>,
}

/// The SmartConnect baseline model (N slave ports, one master port).
///
/// # Example
///
/// ```
/// use axi::{ArBeat, AxiInterconnect};
/// use axi::types::BurstSize;
/// use sim::Component;
/// use smartconnect::{ScConfig, SmartConnect};
///
/// let mut sc = SmartConnect::new(ScConfig::new(2));
/// sc.port(0).ar.push(0, ArBeat::new(0x100, 1, BurstSize::B4)).unwrap();
/// for now in 0..13 { sc.tick(now); }
/// // The request appears at the master port after the calibrated
/// // 12-cycle pipeline.
/// assert!(sc.mem_port().ar.pop_ready(12).is_some());
/// ```
#[derive(Debug)]
pub struct SmartConnect {
    config: ScConfig,
    slave_ports: Vec<AxiPort>,
    ar_pipes: Vec<TimedFifo<ArBeat>>,
    aw_pipes: Vec<TimedFifo<AwBeat>>,
    w_pipes: Vec<TimedFifo<axi::WBeat>>,
    grant_ar: TimedFifo<ArBeat>,
    grant_aw: TimedFifo<AwBeat>,
    r_pipe: TimedFifo<RBeat>,
    b_pipe: TimedFifo<axi::BBeat>,
    read_routes: RouteQueue,
    b_routes: RouteQueue,
    w_routes: Ring<usize>,
    mem_port: AxiPort,
    // Arbitration state.
    ar_rr: usize,
    ar_grants_left: u32,
    aw_rr: usize,
    aw_grants_left: u32,
    rng: SimRng,
    // Outstanding counters per port (reads, writes).
    out_reads: Vec<u32>,
    out_writes: Vec<u32>,
    stats: ScStats,
    /// Channel-level metrics, when observability is enabled. The
    /// SmartConnect stamps no uids (its real counterpart is a black
    /// box), so only boundary-visible channel latencies are recorded —
    /// no per-transaction hop histories.
    metrics: Option<MetricsRegistry>,
    /// Grant-order ports of ARs parked in `grant_ar` (for attribution
    /// at the master boundary; `grant_ar` is FIFO so orders match).
    ar_grant_ports: Ring<usize>,
    /// Grant-order ports of AWs parked in `grant_aw`.
    aw_grant_ports: Ring<usize>,
}

impl SmartConnect {
    /// Instantiates a SmartConnect model.
    pub fn new(config: ScConfig) -> Self {
        let n = config.num_ports;
        let boundary = PortConfig {
            addr_capacity: config.addr_depth,
            data_capacity: config.data_depth,
            resp_capacity: config.addr_depth,
            latency: 1,
        };
        Self {
            config,
            slave_ports: (0..n).map(|_| AxiPort::new(boundary)).collect(),
            ar_pipes: (0..n)
                .map(|_| TimedFifo::new(config.addr_depth, config.addr_pipe_latency))
                .collect(),
            aw_pipes: (0..n)
                .map(|_| TimedFifo::new(config.addr_depth, config.addr_pipe_latency))
                .collect(),
            w_pipes: (0..n)
                .map(|_| TimedFifo::new(config.data_depth, config.w_pipe_latency))
                .collect(),
            grant_ar: TimedFifo::new(2, 1),
            grant_aw: TimedFifo::new(2, 1),
            r_pipe: TimedFifo::new(config.data_depth, config.r_pipe_latency),
            b_pipe: TimedFifo::new(config.addr_depth, config.b_pipe_latency),
            read_routes: RouteQueue::new(config.routing_depth),
            b_routes: RouteQueue::new(config.routing_depth),
            w_routes: Ring::new(),
            mem_port: AxiPort::new(boundary),
            ar_rr: 0,
            ar_grants_left: 0,
            aw_rr: 0,
            aw_grants_left: 0,
            rng: SimRng::seed(config.seed),
            out_reads: vec![0; n],
            out_writes: vec![0; n],
            stats: ScStats {
                ar_grants: vec![0; n],
                aw_grants: vec![0; n],
                bytes_read: vec![0; n],
                bytes_written: vec![0; n],
            },
            metrics: None,
            ar_grant_ports: Ring::new(),
            aw_grant_ports: Ring::new(),
        }
    }

    /// Enables per-port channel-latency metrics. Unlike the
    /// HyperConnect there are no uid-stamped hop histories: the real
    /// SmartConnect is closed-source, so only latencies measurable at
    /// its boundaries are recorded (the paper's Fig. 3a methodology).
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(MetricsRegistry::new(self.config.num_ports));
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &ScConfig {
        &self.config
    }

    /// Aggregate per-port counters.
    pub fn stats(&self) -> &ScStats {
        &self.stats
    }

    fn draw_granularity(&mut self) -> u32 {
        match self.config.granularity {
            GranularityPolicy::Fixed(g) => g.max(1),
            GranularityPolicy::UpTo(g) => self.rng.range_u64(1, g.max(1) as u64) as u32,
        }
    }

    fn accept(&mut self, now: Cycle) -> bool {
        let mut progress = false;
        for p in 0..self.config.num_ports {
            if self.slave_ports[p].ar.has_ready(now)
                && !self.ar_pipes[p].is_full()
                && self.out_reads[p] < self.config.max_outstanding
            {
                let ar = self.slave_ports[p].ar.pop_ready(now).expect("ready");
                self.ar_pipes[p].push(now, ar).expect("space");
                self.out_reads[p] += 1;
                progress = true;
            }
            if self.slave_ports[p].aw.has_ready(now)
                && !self.aw_pipes[p].is_full()
                && self.out_writes[p] < self.config.max_outstanding
            {
                let aw = self.slave_ports[p].aw.pop_ready(now).expect("ready");
                self.aw_pipes[p].push(now, aw).expect("space");
                self.out_writes[p] += 1;
                progress = true;
            }
            if self.slave_ports[p].w.has_ready(now) && !self.w_pipes[p].is_full() {
                let w = self.slave_ports[p].w.pop_ready(now).expect("ready");
                self.stats.bytes_written[p] += w.data.len() as u64;
                self.w_pipes[p].push(now, w).expect("space");
                progress = true;
            }
        }
        progress
    }

    fn arbitrate_ar(&mut self, now: Cycle) -> bool {
        if self.grant_ar.is_full() || self.read_routes.is_full() {
            return false;
        }
        let n = self.config.num_ports;
        // Continue the current port's grant window if possible.
        let port = if self.ar_grants_left > 0 && self.ar_pipes[self.ar_rr].has_ready(now) {
            Some(self.ar_rr)
        } else {
            let next = (1..=n)
                .map(|k| (self.ar_rr + k) % n)
                .find(|&p| self.ar_pipes[p].has_ready(now));
            if let Some(p) = next {
                self.ar_rr = p;
                self.ar_grants_left = self.draw_granularity();
            }
            next
        };
        let Some(p) = port else { return false };
        let ar = self.ar_pipes[p].pop_ready(now).expect("ready");
        self.read_routes
            .push(RouteEntry {
                port: p,
                final_sub: true,
                tag: ar.tag,
                uid: ar.uid,
            })
            .expect("space");
        self.grant_ar.push(now, ar).expect("space");
        self.ar_grant_ports.push_back(p);
        self.ar_grants_left = self.ar_grants_left.saturating_sub(1);
        self.stats.ar_grants[p] += 1;
        true
    }

    fn arbitrate_aw(&mut self, now: Cycle) -> bool {
        if self.grant_aw.is_full() || self.b_routes.is_full() {
            return false;
        }
        let n = self.config.num_ports;
        let port = if self.aw_grants_left > 0 && self.aw_pipes[self.aw_rr].has_ready(now) {
            Some(self.aw_rr)
        } else {
            let next = (1..=n)
                .map(|k| (self.aw_rr + k) % n)
                .find(|&p| self.aw_pipes[p].has_ready(now));
            if let Some(p) = next {
                self.aw_rr = p;
                self.aw_grants_left = self.draw_granularity();
            }
            next
        };
        let Some(p) = port else { return false };
        let aw = self.aw_pipes[p].pop_ready(now).expect("ready");
        self.b_routes
            .push(RouteEntry {
                port: p,
                final_sub: true,
                tag: aw.tag,
                uid: aw.uid,
            })
            .expect("space");
        self.w_routes.push_back(p);
        self.grant_aw.push(now, aw).expect("space");
        self.aw_grant_ports.push_back(p);
        self.aw_grants_left = self.aw_grants_left.saturating_sub(1);
        self.stats.aw_grants[p] += 1;
        true
    }

    fn move_to_mem(&mut self, now: Cycle) -> bool {
        let mut progress = false;
        if self.grant_ar.has_ready(now) && !self.mem_port.ar.is_full() {
            let beat = self.grant_ar.pop_ready(now).expect("ready");
            let port = self.ar_grant_ports.pop_front().expect("grant order");
            if let Some(m) = self.metrics.as_mut() {
                // Visible at the master boundary one register later —
                // same convention as the HyperConnect's registry.
                let latency = (now + 1).saturating_sub(beat.issued_at);
                m.record_channel(port, ObsChannel::Ar, now, latency, beat.total_bytes());
            }
            self.mem_port.ar.push(now, beat).expect("space");
            progress = true;
        }
        if self.grant_aw.has_ready(now) && !self.mem_port.aw.is_full() {
            let beat = self.grant_aw.pop_ready(now).expect("ready");
            let port = self.aw_grant_ports.pop_front().expect("grant order");
            if let Some(m) = self.metrics.as_mut() {
                let latency = (now + 1).saturating_sub(beat.issued_at);
                m.record_channel(port, ObsChannel::Aw, now, latency, beat.total_bytes());
            }
            self.mem_port.aw.push(now, beat).expect("space");
            progress = true;
        }
        if let Some(&p) = self.w_routes.front() {
            if self.w_pipes[p].has_ready(now) && !self.mem_port.w.is_full() {
                let beat = self.w_pipes[p].pop_ready(now).expect("ready");
                let last = beat.last;
                if let Some(m) = self.metrics.as_mut() {
                    let latency = (now + 1).saturating_sub(beat.issued_at);
                    m.record_channel(p, ObsChannel::W, now, latency, beat.data.len() as u64);
                }
                self.mem_port.w.push(now, beat).expect("space");
                if last {
                    self.w_routes.pop_front();
                }
                progress = true;
            }
        }
        progress
    }

    fn return_paths(&mut self, now: Cycle) -> bool {
        let mut progress = false;
        // Master port into the shared return pipes.
        if self.mem_port.r.has_ready(now) && !self.r_pipe.is_full() {
            let beat = self.mem_port.r.pop_ready(now).expect("ready");
            self.r_pipe.push(now, beat).expect("space");
            progress = true;
        }
        if self.mem_port.b.has_ready(now) && !self.b_pipe.is_full() {
            let beat = self.mem_port.b.pop_ready(now).expect("ready");
            self.b_pipe.push(now, beat).expect("space");
            progress = true;
        }
        // Route to the owning slave ports.
        if self.r_pipe.has_ready(now) {
            let route = *self
                .read_routes
                .head()
                .expect("R beat without routing information");
            if !self.slave_ports[route.port].r.is_full() {
                let mut beat = self.r_pipe.pop_ready(now).expect("ready");
                // Restamp with the uid seen at this instance's grant point
                // so cascaded metrics attribute per hop (no-op when flat).
                beat.uid = route.uid;
                let last = beat.last;
                self.stats.bytes_read[route.port] += beat.data.len() as u64;
                if let Some(m) = self.metrics.as_mut() {
                    let latency = (now + 1).saturating_sub(beat.hopped_at);
                    m.record_channel(
                        route.port,
                        ObsChannel::R,
                        now,
                        latency,
                        beat.data.len() as u64,
                    );
                }
                self.slave_ports[route.port]
                    .r
                    .push(now, beat)
                    .expect("space");
                if last {
                    self.read_routes.pop();
                    self.out_reads[route.port] = self.out_reads[route.port].saturating_sub(1);
                }
                progress = true;
            }
        }
        if self.b_pipe.has_ready(now) {
            let route = *self
                .b_routes
                .head()
                .expect("B response without routing information");
            if !self.slave_ports[route.port].b.is_full() {
                let mut beat = self.b_pipe.pop_ready(now).expect("ready");
                beat.uid = route.uid;
                if let Some(m) = self.metrics.as_mut() {
                    let latency = (now + 1).saturating_sub(beat.hopped_at);
                    m.record_channel(route.port, ObsChannel::B, now, latency, 0);
                }
                self.slave_ports[route.port]
                    .b
                    .push(now, beat)
                    .expect("space");
                self.b_routes.pop();
                self.out_writes[route.port] = self.out_writes[route.port].saturating_sub(1);
                progress = true;
            }
        }
        progress
    }
}

impl sim::persist::PersistValue for ScStats {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        self.ar_grants.save_value(w);
        self.aw_grants.save_value(w);
        self.bytes_read.save_value(w);
        self.bytes_written.save_value(w);
    }

    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self {
            ar_grants: Vec::load_value(r)?,
            aw_grants: Vec::load_value(r)?,
            bytes_read: Vec::load_value(r)?,
            bytes_written: Vec::load_value(r)?,
        })
    }
}

impl Component for SmartConnect {
    fn tick(&mut self, now: Cycle) -> bool {
        let mut progress = false;
        progress |= self.accept(now);
        progress |= self.arbitrate_ar(now);
        progress |= self.arbitrate_aw(now);
        progress |= self.move_to_mem(now);
        progress |= self.return_paths(now);
        progress
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Every state transition is gated on some internal queue's head
        // becoming visible, so the earliest ready-at across all of them
        // is a sound horizon; with everything empty the model is purely
        // reactive.
        let pipes = self
            .ar_pipes
            .iter()
            .map(TimedFifo::next_ready_at)
            .chain(self.aw_pipes.iter().map(TimedFifo::next_ready_at))
            .chain(self.w_pipes.iter().map(TimedFifo::next_ready_at));
        self.slave_ports
            .iter()
            .map(AxiPort::next_ready_at)
            .chain(pipes)
            .chain([
                self.grant_ar.next_ready_at(),
                self.grant_aw.next_ready_at(),
                self.r_pipe.next_ready_at(),
                self.b_pipe.next_ready_at(),
                self.mem_port.next_ready_at(),
            ])
            .flatten()
            .min()
    }
}

impl AxiInterconnect for SmartConnect {
    fn num_ports(&self) -> usize {
        self.config.num_ports
    }

    fn port(&mut self, i: usize) -> &mut AxiPort {
        &mut self.slave_ports[i]
    }

    fn mem_port(&mut self) -> &mut AxiPort {
        &mut self.mem_port
    }

    fn name(&self) -> &'static str {
        "SmartConnect"
    }

    fn is_idle(&self) -> bool {
        self.slave_ports.iter().all(AxiPort::is_idle)
            && self.ar_pipes.iter().all(TimedFifo::is_empty)
            && self.aw_pipes.iter().all(TimedFifo::is_empty)
            && self.w_pipes.iter().all(TimedFifo::is_empty)
            && self.grant_ar.is_empty()
            && self.grant_aw.is_empty()
            && self.r_pipe.is_empty()
            && self.b_pipe.is_empty()
            && self.read_routes.is_empty()
            && self.b_routes.is_empty()
            && self.w_routes.is_empty()
            && self.mem_port.is_idle()
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    fn metrics_mut(&mut self) -> Option<&mut MetricsRegistry> {
        self.metrics.as_mut()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn save_state(&self, w: &mut sim::persist::SnapshotWriter) {
        use sim::persist::PersistValue;
        w.put_usize(self.config.num_ports);
        self.slave_ports.save_value(w);
        self.ar_pipes.save_value(w);
        self.aw_pipes.save_value(w);
        self.w_pipes.save_value(w);
        self.grant_ar.save_value(w);
        self.grant_aw.save_value(w);
        self.r_pipe.save_value(w);
        self.b_pipe.save_value(w);
        self.read_routes.save_value(w);
        self.b_routes.save_value(w);
        self.w_routes.save_value(w);
        self.mem_port.save_value(w);
        w.put_usize(self.ar_rr);
        w.put_u32(self.ar_grants_left);
        w.put_usize(self.aw_rr);
        w.put_u32(self.aw_grants_left);
        // The RNG carries both its stream state and draw counter, so the
        // restored arbiter reproduces the exact granularity sequence.
        self.rng.save_value(w);
        self.out_reads.save_value(w);
        self.out_writes.save_value(w);
        self.stats.save_value(w);
        self.metrics.save_value(w);
        self.ar_grant_ports.save_value(w);
        self.aw_grant_ports.save_value(w);
    }

    fn restore_state(
        &mut self,
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<(), sim::persist::PersistError> {
        use sim::persist::{PersistError, PersistValue};
        // Decode everything first so a corrupt stream leaves `self`
        // unchanged.
        let n = r.take_usize()?;
        if n != self.config.num_ports {
            return Err(PersistError::ShapeMismatch("smartconnect port count"));
        }
        let slave_ports = Vec::<AxiPort>::load_value(r)?;
        let ar_pipes = Vec::<TimedFifo<ArBeat>>::load_value(r)?;
        let aw_pipes = Vec::<TimedFifo<AwBeat>>::load_value(r)?;
        let w_pipes = Vec::<TimedFifo<axi::WBeat>>::load_value(r)?;
        let grant_ar = TimedFifo::<ArBeat>::load_value(r)?;
        let grant_aw = TimedFifo::<AwBeat>::load_value(r)?;
        let r_pipe = TimedFifo::<RBeat>::load_value(r)?;
        let b_pipe = TimedFifo::<axi::BBeat>::load_value(r)?;
        let read_routes = RouteQueue::load_value(r)?;
        let b_routes = RouteQueue::load_value(r)?;
        let w_routes = Ring::<usize>::load_value(r)?;
        let mem_port = AxiPort::load_value(r)?;
        let ar_rr = r.take_usize()?;
        let ar_grants_left = r.take_u32()?;
        let aw_rr = r.take_usize()?;
        let aw_grants_left = r.take_u32()?;
        let rng = SimRng::load_value(r)?;
        let out_reads = Vec::<u32>::load_value(r)?;
        let out_writes = Vec::<u32>::load_value(r)?;
        let stats = ScStats::load_value(r)?;
        let metrics = Option::<MetricsRegistry>::load_value(r)?;
        let ar_grant_ports = Ring::<usize>::load_value(r)?;
        let aw_grant_ports = Ring::<usize>::load_value(r)?;
        if slave_ports.len() != n
            || ar_pipes.len() != n
            || aw_pipes.len() != n
            || w_pipes.len() != n
            || out_reads.len() != n
            || out_writes.len() != n
            || stats.ar_grants.len() != n
        {
            return Err(PersistError::ShapeMismatch("smartconnect per-port state"));
        }
        self.slave_ports = slave_ports;
        self.ar_pipes = ar_pipes;
        self.aw_pipes = aw_pipes;
        self.w_pipes = w_pipes;
        self.grant_ar = grant_ar;
        self.grant_aw = grant_aw;
        self.r_pipe = r_pipe;
        self.b_pipe = b_pipe;
        self.read_routes = read_routes;
        self.b_routes = b_routes;
        self.w_routes = w_routes;
        self.mem_port = mem_port;
        self.ar_rr = ar_rr;
        self.ar_grants_left = ar_grants_left;
        self.aw_rr = aw_rr;
        self.aw_grants_left = aw_grants_left;
        self.rng = rng;
        self.out_reads = out_reads;
        self.out_writes = out_writes;
        self.stats = stats;
        self.metrics = metrics;
        self.ar_grant_ports = ar_grant_ports;
        self.aw_grant_ports = aw_grant_ports;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::types::{AxiId, BurstSize};
    use axi::{ArBeat, AwBeat, BBeat, WBeat};

    #[test]
    fn ar_latency_is_twelve_cycles() {
        let mut sc = SmartConnect::new(ScConfig::new(2));
        sc.port(0)
            .ar
            .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        let mut arrival = None;
        for now in 0..30 {
            sc.tick(now);
            if arrival.is_none() && sc.mem_port().ar.has_ready(now) {
                arrival = Some(now);
            }
        }
        assert_eq!(arrival, Some(12));
    }

    #[test]
    fn aw_latency_is_twelve_cycles() {
        let mut sc = SmartConnect::new(ScConfig::new(2));
        sc.port(1)
            .aw
            .push(0, AwBeat::new(0x200, 1, BurstSize::B4))
            .unwrap();
        let mut arrival = None;
        for now in 0..30 {
            sc.tick(now);
            if arrival.is_none() && sc.mem_port().aw.has_ready(now) {
                arrival = Some(now);
            }
        }
        assert_eq!(arrival, Some(12));
    }

    #[test]
    fn w_latency_is_three_cycles() {
        let mut sc = SmartConnect::new(ScConfig::new(2));
        sc.port(0)
            .aw
            .push(0, AwBeat::new(0, 2, BurstSize::B4))
            .unwrap();
        // Let the AW win its grant first so W routing exists.
        for now in 0..14 {
            sc.tick(now);
        }
        sc.port(0)
            .w
            .push(14, WBeat::new(vec![1; 4], false))
            .unwrap();
        let mut arrival = None;
        for now in 14..30 {
            sc.tick(now);
            if arrival.is_none() && sc.mem_port().w.has_ready(now) {
                arrival = Some(now);
            }
        }
        assert_eq!(arrival, Some(17), "W latency must be 3 cycles");
    }

    #[test]
    fn r_latency_is_eleven_cycles() {
        let mut sc = SmartConnect::new(ScConfig::new(2));
        sc.port(0)
            .ar
            .push(0, ArBeat::new(0, 1, BurstSize::B4))
            .unwrap();
        for now in 0..14 {
            sc.tick(now);
            sc.mem_port().ar.pop_ready(now);
        }
        sc.mem_port()
            .r
            .push(14, RBeat::new(AxiId(0), vec![0; 4], true))
            .unwrap();
        let mut arrival = None;
        for now in 14..40 {
            sc.tick(now);
            if arrival.is_none() && sc.port(0).r.has_ready(now) {
                arrival = Some(now);
            }
        }
        assert_eq!(arrival, Some(25), "R latency must be 11 cycles");
    }

    #[test]
    fn b_latency_is_two_cycles() {
        let mut sc = SmartConnect::new(ScConfig::new(2));
        sc.port(0)
            .aw
            .push(0, AwBeat::new(0, 1, BurstSize::B4))
            .unwrap();
        sc.port(0).w.push(0, WBeat::new(vec![0; 4], true)).unwrap();
        for now in 0..20 {
            sc.tick(now);
            sc.mem_port().aw.pop_ready(now);
            sc.mem_port().w.pop_ready(now);
        }
        sc.mem_port().b.push(20, BBeat::new(AxiId(0))).unwrap();
        let mut arrival = None;
        for now in 20..40 {
            sc.tick(now);
            if arrival.is_none() && sc.port(0).b.has_ready(now) {
                arrival = Some(now);
            }
        }
        assert_eq!(arrival, Some(22), "B latency must be 2 cycles");
    }

    #[test]
    fn no_burst_splitting() {
        let mut sc = SmartConnect::new(ScConfig::new(2));
        sc.port(0)
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4))
            .unwrap();
        let mut seen = None;
        for now in 0..30 {
            sc.tick(now);
            if let Some(ar) = sc.mem_port().ar.pop_ready(now) {
                seen = Some(ar.len);
            }
        }
        assert_eq!(seen, Some(256), "the SmartConnect must not equalize");
    }

    #[test]
    fn fixed_granularity_grants_in_batches() {
        let cfg = ScConfig::new(2).granularity(GranularityPolicy::Fixed(3));
        let mut sc = SmartConnect::new(cfg);
        // Keep both ports loaded with single-beat reads.
        let mut grants: Vec<u64> = Vec::new();
        for now in 0..200u64 {
            for p in 0..2 {
                let _ = sc
                    .port(p)
                    .ar
                    .push(now, ArBeat::new(now * 64, 1, BurstSize::B4));
            }
            sc.tick(now);
            // Track cumulative grants.
            if let Some(ar) = sc.mem_port().ar.pop_ready(now) {
                grants.push(ar.addr);
            }
            // Complete reads instantly so outstanding never throttles.
            while sc.mem_port().r.pop_ready(now).is_some() {}
            let n_out: u32 = sc.out_reads.iter().sum();
            if n_out > 0 {
                // Feed back fake single-beat responses.
                let _ = sc
                    .mem_port()
                    .r
                    .push(now, RBeat::new(AxiId(0), vec![0; 4], true));
            }
            while sc.port(0).r.pop_ready(now).is_some() {}
            while sc.port(1).r.pop_ready(now).is_some() {}
        }
        let s = sc.stats();
        // With fixed granularity 3 and both ports saturated, grants stay
        // roughly balanced overall.
        let a = s.ar_grants[0] as i64;
        let b = s.ar_grants[1] as i64;
        assert!((a - b).abs() <= 3, "grants {a} vs {b}");
    }

    #[test]
    fn up_to_granularity_is_seed_deterministic() {
        let mk = |seed| {
            let cfg = ScConfig::new(2).seed(seed);
            let mut sc = SmartConnect::new(cfg);
            let mut order = Vec::new();
            for now in 0..300u64 {
                for p in 0..2u64 {
                    let _ = sc
                        .port(p as usize)
                        .ar
                        .push(now, ArBeat::new(p * 0x10000 + now * 64, 1, BurstSize::B4));
                }
                sc.tick(now);
                if let Some(ar) = sc.mem_port().ar.pop_ready(now) {
                    order.push(ar.addr >= 0x10000);
                }
                let _ = sc
                    .mem_port()
                    .r
                    .push(now, RBeat::new(AxiId(0), vec![0; 4], true));
                while sc.port(0).r.pop_ready(now).is_some() {}
                while sc.port(1).r.pop_ready(now).is_some() {}
            }
            order
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn outstanding_limit_throttles_acceptance() {
        let mut cfg = ScConfig::new(1);
        cfg.max_outstanding = 2;
        let mut sc = SmartConnect::new(cfg);
        for i in 0..4u64 {
            sc.port(0)
                .ar
                .push(0, ArBeat::new(i * 64, 1, BurstSize::B4))
                .unwrap();
        }
        for now in 0..30 {
            sc.tick(now);
        }
        // Only two accepted; the rest wait in the boundary queue.
        assert_eq!(sc.port(0).ar.len(), 2);
    }

    #[test]
    fn metrics_pin_boundary_latency_goldens() {
        let mut sc = SmartConnect::new(ScConfig::new(2));
        sc.enable_metrics();
        sc.port(0)
            .ar
            .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        for now in 0..14 {
            sc.tick(now);
            sc.mem_port().ar.pop_ready(now);
        }
        // Memory responds at cycle 14; stamp the emission cycle the way
        // the memory controller does.
        let mut r = RBeat::new(AxiId(0), vec![0; 4], true);
        r.hopped_at = 14;
        sc.mem_port().r.push(14, r).unwrap();
        for now in 14..40 {
            sc.tick(now);
            sc.port(0).r.pop_ready(now);
        }
        let m = AxiInterconnect::metrics(&sc).unwrap();
        // Fig. 3(a) baseline numbers: AR = 12, R = 11.
        assert_eq!(m.port(0).ar.latency.min(), Some(12));
        assert_eq!(m.port(0).r.latency.min(), Some(11));
        // No uid machinery: nothing in flight, nothing completed.
        assert_eq!(m.inflight_len(), 0);
    }

    #[test]
    fn snapshot_roundtrip_resumes_byte_identical() {
        use sim::persist::{SnapshotReader, SnapshotWriter};
        let mut sc = SmartConnect::new(ScConfig::new(2));
        sc.enable_metrics();
        // Load both ports so arbitration, the RNG, and the grant windows
        // are all mid-flight at the split point.
        for now in 0..10u64 {
            for p in 0..2u64 {
                let _ = sc
                    .port(p as usize)
                    .ar
                    .push(now, ArBeat::new(p * 0x10000 + now * 64, 1, BurstSize::B4));
            }
            sc.tick(now);
            let _ = sc
                .mem_port()
                .r
                .push(now, RBeat::new(AxiId(0), vec![0; 4], true));
        }
        let mut w = SnapshotWriter::new();
        sc.save_state(&mut w);
        let bytes = w.into_bytes();

        // Restore into a constructor-fresh instance (different seed, no
        // metrics) — everything must come from the snapshot.
        let mut restored = SmartConnect::new(ScConfig::new(2).seed(999));
        restored
            .restore_state(&mut SnapshotReader::new(&bytes))
            .unwrap();

        let drive = |sc: &mut SmartConnect| {
            for now in 10..60u64 {
                for p in 0..2u64 {
                    let _ = sc
                        .port(p as usize)
                        .ar
                        .push(now, ArBeat::new(p * 0x10000 + now * 64, 1, BurstSize::B4));
                }
                sc.tick(now);
                if sc.out_reads.iter().sum::<u32>() > 0 {
                    let _ = sc
                        .mem_port()
                        .r
                        .push(now, RBeat::new(AxiId(0), vec![0; 4], true));
                }
                while sc.mem_port().ar.pop_ready(now).is_some() {}
                while sc.port(0).r.pop_ready(now).is_some() {}
                while sc.port(1).r.pop_ready(now).is_some() {}
            }
            let mut w = SnapshotWriter::new();
            sc.save_state(&mut w);
            w.into_bytes()
        };
        assert_eq!(drive(&mut sc), drive(&mut restored));
    }

    #[test]
    fn restore_rejects_port_count_mismatch() {
        use sim::persist::{PersistError, SnapshotReader, SnapshotWriter};
        let sc = SmartConnect::new(ScConfig::new(2));
        let mut w = SnapshotWriter::new();
        sc.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut other = SmartConnect::new(ScConfig::new(3));
        let err = other
            .restore_state(&mut SnapshotReader::new(&bytes))
            .unwrap_err();
        assert!(matches!(err, PersistError::ShapeMismatch(_)));
    }

    #[test]
    fn idle_after_reset() {
        let sc = SmartConnect::new(ScConfig::default());
        assert!(sc.is_idle());
        assert_eq!(sc.name(), "SmartConnect");
        assert_eq!(sc.num_ports(), 2);
    }
}
