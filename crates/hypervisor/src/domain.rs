//! Execution domains: the isolated applications of the mixed-criticality
//! framework.

use axi::types::PortId;

/// Identifier of an execution domain (a guest/VM under the hypervisor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Criticality level of a domain, driving default resource policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Criticality {
    /// Best-effort: untrusted, first to be throttled or decoupled.
    BestEffort,
    /// Mission-critical: important but not safety-relevant.
    Mission,
    /// Safety-critical: must keep its reserved bandwidth at all times.
    Safety,
}

impl std::fmt::Display for Criticality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Criticality::BestEffort => write!(f, "best-effort"),
            Criticality::Mission => write!(f, "mission"),
            Criticality::Safety => write!(f, "safety"),
        }
    }
}

/// One execution domain: a software system on the PS plus a set of
/// accelerators on the FPGA fabric, isolated from other domains.
#[derive(Debug, Clone)]
pub struct Domain {
    id: DomainId,
    name: String,
    criticality: Criticality,
    ports: Vec<PortId>,
    pending_irqs: u64,
    total_irqs: u64,
}

impl Domain {
    /// Creates a domain with no assigned accelerators.
    pub fn new(id: DomainId, name: impl Into<String>, criticality: Criticality) -> Self {
        Self {
            id,
            name: name.into(),
            criticality,
            ports: Vec::new(),
            pending_irqs: 0,
            total_irqs: 0,
        }
    }

    /// The domain identifier.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// The domain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The criticality level.
    pub fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// Interconnect ports owned by this domain's accelerators.
    pub fn ports(&self) -> &[PortId] {
        &self.ports
    }

    /// Whether the domain owns `port`.
    pub fn owns(&self, port: PortId) -> bool {
        self.ports.contains(&port)
    }

    pub(crate) fn assign(&mut self, port: PortId) {
        self.ports.push(port);
    }

    /// Delivers one accelerator-completion interrupt to the domain.
    pub fn raise_irq(&mut self) {
        self.pending_irqs += 1;
        self.total_irqs += 1;
    }

    /// Consumes all pending interrupts (the guest's handler ran),
    /// returning how many there were.
    pub fn take_irqs(&mut self) -> u64 {
        std::mem::take(&mut self.pending_irqs)
    }

    /// Interrupts delivered over the domain's lifetime.
    pub fn total_irqs(&self) -> u64 {
        self.total_irqs
    }
}

impl sim::persist::PersistValue for DomainId {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        w.put_u32(self.0);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self(r.take_u32()?))
    }
}

/// Criticality wire codes (append-only): array index = wire byte.
const CRITICALITIES: [Criticality; 3] = [
    Criticality::BestEffort,
    Criticality::Mission,
    Criticality::Safety,
];

impl sim::persist::PersistValue for Criticality {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        let code = CRITICALITIES
            .iter()
            .position(|c| c == self)
            .expect("criticality in table");
        w.put_u8(code as u8);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        let code = r.take_u8()? as usize;
        CRITICALITIES
            .get(code)
            .copied()
            .ok_or(sim::persist::PersistError::Corrupt(
                "unknown criticality level",
            ))
    }
}

impl sim::persist::PersistValue for Domain {
    fn save_value(&self, w: &mut sim::persist::SnapshotWriter) {
        self.id.save_value(w);
        self.name.save_value(w);
        self.criticality.save_value(w);
        self.ports.save_value(w);
        self.pending_irqs.save_value(w);
        self.total_irqs.save_value(w);
    }
    fn load_value(
        r: &mut sim::persist::SnapshotReader<'_>,
    ) -> Result<Self, sim::persist::PersistError> {
        Ok(Self {
            id: DomainId::load_value(r)?,
            name: String::load_value(r)?,
            criticality: Criticality::load_value(r)?,
            ports: Vec::load_value(r)?,
            pending_irqs: r.take_u64()?,
            total_irqs: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_types() {
        assert_eq!(DomainId(2).to_string(), "dom2");
        assert_eq!(Criticality::Safety.to_string(), "safety");
        assert!(Criticality::Safety > Criticality::Mission);
        assert!(Criticality::Mission > Criticality::BestEffort);
    }

    #[test]
    fn port_ownership() {
        let mut d = Domain::new(DomainId(0), "vision", Criticality::Safety);
        assert!(d.ports().is_empty());
        d.assign(PortId(1));
        assert!(d.owns(PortId(1)));
        assert!(!d.owns(PortId(0)));
    }

    #[test]
    fn irq_accounting() {
        let mut d = Domain::new(DomainId(0), "x", Criticality::Mission);
        d.raise_irq();
        d.raise_irq();
        assert_eq!(d.take_irqs(), 2);
        assert_eq!(d.take_irqs(), 0);
        assert_eq!(d.total_irqs(), 2);
    }
}
