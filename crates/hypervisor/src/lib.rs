//! Hypervisor-level control plane for the AXI HyperConnect.
//!
//! The paper positions the HyperConnect as a *hypervisor-level hardware
//! component*: the hypervisor owns its control interface, grants each
//! application access to its own accelerators only, routes their
//! interrupts, and programs bandwidth budgets (§IV). This crate models
//! that software layer:
//!
//! * [`domain`] — execution domains (virtual machines) with criticality
//!   levels and accelerator-port assignments;
//! * [`driver`] — the open-source-style register driver that programs a
//!   HyperConnect over the modeled AXI-Lite bus;
//! * [`manager`] — the hypervisor proper: domain bookkeeping, bandwidth
//!   partitioning by percentage shares (the paper's `HC-X-Y`
//!   configurations), interrupt routing, and a health monitor that
//!   decouples misbehaving accelerators at run time;
//! * [`integrator`] — the system-integration flow: component
//!   descriptions exported as IP-XACT XML (the format the paper uses to
//!   ship the IP) and design assembly with connection validation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod driver;
pub mod integrator;
pub mod manager;

pub use domain::{Criticality, Domain, DomainId};
pub use driver::{HcDriver, QuiesceStatus};
pub use manager::{
    HvError, Hypervisor, IntegrityEvent, IntegrityPolicy, MonitorPolicy, RecoveryPolicy,
    RecoveryState, RecoveryTransition, WatchdogEvent, WatchdogPolicy, WatchdogReason,
    HEALTH_LOG_CAPACITY,
};
