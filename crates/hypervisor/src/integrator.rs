//! The system-integration flow: IP-XACT component descriptions and
//! design assembly.
//!
//! The paper's framework (§IV) assumes accelerators are delivered as IP
//! with an XML description (IP-XACT) and that a *system integrator*
//! connects every HA master port to a HyperConnect slave port, the
//! HyperConnect master port to the FPGA-PS interface, and the control
//! ports to the PS-FPGA interface. This module models that flow: typed
//! component descriptions, an IP-XACT 2014 XML exporter, and a design
//! assembler that validates the connection rules before "synthesis".

/// Direction/role of an AXI bus interface on a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfaceRole {
    /// An AXI master (initiator) interface.
    Master,
    /// An AXI slave (target) interface.
    Slave,
    /// An AXI4-Lite control slave interface.
    ControlSlave,
}

impl IfaceRole {
    fn ipxact_mode(self) -> &'static str {
        match self {
            IfaceRole::Master => "master",
            IfaceRole::Slave | IfaceRole::ControlSlave => "slave",
        }
    }
}

/// One bus interface of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusInterface {
    /// Interface name (e.g. `M00_AXI`).
    pub name: String,
    /// Role of the interface.
    pub role: IfaceRole,
}

/// An IP component description (the unit of exchange between
/// application developers and the system integrator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentDesc {
    /// Vendor identifier (reverse-DNS style).
    pub vendor: String,
    /// IP library name.
    pub library: String,
    /// Component name.
    pub name: String,
    /// Version string.
    pub version: String,
    /// The component's bus interfaces.
    pub interfaces: Vec<BusInterface>,
    /// Named integer parameters (e.g. `NUM_PORTS`).
    pub parameters: Vec<(String, u64)>,
}

impl ComponentDesc {
    /// A generic N-port interconnect description: `S{i:02}_AXI` slave
    /// ports, one `M00_AXI` master, one `S_AXI_CTRL` control slave and
    /// a `NUM_PORTS` parameter. This is the shared shape of every
    /// interconnect model the simulator can instantiate (HyperConnect,
    /// SmartConnect, ...).
    pub fn interconnect(name: impl Into<String>, num_ports: usize) -> Self {
        let mut interfaces: Vec<BusInterface> = (0..num_ports)
            .map(|i| BusInterface {
                name: format!("S{i:02}_AXI"),
                role: IfaceRole::Slave,
            })
            .collect();
        interfaces.push(BusInterface {
            name: "M00_AXI".into(),
            role: IfaceRole::Master,
        });
        interfaces.push(BusInterface {
            name: "S_AXI_CTRL".into(),
            role: IfaceRole::ControlSlave,
        });
        Self {
            vendor: "com.example".into(),
            library: "interconnect".into(),
            name: name.into(),
            version: "1.0".into(),
            interfaces,
            parameters: vec![("NUM_PORTS".into(), num_ports as u64)],
        }
    }

    /// The description of an N-port HyperConnect as exported by this
    /// reproduction.
    pub fn hyperconnect(num_ports: usize) -> Self {
        let mut desc = Self::interconnect("axi_hyperconnect", num_ports);
        desc.vendor = "it.sssup.retis".into();
        // Feature flag: per-port credit regulators (traffic regulation
        // & QoS layer) are present in this IP revision.
        desc.parameters.push(("QOS_REGULATION".into(), 1));
        desc
    }

    /// A generic accelerator description with one master and one
    /// control-slave interface (the standard HA shape of §II).
    pub fn accelerator(name: impl Into<String>) -> Self {
        Self {
            vendor: "com.example".into(),
            library: "accelerators".into(),
            name: name.into(),
            version: "1.0".into(),
            interfaces: vec![
                BusInterface {
                    name: "M_AXI".into(),
                    role: IfaceRole::Master,
                },
                BusInterface {
                    name: "S_AXI_CTRL".into(),
                    role: IfaceRole::ControlSlave,
                },
            ],
            parameters: Vec::new(),
        }
    }

    /// Interfaces with the given role.
    pub fn interfaces_with_role(&self, role: IfaceRole) -> impl Iterator<Item = &BusInterface> {
        self.interfaces.iter().filter(move |i| i.role == role)
    }

    /// Serializes the component as IP-XACT 2014 XML.
    pub fn to_ipxact_xml(&self) -> String {
        let mut xml = String::new();
        xml.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        xml.push_str(
            "<ipxact:component xmlns:ipxact=\"http://www.accellera.org/XMLSchema/IPXACT/1685-2014\">\n",
        );
        xml.push_str(&format!(
            "  <ipxact:vendor>{}</ipxact:vendor>\n",
            escape(&self.vendor)
        ));
        xml.push_str(&format!(
            "  <ipxact:library>{}</ipxact:library>\n",
            escape(&self.library)
        ));
        xml.push_str(&format!(
            "  <ipxact:name>{}</ipxact:name>\n",
            escape(&self.name)
        ));
        xml.push_str(&format!(
            "  <ipxact:version>{}</ipxact:version>\n",
            escape(&self.version)
        ));
        xml.push_str("  <ipxact:busInterfaces>\n");
        for iface in &self.interfaces {
            xml.push_str("    <ipxact:busInterface>\n");
            xml.push_str(&format!(
                "      <ipxact:name>{}</ipxact:name>\n",
                escape(&iface.name)
            ));
            xml.push_str(&format!(
                "      <ipxact:{mode}/>\n",
                mode = iface.role.ipxact_mode()
            ));
            xml.push_str("    </ipxact:busInterface>\n");
        }
        xml.push_str("  </ipxact:busInterfaces>\n");
        if !self.parameters.is_empty() {
            xml.push_str("  <ipxact:parameters>\n");
            for (name, value) in &self.parameters {
                xml.push_str("    <ipxact:parameter>\n");
                xml.push_str(&format!(
                    "      <ipxact:name>{}</ipxact:name>\n",
                    escape(name)
                ));
                xml.push_str(&format!("      <ipxact:value>{value}</ipxact:value>\n"));
                xml.push_str("    </ipxact:parameter>\n");
            }
            xml.push_str("  </ipxact:parameters>\n");
        }
        xml.push_str("</ipxact:component>\n");
        xml
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Errors detected while assembling a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrationError {
    /// More accelerators than interconnect slave ports.
    NotEnoughPorts {
        /// Accelerators to connect.
        accelerators: usize,
        /// Available slave ports.
        ports: usize,
    },
    /// An accelerator exposes no AXI master interface to connect.
    NoMasterInterface {
        /// The offending component name.
        component: String,
    },
    /// Two instances added under the same name.
    DuplicateInstance {
        /// The repeated instance name.
        instance: String,
    },
    /// A connection referenced an instance that was never added.
    UnknownInstance {
        /// The unknown instance name.
        instance: String,
    },
    /// A connection referenced an interface the component lacks.
    NoSuchInterface {
        /// The instance name.
        instance: String,
        /// The missing interface name.
        interface: String,
    },
    /// An interface was used in the wrong direction (e.g. a slave as
    /// the initiating side of a connection).
    RoleMismatch {
        /// The instance name.
        instance: String,
        /// The interface name.
        interface: String,
        /// The role the connection required.
        expected: &'static str,
    },
    /// Two connections target the same slave interface.
    SlaveAlreadyBound {
        /// The instance name.
        instance: String,
        /// The double-bound interface.
        interface: String,
    },
    /// Two connections start from the same master interface.
    MasterAlreadyBound {
        /// The instance name.
        instance: String,
        /// The double-bound interface.
        interface: String,
    },
    /// A master interface left dangling at build time.
    UnconnectedMaster {
        /// The instance name.
        instance: String,
        /// The dangling interface.
        interface: String,
    },
    /// The design contains no interconnect component.
    NoInterconnect,
}

impl std::fmt::Display for IntegrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrationError::NotEnoughPorts {
                accelerators,
                ports,
            } => write!(
                f,
                "{accelerators} accelerators but only {ports} interconnect ports"
            ),
            IntegrationError::NoMasterInterface { component } => {
                write!(f, "component {component} has no AXI master interface")
            }
            IntegrationError::DuplicateInstance { instance } => {
                write!(f, "instance name {instance} is already in use")
            }
            IntegrationError::UnknownInstance { instance } => {
                write!(f, "instance {instance} does not exist in this design")
            }
            IntegrationError::NoSuchInterface {
                instance,
                interface,
            } => write!(f, "instance {instance} has no interface {interface}"),
            IntegrationError::RoleMismatch {
                instance,
                interface,
                expected,
            } => write!(f, "interface {instance}.{interface} is not {expected}"),
            IntegrationError::SlaveAlreadyBound {
                instance,
                interface,
            } => write!(f, "slave interface {instance}.{interface} is already bound"),
            IntegrationError::MasterAlreadyBound {
                instance,
                interface,
            } => write!(
                f,
                "master interface {instance}.{interface} is already bound"
            ),
            IntegrationError::UnconnectedMaster {
                instance,
                interface,
            } => write!(
                f,
                "master interface {instance}.{interface} is left unconnected"
            ),
            IntegrationError::NoInterconnect => {
                write!(f, "the design contains no interconnect component")
            }
        }
    }
}

impl std::error::Error for IntegrationError {}

/// One validated connection of the assembled design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// `instance.interface` on the initiating side.
    pub from: String,
    /// `instance.interface` on the target side.
    pub to: String,
}

/// One named component instantiation of a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The instance name (unique within the design).
    pub name: String,
    /// The instantiated component description.
    pub component: ComponentDesc,
}

/// A validated design: one or more interconnects plus connected
/// accelerators.
#[derive(Debug, Clone)]
pub struct Design {
    /// The (first) interconnect component — the root of flat designs.
    pub interconnect: ComponentDesc,
    /// The accelerator components, in instantiation order.
    pub accelerators: Vec<ComponentDesc>,
    /// Every instantiated component, in instantiation order.
    pub instances: Vec<Instance>,
    /// All validated connections.
    pub connections: Vec<Connection>,
}

/// Incremental, validating assembly of a [`Design`] — the netlist
/// counterpart of the simulator's `TopologyBuilder`. Connections are
/// checked as they are made (instances and interfaces must exist,
/// directions must match, no endpoint is bound twice); [`DesignBuilder::build`]
/// additionally rejects dangling master interfaces.
#[derive(Debug, Clone, Default)]
pub struct DesignBuilder {
    instances: Vec<Instance>,
    connections: Vec<Connection>,
    bound_from: Vec<String>,
    bound_to: Vec<String>,
}

impl DesignBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The instances added so far.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    fn find(&self, instance: &str) -> Result<&Instance, IntegrationError> {
        self.instances
            .iter()
            .find(|i| i.name == instance)
            .ok_or_else(|| IntegrationError::UnknownInstance {
                instance: instance.to_owned(),
            })
    }

    fn iface(&self, instance: &str, interface: &str) -> Result<&BusInterface, IntegrationError> {
        self.find(instance)?
            .component
            .interfaces
            .iter()
            .find(|i| i.name == interface)
            .ok_or_else(|| IntegrationError::NoSuchInterface {
                instance: instance.to_owned(),
                interface: interface.to_owned(),
            })
    }

    /// Adds a named component instance.
    ///
    /// # Errors
    ///
    /// [`IntegrationError::DuplicateInstance`] if the name is taken.
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        component: ComponentDesc,
    ) -> Result<(), IntegrationError> {
        let name = name.into();
        if self.instances.iter().any(|i| i.name == name) {
            return Err(IntegrationError::DuplicateInstance { instance: name });
        }
        self.instances.push(Instance { name, component });
        Ok(())
    }

    /// Connects a master interface to a slave interface between two
    /// instances of the design.
    ///
    /// # Errors
    ///
    /// [`IntegrationError::UnknownInstance`],
    /// [`IntegrationError::NoSuchInterface`],
    /// [`IntegrationError::RoleMismatch`],
    /// [`IntegrationError::MasterAlreadyBound`] or
    /// [`IntegrationError::SlaveAlreadyBound`].
    pub fn connect(
        &mut self,
        from_instance: &str,
        from_interface: &str,
        to_instance: &str,
        to_interface: &str,
    ) -> Result<(), IntegrationError> {
        if self.iface(from_instance, from_interface)?.role != IfaceRole::Master {
            return Err(IntegrationError::RoleMismatch {
                instance: from_instance.to_owned(),
                interface: from_interface.to_owned(),
                expected: "a master",
            });
        }
        if self.iface(to_instance, to_interface)?.role != IfaceRole::Slave {
            return Err(IntegrationError::RoleMismatch {
                instance: to_instance.to_owned(),
                interface: to_interface.to_owned(),
                expected: "a slave",
            });
        }
        let from = format!("{from_instance}.{from_interface}");
        let to = format!("{to_instance}.{to_interface}");
        if self.bound_from.contains(&from) {
            return Err(IntegrationError::MasterAlreadyBound {
                instance: from_instance.to_owned(),
                interface: from_interface.to_owned(),
            });
        }
        if self.bound_to.contains(&to) {
            return Err(IntegrationError::SlaveAlreadyBound {
                instance: to_instance.to_owned(),
                interface: to_interface.to_owned(),
            });
        }
        self.bound_from.push(from.clone());
        self.bound_to.push(to.clone());
        self.connections.push(Connection { from, to });
        Ok(())
    }

    /// Connects a master interface of an instance to a port of the
    /// processing system (`ps.<ps_port>`, e.g. the FPGA-PS interface
    /// `S_AXI_HP0`).
    ///
    /// # Errors
    ///
    /// As [`DesignBuilder::connect`], minus the slave-side checks (the
    /// PS is a pseudo-instance).
    pub fn connect_ps_master(
        &mut self,
        instance: &str,
        interface: &str,
        ps_port: &str,
    ) -> Result<(), IntegrationError> {
        if self.iface(instance, interface)?.role != IfaceRole::Master {
            return Err(IntegrationError::RoleMismatch {
                instance: instance.to_owned(),
                interface: interface.to_owned(),
                expected: "a master",
            });
        }
        let from = format!("{instance}.{interface}");
        if self.bound_from.contains(&from) {
            return Err(IntegrationError::MasterAlreadyBound {
                instance: instance.to_owned(),
                interface: interface.to_owned(),
            });
        }
        self.bound_from.push(from.clone());
        self.connections.push(Connection {
            from,
            to: format!("ps.{ps_port}"),
        });
        Ok(())
    }

    /// Connects a control-slave interface of an instance to the
    /// hypervisor-owned PS-FPGA port (`ps.M_AXI_HPM0`).
    ///
    /// # Errors
    ///
    /// As [`DesignBuilder::connect`], minus the master-side checks.
    pub fn connect_ctrl(
        &mut self,
        instance: &str,
        interface: &str,
    ) -> Result<(), IntegrationError> {
        if self.iface(instance, interface)?.role != IfaceRole::ControlSlave {
            return Err(IntegrationError::RoleMismatch {
                instance: instance.to_owned(),
                interface: interface.to_owned(),
                expected: "a control slave",
            });
        }
        let to = format!("{instance}.{interface}");
        if self.bound_to.contains(&to) {
            return Err(IntegrationError::SlaveAlreadyBound {
                instance: instance.to_owned(),
                interface: interface.to_owned(),
            });
        }
        self.bound_to.push(to.clone());
        self.connections.push(Connection {
            from: "ps.M_AXI_HPM0".into(),
            to,
        });
        Ok(())
    }

    /// Validates the netlist and produces the [`Design`].
    ///
    /// # Errors
    ///
    /// [`IntegrationError::UnconnectedMaster`] for any dangling master
    /// interface, [`IntegrationError::NoInterconnect`] when no
    /// interconnect component was instantiated.
    pub fn build(self) -> Result<Design, IntegrationError> {
        for inst in &self.instances {
            for master in inst.component.interfaces_with_role(IfaceRole::Master) {
                let endpoint = format!("{}.{}", inst.name, master.name);
                if !self.bound_from.contains(&endpoint) {
                    return Err(IntegrationError::UnconnectedMaster {
                        instance: inst.name.clone(),
                        interface: master.name.clone(),
                    });
                }
            }
        }
        let interconnect = self
            .instances
            .iter()
            .find(|i| i.component.library == "interconnect")
            .map(|i| i.component.clone())
            .ok_or(IntegrationError::NoInterconnect)?;
        let accelerators = self
            .instances
            .iter()
            .filter(|i| i.component.library != "interconnect")
            .map(|i| i.component.clone())
            .collect();
        Ok(Design {
            interconnect,
            accelerators,
            instances: self.instances,
            connections: self.connections,
        })
    }
}

impl Design {
    /// Assembles and validates a flat design on [`DesignBuilder`]: each
    /// accelerator's master interface is connected to the next
    /// interconnect slave port; the interconnect master port goes to
    /// the FPGA-PS interface; all control interfaces go to the PS-FPGA
    /// interface (owned by the hypervisor).
    ///
    /// # Errors
    ///
    /// See [`IntegrationError`].
    pub fn assemble(
        interconnect: ComponentDesc,
        accelerators: Vec<ComponentDesc>,
    ) -> Result<Self, IntegrationError> {
        let slave_ports: Vec<String> = interconnect
            .interfaces_with_role(IfaceRole::Slave)
            .map(|i| i.name.clone())
            .collect();
        if accelerators.len() > slave_ports.len() {
            return Err(IntegrationError::NotEnoughPorts {
                accelerators: accelerators.len(),
                ports: slave_ports.len(),
            });
        }
        let ic_name = interconnect.name.clone();
        let mut b = DesignBuilder::new();
        b.add_instance(&ic_name, interconnect)?;
        for acc in accelerators {
            let name = acc.name.clone();
            if acc.interfaces_with_role(IfaceRole::Master).next().is_none() {
                return Err(IntegrationError::NoMasterInterface { component: name });
            }
            b.add_instance(&name, acc)?;
        }
        for (i, port) in slave_ports
            .iter()
            .enumerate()
            .take(b.instances.len().saturating_sub(1))
        {
            let acc = b.instances[i + 1].component.clone();
            let master = acc
                .interfaces_with_role(IfaceRole::Master)
                .next()
                .expect("checked at add time")
                .name
                .clone();
            b.connect(&acc.name, &master, &ic_name, port)?;
            for ctrl in acc.interfaces_with_role(IfaceRole::ControlSlave) {
                b.connect_ctrl(&acc.name, &ctrl.name)?;
            }
        }
        b.connect_ps_master(&ic_name, "M00_AXI", "S_AXI_HP0")?;
        b.connect_ctrl(&ic_name, "S_AXI_CTRL")?;
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperconnect_description_shape() {
        let desc = ComponentDesc::hyperconnect(3);
        assert_eq!(desc.interfaces_with_role(IfaceRole::Slave).count(), 3);
        assert_eq!(desc.interfaces_with_role(IfaceRole::Master).count(), 1);
        assert_eq!(
            desc.interfaces_with_role(IfaceRole::ControlSlave).count(),
            1
        );
        assert_eq!(desc.parameters[0], ("NUM_PORTS".into(), 3));
        assert_eq!(desc.parameters[1], ("QOS_REGULATION".into(), 1));
    }

    #[test]
    fn ipxact_export_is_wellformed_enough() {
        let xml = ComponentDesc::hyperconnect(2).to_ipxact_xml();
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("<ipxact:name>axi_hyperconnect</ipxact:name>"));
        assert!(xml.contains("S00_AXI"));
        assert!(xml.contains("S01_AXI"));
        assert!(xml.contains("M00_AXI"));
        assert!(xml.contains("NUM_PORTS"));
        assert!(xml.ends_with("</ipxact:component>\n"));
        // Balanced open/close of busInterface elements.
        assert_eq!(
            xml.matches("<ipxact:busInterface>").count(),
            xml.matches("</ipxact:busInterface>").count()
        );
    }

    #[test]
    fn xml_escaping() {
        let mut desc = ComponentDesc::accelerator("a<b>&\"c");
        desc.vendor = "v&v".into();
        let xml = desc.to_ipxact_xml();
        assert!(xml.contains("a&lt;b&gt;&amp;&quot;c"));
        assert!(xml.contains("v&amp;v"));
        assert!(!xml.contains("a<b>"));
    }

    #[test]
    fn assemble_connects_everything() {
        let design = Design::assemble(
            ComponentDesc::hyperconnect(2),
            vec![
                ComponentDesc::accelerator("chaidnn"),
                ComponentDesc::accelerator("dma"),
            ],
        )
        .unwrap();
        let conns: Vec<String> = design
            .connections
            .iter()
            .map(|c| format!("{} -> {}", c.from, c.to))
            .collect();
        assert!(conns.contains(&"chaidnn.M_AXI -> axi_hyperconnect.S00_AXI".to_string()));
        assert!(conns.contains(&"dma.M_AXI -> axi_hyperconnect.S01_AXI".to_string()));
        assert!(conns.contains(&"axi_hyperconnect.M00_AXI -> ps.S_AXI_HP0".to_string()));
        assert!(conns.contains(&"ps.M_AXI_HPM0 -> axi_hyperconnect.S_AXI_CTRL".to_string()));
    }

    #[test]
    fn assemble_rejects_too_many_accelerators() {
        let err = Design::assemble(
            ComponentDesc::hyperconnect(1),
            vec![
                ComponentDesc::accelerator("a"),
                ComponentDesc::accelerator("b"),
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            IntegrationError::NotEnoughPorts {
                accelerators: 2,
                ports: 1
            }
        );
        assert!(err.to_string().contains("2 accelerators"));
    }

    #[test]
    fn assemble_rejects_masterless_component() {
        let mut acc = ComponentDesc::accelerator("broken");
        acc.interfaces.retain(|i| i.role != IfaceRole::Master);
        let err = Design::assemble(ComponentDesc::hyperconnect(1), vec![acc]).unwrap_err();
        assert!(matches!(err, IntegrationError::NoMasterInterface { .. }));
    }

    #[test]
    fn builder_rejects_duplicate_and_unknown_instances() {
        let mut b = DesignBuilder::new();
        b.add_instance("hc", ComponentDesc::hyperconnect(2))
            .unwrap();
        assert_eq!(
            b.add_instance("hc", ComponentDesc::accelerator("hc"))
                .unwrap_err(),
            IntegrationError::DuplicateInstance {
                instance: "hc".into()
            }
        );
        assert_eq!(
            b.connect("ghost", "M_AXI", "hc", "S00_AXI").unwrap_err(),
            IntegrationError::UnknownInstance {
                instance: "ghost".into()
            }
        );
        b.add_instance("dma", ComponentDesc::accelerator("dma"))
            .unwrap();
        assert_eq!(
            b.connect("dma", "M_AXI", "hc", "S99_AXI").unwrap_err(),
            IntegrationError::NoSuchInterface {
                instance: "hc".into(),
                interface: "S99_AXI".into()
            }
        );
    }

    #[test]
    fn builder_rejects_role_mismatches() {
        let mut b = DesignBuilder::new();
        b.add_instance("hc", ComponentDesc::hyperconnect(2))
            .unwrap();
        b.add_instance("dma", ComponentDesc::accelerator("dma"))
            .unwrap();
        // Slave used as the initiating side.
        let err = b.connect("hc", "S00_AXI", "dma", "S_AXI_CTRL").unwrap_err();
        assert!(matches!(
            err,
            IntegrationError::RoleMismatch {
                expected: "a master",
                ..
            }
        ));
        // Master used as the target side.
        let err = b.connect("dma", "M_AXI", "hc", "M00_AXI").unwrap_err();
        assert!(matches!(
            err,
            IntegrationError::RoleMismatch {
                expected: "a slave",
                ..
            }
        ));
        // A plain slave is not a control slave.
        let err = b.connect_ctrl("hc", "S00_AXI").unwrap_err();
        assert!(matches!(
            err,
            IntegrationError::RoleMismatch {
                expected: "a control slave",
                ..
            }
        ));
        assert!(err.to_string().contains("control slave"));
    }

    #[test]
    fn builder_rejects_double_bound_endpoints() {
        let mut b = DesignBuilder::new();
        b.add_instance("hc", ComponentDesc::hyperconnect(2))
            .unwrap();
        b.add_instance("a", ComponentDesc::accelerator("a"))
            .unwrap();
        b.add_instance("b", ComponentDesc::accelerator("b"))
            .unwrap();
        b.connect("a", "M_AXI", "hc", "S00_AXI").unwrap();
        assert_eq!(
            b.connect("a", "M_AXI", "hc", "S01_AXI").unwrap_err(),
            IntegrationError::MasterAlreadyBound {
                instance: "a".into(),
                interface: "M_AXI".into()
            }
        );
        assert_eq!(
            b.connect("b", "M_AXI", "hc", "S00_AXI").unwrap_err(),
            IntegrationError::SlaveAlreadyBound {
                instance: "hc".into(),
                interface: "S00_AXI".into()
            }
        );
        b.connect_ctrl("hc", "S_AXI_CTRL").unwrap();
        assert!(matches!(
            b.connect_ctrl("hc", "S_AXI_CTRL").unwrap_err(),
            IntegrationError::SlaveAlreadyBound { .. }
        ));
    }

    #[test]
    fn builder_build_requires_bound_masters_and_an_interconnect() {
        // Dangling master interface.
        let mut b = DesignBuilder::new();
        b.add_instance("hc", ComponentDesc::hyperconnect(1))
            .unwrap();
        b.add_instance("dma", ComponentDesc::accelerator("dma"))
            .unwrap();
        b.connect("dma", "M_AXI", "hc", "S00_AXI").unwrap();
        // hc.M00_AXI is still dangling.
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            IntegrationError::UnconnectedMaster {
                instance: "hc".into(),
                interface: "M00_AXI".into()
            }
        );
        assert!(err.to_string().contains("unconnected"));

        // No interconnect at all.
        let mut b = DesignBuilder::new();
        b.add_instance("dma", ComponentDesc::accelerator("dma"))
            .unwrap();
        b.connect_ps_master("dma", "M_AXI", "S_AXI_HP0").unwrap();
        assert_eq!(b.build().unwrap_err(), IntegrationError::NoInterconnect);
    }

    #[test]
    fn builder_assembles_a_two_level_tree() {
        // The shape TopologyBuilder::export_design produces: a leaf
        // interconnect's master feeding a root slave port.
        let mut b = DesignBuilder::new();
        b.add_instance("root", ComponentDesc::interconnect("axi_ic", 2))
            .unwrap();
        b.add_instance("leaf", ComponentDesc::interconnect("axi_ic", 2))
            .unwrap();
        b.add_instance("dma", ComponentDesc::accelerator("dma"))
            .unwrap();
        b.connect("leaf", "M00_AXI", "root", "S00_AXI").unwrap();
        b.connect("dma", "M_AXI", "leaf", "S00_AXI").unwrap();
        b.connect_ps_master("root", "M00_AXI", "S_AXI_HP0").unwrap();
        for inst in ["root", "leaf", "dma"] {
            b.connect_ctrl(inst, "S_AXI_CTRL").unwrap();
        }
        let design = b.build().unwrap();
        assert_eq!(design.instances.len(), 3);
        assert_eq!(design.accelerators.len(), 1);
        let conns: Vec<String> = design
            .connections
            .iter()
            .map(|c| format!("{} -> {}", c.from, c.to))
            .collect();
        assert!(conns.contains(&"leaf.M00_AXI -> root.S00_AXI".to_string()));
        assert!(conns.contains(&"root.M00_AXI -> ps.S_AXI_HP0".to_string()));
    }
}
