//! The system-integration flow: IP-XACT component descriptions and
//! design assembly.
//!
//! The paper's framework (§IV) assumes accelerators are delivered as IP
//! with an XML description (IP-XACT) and that a *system integrator*
//! connects every HA master port to a HyperConnect slave port, the
//! HyperConnect master port to the FPGA-PS interface, and the control
//! ports to the PS-FPGA interface. This module models that flow: typed
//! component descriptions, an IP-XACT 2014 XML exporter, and a design
//! assembler that validates the connection rules before "synthesis".

/// Direction/role of an AXI bus interface on a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfaceRole {
    /// An AXI master (initiator) interface.
    Master,
    /// An AXI slave (target) interface.
    Slave,
    /// An AXI4-Lite control slave interface.
    ControlSlave,
}

impl IfaceRole {
    fn ipxact_mode(self) -> &'static str {
        match self {
            IfaceRole::Master => "master",
            IfaceRole::Slave | IfaceRole::ControlSlave => "slave",
        }
    }
}

/// One bus interface of a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusInterface {
    /// Interface name (e.g. `M00_AXI`).
    pub name: String,
    /// Role of the interface.
    pub role: IfaceRole,
}

/// An IP component description (the unit of exchange between
/// application developers and the system integrator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentDesc {
    /// Vendor identifier (reverse-DNS style).
    pub vendor: String,
    /// IP library name.
    pub library: String,
    /// Component name.
    pub name: String,
    /// Version string.
    pub version: String,
    /// The component's bus interfaces.
    pub interfaces: Vec<BusInterface>,
    /// Named integer parameters (e.g. `NUM_PORTS`).
    pub parameters: Vec<(String, u64)>,
}

impl ComponentDesc {
    /// The description of an N-port HyperConnect as exported by this
    /// reproduction.
    pub fn hyperconnect(num_ports: usize) -> Self {
        let mut interfaces: Vec<BusInterface> = (0..num_ports)
            .map(|i| BusInterface {
                name: format!("S{i:02}_AXI"),
                role: IfaceRole::Slave,
            })
            .collect();
        interfaces.push(BusInterface {
            name: "M00_AXI".into(),
            role: IfaceRole::Master,
        });
        interfaces.push(BusInterface {
            name: "S_AXI_CTRL".into(),
            role: IfaceRole::ControlSlave,
        });
        Self {
            vendor: "it.sssup.retis".into(),
            library: "interconnect".into(),
            name: "axi_hyperconnect".into(),
            version: "1.0".into(),
            interfaces,
            parameters: vec![("NUM_PORTS".into(), num_ports as u64)],
        }
    }

    /// A generic accelerator description with one master and one
    /// control-slave interface (the standard HA shape of §II).
    pub fn accelerator(name: impl Into<String>) -> Self {
        Self {
            vendor: "com.example".into(),
            library: "accelerators".into(),
            name: name.into(),
            version: "1.0".into(),
            interfaces: vec![
                BusInterface {
                    name: "M_AXI".into(),
                    role: IfaceRole::Master,
                },
                BusInterface {
                    name: "S_AXI_CTRL".into(),
                    role: IfaceRole::ControlSlave,
                },
            ],
            parameters: Vec::new(),
        }
    }

    /// Interfaces with the given role.
    pub fn interfaces_with_role(&self, role: IfaceRole) -> impl Iterator<Item = &BusInterface> {
        self.interfaces.iter().filter(move |i| i.role == role)
    }

    /// Serializes the component as IP-XACT 2014 XML.
    pub fn to_ipxact_xml(&self) -> String {
        let mut xml = String::new();
        xml.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        xml.push_str(
            "<ipxact:component xmlns:ipxact=\"http://www.accellera.org/XMLSchema/IPXACT/1685-2014\">\n",
        );
        xml.push_str(&format!(
            "  <ipxact:vendor>{}</ipxact:vendor>\n",
            escape(&self.vendor)
        ));
        xml.push_str(&format!(
            "  <ipxact:library>{}</ipxact:library>\n",
            escape(&self.library)
        ));
        xml.push_str(&format!(
            "  <ipxact:name>{}</ipxact:name>\n",
            escape(&self.name)
        ));
        xml.push_str(&format!(
            "  <ipxact:version>{}</ipxact:version>\n",
            escape(&self.version)
        ));
        xml.push_str("  <ipxact:busInterfaces>\n");
        for iface in &self.interfaces {
            xml.push_str("    <ipxact:busInterface>\n");
            xml.push_str(&format!(
                "      <ipxact:name>{}</ipxact:name>\n",
                escape(&iface.name)
            ));
            xml.push_str(&format!(
                "      <ipxact:{mode}/>\n",
                mode = iface.role.ipxact_mode()
            ));
            xml.push_str("    </ipxact:busInterface>\n");
        }
        xml.push_str("  </ipxact:busInterfaces>\n");
        if !self.parameters.is_empty() {
            xml.push_str("  <ipxact:parameters>\n");
            for (name, value) in &self.parameters {
                xml.push_str("    <ipxact:parameter>\n");
                xml.push_str(&format!(
                    "      <ipxact:name>{}</ipxact:name>\n",
                    escape(name)
                ));
                xml.push_str(&format!("      <ipxact:value>{value}</ipxact:value>\n"));
                xml.push_str("    </ipxact:parameter>\n");
            }
            xml.push_str("  </ipxact:parameters>\n");
        }
        xml.push_str("</ipxact:component>\n");
        xml
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Errors detected while assembling a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrationError {
    /// More accelerators than interconnect slave ports.
    NotEnoughPorts {
        /// Accelerators to connect.
        accelerators: usize,
        /// Available slave ports.
        ports: usize,
    },
    /// An accelerator exposes no AXI master interface to connect.
    NoMasterInterface {
        /// The offending component name.
        component: String,
    },
}

impl std::fmt::Display for IntegrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrationError::NotEnoughPorts {
                accelerators,
                ports,
            } => write!(
                f,
                "{accelerators} accelerators but only {ports} interconnect ports"
            ),
            IntegrationError::NoMasterInterface { component } => {
                write!(f, "component {component} has no AXI master interface")
            }
        }
    }
}

impl std::error::Error for IntegrationError {}

/// One validated connection of the assembled design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// `instance.interface` on the initiating side.
    pub from: String,
    /// `instance.interface` on the target side.
    pub to: String,
}

/// A validated design: the HyperConnect plus connected accelerators.
#[derive(Debug, Clone)]
pub struct Design {
    /// The interconnect component.
    pub interconnect: ComponentDesc,
    /// The accelerator components, in slave-port order.
    pub accelerators: Vec<ComponentDesc>,
    /// All validated connections.
    pub connections: Vec<Connection>,
}

impl Design {
    /// Assembles and validates a design: each accelerator's master
    /// interface is connected to the next interconnect slave port; the
    /// interconnect master port goes to the FPGA-PS interface; all
    /// control interfaces go to the PS-FPGA interface (owned by the
    /// hypervisor).
    ///
    /// # Errors
    ///
    /// See [`IntegrationError`].
    pub fn assemble(
        interconnect: ComponentDesc,
        accelerators: Vec<ComponentDesc>,
    ) -> Result<Self, IntegrationError> {
        let slave_ports: Vec<&BusInterface> = interconnect
            .interfaces_with_role(IfaceRole::Slave)
            .collect();
        if accelerators.len() > slave_ports.len() {
            return Err(IntegrationError::NotEnoughPorts {
                accelerators: accelerators.len(),
                ports: slave_ports.len(),
            });
        }
        let mut connections = Vec::new();
        for (i, acc) in accelerators.iter().enumerate() {
            let master = acc
                .interfaces_with_role(IfaceRole::Master)
                .next()
                .ok_or_else(|| IntegrationError::NoMasterInterface {
                    component: acc.name.clone(),
                })?;
            connections.push(Connection {
                from: format!("{}.{}", acc.name, master.name),
                to: format!("{}.{}", interconnect.name, slave_ports[i].name),
            });
            for ctrl in acc.interfaces_with_role(IfaceRole::ControlSlave) {
                connections.push(Connection {
                    from: "ps.M_AXI_HPM0".into(),
                    to: format!("{}.{}", acc.name, ctrl.name),
                });
            }
        }
        connections.push(Connection {
            from: format!("{}.M00_AXI", interconnect.name),
            to: "ps.S_AXI_HP0".into(),
        });
        connections.push(Connection {
            from: "ps.M_AXI_HPM0".into(),
            to: format!("{}.S_AXI_CTRL", interconnect.name),
        });
        Ok(Self {
            interconnect,
            accelerators,
            connections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperconnect_description_shape() {
        let desc = ComponentDesc::hyperconnect(3);
        assert_eq!(desc.interfaces_with_role(IfaceRole::Slave).count(), 3);
        assert_eq!(desc.interfaces_with_role(IfaceRole::Master).count(), 1);
        assert_eq!(
            desc.interfaces_with_role(IfaceRole::ControlSlave).count(),
            1
        );
        assert_eq!(desc.parameters[0], ("NUM_PORTS".into(), 3));
    }

    #[test]
    fn ipxact_export_is_wellformed_enough() {
        let xml = ComponentDesc::hyperconnect(2).to_ipxact_xml();
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("<ipxact:name>axi_hyperconnect</ipxact:name>"));
        assert!(xml.contains("S00_AXI"));
        assert!(xml.contains("S01_AXI"));
        assert!(xml.contains("M00_AXI"));
        assert!(xml.contains("NUM_PORTS"));
        assert!(xml.ends_with("</ipxact:component>\n"));
        // Balanced open/close of busInterface elements.
        assert_eq!(
            xml.matches("<ipxact:busInterface>").count(),
            xml.matches("</ipxact:busInterface>").count()
        );
    }

    #[test]
    fn xml_escaping() {
        let mut desc = ComponentDesc::accelerator("a<b>&\"c");
        desc.vendor = "v&v".into();
        let xml = desc.to_ipxact_xml();
        assert!(xml.contains("a&lt;b&gt;&amp;&quot;c"));
        assert!(xml.contains("v&amp;v"));
        assert!(!xml.contains("a<b>"));
    }

    #[test]
    fn assemble_connects_everything() {
        let design = Design::assemble(
            ComponentDesc::hyperconnect(2),
            vec![
                ComponentDesc::accelerator("chaidnn"),
                ComponentDesc::accelerator("dma"),
            ],
        )
        .unwrap();
        let conns: Vec<String> = design
            .connections
            .iter()
            .map(|c| format!("{} -> {}", c.from, c.to))
            .collect();
        assert!(conns.contains(&"chaidnn.M_AXI -> axi_hyperconnect.S00_AXI".to_string()));
        assert!(conns.contains(&"dma.M_AXI -> axi_hyperconnect.S01_AXI".to_string()));
        assert!(conns.contains(&"axi_hyperconnect.M00_AXI -> ps.S_AXI_HP0".to_string()));
        assert!(conns.contains(&"ps.M_AXI_HPM0 -> axi_hyperconnect.S_AXI_CTRL".to_string()));
    }

    #[test]
    fn assemble_rejects_too_many_accelerators() {
        let err = Design::assemble(
            ComponentDesc::hyperconnect(1),
            vec![
                ComponentDesc::accelerator("a"),
                ComponentDesc::accelerator("b"),
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            IntegrationError::NotEnoughPorts {
                accelerators: 2,
                ports: 1
            }
        );
        assert!(err.to_string().contains("2 accelerators"));
    }

    #[test]
    fn assemble_rejects_masterless_component() {
        let mut acc = ComponentDesc::accelerator("broken");
        acc.interfaces.retain(|i| i.role != IfaceRole::Master);
        let err = Design::assemble(ComponentDesc::hyperconnect(1), vec![acc]).unwrap_err();
        assert!(matches!(err, IntegrationError::NoMasterInterface { .. }));
    }
}
