//! The hypervisor proper: domains, bandwidth partitioning, interrupt
//! routing, and run-time health monitoring.

use std::collections::HashMap;

use axi::lite::LiteBus;
use axi::types::PortId;

use crate::domain::{Criticality, Domain, DomainId};
use crate::driver::{DriverError, HcDriver};

/// Errors surfaced by hypervisor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HvError {
    /// Underlying register-driver failure.
    Driver(DriverError),
    /// The referenced domain does not exist.
    UnknownDomain(DomainId),
    /// The referenced port is already assigned to a domain.
    PortTaken(PortId),
    /// The referenced port is not assigned to any domain.
    UnassignedPort(PortId),
}

impl std::fmt::Display for HvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HvError::Driver(e) => write!(f, "driver: {e}"),
            HvError::UnknownDomain(d) => write!(f, "unknown domain {d}"),
            HvError::PortTaken(p) => write!(f, "{p} is already assigned"),
            HvError::UnassignedPort(p) => write!(f, "{p} is not assigned to any domain"),
        }
    }
}

impl std::error::Error for HvError {}

impl From<DriverError> for HvError {
    fn from(e: DriverError) -> Self {
        HvError::Driver(e)
    }
}

/// Health-monitoring policy for a port: how many sub-transactions per
/// reservation period the accelerator *declared* it needs, and how many
/// consecutive violations are tolerated before the hypervisor decouples
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorPolicy {
    /// Declared sub-transactions per period.
    pub declared_txns_per_period: u32,
    /// Consecutive violating polls tolerated before decoupling.
    pub violations_allowed: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct MonitorState {
    consecutive_violations: u32,
    decoupled_by_monitor: bool,
}

/// Watchdog policy for a port: thresholds on the interconnect's
/// *structured violation* counter and on the in-flight transaction count,
/// read over AXI-Lite from the `VIOLATIONS` / `OUTSTANDING` registers.
///
/// Complements [`MonitorPolicy`] (which reacts to bandwidth overuse):
/// the watchdog reacts to protocol-level misbehavior — illegal
/// addresses, 4 KiB crossings, WLAST corruption, hung handshakes — and
/// to runaway issue rates that exceed the declared in-flight envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogPolicy {
    /// Total structured violations tolerated before decoupling.
    pub violations_allowed: u32,
    /// Optional cap on in-flight sub-transactions; `None` disables the
    /// outstanding check.
    pub outstanding_allowed: Option<u32>,
    /// Consecutive polls tolerated with in-flight work but frozen
    /// progress counters before declaring a forward-progress stall
    /// (stuck-valid / stuck-ready); `None` disables stall detection.
    pub stall_polls_allowed: Option<u32>,
}

impl Default for WatchdogPolicy {
    /// A fully permissive policy: every check disabled.
    fn default() -> Self {
        Self {
            violations_allowed: u32::MAX,
            outstanding_allowed: None,
            stall_polls_allowed: None,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct WatchdogState {
    decoupled_by_watchdog: bool,
    /// `VIOLATIONS` is cumulative since reset; the watchdog compares
    /// against this baseline so a reattached port is not re-tripped by
    /// its pre-recovery history.
    violations_baseline: u32,
    /// `(TXN_TOTAL, OUTSTANDING)` observed at the previous poll — the
    /// forward-progress fingerprint for stall detection.
    last_progress: Option<(u32, u32)>,
    stalled_polls: u32,
}

/// Why the watchdog decoupled a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogReason {
    /// The structured-violation counter exceeded the policy threshold.
    Violations,
    /// The in-flight transaction count exceeded the policy cap.
    Outstanding,
    /// Work was outstanding but the handshake counters stopped
    /// advancing for longer than the policy tolerates — a stuck-valid
    /// or stuck-ready accelerator.
    Stalled,
}

/// A decoupling event recorded by the watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogEvent {
    /// The offending port.
    pub port: PortId,
    /// What tripped the watchdog.
    pub reason: WatchdogReason,
    /// Violation count observed at the decoupling poll.
    pub violations: u32,
    /// In-flight sub-transactions observed at the decoupling poll.
    pub outstanding: u32,
}

/// Data-integrity policy for a port: how many error-completed
/// transactions (the `ERR_TOTAL` health register — transient SLVERR
/// bursts, uncorrectable ECC events) the hypervisor tolerates before
/// flagging the port's memory region for quarantine.
///
/// Complements [`WatchdogPolicy`] (protocol misbehavior) and
/// [`MonitorPolicy`] (bandwidth overuse): this one reacts to the
/// *slave/fabric* fault surface. The hypervisor does not remap memory
/// itself — the returned [`IntegrityEvent`]s are cues for the platform
/// layer to install a region remap or shed best-effort traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityPolicy {
    /// Error-completed transactions tolerated (relative to the baseline
    /// captured when the policy was armed) before an event fires.
    pub errors_allowed: u32,
}

impl Default for IntegrityPolicy {
    /// Tolerate nothing: the first error-completed transaction fires.
    fn default() -> Self {
        Self { errors_allowed: 0 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct IntegrityState {
    /// `ERR_TOTAL` is cumulative since reset; events fire on the delta
    /// against this baseline.
    errors_baseline: u32,
    /// The event already fired; latched until re-armed so one sick
    /// region does not flood the log at every poll.
    flagged: bool,
}

/// A data-integrity threshold crossing recorded by
/// [`Hypervisor::poll_integrity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityEvent {
    /// The port whose error counter crossed the threshold.
    pub port: PortId,
    /// `ERR_TOTAL` observed at the firing poll.
    pub err_total: u32,
    /// The armed threshold (errors above baseline).
    pub errors_allowed: u32,
}

/// A decoupling event recorded by the health monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecoupleEvent {
    /// The offending port.
    pub port: PortId,
    /// Sub-transactions observed in the violating period.
    pub observed: u32,
    /// The declared limit.
    pub declared: u32,
}

/// Where a port stands in the hypervisor's recovery lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryState {
    /// Nominal operation.
    #[default]
    Healthy,
    /// Early misbehavior signals (accumulating violations or stall
    /// polls); the port runs under a throttled budget while the
    /// hypervisor waits to see whether it settles.
    Suspect,
    /// A quiescent drain is in progress; in-flight work is completing
    /// (or will be force-flushed at the drain deadline).
    Draining,
    /// Drained and decoupled, waiting out the reattach backoff.
    Decoupled,
    /// The accelerator reset is in progress (modeled as a fixed number
    /// of polls).
    Resetting,
    /// Reattached and under scrutiny before being declared healthy.
    Probation,
    /// Permanently decoupled after too many failed recoveries.
    Quarantined,
}

/// Configures the escalating recovery ladder for a port:
/// throttle → drain → decouple → reset → reattach, with exponential
/// backoff between attempts and permanent quarantine after repeated
/// failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Budget (sub-transactions per period) imposed while `Suspect`.
    pub throttle_budget: u32,
    /// Polls to observe a `Suspect` port before escalating to a drain
    /// (it returns to `Healthy` earlier if the signals clear).
    pub suspect_polls: u32,
    /// Polls the modeled accelerator reset takes.
    pub reset_polls: u32,
    /// Consecutive clean polls required in `Probation` before the port
    /// is declared `Healthy` again.
    pub probation_polls: u32,
    /// Backoff (in polls) before the first reset attempt; doubles on
    /// every failed recovery.
    pub backoff_base: u32,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: u32,
    /// Failed recoveries (misbehavior during `Probation`) tolerated
    /// before the port is permanently `Quarantined`.
    pub max_recoveries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            throttle_budget: 1,
            suspect_polls: 2,
            reset_polls: 2,
            probation_polls: 4,
            backoff_base: 1,
            backoff_cap: 8,
            max_recoveries: 3,
        }
    }
}

impl RecoveryPolicy {
    /// Upper bound, in polls, from the poll that detects a fault to the
    /// reattach of the *last* allowed recovery attempt — the SLA the
    /// chaos campaign asserts against. `drain_polls` is the caller's
    /// bound on drain duration (e.g. the device drain deadline divided
    /// by the poll interval, rounded up, plus one write-back poll).
    pub fn reattach_sla_polls(&self, drain_polls: u32) -> u32 {
        let per_attempt = drain_polls + self.backoff_cap + self.reset_polls + 2;
        self.suspect_polls + 1 + (self.max_recoveries.max(1)) * (per_attempt + 1)
    }
}

/// A state-machine transition recorded by [`Hypervisor::poll_recovery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryTransition {
    /// The port that moved.
    pub port: PortId,
    /// State before this poll.
    pub from: RecoveryState,
    /// State after this poll.
    pub to: RecoveryState,
    /// Sub-transactions reported dropped by a force-flush, observed on
    /// the `Draining → Decoupled` edge (0 elsewhere, and 0 for clean
    /// drains).
    pub dropped_txns: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct RecoveryPortState {
    state: RecoveryState,
    /// Polls spent in the current state (meaning varies per state).
    polls_in_state: u32,
    failed_recoveries: u32,
    /// Polls left to wait in `Decoupled` before resetting.
    backoff_left: u32,
    /// Budget register value saved when entering `Suspect`.
    saved_budget: u32,
}

/// The hypervisor: owns the control bus, the domain table and the
/// monitoring state for one HyperConnect instance.
///
/// # Example
///
/// ```
/// use axi::lite::LiteBus;
/// use axi::types::PortId;
/// use hyperconnect::{HcConfig, HyperConnect};
/// use hypervisor::{Criticality, Hypervisor};
///
/// # fn main() -> Result<(), hypervisor::HvError> {
/// let hc = HyperConnect::new(HcConfig::new(2));
/// let mut bus = LiteBus::new();
/// bus.map(0xA000_0000, 0x1000, hc.regs().clone());
/// let mut hv = Hypervisor::new(bus, 0xA000_0000)?;
/// let dom = hv.create_domain("perception", Criticality::Safety);
/// hv.assign_port(dom, PortId(0))?;
/// hv.hc().set_period(50_000)?;
/// hv.set_bandwidth_shares(&[90, 10], 22)?;
/// # Ok(())
/// # }
/// ```
pub struct Hypervisor {
    bus: LiteBus,
    hc_base: u64,
    domains: Vec<Domain>,
    port_owner: HashMap<usize, DomainId>,
    policies: HashMap<usize, MonitorPolicy>,
    monitor: HashMap<usize, MonitorState>,
    decouple_log: Vec<DecoupleEvent>,
    decouple_log_dropped: u64,
    watchdog_policies: HashMap<usize, WatchdogPolicy>,
    watchdog: HashMap<usize, WatchdogState>,
    watchdog_log: Vec<WatchdogEvent>,
    watchdog_log_dropped: u64,
    recovery_policies: HashMap<usize, RecoveryPolicy>,
    recovery: HashMap<usize, RecoveryPortState>,
    recovery_log: Vec<RecoveryTransition>,
    recovery_log_dropped: u64,
    integrity_policies: HashMap<usize, IntegrityPolicy>,
    integrity: HashMap<usize, IntegrityState>,
    integrity_log: Vec<IntegrityEvent>,
    integrity_log_dropped: u64,
}

/// Capacity of each hypervisor event log. Like the tracer, the logs
/// are bounded so a flapping accelerator cannot grow hypervisor memory
/// without limit: the oldest events are dropped and counted.
pub const HEALTH_LOG_CAPACITY: usize = 256;

fn push_capped<T>(log: &mut Vec<T>, dropped: &mut u64, event: T) {
    if log.len() == HEALTH_LOG_CAPACITY {
        log.remove(0);
        *dropped += 1;
    }
    log.push(event);
}

impl std::fmt::Debug for Hypervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hypervisor")
            .field("domains", &self.domains.len())
            .field("assigned_ports", &self.port_owner.len())
            .finish()
    }
}

impl Hypervisor {
    /// Creates a hypervisor controlling the HyperConnect mapped at
    /// `hc_base` on `bus`.
    ///
    /// # Errors
    ///
    /// Fails if no HyperConnect responds at `hc_base`.
    pub fn new(bus: LiteBus, hc_base: u64) -> Result<Self, HvError> {
        // Probe once to validate the mapping.
        HcDriver::probe(&bus, hc_base)?;
        Ok(Self {
            bus,
            hc_base,
            domains: Vec::new(),
            port_owner: HashMap::new(),
            policies: HashMap::new(),
            monitor: HashMap::new(),
            decouple_log: Vec::new(),
            decouple_log_dropped: 0,
            watchdog_policies: HashMap::new(),
            watchdog: HashMap::new(),
            watchdog_log: Vec::new(),
            watchdog_log_dropped: 0,
            recovery_policies: HashMap::new(),
            recovery: HashMap::new(),
            recovery_log: Vec::new(),
            recovery_log_dropped: 0,
            integrity_policies: HashMap::new(),
            integrity: HashMap::new(),
            integrity_log: Vec::new(),
            integrity_log_dropped: 0,
        })
    }

    /// A register driver bound to the managed device.
    pub fn hc(&self) -> HcDriver<'_> {
        HcDriver::probe(&self.bus, self.hc_base).expect("validated at construction")
    }

    /// Creates a new domain and returns its ID.
    pub fn create_domain(&mut self, name: impl Into<String>, criticality: Criticality) -> DomainId {
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(Domain::new(id, name, criticality));
        id
    }

    /// The domain table.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Looks up a domain.
    pub fn domain(&self, id: DomainId) -> Result<&Domain, HvError> {
        self.domains
            .get(id.0 as usize)
            .ok_or(HvError::UnknownDomain(id))
    }

    fn domain_mut(&mut self, id: DomainId) -> Result<&mut Domain, HvError> {
        self.domains
            .get_mut(id.0 as usize)
            .ok_or(HvError::UnknownDomain(id))
    }

    /// Assigns interconnect port `port` to `domain` (each port belongs
    /// to exactly one domain — the isolation granted via standard memory
    /// virtualization in the paper's framework).
    pub fn assign_port(&mut self, domain: DomainId, port: PortId) -> Result<(), HvError> {
        if self.port_owner.contains_key(&port.0) {
            return Err(HvError::PortTaken(port));
        }
        self.domain_mut(domain)?.assign(port);
        self.port_owner.insert(port.0, domain);
        Ok(())
    }

    /// The domain owning `port`, if any.
    pub fn owner_of(&self, port: PortId) -> Option<DomainId> {
        self.port_owner.get(&port.0).copied()
    }

    /// Routes an accelerator-completion interrupt from `port` to its
    /// owning domain.
    ///
    /// # Errors
    ///
    /// [`HvError::UnassignedPort`] if no domain owns the port.
    pub fn route_irq(&mut self, port: PortId) -> Result<DomainId, HvError> {
        let owner = self.owner_of(port).ok_or(HvError::UnassignedPort(port))?;
        self.domain_mut(owner)?.raise_irq();
        Ok(owner)
    }

    /// Partitions bandwidth by percentage shares across ports (the
    /// paper's `HC-X-Y` configurations).
    pub fn set_bandwidth_shares(
        &self,
        shares_percent: &[u32],
        mem_first_word_latency: u64,
    ) -> Result<Vec<u32>, HvError> {
        Ok(self
            .hc()
            .set_bandwidth_shares(shares_percent, mem_first_word_latency)?)
    }

    /// Installs a health-monitoring policy for a port.
    pub fn set_monitor_policy(&mut self, port: PortId, policy: MonitorPolicy) {
        self.policies.insert(port.0, policy);
        self.monitor.entry(port.0).or_default();
    }

    /// Polls the per-period transaction counters and decouples any port
    /// that exceeded its declared budget for more than the allowed
    /// number of consecutive polls. Returns the ports decoupled by this
    /// poll. Intended to be called once per reservation period.
    pub fn poll_health(&mut self) -> Result<Vec<DecoupleEvent>, HvError> {
        let mut events = Vec::new();
        let mut ports: Vec<usize> = self.policies.keys().copied().collect();
        ports.sort_unstable();
        for p in ports {
            let policy = self.policies[&p];
            if self.monitor.get(&p).is_some_and(|s| s.decoupled_by_monitor) {
                // The flag says we decoupled this port, but the device
                // may have been recoupled behind our back (e.g. via
                // `HcDriver::set_decoupled(p, false)`). Re-arm the
                // monitor instead of skipping the port forever on
                // stale state.
                if self.hc().is_decoupled(p)? {
                    continue;
                }
                self.monitor.insert(p, MonitorState::default());
            }
            let observed = self.hc().txns_this_period(p)?;
            let violating = observed > policy.declared_txns_per_period;
            let violations = {
                let state = self.monitor.entry(p).or_default();
                if violating {
                    state.consecutive_violations += 1;
                } else {
                    state.consecutive_violations = 0;
                }
                state.consecutive_violations
            };
            if violating && violations > policy.violations_allowed {
                self.hc().set_decoupled(p, true)?;
                self.monitor
                    .get_mut(&p)
                    .expect("inserted above")
                    .decoupled_by_monitor = true;
                let event = DecoupleEvent {
                    port: PortId(p),
                    observed,
                    declared: policy.declared_txns_per_period,
                };
                push_capped(
                    &mut self.decouple_log,
                    &mut self.decouple_log_dropped,
                    event.clone(),
                );
                events.push(event);
            }
        }
        Ok(events)
    }

    /// The most recent decoupling events (at most
    /// [`HEALTH_LOG_CAPACITY`]).
    pub fn decouple_log(&self) -> &[DecoupleEvent] {
        &self.decouple_log
    }

    /// Decoupling events discarded because the log was full.
    pub fn decouple_log_dropped(&self) -> u64 {
        self.decouple_log_dropped
    }

    /// Installs a watchdog policy for a port.
    pub fn set_watchdog_policy(&mut self, port: PortId, policy: WatchdogPolicy) {
        self.watchdog_policies.insert(port.0, policy);
        self.watchdog.entry(port.0).or_default();
    }

    /// Polls the violation and outstanding counters of every watched
    /// port and decouples any port over its [`WatchdogPolicy`]
    /// thresholds. Returns the ports decoupled by this poll.
    ///
    /// Unlike [`Hypervisor::poll_health`] (periodic, bandwidth-oriented)
    /// this can be called at any rate; a port is decoupled at the first
    /// poll that observes it over threshold.
    pub fn poll_watchdog(&mut self) -> Result<Vec<WatchdogEvent>, HvError> {
        let mut events = Vec::new();
        let mut ports: Vec<usize> = self.watchdog_policies.keys().copied().collect();
        ports.sort_unstable();
        for p in ports {
            let policy = self.watchdog_policies[&p];
            if self
                .watchdog
                .get(&p)
                .is_some_and(|s| s.decoupled_by_watchdog)
            {
                // Same stale-state hazard as the health monitor: if the
                // device was recoupled directly, re-arm rather than
                // skipping the port forever.
                if self.hc().is_decoupled(p)? {
                    continue;
                }
                self.rearm_watchdog(p)?;
            }
            let violations = self.hc().violations(p)?;
            let outstanding = self.hc().outstanding(p)?;
            let txns_total = self.hc().txns_total(p)?;
            let (stall_tripped, baseline) = {
                let state = self.watchdog.entry(p).or_default();
                let frozen =
                    outstanding > 0 && state.last_progress == Some((txns_total, outstanding));
                if frozen {
                    state.stalled_polls += 1;
                } else {
                    state.stalled_polls = 0;
                }
                state.last_progress = Some((txns_total, outstanding));
                let over = policy
                    .stall_polls_allowed
                    .is_some_and(|cap| state.stalled_polls > cap);
                (over, state.violations_baseline)
            };
            let reason = if violations.saturating_sub(baseline) > policy.violations_allowed {
                Some(WatchdogReason::Violations)
            } else if policy
                .outstanding_allowed
                .is_some_and(|cap| outstanding > cap)
            {
                Some(WatchdogReason::Outstanding)
            } else if stall_tripped {
                Some(WatchdogReason::Stalled)
            } else {
                None
            };
            if let Some(reason) = reason {
                self.hc().set_decoupled(p, true)?;
                self.watchdog.entry(p).or_default().decoupled_by_watchdog = true;
                let event = WatchdogEvent {
                    port: PortId(p),
                    reason,
                    violations,
                    outstanding,
                };
                push_capped(
                    &mut self.watchdog_log,
                    &mut self.watchdog_log_dropped,
                    event.clone(),
                );
                events.push(event);
            }
        }
        Ok(events)
    }

    /// Resets a port's watchdog state, rebasing the cumulative
    /// violation counter at its current value so pre-recovery history
    /// does not immediately re-trip the watchdog.
    fn rearm_watchdog(&mut self, p: usize) -> Result<(), HvError> {
        let baseline = self.hc().violations(p)?;
        self.watchdog.insert(
            p,
            WatchdogState {
                violations_baseline: baseline,
                ..WatchdogState::default()
            },
        );
        Ok(())
    }

    /// The most recent watchdog decoupling events (at most
    /// [`HEALTH_LOG_CAPACITY`]).
    pub fn watchdog_log(&self) -> &[WatchdogEvent] {
        &self.watchdog_log
    }

    /// Watchdog events discarded because the log was full.
    pub fn watchdog_log_dropped(&self) -> u64 {
        self.watchdog_log_dropped
    }

    /// Installs (or re-arms) a data-integrity policy for a port,
    /// rebasing the cumulative `ERR_TOTAL` counter at its current value
    /// so pre-existing history does not immediately fire.
    ///
    /// # Errors
    ///
    /// Propagates register-read failures from the baseline capture.
    pub fn set_integrity_policy(
        &mut self,
        port: PortId,
        policy: IntegrityPolicy,
    ) -> Result<(), HvError> {
        let baseline = self.hc().err_total(port.0)?;
        self.integrity_policies.insert(port.0, policy);
        self.integrity.insert(
            port.0,
            IntegrityState {
                errors_baseline: baseline,
                flagged: false,
            },
        );
        Ok(())
    }

    /// Polls the `ERR_TOTAL` health register of every integrity-watched
    /// port and returns an event for each port whose error count
    /// crossed its threshold since the policy was armed. Each crossing
    /// fires exactly once (latched until the policy is re-armed with
    /// [`Hypervisor::set_integrity_policy`] — typically after the
    /// platform layer quarantined the sick region).
    pub fn poll_integrity(&mut self) -> Result<Vec<IntegrityEvent>, HvError> {
        let mut events = Vec::new();
        let mut ports: Vec<usize> = self.integrity_policies.keys().copied().collect();
        ports.sort_unstable();
        for p in ports {
            let policy = self.integrity_policies[&p];
            if self.integrity.get(&p).is_some_and(|s| s.flagged) {
                continue;
            }
            let err_total = self.hc().err_total(p)?;
            let state = self.integrity.entry(p).or_default();
            if err_total.saturating_sub(state.errors_baseline) > policy.errors_allowed {
                state.flagged = true;
                let event = IntegrityEvent {
                    port: PortId(p),
                    err_total,
                    errors_allowed: policy.errors_allowed,
                };
                push_capped(
                    &mut self.integrity_log,
                    &mut self.integrity_log_dropped,
                    event,
                );
                events.push(event);
            }
        }
        Ok(events)
    }

    /// The most recent integrity events (at most [`HEALTH_LOG_CAPACITY`]).
    pub fn integrity_log(&self) -> &[IntegrityEvent] {
        &self.integrity_log
    }

    /// Integrity events discarded because the log was full.
    pub fn integrity_log_dropped(&self) -> u64 {
        self.integrity_log_dropped
    }

    /// Manually recouples a port (e.g. after the offending domain was
    /// restarted) and clears its monitor and watchdog state.
    ///
    /// The interconnect's violation counter is cumulative since reset,
    /// so the watchdog's baseline is rebased at the current reading —
    /// only *new* violations count against the recoupled port.
    pub fn recouple(&mut self, port: PortId) -> Result<(), HvError> {
        self.hc().set_decoupled(port.0, false)?;
        self.monitor.insert(port.0, MonitorState::default());
        self.rearm_watchdog(port.0)?;
        Ok(())
    }

    /// Installs a recovery policy for a port, arming the
    /// [`RecoveryState`] machine driven by
    /// [`Hypervisor::poll_recovery`].
    pub fn set_recovery_policy(&mut self, port: PortId, policy: RecoveryPolicy) {
        self.recovery_policies.insert(port.0, policy);
        self.recovery.entry(port.0).or_default();
    }

    /// Current recovery state of a port (if a policy is installed).
    pub fn recovery_state(&self, port: PortId) -> Option<RecoveryState> {
        self.recovery.get(&port.0).map(|s| s.state)
    }

    /// Failed recovery attempts recorded for a port so far.
    pub fn failed_recoveries(&self, port: PortId) -> u32 {
        self.recovery
            .get(&port.0)
            .map_or(0, |s| s.failed_recoveries)
    }

    /// The most recent recovery transitions (at most
    /// [`HEALTH_LOG_CAPACITY`]).
    pub fn recovery_log(&self) -> &[RecoveryTransition] {
        &self.recovery_log
    }

    /// Recovery transitions discarded because the log was full.
    pub fn recovery_log_dropped(&self) -> u64 {
        self.recovery_log_dropped
    }

    /// Whether a port's health signals look bad *right now*: it was
    /// decoupled by the monitor or watchdog, or violations / stall
    /// polls are accumulating toward a threshold.
    fn port_suspect_signals(&self, p: usize) -> (bool, bool) {
        let hard = self.monitor.get(&p).is_some_and(|s| s.decoupled_by_monitor)
            || self
                .watchdog
                .get(&p)
                .is_some_and(|s| s.decoupled_by_watchdog);
        let soft = self
            .monitor
            .get(&p)
            .is_some_and(|s| s.consecutive_violations > 0)
            || self.watchdog.get(&p).is_some_and(|s| s.stalled_polls > 0);
        (hard, soft)
    }

    /// One tick of the recovery state machine, intended to run once per
    /// reservation period *after* [`Hypervisor::poll_health`] and
    /// [`Hypervisor::poll_watchdog`] (this method calls both itself, so
    /// a caller using `poll_recovery` alone gets the full pipeline).
    ///
    /// Escalation ladder per port with a [`RecoveryPolicy`]:
    ///
    /// 1. `Healthy → Suspect` on accumulating-but-subcritical signals:
    ///    the budget is throttled while the hypervisor watches.
    /// 2. `Healthy/Suspect → Draining` once the port is decoupled by
    ///    the monitor or watchdog (or stays suspect too long): a
    ///    quiescent drain lets in-flight work finish; the device
    ///    force-flushes at the drain deadline if it does not.
    /// 3. `Draining → Decoupled` when the status word reports drained
    ///    or force-flushed; the reattach backoff (exponential in the
    ///    number of failed recoveries) elapses here.
    /// 4. `Decoupled → Resetting` issues [`HcDriver::reset_port`]. The
    ///    transition is the caller's cue to reset the accelerator
    ///    itself (PL reset line / bitstream swap, outside this model).
    /// 5. `Resetting → Probation` after `reset_polls`: the port is
    ///    reattached with monitor and watchdog state re-armed.
    /// 6. `Probation → Healthy` after `probation_polls` clean polls, or
    ///    back to `Draining` on renewed misbehavior — after
    ///    `max_recoveries` failures the port is `Quarantined` for good.
    pub fn poll_recovery(&mut self) -> Result<Vec<RecoveryTransition>, HvError> {
        self.poll_health()?;
        self.poll_watchdog()?;
        let mut transitions = Vec::new();
        let mut ports: Vec<usize> = self.recovery_policies.keys().copied().collect();
        ports.sort_unstable();
        for p in ports {
            let policy = self.recovery_policies[&p];
            let (hard, soft) = self.port_suspect_signals(p);
            let state = *self.recovery.entry(p).or_default();
            let mut next = state;
            let mut dropped = 0;
            match state.state {
                RecoveryState::Healthy => {
                    if hard {
                        self.hc().request_quiesce(p)?;
                        next.state = RecoveryState::Draining;
                    } else if soft {
                        next.saved_budget = self.hc().budget(p)?;
                        self.hc().set_budget(p, policy.throttle_budget)?;
                        next.state = RecoveryState::Suspect;
                        next.polls_in_state = 0;
                    }
                }
                RecoveryState::Suspect => {
                    next.polls_in_state += 1;
                    if hard || next.polls_in_state > policy.suspect_polls {
                        self.hc().set_budget(p, state.saved_budget)?;
                        self.hc().request_quiesce(p)?;
                        next.state = RecoveryState::Draining;
                    } else if !soft {
                        self.hc().set_budget(p, state.saved_budget)?;
                        next.state = RecoveryState::Healthy;
                    }
                }
                RecoveryState::Draining => {
                    let status = self.hc().quiesce_status(p)?;
                    if status.drained || status.force_flushed {
                        dropped = status.dropped_txns;
                        self.hc().set_decoupled(p, true)?;
                        next.state = RecoveryState::Decoupled;
                        next.backoff_left = (policy.backoff_base
                            << state.failed_recoveries.min(16))
                        .min(policy.backoff_cap);
                    }
                }
                RecoveryState::Decoupled => {
                    if state.backoff_left > 0 {
                        next.backoff_left = state.backoff_left - 1;
                    } else {
                        self.hc().reset_port(p)?;
                        next.state = RecoveryState::Resetting;
                        next.polls_in_state = 0;
                    }
                }
                RecoveryState::Resetting => {
                    next.polls_in_state += 1;
                    if next.polls_in_state >= policy.reset_polls {
                        self.hc().reattach_port(p)?;
                        self.monitor.insert(p, MonitorState::default());
                        self.rearm_watchdog(p)?;
                        next.state = RecoveryState::Probation;
                        next.polls_in_state = 0;
                    }
                }
                RecoveryState::Probation => {
                    if hard || soft {
                        next.failed_recoveries = state.failed_recoveries + 1;
                        if next.failed_recoveries >= policy.max_recoveries {
                            self.hc().set_decoupled(p, true)?;
                            next.state = RecoveryState::Quarantined;
                        } else {
                            self.hc().request_quiesce(p)?;
                            next.state = RecoveryState::Draining;
                        }
                    } else {
                        next.polls_in_state += 1;
                        if next.polls_in_state >= policy.probation_polls {
                            next.state = RecoveryState::Healthy;
                            next.failed_recoveries = 0;
                        }
                    }
                }
                RecoveryState::Quarantined => {}
            }
            if next.state != state.state {
                let transition = RecoveryTransition {
                    port: PortId(p),
                    from: state.state,
                    to: next.state,
                    dropped_txns: dropped,
                };
                push_capped(
                    &mut self.recovery_log,
                    &mut self.recovery_log_dropped,
                    transition,
                );
                transitions.push(transition);
                next.polls_in_state = 0;
            }
            self.recovery.insert(p, next);
        }
        Ok(transitions)
    }
}

mod persist_impls {
    use super::*;
    use sim::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};

    impl PersistValue for MonitorPolicy {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u32(self.declared_txns_per_period);
            w.put_u32(self.violations_allowed);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                declared_txns_per_period: r.take_u32()?,
                violations_allowed: r.take_u32()?,
            })
        }
    }

    impl PersistValue for MonitorState {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u32(self.consecutive_violations);
            w.put_bool(self.decoupled_by_monitor);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                consecutive_violations: r.take_u32()?,
                decoupled_by_monitor: r.take_bool()?,
            })
        }
    }

    impl PersistValue for WatchdogPolicy {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u32(self.violations_allowed);
            self.outstanding_allowed.save_value(w);
            self.stall_polls_allowed.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                violations_allowed: r.take_u32()?,
                outstanding_allowed: Option::load_value(r)?,
                stall_polls_allowed: Option::load_value(r)?,
            })
        }
    }

    impl PersistValue for WatchdogState {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_bool(self.decoupled_by_watchdog);
            w.put_u32(self.violations_baseline);
            self.last_progress.save_value(w);
            w.put_u32(self.stalled_polls);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                decoupled_by_watchdog: r.take_bool()?,
                violations_baseline: r.take_u32()?,
                last_progress: Option::load_value(r)?,
                stalled_polls: r.take_u32()?,
            })
        }
    }

    /// Watchdog-reason wire codes (append-only): array index = wire byte.
    const WATCHDOG_REASONS: [WatchdogReason; 3] = [
        WatchdogReason::Violations,
        WatchdogReason::Outstanding,
        WatchdogReason::Stalled,
    ];

    impl PersistValue for WatchdogReason {
        fn save_value(&self, w: &mut SnapshotWriter) {
            let code = WATCHDOG_REASONS
                .iter()
                .position(|x| x == self)
                .expect("reason in table");
            w.put_u8(code as u8);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            let code = r.take_u8()? as usize;
            WATCHDOG_REASONS
                .get(code)
                .copied()
                .ok_or(PersistError::Corrupt("unknown watchdog reason"))
        }
    }

    impl PersistValue for WatchdogEvent {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.port.save_value(w);
            self.reason.save_value(w);
            w.put_u32(self.violations);
            w.put_u32(self.outstanding);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                port: PortId::load_value(r)?,
                reason: WatchdogReason::load_value(r)?,
                violations: r.take_u32()?,
                outstanding: r.take_u32()?,
            })
        }
    }

    impl PersistValue for DecoupleEvent {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.port.save_value(w);
            w.put_u32(self.observed);
            w.put_u32(self.declared);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                port: PortId::load_value(r)?,
                observed: r.take_u32()?,
                declared: r.take_u32()?,
            })
        }
    }

    /// Recovery-state wire codes (append-only): array index = wire byte.
    const RECOVERY_STATES: [RecoveryState; 7] = [
        RecoveryState::Healthy,
        RecoveryState::Suspect,
        RecoveryState::Draining,
        RecoveryState::Decoupled,
        RecoveryState::Resetting,
        RecoveryState::Probation,
        RecoveryState::Quarantined,
    ];

    impl PersistValue for RecoveryState {
        fn save_value(&self, w: &mut SnapshotWriter) {
            let code = RECOVERY_STATES
                .iter()
                .position(|x| x == self)
                .expect("state in table");
            w.put_u8(code as u8);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            let code = r.take_u8()? as usize;
            RECOVERY_STATES
                .get(code)
                .copied()
                .ok_or(PersistError::Corrupt("unknown recovery state"))
        }
    }

    impl PersistValue for RecoveryPolicy {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u32(self.throttle_budget);
            w.put_u32(self.suspect_polls);
            w.put_u32(self.reset_polls);
            w.put_u32(self.probation_polls);
            w.put_u32(self.backoff_base);
            w.put_u32(self.backoff_cap);
            w.put_u32(self.max_recoveries);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                throttle_budget: r.take_u32()?,
                suspect_polls: r.take_u32()?,
                reset_polls: r.take_u32()?,
                probation_polls: r.take_u32()?,
                backoff_base: r.take_u32()?,
                backoff_cap: r.take_u32()?,
                max_recoveries: r.take_u32()?,
            })
        }
    }

    impl PersistValue for RecoveryTransition {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.port.save_value(w);
            self.from.save_value(w);
            self.to.save_value(w);
            w.put_u32(self.dropped_txns);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                port: PortId::load_value(r)?,
                from: RecoveryState::load_value(r)?,
                to: RecoveryState::load_value(r)?,
                dropped_txns: r.take_u32()?,
            })
        }
    }

    impl PersistValue for RecoveryPortState {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.state.save_value(w);
            w.put_u32(self.polls_in_state);
            w.put_u32(self.failed_recoveries);
            w.put_u32(self.backoff_left);
            w.put_u32(self.saved_budget);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                state: RecoveryState::load_value(r)?,
                polls_in_state: r.take_u32()?,
                failed_recoveries: r.take_u32()?,
                backoff_left: r.take_u32()?,
                saved_budget: r.take_u32()?,
            })
        }
    }

    impl PersistValue for IntegrityPolicy {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u32(self.errors_allowed);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                errors_allowed: r.take_u32()?,
            })
        }
    }

    impl PersistValue for IntegrityState {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u32(self.errors_baseline);
            w.put_u8(u8::from(self.flagged));
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                errors_baseline: r.take_u32()?,
                flagged: r.take_u8()? != 0,
            })
        }
    }

    impl PersistValue for IntegrityEvent {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.port.save_value(w);
            w.put_u32(self.err_total);
            w.put_u32(self.errors_allowed);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                port: PortId::load_value(r)?,
                err_total: r.take_u32()?,
                errors_allowed: r.take_u32()?,
            })
        }
    }

    /// Serializes a port-keyed map sorted by port number, so the byte
    /// stream does not depend on hash-map iteration order.
    fn save_port_map<V: PersistValue>(map: &HashMap<usize, V>, w: &mut SnapshotWriter) {
        let mut keys: Vec<usize> = map.keys().copied().collect();
        keys.sort_unstable();
        w.put_usize(keys.len());
        for k in keys {
            w.put_usize(k);
            map[&k].save_value(w);
        }
    }

    fn load_port_map<V: PersistValue>(
        r: &mut SnapshotReader<'_>,
    ) -> Result<HashMap<usize, V>, PersistError> {
        let n = r.take_usize()?;
        if n > r.remaining() {
            return Err(PersistError::Corrupt("port map count exceeds stream"));
        }
        let mut map = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.take_usize()?;
            map.insert(k, V::load_value(r)?);
        }
        Ok(map)
    }

    impl Hypervisor {
        /// Serializes the hypervisor's software state: the domain table,
        /// port ownership, the monitor/watchdog/recovery policies and
        /// their per-port state, and the three bounded event logs with
        /// their dropped counters.
        ///
        /// The control bus and the managed device are *not* part of this
        /// stream — the HyperConnect persists its own register file, and
        /// the restored hypervisor keeps the bus it was constructed with.
        pub fn save_state(&self, w: &mut SnapshotWriter) {
            self.domains.save_value(w);
            save_port_map(&self.port_owner, w);
            save_port_map(&self.policies, w);
            save_port_map(&self.monitor, w);
            self.decouple_log.save_value(w);
            w.put_u64(self.decouple_log_dropped);
            save_port_map(&self.watchdog_policies, w);
            save_port_map(&self.watchdog, w);
            self.watchdog_log.save_value(w);
            w.put_u64(self.watchdog_log_dropped);
            save_port_map(&self.recovery_policies, w);
            save_port_map(&self.recovery, w);
            self.recovery_log.save_value(w);
            w.put_u64(self.recovery_log_dropped);
            save_port_map(&self.integrity_policies, w);
            save_port_map(&self.integrity, w);
            self.integrity_log.save_value(w);
            w.put_u64(self.integrity_log_dropped);
        }

        /// Restores state saved by [`Hypervisor::save_state`]. All
        /// fields decode before any of them are applied, so a corrupt
        /// stream leaves the hypervisor untouched.
        pub fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), PersistError> {
            let domains = Vec::load_value(r)?;
            let port_owner = load_port_map(r)?;
            let policies = load_port_map(r)?;
            let monitor = load_port_map(r)?;
            let decouple_log = Vec::load_value(r)?;
            let decouple_log_dropped = r.take_u64()?;
            let watchdog_policies = load_port_map(r)?;
            let watchdog = load_port_map(r)?;
            let watchdog_log = Vec::load_value(r)?;
            let watchdog_log_dropped = r.take_u64()?;
            let recovery_policies = load_port_map(r)?;
            let recovery = load_port_map(r)?;
            let recovery_log = Vec::load_value(r)?;
            let recovery_log_dropped = r.take_u64()?;
            let integrity_policies = load_port_map(r)?;
            let integrity = load_port_map(r)?;
            let integrity_log = Vec::load_value(r)?;
            let integrity_log_dropped = r.take_u64()?;
            self.domains = domains;
            self.port_owner = port_owner;
            self.policies = policies;
            self.monitor = monitor;
            self.decouple_log = decouple_log;
            self.decouple_log_dropped = decouple_log_dropped;
            self.watchdog_policies = watchdog_policies;
            self.watchdog = watchdog;
            self.watchdog_log = watchdog_log;
            self.watchdog_log_dropped = watchdog_log_dropped;
            self.recovery_policies = recovery_policies;
            self.recovery = recovery;
            self.recovery_log = recovery_log;
            self.recovery_log_dropped = recovery_log_dropped;
            self.integrity_policies = integrity_policies;
            self.integrity = integrity;
            self.integrity_log = integrity_log;
            self.integrity_log_dropped = integrity_log_dropped;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperconnect::{HcConfig, HyperConnect};

    const BASE: u64 = 0xA000_0000;

    fn hypervisor(n: usize) -> (Hypervisor, HyperConnect) {
        let hc = HyperConnect::new(HcConfig::new(n));
        let mut bus = LiteBus::new();
        bus.map(BASE, 0x1000, hc.regs().clone());
        (Hypervisor::new(bus, BASE).unwrap(), hc)
    }

    #[test]
    fn construction_probes_device() {
        let bus = LiteBus::new();
        assert!(matches!(
            Hypervisor::new(bus, BASE),
            Err(HvError::Driver(_))
        ));
    }

    #[test]
    fn domain_and_port_assignment() {
        let (mut hv, _hc) = hypervisor(2);
        let crit = hv.create_domain("vision", Criticality::Safety);
        let best = hv.create_domain("logging", Criticality::BestEffort);
        hv.assign_port(crit, PortId(0)).unwrap();
        hv.assign_port(best, PortId(1)).unwrap();
        assert_eq!(hv.owner_of(PortId(0)), Some(crit));
        assert_eq!(
            hv.assign_port(best, PortId(0)).unwrap_err(),
            HvError::PortTaken(PortId(0))
        );
        assert_eq!(hv.domains().len(), 2);
        assert!(hv.domain(crit).unwrap().owns(PortId(0)));
        assert!(matches!(
            hv.domain(DomainId(9)),
            Err(HvError::UnknownDomain(_))
        ));
    }

    #[test]
    fn irq_routing() {
        let (mut hv, _hc) = hypervisor(2);
        let d = hv.create_domain("vm", Criticality::Mission);
        hv.assign_port(d, PortId(1)).unwrap();
        assert_eq!(hv.route_irq(PortId(1)).unwrap(), d);
        assert_eq!(hv.domain(d).unwrap().total_irqs(), 1);
        assert_eq!(
            hv.route_irq(PortId(0)).unwrap_err(),
            HvError::UnassignedPort(PortId(0))
        );
    }

    #[test]
    fn bandwidth_shares_reach_device() {
        let (hv, _hc) = hypervisor(2);
        hv.hc().set_period(16_022).unwrap();
        let budgets = hv.set_bandwidth_shares(&[70, 30], 22).unwrap();
        assert_eq!(budgets, vec![700, 300]);
        assert_eq!(hv.hc().budget(0).unwrap(), 700);
    }

    #[test]
    fn health_monitor_decouples_after_tolerance() {
        let (mut hv, mut hc) = hypervisor(2);
        hv.set_monitor_policy(
            PortId(0),
            MonitorPolicy {
                declared_txns_per_period: 10,
                violations_allowed: 1,
            },
        );
        // Make the device report a violating counter: issue real traffic.
        use axi::types::BurstSize;
        use axi::{ArBeat, AxiInterconnect};
        use sim::Component;
        // Raise the outstanding limit so all 16 sub-transactions issue
        // without waiting for read data (none is returned here).
        hv.hc().set_max_outstanding(0, 64).unwrap();
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4)) // 16 subs > 10
            .unwrap();
        for now in 0..80 {
            hc.tick(now);
            while hc.mem_port().ar.pop_ready(now).is_some() {}
        }
        // First poll: violation 1 (tolerated).
        assert!(hv.poll_health().unwrap().is_empty());
        // Second poll: violation 2 > allowed 1 -> decouple.
        let events = hv.poll_health().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].port, PortId(0));
        assert!(hv.hc().is_decoupled(0).unwrap());
        assert_eq!(hv.decouple_log().len(), 1);
        // Already-decoupled ports are not re-reported.
        assert!(hv.poll_health().unwrap().is_empty());
        // Recoupling clears state.
        hv.recouple(PortId(0)).unwrap();
        assert!(!hv.hc().is_decoupled(0).unwrap());
    }

    /// Issues one read on port 0 and answers it from the memory side
    /// with the given response, ticking until the counters settle.
    fn run_errored_read(hc: &mut HyperConnect, resp: axi::types::Resp) {
        use axi::types::{AxiId, BurstSize};
        use axi::{ArBeat, AxiInterconnect, RBeat};
        use sim::Component;

        hc.port(0)
            .ar
            .push(0, ArBeat::new(0x100, 1, BurstSize::B4))
            .unwrap();
        for now in 0..6 {
            hc.tick(now);
            hc.mem_port().ar.pop_ready(now);
        }
        hc.mem_port()
            .r
            .push(6, RBeat::new(AxiId(0), vec![0; 4], true).with_resp(resp))
            .unwrap();
        for now in 6..20 {
            hc.tick(now);
            hc.port(0).r.pop_ready(now);
        }
    }

    #[test]
    fn integrity_monitor_fires_once_past_the_threshold() {
        use axi::types::Resp;

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_integrity_policy(PortId(0), IntegrityPolicy { errors_allowed: 1 })
            .unwrap();
        // One error: within tolerance.
        run_errored_read(&mut hc, Resp::SlvErr);
        assert!(hv.poll_integrity().unwrap().is_empty());
        // Second error crosses the threshold and latches.
        run_errored_read(&mut hc, Resp::SlvErr);
        let events = hv.poll_integrity().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].port, PortId(0));
        assert_eq!(events[0].err_total, 2);
        assert_eq!(events[0].errors_allowed, 1);
        assert_eq!(hv.integrity_log().len(), 1);
        assert_eq!(hv.integrity_log_dropped(), 0);
        // Latched: more errors do not re-fire until re-armed.
        run_errored_read(&mut hc, Resp::SlvErr);
        assert!(hv.poll_integrity().unwrap().is_empty());
        // Re-arming rebases at the current count.
        hv.set_integrity_policy(PortId(0), IntegrityPolicy { errors_allowed: 1 })
            .unwrap();
        assert!(hv.poll_integrity().unwrap().is_empty());
    }

    #[test]
    fn integrity_policy_rebases_on_preexisting_errors() {
        use axi::types::Resp;

        let (mut hv, mut hc) = hypervisor(2);
        // History that predates the policy must not count against it.
        run_errored_read(&mut hc, Resp::SlvErr);
        run_errored_read(&mut hc, Resp::SlvErr);
        hv.set_integrity_policy(PortId(0), IntegrityPolicy::default())
            .unwrap();
        assert!(hv.poll_integrity().unwrap().is_empty());
        // The default policy tolerates zero *new* errors.
        run_errored_read(&mut hc, Resp::SlvErr);
        assert_eq!(hv.poll_integrity().unwrap().len(), 1);
    }

    #[test]
    fn integrity_state_round_trips_through_snapshots() {
        use axi::types::Resp;
        use sim::persist::{SnapshotReader, SnapshotWriter};

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_integrity_policy(PortId(0), IntegrityPolicy::default())
            .unwrap();
        run_errored_read(&mut hc, Resp::SlvErr);
        assert_eq!(hv.poll_integrity().unwrap().len(), 1);

        let mut w = SnapshotWriter::new();
        hv.save_state(&mut w);
        let bytes = w.into_bytes();

        let (mut hv2, _hc2) = hypervisor(2);
        let mut r = SnapshotReader::new(&bytes);
        hv2.restore_state(&mut r).unwrap();
        assert_eq!(hv2.integrity_log(), hv.integrity_log());
        assert_eq!(hv2.integrity_log_dropped(), hv.integrity_log_dropped());
        // The latch survived the snapshot: no duplicate event.
        assert!(hv2.poll_integrity().unwrap().is_empty());

        let mut w2 = SnapshotWriter::new();
        hv2.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn well_behaved_port_never_decoupled() {
        let (mut hv, _hc) = hypervisor(2);
        hv.set_monitor_policy(
            PortId(1),
            MonitorPolicy {
                declared_txns_per_period: 100,
                violations_allowed: 0,
            },
        );
        for _ in 0..10 {
            assert!(hv.poll_health().unwrap().is_empty());
        }
    }

    #[test]
    fn watchdog_decouples_on_violations() {
        use axi::types::BurstSize;
        use axi::{AwBeat, AxiInterconnect, WBeat};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_watchdog_policy(
            PortId(0),
            WatchdogPolicy {
                violations_allowed: 0,
                outstanding_allowed: None,
                stall_polls_allowed: None,
            },
        );
        // Clean device: nothing trips.
        assert!(hv.poll_watchdog().unwrap().is_empty());
        // Port 0 corrupts WLAST on a 4-beat write.
        hc.port(0)
            .aw
            .push(0, AwBeat::new(0x0, 4, BurstSize::B4))
            .unwrap();
        for i in 0..4u32 {
            hc.port(0)
                .w
                .push(0, WBeat::new(vec![0; 4], i == 1))
                .unwrap();
        }
        for now in 0..20 {
            hc.tick(now);
        }
        let events = hv.poll_watchdog().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].port, PortId(0));
        assert_eq!(events[0].reason, WatchdogReason::Violations);
        assert!(events[0].violations > 0);
        assert!(hv.hc().is_decoupled(0).unwrap());
        assert_eq!(hv.watchdog_log().len(), 1);
        // Already decoupled: no duplicate reports.
        assert!(hv.poll_watchdog().unwrap().is_empty());
    }

    #[test]
    fn watchdog_decouples_on_outstanding_cap() {
        use axi::types::BurstSize;
        use axi::{ArBeat, AxiInterconnect};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_watchdog_policy(
            PortId(0),
            WatchdogPolicy {
                violations_allowed: u32::MAX,
                outstanding_allowed: Some(2),
                stall_polls_allowed: None,
            },
        );
        hv.hc().set_max_outstanding(0, 64).unwrap();
        // A long read issues many subs; no data returns, so the
        // in-flight count climbs past the declared cap.
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4))
            .unwrap();
        for now in 0..40 {
            hc.tick(now);
            while hc.mem_port().ar.pop_ready(now).is_some() {}
        }
        let events = hv.poll_watchdog().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].reason, WatchdogReason::Outstanding);
        assert!(events[0].outstanding > 2);
        assert!(hv.hc().is_decoupled(0).unwrap());
    }

    #[test]
    fn recouple_clears_watchdog_state() {
        let (mut hv, _hc) = hypervisor(2);
        hv.set_watchdog_policy(
            PortId(1),
            WatchdogPolicy {
                violations_allowed: 5,
                outstanding_allowed: Some(8),
                stall_polls_allowed: None,
            },
        );
        assert!(hv.poll_watchdog().unwrap().is_empty());
        hv.recouple(PortId(1)).unwrap();
        assert!(hv.poll_watchdog().unwrap().is_empty());
    }

    #[test]
    fn watchdog_detects_forward_progress_stall() {
        use axi::types::BurstSize;
        use axi::{AwBeat, AxiInterconnect};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_watchdog_policy(
            PortId(0),
            WatchdogPolicy {
                stall_polls_allowed: Some(2),
                ..WatchdogPolicy::default()
            },
        );
        // A stuck-valid writer: posts an address, never drives data, so
        // the staged sub-transaction sits with frozen counters.
        hc.port(0)
            .aw
            .push(0, AwBeat::new(0x0, 4, BurstSize::B4))
            .unwrap();
        for now in 0..20 {
            hc.tick(now);
        }
        // Poll 1 records the fingerprint; polls 2-3 count frozen ones.
        for _ in 0..3 {
            assert!(hv.poll_watchdog().unwrap().is_empty());
        }
        let events = hv.poll_watchdog().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].reason, WatchdogReason::Stalled);
        assert!(events[0].outstanding > 0);
        assert!(hv.hc().is_decoupled(0).unwrap());
    }

    #[test]
    fn device_level_recouple_rearms_health_monitor() {
        use axi::types::BurstSize;
        use axi::{ArBeat, AxiInterconnect};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_monitor_policy(
            PortId(0),
            MonitorPolicy {
                declared_txns_per_period: 10,
                violations_allowed: 1,
            },
        );
        hv.hc().set_max_outstanding(0, 64).unwrap();
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4))
            .unwrap();
        for now in 0..80 {
            hc.tick(now);
            while hc.mem_port().ar.pop_ready(now).is_some() {}
        }
        assert!(hv.poll_health().unwrap().is_empty());
        assert_eq!(hv.poll_health().unwrap().len(), 1);
        assert!(hv.hc().is_decoupled(0).unwrap());
        // Recouple directly at the device, bypassing
        // Hypervisor::recouple — the monitor state is now stale.
        hv.hc().set_decoupled(0, false).unwrap();
        // The next poll re-arms instead of skipping the port forever,
        // so the still-violating counter decouples it again after the
        // usual tolerance.
        assert!(hv.poll_health().unwrap().is_empty());
        let events = hv.poll_health().unwrap();
        assert_eq!(events.len(), 1);
        assert!(hv.hc().is_decoupled(0).unwrap());
        assert_eq!(hv.decouple_log().len(), 2);
    }

    #[test]
    fn device_level_recouple_rearms_watchdog_with_baseline() {
        use axi::types::BurstSize;
        use axi::{AwBeat, AxiInterconnect, WBeat};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_watchdog_policy(
            PortId(0),
            WatchdogPolicy {
                violations_allowed: 0,
                ..WatchdogPolicy::default()
            },
        );
        hc.port(0)
            .aw
            .push(0, AwBeat::new(0x0, 4, BurstSize::B4))
            .unwrap();
        for i in 0..4u32 {
            hc.port(0)
                .w
                .push(0, WBeat::new(vec![0; 4], i == 1))
                .unwrap();
        }
        for now in 0..20 {
            hc.tick(now);
        }
        assert_eq!(hv.poll_watchdog().unwrap().len(), 1);
        // Device-level recouple: the watchdog re-arms with the
        // cumulative violation counter rebased, so the old history does
        // not instantly re-trip it.
        hv.hc().set_decoupled(0, false).unwrap();
        assert!(hv.poll_watchdog().unwrap().is_empty());
        assert!(!hv.hc().is_decoupled(0).unwrap());
    }

    #[test]
    fn watchdog_log_is_bounded() {
        use axi::types::BurstSize;
        use axi::{ArBeat, AxiInterconnect};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_watchdog_policy(
            PortId(0),
            WatchdogPolicy {
                outstanding_allowed: Some(0),
                ..WatchdogPolicy::default()
            },
        );
        hv.hc().set_max_outstanding(0, 64).unwrap();
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4))
            .unwrap();
        for now in 0..40 {
            hc.tick(now);
            while hc.mem_port().ar.pop_ready(now).is_some() {}
        }
        // The outstanding count stays over the cap, so every
        // poll/recouple round logs one more event.
        for _ in 0..(HEALTH_LOG_CAPACITY + 10) {
            assert_eq!(hv.poll_watchdog().unwrap().len(), 1);
            hv.recouple(PortId(0)).unwrap();
        }
        assert_eq!(hv.watchdog_log().len(), HEALTH_LOG_CAPACITY);
        assert_eq!(hv.watchdog_log_dropped(), 10);
        assert_eq!(hv.decouple_log_dropped(), 0);
    }

    #[test]
    fn recovery_throttles_suspect_ports_then_escalates() {
        use axi::types::BurstSize;
        use axi::{ArBeat, AxiInterconnect};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        // High tolerance: the monitor signals violations but does not
        // decouple on its own, leaving escalation to poll_recovery.
        hv.set_monitor_policy(
            PortId(0),
            MonitorPolicy {
                declared_txns_per_period: 10,
                violations_allowed: 100,
            },
        );
        hv.set_recovery_policy(
            PortId(0),
            RecoveryPolicy {
                suspect_polls: 1,
                ..RecoveryPolicy::default()
            },
        );
        hv.hc().set_budget(0, 500).unwrap();
        hv.hc().set_max_outstanding(0, 64).unwrap();
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4))
            .unwrap();
        for now in 0..80 {
            hc.tick(now);
            while hc.mem_port().ar.pop_ready(now).is_some() {}
        }
        // Poll 1: violation signal -> Suspect with throttled budget.
        let t = hv.poll_recovery().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].from, RecoveryState::Healthy);
        assert_eq!(t[0].to, RecoveryState::Suspect);
        assert_eq!(hv.hc().budget(0).unwrap(), 1);
        // Poll 2: still violating, within suspect tolerance.
        assert!(hv.poll_recovery().unwrap().is_empty());
        assert_eq!(hv.recovery_state(PortId(0)), Some(RecoveryState::Suspect));
        // Poll 3: escalate to a drain; the budget is restored first.
        let t = hv.poll_recovery().unwrap();
        assert_eq!(t[0].to, RecoveryState::Draining);
        assert_eq!(hv.hc().budget(0).unwrap(), 500);
    }

    #[test]
    fn recovery_walks_drain_reset_reattach_to_healthy() {
        use axi::types::BurstSize;
        use axi::{AwBeat, AxiInterconnect};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_watchdog_policy(
            PortId(0),
            WatchdogPolicy {
                stall_polls_allowed: Some(0),
                ..WatchdogPolicy::default()
            },
        );
        hv.set_recovery_policy(
            PortId(0),
            RecoveryPolicy {
                reset_polls: 1,
                probation_polls: 2,
                backoff_base: 0,
                backoff_cap: 0,
                ..RecoveryPolicy::default()
            },
        );
        // Stuck-valid writer: the staged AW never gets its data.
        hc.port(0)
            .aw
            .push(0, AwBeat::new(0x0, 4, BurstSize::B4))
            .unwrap();
        for now in 0..20 {
            hc.tick(now);
        }
        // Poll 1 records the progress fingerprint.
        assert!(hv.poll_recovery().unwrap().is_empty());
        // Poll 2: frozen counters with outstanding work -> stall ->
        // the port decouples and a drain starts.
        let t = hv.poll_recovery().unwrap();
        assert_eq!(t[0].from, RecoveryState::Healthy);
        assert_eq!(t[0].to, RecoveryState::Draining);
        assert_eq!(hv.watchdog_log()[0].reason, WatchdogReason::Stalled);
        // The watchdog decoupled the port, so the granted-but-starved
        // write completes through firewall-beat synthesis (memory side
        // serviced below). The accelerator still owes the TS its W
        // beats, though, so the drain can only finish when the
        // deadline blows and force-flushes that dead bookkeeping — no
        // staged sub-transactions are dropped in the process.
        let mut pending_b = 0u32;
        for now in 20..4000 {
            hc.tick(now);
            while hc.mem_port().aw.pop_ready(now).is_some() {}
            while let Some(w) = hc.mem_port().w.pop_ready(now) {
                if w.last {
                    pending_b += 1;
                }
            }
            while pending_b > 0 {
                hc.mem_port()
                    .b
                    .push(now, axi::BBeat::new(axi::types::AxiId(0)))
                    .unwrap();
                pending_b -= 1;
            }
        }
        let t = hv.poll_recovery().unwrap();
        assert_eq!(t[0].to, RecoveryState::Decoupled);
        assert_eq!(t[0].dropped_txns, 0);
        // Zero backoff: the next poll issues the reset.
        assert_eq!(hv.poll_recovery().unwrap()[0].to, RecoveryState::Resetting);
        // Reset done: reattach into probation, recoupled.
        let t = hv.poll_recovery().unwrap();
        assert_eq!(t[0].to, RecoveryState::Probation);
        assert!(!hv.hc().is_decoupled(0).unwrap());
        // Two clean polls bring it back to healthy.
        assert!(hv.poll_recovery().unwrap().is_empty());
        let t = hv.poll_recovery().unwrap();
        assert_eq!(t[0].to, RecoveryState::Healthy);
        assert_eq!(hv.recovery_state(PortId(0)), Some(RecoveryState::Healthy));
        assert_eq!(hv.failed_recoveries(PortId(0)), 0);
        assert_eq!(hv.recovery_log().len(), 5);
    }

    #[test]
    fn repeated_failures_quarantine_the_port() {
        use axi::types::BurstSize;
        use axi::{AwBeat, AxiInterconnect};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_watchdog_policy(
            PortId(0),
            WatchdogPolicy {
                stall_polls_allowed: Some(0),
                ..WatchdogPolicy::default()
            },
        );
        hv.set_recovery_policy(
            PortId(0),
            RecoveryPolicy {
                reset_polls: 1,
                probation_polls: 4,
                backoff_base: 0,
                backoff_cap: 0,
                max_recoveries: 1,
                ..RecoveryPolicy::default()
            },
        );
        hc.port(0)
            .aw
            .push(0, AwBeat::new(0x0, 4, BurstSize::B4))
            .unwrap();
        for now in 0..20 {
            hc.tick(now);
        }
        assert!(hv.poll_recovery().unwrap().is_empty());
        assert_eq!(hv.poll_recovery().unwrap()[0].to, RecoveryState::Draining);
        for now in 20..4000 {
            hc.tick(now);
        }
        assert_eq!(hv.poll_recovery().unwrap()[0].to, RecoveryState::Decoupled);
        assert_eq!(hv.poll_recovery().unwrap()[0].to, RecoveryState::Resetting);
        assert_eq!(hv.poll_recovery().unwrap()[0].to, RecoveryState::Probation);
        // The accelerator comes back still broken: it stalls again
        // during probation.
        hc.port(0)
            .aw
            .push(0, AwBeat::new(0x0, 4, BurstSize::B4))
            .unwrap();
        for now in 4000..4020 {
            hc.tick(now);
        }
        assert!(hv.poll_recovery().unwrap().is_empty());
        let t = hv.poll_recovery().unwrap();
        assert_eq!(t[0].from, RecoveryState::Probation);
        assert_eq!(t[0].to, RecoveryState::Quarantined);
        assert!(hv.hc().is_decoupled(0).unwrap());
        assert_eq!(hv.failed_recoveries(PortId(0)), 1);
        // Terminal state: nothing moves the port again.
        assert!(hv.poll_recovery().unwrap().is_empty());
        assert_eq!(
            hv.recovery_state(PortId(0)),
            Some(RecoveryState::Quarantined)
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_all_health_state() {
        use axi::types::BurstSize;
        use axi::{ArBeat, AxiInterconnect};
        use sim::persist::{SnapshotReader, SnapshotWriter};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        let crit = hv.create_domain("vision", Criticality::Safety);
        let best = hv.create_domain("logging", Criticality::BestEffort);
        hv.assign_port(crit, PortId(0)).unwrap();
        hv.assign_port(best, PortId(1)).unwrap();
        hv.route_irq(PortId(0)).unwrap();
        hv.set_monitor_policy(
            PortId(0),
            MonitorPolicy {
                declared_txns_per_period: 10,
                violations_allowed: 100,
            },
        );
        hv.set_watchdog_policy(
            PortId(0),
            WatchdogPolicy {
                violations_allowed: 3,
                outstanding_allowed: Some(40),
                stall_polls_allowed: Some(5),
            },
        );
        hv.set_recovery_policy(
            PortId(0),
            RecoveryPolicy {
                suspect_polls: 5,
                ..RecoveryPolicy::default()
            },
        );
        hv.hc().set_max_outstanding(0, 64).unwrap();
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4))
            .unwrap();
        for now in 0..80 {
            hc.tick(now);
            while hc.mem_port().ar.pop_ready(now).is_some() {}
        }
        // Two recovery polls: port 0 goes Suspect with accumulated
        // violation counts, a throttled budget and a saved one.
        hv.poll_recovery().unwrap();
        hv.poll_recovery().unwrap();
        assert_eq!(hv.recovery_state(PortId(0)), Some(RecoveryState::Suspect));

        let mut w = SnapshotWriter::new();
        hv.save_state(&mut w);
        let bytes = w.into_bytes();

        // Restore into a hypervisor with none of that state.
        let (mut fresh, _hc2) = hypervisor(2);
        fresh
            .restore_state(&mut SnapshotReader::new(&bytes))
            .unwrap();
        assert_eq!(fresh.domains().len(), 2);
        assert_eq!(fresh.owner_of(PortId(0)), Some(crit));
        assert_eq!(fresh.domain(crit).unwrap().total_irqs(), 1);
        assert_eq!(
            fresh.recovery_state(PortId(0)),
            Some(RecoveryState::Suspect)
        );

        let mut w2 = SnapshotWriter::new();
        fresh.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "re-saved snapshot must match");
    }

    #[test]
    fn restore_rejects_truncated_stream() {
        use sim::persist::{SnapshotReader, SnapshotWriter};

        let (mut hv, _hc) = hypervisor(2);
        hv.create_domain("x", Criticality::Mission);
        let mut w = SnapshotWriter::new();
        hv.save_state(&mut w);
        let bytes = w.into_bytes();
        let before_domains = hv.domains().len();
        let err = hv.restore_state(&mut SnapshotReader::new(&bytes[..bytes.len() - 4]));
        assert!(err.is_err());
        // Decode-before-apply: the failed restore left state untouched.
        assert_eq!(hv.domains().len(), before_domains);
    }

    #[test]
    fn error_display() {
        assert!(HvError::PortTaken(PortId(1)).to_string().contains("port1"));
        assert!(HvError::UnknownDomain(DomainId(3))
            .to_string()
            .contains("dom3"));
    }
}
