//! The hypervisor proper: domains, bandwidth partitioning, interrupt
//! routing, and run-time health monitoring.

use std::collections::HashMap;

use axi::lite::LiteBus;
use axi::types::PortId;

use crate::domain::{Criticality, Domain, DomainId};
use crate::driver::{DriverError, HcDriver};

/// Errors surfaced by hypervisor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HvError {
    /// Underlying register-driver failure.
    Driver(DriverError),
    /// The referenced domain does not exist.
    UnknownDomain(DomainId),
    /// The referenced port is already assigned to a domain.
    PortTaken(PortId),
    /// The referenced port is not assigned to any domain.
    UnassignedPort(PortId),
}

impl std::fmt::Display for HvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HvError::Driver(e) => write!(f, "driver: {e}"),
            HvError::UnknownDomain(d) => write!(f, "unknown domain {d}"),
            HvError::PortTaken(p) => write!(f, "{p} is already assigned"),
            HvError::UnassignedPort(p) => write!(f, "{p} is not assigned to any domain"),
        }
    }
}

impl std::error::Error for HvError {}

impl From<DriverError> for HvError {
    fn from(e: DriverError) -> Self {
        HvError::Driver(e)
    }
}

/// Health-monitoring policy for a port: how many sub-transactions per
/// reservation period the accelerator *declared* it needs, and how many
/// consecutive violations are tolerated before the hypervisor decouples
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorPolicy {
    /// Declared sub-transactions per period.
    pub declared_txns_per_period: u32,
    /// Consecutive violating polls tolerated before decoupling.
    pub violations_allowed: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct MonitorState {
    consecutive_violations: u32,
    decoupled_by_monitor: bool,
}

/// Watchdog policy for a port: thresholds on the interconnect's
/// *structured violation* counter and on the in-flight transaction count,
/// read over AXI-Lite from the `VIOLATIONS` / `OUTSTANDING` registers.
///
/// Complements [`MonitorPolicy`] (which reacts to bandwidth overuse):
/// the watchdog reacts to protocol-level misbehavior — illegal
/// addresses, 4 KiB crossings, WLAST corruption, hung handshakes — and
/// to runaway issue rates that exceed the declared in-flight envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogPolicy {
    /// Total structured violations tolerated before decoupling.
    pub violations_allowed: u32,
    /// Optional cap on in-flight sub-transactions; `None` disables the
    /// outstanding check.
    pub outstanding_allowed: Option<u32>,
}

#[derive(Debug, Clone, Copy, Default)]
struct WatchdogState {
    decoupled_by_watchdog: bool,
}

/// Why the watchdog decoupled a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogReason {
    /// The structured-violation counter exceeded the policy threshold.
    Violations,
    /// The in-flight transaction count exceeded the policy cap.
    Outstanding,
}

/// A decoupling event recorded by the watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogEvent {
    /// The offending port.
    pub port: PortId,
    /// What tripped the watchdog.
    pub reason: WatchdogReason,
    /// Violation count observed at the decoupling poll.
    pub violations: u32,
    /// In-flight sub-transactions observed at the decoupling poll.
    pub outstanding: u32,
}

/// A decoupling event recorded by the health monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecoupleEvent {
    /// The offending port.
    pub port: PortId,
    /// Sub-transactions observed in the violating period.
    pub observed: u32,
    /// The declared limit.
    pub declared: u32,
}

/// The hypervisor: owns the control bus, the domain table and the
/// monitoring state for one HyperConnect instance.
///
/// # Example
///
/// ```
/// use axi::lite::LiteBus;
/// use axi::types::PortId;
/// use hyperconnect::{HcConfig, HyperConnect};
/// use hypervisor::{Criticality, Hypervisor};
///
/// # fn main() -> Result<(), hypervisor::HvError> {
/// let hc = HyperConnect::new(HcConfig::new(2));
/// let mut bus = LiteBus::new();
/// bus.map(0xA000_0000, 0x1000, hc.regs().clone());
/// let mut hv = Hypervisor::new(bus, 0xA000_0000)?;
/// let dom = hv.create_domain("perception", Criticality::Safety);
/// hv.assign_port(dom, PortId(0))?;
/// hv.hc().set_period(50_000)?;
/// hv.set_bandwidth_shares(&[90, 10], 22)?;
/// # Ok(())
/// # }
/// ```
pub struct Hypervisor {
    bus: LiteBus,
    hc_base: u64,
    domains: Vec<Domain>,
    port_owner: HashMap<usize, DomainId>,
    policies: HashMap<usize, MonitorPolicy>,
    monitor: HashMap<usize, MonitorState>,
    decouple_log: Vec<DecoupleEvent>,
    watchdog_policies: HashMap<usize, WatchdogPolicy>,
    watchdog: HashMap<usize, WatchdogState>,
    watchdog_log: Vec<WatchdogEvent>,
}

impl std::fmt::Debug for Hypervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hypervisor")
            .field("domains", &self.domains.len())
            .field("assigned_ports", &self.port_owner.len())
            .finish()
    }
}

impl Hypervisor {
    /// Creates a hypervisor controlling the HyperConnect mapped at
    /// `hc_base` on `bus`.
    ///
    /// # Errors
    ///
    /// Fails if no HyperConnect responds at `hc_base`.
    pub fn new(bus: LiteBus, hc_base: u64) -> Result<Self, HvError> {
        // Probe once to validate the mapping.
        HcDriver::probe(&bus, hc_base)?;
        Ok(Self {
            bus,
            hc_base,
            domains: Vec::new(),
            port_owner: HashMap::new(),
            policies: HashMap::new(),
            monitor: HashMap::new(),
            decouple_log: Vec::new(),
            watchdog_policies: HashMap::new(),
            watchdog: HashMap::new(),
            watchdog_log: Vec::new(),
        })
    }

    /// A register driver bound to the managed device.
    pub fn hc(&self) -> HcDriver<'_> {
        HcDriver::probe(&self.bus, self.hc_base).expect("validated at construction")
    }

    /// Creates a new domain and returns its ID.
    pub fn create_domain(&mut self, name: impl Into<String>, criticality: Criticality) -> DomainId {
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(Domain::new(id, name, criticality));
        id
    }

    /// The domain table.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Looks up a domain.
    pub fn domain(&self, id: DomainId) -> Result<&Domain, HvError> {
        self.domains
            .get(id.0 as usize)
            .ok_or(HvError::UnknownDomain(id))
    }

    fn domain_mut(&mut self, id: DomainId) -> Result<&mut Domain, HvError> {
        self.domains
            .get_mut(id.0 as usize)
            .ok_or(HvError::UnknownDomain(id))
    }

    /// Assigns interconnect port `port` to `domain` (each port belongs
    /// to exactly one domain — the isolation granted via standard memory
    /// virtualization in the paper's framework).
    pub fn assign_port(&mut self, domain: DomainId, port: PortId) -> Result<(), HvError> {
        if self.port_owner.contains_key(&port.0) {
            return Err(HvError::PortTaken(port));
        }
        self.domain_mut(domain)?.assign(port);
        self.port_owner.insert(port.0, domain);
        Ok(())
    }

    /// The domain owning `port`, if any.
    pub fn owner_of(&self, port: PortId) -> Option<DomainId> {
        self.port_owner.get(&port.0).copied()
    }

    /// Routes an accelerator-completion interrupt from `port` to its
    /// owning domain.
    ///
    /// # Errors
    ///
    /// [`HvError::UnassignedPort`] if no domain owns the port.
    pub fn route_irq(&mut self, port: PortId) -> Result<DomainId, HvError> {
        let owner = self.owner_of(port).ok_or(HvError::UnassignedPort(port))?;
        self.domain_mut(owner)?.raise_irq();
        Ok(owner)
    }

    /// Partitions bandwidth by percentage shares across ports (the
    /// paper's `HC-X-Y` configurations).
    pub fn set_bandwidth_shares(
        &self,
        shares_percent: &[u32],
        mem_first_word_latency: u64,
    ) -> Result<Vec<u32>, HvError> {
        Ok(self
            .hc()
            .set_bandwidth_shares(shares_percent, mem_first_word_latency)?)
    }

    /// Installs a health-monitoring policy for a port.
    pub fn set_monitor_policy(&mut self, port: PortId, policy: MonitorPolicy) {
        self.policies.insert(port.0, policy);
        self.monitor.entry(port.0).or_default();
    }

    /// Polls the per-period transaction counters and decouples any port
    /// that exceeded its declared budget for more than the allowed
    /// number of consecutive polls. Returns the ports decoupled by this
    /// poll. Intended to be called once per reservation period.
    pub fn poll_health(&mut self) -> Result<Vec<DecoupleEvent>, HvError> {
        let mut events = Vec::new();
        let mut ports: Vec<usize> = self.policies.keys().copied().collect();
        ports.sort_unstable();
        for p in ports {
            let policy = self.policies[&p];
            if self.monitor.get(&p).is_some_and(|s| s.decoupled_by_monitor) {
                continue;
            }
            let observed = self.hc().txns_this_period(p)?;
            let violating = observed > policy.declared_txns_per_period;
            let violations = {
                let state = self.monitor.entry(p).or_default();
                if violating {
                    state.consecutive_violations += 1;
                } else {
                    state.consecutive_violations = 0;
                }
                state.consecutive_violations
            };
            if violating && violations > policy.violations_allowed {
                self.hc().set_decoupled(p, true)?;
                self.monitor
                    .get_mut(&p)
                    .expect("inserted above")
                    .decoupled_by_monitor = true;
                let event = DecoupleEvent {
                    port: PortId(p),
                    observed,
                    declared: policy.declared_txns_per_period,
                };
                self.decouple_log.push(event.clone());
                events.push(event);
            }
        }
        Ok(events)
    }

    /// All decoupling events since boot.
    pub fn decouple_log(&self) -> &[DecoupleEvent] {
        &self.decouple_log
    }

    /// Installs a watchdog policy for a port.
    pub fn set_watchdog_policy(&mut self, port: PortId, policy: WatchdogPolicy) {
        self.watchdog_policies.insert(port.0, policy);
        self.watchdog.entry(port.0).or_default();
    }

    /// Polls the violation and outstanding counters of every watched
    /// port and decouples any port over its [`WatchdogPolicy`]
    /// thresholds. Returns the ports decoupled by this poll.
    ///
    /// Unlike [`Hypervisor::poll_health`] (periodic, bandwidth-oriented)
    /// this can be called at any rate; a port is decoupled at the first
    /// poll that observes it over threshold.
    pub fn poll_watchdog(&mut self) -> Result<Vec<WatchdogEvent>, HvError> {
        let mut events = Vec::new();
        let mut ports: Vec<usize> = self.watchdog_policies.keys().copied().collect();
        ports.sort_unstable();
        for p in ports {
            let policy = self.watchdog_policies[&p];
            if self
                .watchdog
                .get(&p)
                .is_some_and(|s| s.decoupled_by_watchdog)
            {
                continue;
            }
            let violations = self.hc().violations(p)?;
            let outstanding = self.hc().outstanding(p)?;
            let reason = if violations > policy.violations_allowed {
                Some(WatchdogReason::Violations)
            } else if policy
                .outstanding_allowed
                .is_some_and(|cap| outstanding > cap)
            {
                Some(WatchdogReason::Outstanding)
            } else {
                None
            };
            if let Some(reason) = reason {
                self.hc().set_decoupled(p, true)?;
                self.watchdog.entry(p).or_default().decoupled_by_watchdog = true;
                let event = WatchdogEvent {
                    port: PortId(p),
                    reason,
                    violations,
                    outstanding,
                };
                self.watchdog_log.push(event.clone());
                events.push(event);
            }
        }
        Ok(events)
    }

    /// All watchdog decoupling events since boot.
    pub fn watchdog_log(&self) -> &[WatchdogEvent] {
        &self.watchdog_log
    }

    /// Manually recouples a port (e.g. after the offending domain was
    /// restarted) and clears its monitor and watchdog state.
    ///
    /// Note the interconnect's violation counter is cumulative since
    /// reset, so a recoupled port that misbehaved before will trip the
    /// watchdog again at the next poll unless its policy is raised.
    pub fn recouple(&mut self, port: PortId) -> Result<(), HvError> {
        self.hc().set_decoupled(port.0, false)?;
        self.monitor.insert(port.0, MonitorState::default());
        self.watchdog.insert(port.0, WatchdogState::default());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperconnect::{HcConfig, HyperConnect};

    const BASE: u64 = 0xA000_0000;

    fn hypervisor(n: usize) -> (Hypervisor, HyperConnect) {
        let hc = HyperConnect::new(HcConfig::new(n));
        let mut bus = LiteBus::new();
        bus.map(BASE, 0x1000, hc.regs().clone());
        (Hypervisor::new(bus, BASE).unwrap(), hc)
    }

    #[test]
    fn construction_probes_device() {
        let bus = LiteBus::new();
        assert!(matches!(
            Hypervisor::new(bus, BASE),
            Err(HvError::Driver(_))
        ));
    }

    #[test]
    fn domain_and_port_assignment() {
        let (mut hv, _hc) = hypervisor(2);
        let crit = hv.create_domain("vision", Criticality::Safety);
        let best = hv.create_domain("logging", Criticality::BestEffort);
        hv.assign_port(crit, PortId(0)).unwrap();
        hv.assign_port(best, PortId(1)).unwrap();
        assert_eq!(hv.owner_of(PortId(0)), Some(crit));
        assert_eq!(
            hv.assign_port(best, PortId(0)).unwrap_err(),
            HvError::PortTaken(PortId(0))
        );
        assert_eq!(hv.domains().len(), 2);
        assert!(hv.domain(crit).unwrap().owns(PortId(0)));
        assert!(matches!(
            hv.domain(DomainId(9)),
            Err(HvError::UnknownDomain(_))
        ));
    }

    #[test]
    fn irq_routing() {
        let (mut hv, _hc) = hypervisor(2);
        let d = hv.create_domain("vm", Criticality::Mission);
        hv.assign_port(d, PortId(1)).unwrap();
        assert_eq!(hv.route_irq(PortId(1)).unwrap(), d);
        assert_eq!(hv.domain(d).unwrap().total_irqs(), 1);
        assert_eq!(
            hv.route_irq(PortId(0)).unwrap_err(),
            HvError::UnassignedPort(PortId(0))
        );
    }

    #[test]
    fn bandwidth_shares_reach_device() {
        let (hv, _hc) = hypervisor(2);
        hv.hc().set_period(16_022).unwrap();
        let budgets = hv.set_bandwidth_shares(&[70, 30], 22).unwrap();
        assert_eq!(budgets, vec![700, 300]);
        assert_eq!(hv.hc().budget(0).unwrap(), 700);
    }

    #[test]
    fn health_monitor_decouples_after_tolerance() {
        let (mut hv, mut hc) = hypervisor(2);
        hv.set_monitor_policy(
            PortId(0),
            MonitorPolicy {
                declared_txns_per_period: 10,
                violations_allowed: 1,
            },
        );
        // Make the device report a violating counter: issue real traffic.
        use axi::types::BurstSize;
        use axi::{ArBeat, AxiInterconnect};
        use sim::Component;
        // Raise the outstanding limit so all 16 sub-transactions issue
        // without waiting for read data (none is returned here).
        hv.hc().set_max_outstanding(0, 64).unwrap();
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4)) // 16 subs > 10
            .unwrap();
        for now in 0..80 {
            hc.tick(now);
            while hc.mem_port().ar.pop_ready(now).is_some() {}
        }
        // First poll: violation 1 (tolerated).
        assert!(hv.poll_health().unwrap().is_empty());
        // Second poll: violation 2 > allowed 1 -> decouple.
        let events = hv.poll_health().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].port, PortId(0));
        assert!(hv.hc().is_decoupled(0).unwrap());
        assert_eq!(hv.decouple_log().len(), 1);
        // Already-decoupled ports are not re-reported.
        assert!(hv.poll_health().unwrap().is_empty());
        // Recoupling clears state.
        hv.recouple(PortId(0)).unwrap();
        assert!(!hv.hc().is_decoupled(0).unwrap());
    }

    #[test]
    fn well_behaved_port_never_decoupled() {
        let (mut hv, _hc) = hypervisor(2);
        hv.set_monitor_policy(
            PortId(1),
            MonitorPolicy {
                declared_txns_per_period: 100,
                violations_allowed: 0,
            },
        );
        for _ in 0..10 {
            assert!(hv.poll_health().unwrap().is_empty());
        }
    }

    #[test]
    fn watchdog_decouples_on_violations() {
        use axi::types::BurstSize;
        use axi::{AwBeat, AxiInterconnect, WBeat};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_watchdog_policy(
            PortId(0),
            WatchdogPolicy {
                violations_allowed: 0,
                outstanding_allowed: None,
            },
        );
        // Clean device: nothing trips.
        assert!(hv.poll_watchdog().unwrap().is_empty());
        // Port 0 corrupts WLAST on a 4-beat write.
        hc.port(0)
            .aw
            .push(0, AwBeat::new(0x0, 4, BurstSize::B4))
            .unwrap();
        for i in 0..4u32 {
            hc.port(0)
                .w
                .push(0, WBeat::new(vec![0; 4], i == 1))
                .unwrap();
        }
        for now in 0..20 {
            hc.tick(now);
        }
        let events = hv.poll_watchdog().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].port, PortId(0));
        assert_eq!(events[0].reason, WatchdogReason::Violations);
        assert!(events[0].violations > 0);
        assert!(hv.hc().is_decoupled(0).unwrap());
        assert_eq!(hv.watchdog_log().len(), 1);
        // Already decoupled: no duplicate reports.
        assert!(hv.poll_watchdog().unwrap().is_empty());
    }

    #[test]
    fn watchdog_decouples_on_outstanding_cap() {
        use axi::types::BurstSize;
        use axi::{ArBeat, AxiInterconnect};
        use sim::Component;

        let (mut hv, mut hc) = hypervisor(2);
        hv.set_watchdog_policy(
            PortId(0),
            WatchdogPolicy {
                violations_allowed: u32::MAX,
                outstanding_allowed: Some(2),
            },
        );
        hv.hc().set_max_outstanding(0, 64).unwrap();
        // A long read issues many subs; no data returns, so the
        // in-flight count climbs past the declared cap.
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4))
            .unwrap();
        for now in 0..40 {
            hc.tick(now);
            while hc.mem_port().ar.pop_ready(now).is_some() {}
        }
        let events = hv.poll_watchdog().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].reason, WatchdogReason::Outstanding);
        assert!(events[0].outstanding > 2);
        assert!(hv.hc().is_decoupled(0).unwrap());
    }

    #[test]
    fn recouple_clears_watchdog_state() {
        let (mut hv, _hc) = hypervisor(2);
        hv.set_watchdog_policy(
            PortId(1),
            WatchdogPolicy {
                violations_allowed: 5,
                outstanding_allowed: Some(8),
            },
        );
        assert!(hv.poll_watchdog().unwrap().is_empty());
        hv.recouple(PortId(1)).unwrap();
        assert!(hv.poll_watchdog().unwrap().is_empty());
    }

    #[test]
    fn error_display() {
        assert!(HvError::PortTaken(PortId(1)).to_string().contains("port1"));
        assert!(HvError::UnknownDomain(DomainId(3))
            .to_string()
            .contains("dom3"));
    }
}
