//! The HyperConnect register driver.
//!
//! The paper ships the IP with an open-source driver; this is its model:
//! a thin, well-typed layer over the memory-mapped register file,
//! performing all accesses through the AXI-Lite bus (the PS-FPGA
//! interface path a real hypervisor would use), never touching model
//! internals.

use axi::lite::{DecodeError, LiteBus};
use hyperconnect::analysis::{budgets_from_shares, period_capacity_txns};
use hyperconnect::regfile::{
    offsets, port_block_offset, BUDGET_UNLIMITED, IP_VERSION, QUIESCE_DRAINED, QUIESCE_FLUSHED,
    QUIESCE_REQUESTED,
};

/// Typed accessor for one HyperConnect instance mapped on a [`LiteBus`].
///
/// Borrow-based: the hypervisor owns the bus, drivers are created on
/// demand for the device being configured.
#[derive(Debug, Clone, Copy)]
pub struct HcDriver<'b> {
    bus: &'b LiteBus,
    base: u64,
}

/// Error returned by driver operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverError {
    /// The bus had no device at the accessed address.
    Bus(DecodeError),
    /// The device did not identify as a HyperConnect.
    WrongDevice {
        /// The VERSION register value found.
        found: u32,
    },
    /// A port index beyond the device's port count.
    BadPort {
        /// The offending index.
        port: usize,
        /// Ports the device actually has.
        num_ports: usize,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Bus(e) => write!(f, "bus error: {e}"),
            DriverError::WrongDevice { found } => {
                write!(f, "device version {found:#x} is not a HyperConnect")
            }
            DriverError::BadPort { port, num_ports } => {
                write!(f, "port {port} out of range (device has {num_ports})")
            }
        }
    }
}

impl std::error::Error for DriverError {}

impl From<DecodeError> for DriverError {
    fn from(e: DecodeError) -> Self {
        DriverError::Bus(e)
    }
}

impl<'b> HcDriver<'b> {
    /// Binds a driver to the device at `base`, verifying its VERSION
    /// register.
    ///
    /// # Errors
    ///
    /// [`DriverError::Bus`] if nothing is mapped at `base`;
    /// [`DriverError::WrongDevice`] if the ID register mismatches.
    pub fn probe(bus: &'b LiteBus, base: u64) -> Result<Self, DriverError> {
        let version = bus.read32(base + offsets::VERSION)?;
        if version != IP_VERSION {
            return Err(DriverError::WrongDevice { found: version });
        }
        Ok(Self { bus, base })
    }

    /// Number of slave ports reported by the device.
    pub fn num_ports(&self) -> Result<usize, DriverError> {
        Ok(self.bus.read32(self.base + offsets::NPORTS)? as usize)
    }

    fn check_port(&self, port: usize) -> Result<(), DriverError> {
        let n = self.num_ports()?;
        if port >= n {
            return Err(DriverError::BadPort { port, num_ports: n });
        }
        Ok(())
    }

    /// Globally enables or disables the interconnect.
    pub fn set_enabled(&self, enabled: bool) -> Result<(), DriverError> {
        Ok(self
            .bus
            .write32(self.base + offsets::CTRL, enabled as u32)?)
    }

    /// Programs the reservation period in cycles.
    pub fn set_period(&self, cycles: u32) -> Result<(), DriverError> {
        Ok(self.bus.write32(self.base + offsets::PERIOD, cycles)?)
    }

    /// Reads the reservation period.
    pub fn period(&self) -> Result<u32, DriverError> {
        Ok(self.bus.read32(self.base + offsets::PERIOD)?)
    }

    /// Programs the nominal burst length in beats.
    pub fn set_nominal_burst(&self, beats: u32) -> Result<(), DriverError> {
        Ok(self.bus.write32(self.base + offsets::NOMINAL, beats)?)
    }

    /// Reads the nominal burst length.
    pub fn nominal_burst(&self) -> Result<u32, DriverError> {
        Ok(self.bus.read32(self.base + offsets::NOMINAL)?)
    }

    /// Programs a port's budget (sub-transactions per period);
    /// [`BUDGET_UNLIMITED`] disables reservation for the port.
    pub fn set_budget(&self, port: usize, budget: u32) -> Result<(), DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_BUDGET;
        Ok(self.bus.write32(off, budget)?)
    }

    /// Reads a port's budget.
    pub fn budget(&self, port: usize) -> Result<u32, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_BUDGET;
        Ok(self.bus.read32(off)?)
    }

    /// Removes reservation from every port.
    pub fn clear_budgets(&self) -> Result<(), DriverError> {
        for p in 0..self.num_ports()? {
            self.set_budget(p, BUDGET_UNLIMITED)?;
        }
        Ok(())
    }

    /// Partitions the bus bandwidth by percentage shares (the paper's
    /// `HC-X-Y`): translates shares into per-port budgets given the
    /// current period, nominal burst and the memory's first-word
    /// latency, then programs them.
    ///
    /// # Errors
    ///
    /// Propagates bus errors; panics (via the analysis helper) if the
    /// shares do not sum to 100 or the count mismatches the port count.
    pub fn set_bandwidth_shares(
        &self,
        shares_percent: &[u32],
        mem_first_word_latency: u64,
    ) -> Result<Vec<u32>, DriverError> {
        let n = self.num_ports()?;
        assert_eq!(shares_percent.len(), n, "one share per port required");
        let period = self.period()? as u64;
        let nominal = self.nominal_burst()?;
        let capacity = period_capacity_txns(period, nominal, mem_first_word_latency);
        let budgets = budgets_from_shares(capacity, shares_percent);
        for (p, &b) in budgets.iter().enumerate() {
            self.set_budget(p, b)?;
        }
        Ok(budgets)
    }

    /// Programs the global credit-refill window (cycles per regulator
    /// window; the device clamps to at least 1).
    pub fn set_regulation_window(&self, cycles: u32) -> Result<(), DriverError> {
        Ok(self.bus.write32(self.base + offsets::REG_WINDOW, cycles)?)
    }

    /// Reads the global credit-refill window.
    pub fn regulation_window(&self) -> Result<u32, DriverError> {
        Ok(self.bus.read32(self.base + offsets::REG_WINDOW)?)
    }

    /// Programs a port's regulator rate (credits per refill window);
    /// `u32::MAX` disables rate limiting for the port.
    pub fn set_rate(&self, port: usize, rate: u32) -> Result<(), DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_REG_RATE;
        Ok(self.bus.write32(off, rate)?)
    }

    /// Reads a port's regulator rate.
    pub fn rate(&self, port: usize) -> Result<u32, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_REG_RATE;
        Ok(self.bus.read32(off)?)
    }

    /// Programs a port's regulator burst depth — the credit bank's
    /// capacity (the device clamps to at least 1).
    pub fn set_reg_burst(&self, port: usize, burst: u32) -> Result<(), DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_REG_BURST;
        Ok(self.bus.write32(off, burst)?)
    }

    /// Reads a port's regulator burst depth.
    pub fn reg_burst(&self, port: usize) -> Result<u32, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_REG_BURST;
        Ok(self.bus.read32(off)?)
    }

    /// Programs a port's outstanding-transaction cap (reads plus
    /// writes in flight); `u32::MAX` disables the cap.
    pub fn set_out_cap(&self, port: usize, cap: u32) -> Result<(), DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_REG_OUT_CAP;
        Ok(self.bus.write32(off, cap)?)
    }

    /// Reads a port's outstanding-transaction cap.
    pub fn out_cap(&self, port: usize) -> Result<u32, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_REG_OUT_CAP;
        Ok(self.bus.read32(off)?)
    }

    /// Throttle-onset events the port's regulator recorded since the
    /// last clear (saturating at `u32::MAX`).
    pub fn throttle_events(&self, port: usize) -> Result<u32, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_REG_THROTTLE;
        Ok(self.bus.read32(off)?)
    }

    /// Clears a port's throttle-event counter (W1C).
    pub fn clear_throttle_events(&self, port: usize) -> Result<(), DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_REG_THROTTLE;
        Ok(self.bus.write32(off, 1)?)
    }

    /// Current stored `(read, write)` regulator credits of a port
    /// (each lane saturating at 0xFFFF in the packed register).
    pub fn credits(&self, port: usize) -> Result<(u32, u32), DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_REG_CREDITS;
        let packed = self.bus.read32(off)?;
        Ok((packed & 0xFFFF, packed >> 16))
    }

    /// Programs a port's outstanding-transaction limit.
    pub fn set_max_outstanding(&self, port: usize, limit: u32) -> Result<(), DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_MAX_OUT;
        Ok(self.bus.write32(off, limit)?)
    }

    /// Decouples (`true`) or recouples (`false`) a port — the paper's
    /// memory-subsystem decoupling for misbehaving accelerators.
    pub fn set_decoupled(&self, port: usize, decoupled: bool) -> Result<(), DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_CTRL;
        Ok(self.bus.write32(off, (!decoupled) as u32)?)
    }

    /// Whether a port is currently decoupled.
    pub fn is_decoupled(&self, port: usize) -> Result<bool, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_CTRL;
        Ok(self.bus.read32(off)? & 1 == 0)
    }

    /// Requests a quiescent drain on a port: the interconnect stops
    /// admitting new transactions at the traffic supervisor while
    /// everything already staged or in flight completes. Poll
    /// [`HcDriver::quiesce_status`] for completion; if the device's
    /// drain deadline blows first, the hardware force-flushes and
    /// decouples the port, reporting the drops in the same status word.
    pub fn request_quiesce(&self, port: usize) -> Result<(), DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_QUIESCE;
        Ok(self.bus.write32(off, QUIESCE_REQUESTED)?)
    }

    /// Releases a quiesce request so the port admits traffic again.
    pub fn release_quiesce(&self, port: usize) -> Result<(), DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_QUIESCE;
        Ok(self.bus.write32(off, 0)?)
    }

    /// Decodes the port's quiescent-drain status word.
    pub fn quiesce_status(&self, port: usize) -> Result<QuiesceStatus, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_QUIESCE;
        let raw = self.bus.read32(off)?;
        Ok(QuiesceStatus {
            requested: raw & QUIESCE_REQUESTED != 0,
            drained: raw & QUIESCE_DRAINED != 0,
            force_flushed: raw & QUIESCE_FLUSHED != 0,
            dropped_txns: raw >> 16,
        })
    }

    /// Interconnect-side port reset: clears the sticky force-flush
    /// state and any pending quiesce request, and leaves the port
    /// decoupled so no traffic flows while the accelerator itself is
    /// being reset (a PL reset line or a partial-reconfiguration swap —
    /// outside this register file).
    pub fn reset_port(&self, port: usize) -> Result<(), DriverError> {
        self.set_decoupled(port, true)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_QUIESCE;
        // Bit 0 clear releases the quiesce; bit 2 is W1C for the
        // sticky flush state and the dropped-transaction count.
        Ok(self.bus.write32(off, QUIESCE_FLUSHED)?)
    }

    /// Reattaches a previously reset port: recouples it so traffic
    /// flows again. The hypervisor layer is responsible for re-arming
    /// its monitoring state around this call.
    pub fn reattach_port(&self, port: usize) -> Result<(), DriverError> {
        self.set_decoupled(port, false)
    }

    /// Sub-transactions a port issued in the current period.
    pub fn txns_this_period(&self, port: usize) -> Result<u32, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_TXN_PERIOD;
        Ok(self.bus.read32(off)?)
    }

    /// Sub-transactions a port issued since reset (low 32 bits).
    pub fn txns_total(&self, port: usize) -> Result<u32, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_TXN_TOTAL;
        Ok(self.bus.read32(off)?)
    }

    /// Transactions a port completed with a non-OKAY merged response
    /// since reset (saturating at `u32::MAX` through the 32-bit
    /// register window).
    pub fn err_total(&self, port: usize) -> Result<u32, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_ERR_TOTAL;
        Ok(self.bus.read32(off)?)
    }

    /// Structured protocol violations detected on a port since reset.
    pub fn violations(&self, port: usize) -> Result<u32, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_VIOLATIONS;
        Ok(self.bus.read32(off)?)
    }

    /// In-flight sub-transactions (reads plus writes) on a port.
    pub fn outstanding(&self, port: usize) -> Result<u32, DriverError> {
        self.check_port(port)?;
        let off = self.base + port_block_offset(port) + offsets::PORT_OUTSTANDING;
        Ok(self.bus.read32(off)?)
    }

    /// Captures the full runtime configuration — used around dynamic
    /// partial reconfiguration, where a bitstream swap must restore the
    /// interconnect policy afterwards.
    pub fn snapshot(&self) -> Result<HcSnapshot, DriverError> {
        let n = self.num_ports()?;
        let mut ports = Vec::with_capacity(n);
        for p in 0..n {
            let block = self.base + port_block_offset(p);
            ports.push(PortSnapshot {
                budget: self.bus.read32(block + offsets::PORT_BUDGET)?,
                enabled: self.bus.read32(block + offsets::PORT_CTRL)? & 1 == 1,
                max_outstanding: self.bus.read32(block + offsets::PORT_MAX_OUT)?,
                rate: self.bus.read32(block + offsets::PORT_REG_RATE)?,
                reg_burst: self.bus.read32(block + offsets::PORT_REG_BURST)?,
                out_cap: self.bus.read32(block + offsets::PORT_REG_OUT_CAP)?,
            });
        }
        Ok(HcSnapshot {
            period: self.period()?,
            nominal_burst: self.nominal_burst()?,
            regulation_window: self.regulation_window()?,
            ports,
        })
    }

    /// Reprograms the device from a snapshot.
    ///
    /// # Errors
    ///
    /// Fails if the snapshot's port count does not match the device.
    pub fn restore(&self, snapshot: &HcSnapshot) -> Result<(), DriverError> {
        let n = self.num_ports()?;
        if snapshot.ports.len() != n {
            return Err(DriverError::BadPort {
                port: snapshot.ports.len(),
                num_ports: n,
            });
        }
        self.set_period(snapshot.period)?;
        self.set_nominal_burst(snapshot.nominal_burst)?;
        self.set_regulation_window(snapshot.regulation_window)?;
        for (p, s) in snapshot.ports.iter().enumerate() {
            self.set_budget(p, s.budget)?;
            self.set_max_outstanding(p, s.max_outstanding)?;
            self.set_decoupled(p, !s.enabled)?;
            self.set_rate(p, s.rate)?;
            self.set_reg_burst(p, s.reg_burst)?;
            self.set_out_cap(p, s.out_cap)?;
        }
        Ok(())
    }
}

/// Decoded quiescent-drain status of one port — see
/// [`HcDriver::quiesce_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuiesceStatus {
    /// A quiesce is currently requested.
    pub requested: bool,
    /// The traffic supervisor has fully drained (write-back from the
    /// interconnect; cleared when the request is toggled).
    pub drained: bool,
    /// The drain deadline blew and the port was force-flushed
    /// (sticky until [`HcDriver::reset_port`] clears it).
    pub force_flushed: bool,
    /// Sub-transactions dropped by the force-flush (saturating at
    /// 0xFFFF).
    pub dropped_txns: u32,
}

/// Saved runtime configuration of one port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSnapshot {
    /// Budget register value.
    pub budget: u32,
    /// Coupled state.
    pub enabled: bool,
    /// Outstanding limit.
    pub max_outstanding: u32,
    /// Regulator rate (credits per refill window).
    pub rate: u32,
    /// Regulator burst depth.
    pub reg_burst: u32,
    /// Outstanding-transaction cap.
    pub out_cap: u32,
}

/// Saved runtime configuration of a whole HyperConnect — see
/// [`HcDriver::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HcSnapshot {
    /// Reservation period in cycles.
    pub period: u32,
    /// Nominal burst length in beats.
    pub nominal_burst: u32,
    /// Global credit-refill window in cycles.
    pub regulation_window: u32,
    /// Per-port configuration, in port order.
    pub ports: Vec<PortSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use axi::lite::LiteHandle;
    use hyperconnect::{HcConfig, HyperConnect};

    const BASE: u64 = 0xA000_0000;

    fn bus_with_hc(n: usize) -> (LiteBus, HyperConnect) {
        let hc = HyperConnect::new(HcConfig::new(n));
        let mut bus = LiteBus::new();
        bus.map(BASE, 0x1000, hc.regs().clone());
        (bus, hc)
    }

    #[test]
    fn probe_succeeds_on_hyperconnect() {
        let (bus, _hc) = bus_with_hc(2);
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        assert_eq!(drv.num_ports().unwrap(), 2);
    }

    #[test]
    fn probe_fails_on_empty_bus() {
        let bus = LiteBus::new();
        assert!(matches!(
            HcDriver::probe(&bus, BASE),
            Err(DriverError::Bus(_))
        ));
    }

    #[test]
    fn probe_fails_on_wrong_device() {
        #[derive(Default)]
        struct NotHc;
        impl axi::lite::LiteDevice for NotHc {
            fn read32(&mut self, _o: u64) -> u32 {
                0xBAD
            }
            fn write32(&mut self, _o: u64, _v: u32) {}
        }
        let mut bus = LiteBus::new();
        bus.map(BASE, 0x1000, LiteHandle::new(NotHc));
        assert_eq!(
            HcDriver::probe(&bus, BASE).unwrap_err(),
            DriverError::WrongDevice { found: 0xBAD }
        );
    }

    #[test]
    fn global_configuration_roundtrip() {
        let (bus, _hc) = bus_with_hc(2);
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        drv.set_period(10_000).unwrap();
        drv.set_nominal_burst(8).unwrap();
        assert_eq!(drv.period().unwrap(), 10_000);
        assert_eq!(drv.nominal_burst().unwrap(), 8);
    }

    #[test]
    fn budget_and_decouple_roundtrip() {
        let (bus, _hc) = bus_with_hc(3);
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        drv.set_budget(1, 500).unwrap();
        assert_eq!(drv.budget(1).unwrap(), 500);
        assert!(!drv.is_decoupled(1).unwrap());
        drv.set_decoupled(1, true).unwrap();
        assert!(drv.is_decoupled(1).unwrap());
        drv.set_decoupled(1, false).unwrap();
        assert!(!drv.is_decoupled(1).unwrap());
        drv.clear_budgets().unwrap();
        assert_eq!(drv.budget(1).unwrap(), BUDGET_UNLIMITED);
    }

    #[test]
    fn bad_port_rejected() {
        let (bus, _hc) = bus_with_hc(2);
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        assert_eq!(
            drv.set_budget(5, 1).unwrap_err(),
            DriverError::BadPort {
                port: 5,
                num_ports: 2
            }
        );
    }

    #[test]
    fn bandwidth_shares_program_budgets() {
        let (bus, _hc) = bus_with_hc(2);
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        drv.set_period(16_022).unwrap(); // capacity = (16022-22)/16 = 1000
        let budgets = drv.set_bandwidth_shares(&[90, 10], 22).unwrap();
        assert_eq!(budgets, vec![900, 100]);
        assert_eq!(drv.budget(0).unwrap(), 900);
        assert_eq!(drv.budget(1).unwrap(), 100);
    }

    #[test]
    #[should_panic(expected = "one share per port")]
    fn share_count_must_match_ports() {
        let (bus, _hc) = bus_with_hc(2);
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        let _ = drv.set_bandwidth_shares(&[100], 22);
    }

    #[test]
    fn driver_changes_reach_the_interconnect() {
        use axi::types::BurstSize;
        use axi::{ArBeat, AxiInterconnect};
        use sim::Component;

        let (bus, mut hc) = bus_with_hc(2);
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        drv.set_decoupled(0, true).unwrap();
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 1, BurstSize::B4))
            .unwrap();
        for now in 0..20 {
            hc.tick(now);
        }
        assert!(
            hc.mem_port().ar.pop_ready(20).is_none(),
            "decoupled port must not reach memory"
        );
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (bus, _hc) = bus_with_hc(2);
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        drv.set_period(12_345).unwrap();
        drv.set_nominal_burst(8).unwrap();
        drv.set_budget(0, 77).unwrap();
        drv.set_max_outstanding(1, 9).unwrap();
        drv.set_decoupled(1, true).unwrap();
        drv.set_regulation_window(128).unwrap();
        drv.set_rate(0, 3).unwrap();
        drv.set_reg_burst(0, 5).unwrap();
        drv.set_out_cap(1, 2).unwrap();
        let snap = drv.snapshot().unwrap();
        // Scramble everything (as a DPR bitstream swap would reset it).
        drv.set_period(1).unwrap();
        drv.set_nominal_burst(1).unwrap();
        drv.clear_budgets().unwrap();
        drv.set_decoupled(1, false).unwrap();
        drv.set_max_outstanding(1, 1).unwrap();
        drv.set_regulation_window(1).unwrap();
        drv.set_rate(0, u32::MAX).unwrap();
        drv.set_reg_burst(0, 1).unwrap();
        drv.set_out_cap(1, u32::MAX).unwrap();
        // Restore and verify.
        drv.restore(&snap).unwrap();
        assert_eq!(drv.period().unwrap(), 12_345);
        assert_eq!(drv.nominal_burst().unwrap(), 8);
        assert_eq!(drv.budget(0).unwrap(), 77);
        assert!(drv.is_decoupled(1).unwrap());
        assert_eq!(drv.regulation_window().unwrap(), 128);
        assert_eq!(drv.rate(0).unwrap(), 3);
        assert_eq!(drv.reg_burst(0).unwrap(), 5);
        assert_eq!(drv.out_cap(1).unwrap(), 2);
        assert_eq!(drv.snapshot().unwrap(), snap);
    }

    #[test]
    fn regulator_programming_over_the_bus() {
        let (bus, _hc) = bus_with_hc(2);
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        // Reset state: everything unlimited, default window.
        assert_eq!(drv.rate(0).unwrap(), u32::MAX);
        assert_eq!(drv.reg_burst(0).unwrap(), 1);
        assert_eq!(drv.out_cap(0).unwrap(), u32::MAX);
        assert_eq!(drv.throttle_events(0).unwrap(), 0);
        assert_eq!(
            drv.regulation_window().unwrap(),
            hyperconnect::regulate::DEFAULT_WINDOW
        );
        // Programs land and read back; the device clamps burst and
        // window to at least 1.
        drv.set_rate(1, 4).unwrap();
        drv.set_reg_burst(1, 0).unwrap();
        drv.set_out_cap(1, 6).unwrap();
        drv.set_regulation_window(0).unwrap();
        assert_eq!(drv.rate(1).unwrap(), 4);
        assert_eq!(drv.reg_burst(1).unwrap(), 1);
        assert_eq!(drv.out_cap(1).unwrap(), 6);
        assert_eq!(drv.regulation_window().unwrap(), 1);
        // Port 0 untouched by port-1 programming.
        assert_eq!(drv.rate(0).unwrap(), u32::MAX);
        // W1C clear is accepted on an idle counter.
        drv.clear_throttle_events(1).unwrap();
        assert_eq!(drv.throttle_events(1).unwrap(), 0);
        // Out-of-range ports are rejected like every other accessor.
        assert!(matches!(
            drv.set_rate(2, 1),
            Err(DriverError::BadPort { .. })
        ));
    }

    #[test]
    fn restore_rejects_mismatched_snapshot() {
        let (bus, _hc) = bus_with_hc(2);
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        let mut snap = drv.snapshot().unwrap();
        snap.ports.pop();
        assert!(matches!(
            drv.restore(&snap),
            Err(DriverError::BadPort { .. })
        ));
    }

    #[test]
    fn quiesce_request_drain_and_release() {
        use sim::Component;

        let (bus, mut hc) = bus_with_hc(2);
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        drv.request_quiesce(0).unwrap();
        let s = drv.quiesce_status(0).unwrap();
        assert!(s.requested && !s.drained && !s.force_flushed);
        // An idle port drains on the next cycle.
        hc.tick(0);
        assert!(drv.quiesce_status(0).unwrap().drained);
        drv.release_quiesce(0).unwrap();
        let s = drv.quiesce_status(0).unwrap();
        assert!(!s.requested && !s.drained);
    }

    #[test]
    fn reset_and_reattach_cycle_port_state() {
        use axi::types::BurstSize;
        use axi::{ArBeat, AxiInterconnect};
        use sim::Component;

        let (bus, mut hc) = bus_with_hc(2);
        hc.set_drain_model(hyperconnect::analysis::ServiceModel::hyperconnect(
            2, 16, 22,
        ));
        let drv = HcDriver::probe(&bus, BASE).unwrap();
        // Pile up pre-grant state that can never complete (no memory
        // model attached), then quiesce until the deadline blows.
        hc.port(0)
            .ar
            .push(0, ArBeat::new(0, 256, BurstSize::B4))
            .unwrap();
        for now in 0..6 {
            hc.tick(now);
        }
        drv.request_quiesce(0).unwrap();
        for now in 6..520 {
            hc.tick(now);
        }
        let s = drv.quiesce_status(0).unwrap();
        assert!(s.force_flushed && s.dropped_txns > 0);
        assert!(drv.is_decoupled(0).unwrap(), "flush decouples the port");
        // Reset clears the sticky state, keeps the port decoupled.
        drv.reset_port(0).unwrap();
        let s = drv.quiesce_status(0).unwrap();
        assert!(!s.requested && !s.force_flushed);
        assert_eq!(s.dropped_txns, 0);
        assert!(drv.is_decoupled(0).unwrap());
        // Reattach recouples.
        drv.reattach_port(0).unwrap();
        assert!(!drv.is_decoupled(0).unwrap());
    }

    #[test]
    fn error_display() {
        let e = DriverError::WrongDevice { found: 0x1 };
        assert!(e.to_string().contains("not a HyperConnect"));
        let e = DriverError::BadPort {
            port: 9,
            num_ports: 2,
        };
        assert!(e.to_string().contains("9"));
    }
}
