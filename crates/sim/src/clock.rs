//! Clock-domain bookkeeping: cycle counting and cycle/time conversion.

/// A simulation time point, measured in clock cycles since reset.
///
/// Cycles are plain `u64` values rather than a newtype: they participate in
/// arithmetic everywhere in the models, and a newtype would force a
/// conversion at nearly every use site without ruling out any real bug
/// class (there is only one clock domain in the modeled designs).
pub type Cycle = u64;

/// Description of the (single) clock domain driving a simulated design.
///
/// The paper's measurements are taken on the FPGA fabric clock of a Xilinx
/// ZCU102; all results in this reproduction are primarily reported in
/// cycles and converted to wall-clock time with a `ClockConfig` only for
/// presentation (frames per second, MB/s, ...).
///
/// # Example
///
/// ```
/// use sim::ClockConfig;
///
/// let clk = ClockConfig::new(150_000_000);
/// assert_eq!(clk.freq_hz(), 150_000_000);
/// // 150 cycles at 150 MHz is one microsecond.
/// assert!((clk.cycles_to_seconds(150) - 1e-6).abs() < 1e-15);
/// assert_eq!(clk.seconds_to_cycles(1e-6), 150);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockConfig {
    freq_hz: u64,
}

impl ClockConfig {
    /// Default fabric clock used throughout the reproduction: 150 MHz,
    /// a common Zynq UltraScale+ programmable-logic clock.
    pub const DEFAULT_FABRIC_HZ: u64 = 150_000_000;

    /// Creates a clock domain with the given frequency in Hertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero.
    pub fn new(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "clock frequency must be non-zero");
        Self { freq_hz }
    }

    /// The clock frequency in Hertz.
    pub fn freq_hz(&self) -> u64 {
        self.freq_hz
    }

    /// The clock period in seconds.
    pub fn period_seconds(&self) -> f64 {
        1.0 / self.freq_hz as f64
    }

    /// Converts a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: Cycle) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }

    /// Converts a duration in seconds to the nearest cycle count.
    pub fn seconds_to_cycles(&self, seconds: f64) -> Cycle {
        (seconds * self.freq_hz as f64).round() as Cycle
    }

    /// Throughput in bytes/second given bytes moved over a cycle span.
    ///
    /// Returns 0.0 for a zero-cycle span (no time has elapsed, throughput
    /// is undefined; 0.0 keeps report code branch-free).
    pub fn bytes_per_second(&self, bytes: u64, cycles: Cycle) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        bytes as f64 / self.cycles_to_seconds(cycles)
    }

    /// Events per second (e.g. frames/s, DMA jobs/s) over a cycle span.
    ///
    /// Returns 0.0 for a zero-cycle span.
    pub fn events_per_second(&self, events: u64, cycles: Cycle) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        events as f64 / self.cycles_to_seconds(cycles)
    }
}

impl Default for ClockConfig {
    fn default() -> Self {
        Self::new(Self::DEFAULT_FABRIC_HZ)
    }
}

impl crate::persist::PersistValue for ClockConfig {
    fn save_value(&self, w: &mut crate::persist::SnapshotWriter) {
        w.put_u64(self.freq_hz);
    }
    fn load_value(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        let freq_hz = r.take_u64()?;
        if freq_hz == 0 {
            return Err(crate::persist::PersistError::Corrupt(
                "zero clock frequency",
            ));
        }
        Ok(Self { freq_hz })
    }
}

impl std::fmt::Display for ClockConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} MHz", self.freq_hz as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_150mhz() {
        assert_eq!(ClockConfig::default().freq_hz(), 150_000_000);
    }

    #[test]
    fn period_matches_frequency() {
        let clk = ClockConfig::new(100_000_000);
        assert!((clk.period_seconds() - 10e-9).abs() < 1e-18);
    }

    #[test]
    fn roundtrip_cycles_seconds() {
        let clk = ClockConfig::new(200_000_000);
        for cycles in [0u64, 1, 7, 1_000_000] {
            let s = clk.cycles_to_seconds(cycles);
            assert_eq!(clk.seconds_to_cycles(s), cycles);
        }
    }

    #[test]
    fn bytes_per_second_zero_span_is_zero() {
        let clk = ClockConfig::default();
        assert_eq!(clk.bytes_per_second(1024, 0), 0.0);
    }

    #[test]
    fn bytes_per_second_full_rate() {
        // 16 bytes per cycle at 150 MHz = 2.4 GB/s.
        let clk = ClockConfig::default();
        let bps = clk.bytes_per_second(16 * 1000, 1000);
        assert!((bps - 2.4e9).abs() < 1.0);
    }

    #[test]
    fn events_per_second() {
        let clk = ClockConfig::new(150_000_000);
        // 30 events over one simulated second.
        let eps = clk.events_per_second(30, 150_000_000);
        assert!((eps - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = ClockConfig::new(0);
    }

    #[test]
    fn display_mentions_mhz() {
        assert_eq!(ClockConfig::default().to_string(), "150.0 MHz");
    }
}
