//! A contiguous power-of-two ring buffer — the flat storage kernel under
//! every queue in the simulator.
//!
//! [`Ring`] replaces the `std::collections::VecDeque` previously used by
//! [`TimedFifo`](crate::TimedFifo) and friends. The differences that
//! matter for the hot path:
//!
//! * **Contiguous slots, index arithmetic only.** Elements live in a
//!   single `Vec` whose length is always a power of two, so head/tail
//!   wrap is a mask, not a division, and iteration touches adjacent
//!   memory.
//! * **Zero steady-state allocation.** The slot array grows by doubling
//!   (amortized O(1), at most `log2(capacity)` grows over a queue's
//!   lifetime) and never shrinks; once a queue has reached its working
//!   occupancy, pushes and pops allocate nothing.
//! * **Index handles.** `front`/`front_mut`/`get` expose slot access by
//!   logical index so bookkeeping layers (EXBAR write routing, split
//!   queues) can update entries in place instead of pop/clone/push.
//!
//! The ring is deliberately *unbounded* — capacity policy (AXI
//! back-pressure) belongs to the wrapping queue, which checks `len()`
//! against its configured bound before pushing.

/// A growable FIFO ring buffer over contiguous power-of-two storage.
///
/// # Example
///
/// ```
/// use sim::ring::Ring;
///
/// let mut r: Ring<u32> = Ring::new();
/// r.push_back(1);
/// r.push_back(2);
/// assert_eq!(r.front(), Some(&1));
/// assert_eq!(r.pop_front(), Some(1));
/// assert_eq!(r.pop_front(), Some(2));
/// assert_eq!(r.pop_front(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Ring<T> {
    /// Slot storage; `slots.len()` is zero or a power of two.
    slots: Vec<Option<T>>,
    /// Index of the logical front element.
    head: usize,
    /// Number of occupied slots.
    len: usize,
}

impl<T> Default for Ring<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Ring<T> {
    /// Creates an empty ring with no storage; the first push allocates.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            head: 0,
            len: 0,
        }
    }

    /// Creates an empty ring pre-sized to hold at least `hint` elements
    /// without growing (rounded up to a power of two).
    pub fn with_capacity(hint: usize) -> Self {
        let mut r = Self::new();
        if hint > 0 {
            r.grow_to(hint.next_power_of_two());
        }
        r
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot-array size (elements the ring can hold without
    /// growing). Zero until the first push or capacity hint.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn mask(&self) -> usize {
        debug_assert!(self.slots.len().is_power_of_two());
        self.slots.len() - 1
    }

    /// Re-lays the ring out into a fresh slot array of `new_size`
    /// (a power of two), front element at index 0.
    fn grow_to(&mut self, new_size: usize) {
        debug_assert!(new_size.is_power_of_two() && new_size >= self.len);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(new_size);
        if self.slots.is_empty() {
            slots.resize_with(new_size, || None);
        } else {
            let mask = self.mask();
            for i in 0..self.len {
                slots.push(self.slots[(self.head + i) & mask].take());
            }
            slots.resize_with(new_size, || None);
        }
        self.slots = slots;
        self.head = 0;
    }

    /// Appends an element at the back, growing the slot array (by
    /// doubling) if it is full.
    pub fn push_back(&mut self, item: T) {
        if self.len == self.slots.len() {
            let next = (self.slots.len() * 2).max(8);
            self.grow_to(next);
        }
        let tail = (self.head + self.len) & self.mask();
        debug_assert!(self.slots[tail].is_none());
        self.slots[tail] = Some(item);
        self.len += 1;
    }

    /// Removes and returns the front element.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.slots[self.head].take();
        debug_assert!(item.is_some());
        self.head = (self.head + 1) & self.mask();
        self.len -= 1;
        item
    }

    /// Borrows the front element.
    pub fn front(&self) -> Option<&T> {
        self.get(0)
    }

    /// Mutably borrows the front element.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.get_mut(0)
    }

    /// Borrows the back element.
    pub fn back(&self) -> Option<&T> {
        self.len.checked_sub(1).and_then(|i| self.get(i))
    }

    /// Borrows the element at logical index `i` (0 = front).
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        self.slots[(self.head + i) & self.mask()].as_ref()
    }

    /// Mutably borrows the element at logical index `i` (0 = front).
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        if i >= self.len {
            return None;
        }
        let mask = self.mask();
        self.slots[(self.head + i) & mask].as_mut()
    }

    /// Iterates front-to-back over all queued elements.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).map(move |i| {
            self.slots[(self.head + i) & (self.slots.len() - 1)]
                .as_ref()
                .expect("occupied ring slot")
        })
    }

    /// Removes every element, dropping each; slot storage is retained.
    pub fn clear(&mut self) {
        while self.pop_front().is_some() {}
    }
}

impl<T: crate::persist::PersistValue> crate::persist::PersistValue for Ring<T> {
    /// Serializes elements in *logical* order (front to back), never in
    /// slot-storage order: two rings holding the same queue at different
    /// head offsets (e.g. one freshly grown, one wrapped) produce
    /// identical bytes. `head` and spare slot capacity are allocation
    /// details, not state.
    fn save_value(&self, w: &mut crate::persist::SnapshotWriter) {
        w.put_usize(self.len);
        for item in self.iter() {
            item.save_value(w);
        }
    }

    fn load_value(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        let len = r.take_usize()?;
        let mut ring = Ring::with_capacity(len);
        for _ in 0..len {
            ring.push_back(T::load_value(r)?);
        }
        Ok(ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_with_no_storage() {
        let r: Ring<u8> = Ring::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.slot_capacity(), 0);
        assert_eq!(r.front(), None);
        assert_eq!(r.back(), None);
    }

    #[test]
    fn fifo_order_across_growth() {
        let mut r = Ring::new();
        for i in 0..100u32 {
            r.push_back(i);
        }
        assert!(r.slot_capacity().is_power_of_two());
        for i in 0..100u32 {
            assert_eq!(r.pop_front(), Some(i));
        }
        assert_eq!(r.pop_front(), None);
    }

    #[test]
    fn wraps_without_growing_in_steady_state() {
        let mut r = Ring::with_capacity(4);
        let cap = r.slot_capacity();
        for round in 0..1000u32 {
            r.push_back(round);
            r.push_back(round + 1);
            assert_eq!(r.pop_front(), Some(round));
            assert_eq!(r.pop_front(), Some(round + 1));
        }
        assert_eq!(r.slot_capacity(), cap, "steady state must not grow");
    }

    #[test]
    fn growth_preserves_order_when_wrapped() {
        let mut r = Ring::with_capacity(4);
        // Advance head so the live region wraps, then force a grow.
        for i in 0..3u32 {
            r.push_back(i);
        }
        r.pop_front();
        r.pop_front();
        for i in 3..12u32 {
            r.push_back(i);
        }
        let seen: Vec<_> = r.iter().copied().collect();
        assert_eq!(seen, (2..12).collect::<Vec<_>>());
    }

    #[test]
    fn index_access_and_in_place_mutation() {
        let mut r = Ring::new();
        r.push_back(10u32);
        r.push_back(20);
        r.push_back(30);
        assert_eq!(r.get(1), Some(&20));
        assert_eq!(r.get(3), None);
        *r.front_mut().unwrap() += 1;
        *r.get_mut(2).unwrap() += 1;
        assert_eq!(r.pop_front(), Some(11));
        assert_eq!(r.back(), Some(&31));
    }

    #[test]
    fn clear_drops_everything_but_keeps_storage() {
        let mut r = Ring::with_capacity(8);
        let cap = r.slot_capacity();
        for i in 0..5u32 {
            r.push_back(i);
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.slot_capacity(), cap);
        r.push_back(99);
        assert_eq!(r.pop_front(), Some(99));
    }
}
