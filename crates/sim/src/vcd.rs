//! A minimal Value Change Dump (VCD, IEEE 1364) writer.
//!
//! Lets the behavioral models dump waveforms that standard EDA viewers
//! (GTKWave, Surfer, ...) open directly — handy when debugging handshake
//! or arbitration timing the way one would on the real RTL.
//!
//! The writer is deliberately small: scalar wires and vector buses,
//! one timescale, value changes deduplicated per signal.
//!
//! # Example
//!
//! ```
//! use sim::vcd::VcdWriter;
//!
//! let mut vcd = VcdWriter::new("hyperconnect");
//! let valid = vcd.add_wire("ar_valid");
//! let addr = vcd.add_bus("ar_addr", 32);
//! vcd.change_wire(0, valid, true);
//! vcd.change_bus(0, addr, 0x1000);
//! vcd.change_wire(1, valid, false);
//! let dump = vcd.render();
//! assert!(dump.contains("$timescale"));
//! assert!(dump.contains("ar_valid"));
//! ```

use crate::clock::Cycle;

/// Handle to a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

#[derive(Debug, Clone)]
struct Signal {
    name: String,
    width: u32,
    code: String,
    last: Option<u64>,
}

#[derive(Debug, Clone)]
struct Change {
    time: Cycle,
    signal: usize,
    value: u64,
}

/// An in-memory VCD builder; call [`VcdWriter::render`] to produce the
/// file contents.
#[derive(Debug, Clone)]
pub struct VcdWriter {
    module: String,
    signals: Vec<Signal>,
    changes: Vec<Change>,
}

/// Generates the short ASCII identifier code for signal `i`.
fn id_code(mut i: usize) -> String {
    // Printable ASCII 33..=126, base-94, as real tools emit.
    let mut code = String::new();
    loop {
        code.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    code
}

impl VcdWriter {
    /// Creates a writer for one module scope, timescale 1 ns per cycle
    /// step (the viewer's x-axis is in cycles).
    pub fn new(module: impl Into<String>) -> Self {
        Self {
            module: module.into(),
            signals: Vec::new(),
            changes: Vec::new(),
        }
    }

    /// Declares a 1-bit wire.
    pub fn add_wire(&mut self, name: impl Into<String>) -> SignalId {
        self.add_bus(name, 1)
    }

    /// Declares a `width`-bit bus (at most 64 bits).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn add_bus(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        assert!((1..=64).contains(&width), "bus width must be 1–64 bits");
        let idx = self.signals.len();
        self.signals.push(Signal {
            name: name.into(),
            width,
            code: id_code(idx),
            last: None,
        });
        SignalId(idx)
    }

    /// Records a wire change at `time` (deduplicated: unchanged values
    /// are dropped).
    pub fn change_wire(&mut self, time: Cycle, id: SignalId, value: bool) {
        self.change_bus(time, id, value as u64);
    }

    /// Records a bus change at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared by this writer.
    pub fn change_bus(&mut self, time: Cycle, id: SignalId, value: u64) {
        let signal = &mut self.signals[id.0];
        if signal.last == Some(value) {
            return;
        }
        signal.last = Some(value);
        self.changes.push(Change {
            time,
            signal: id.0,
            value,
        });
    }

    /// Number of recorded (deduplicated) changes.
    pub fn num_changes(&self) -> usize {
        self.changes.len()
    }

    /// Renders the complete VCD file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("$date reproduction run $end\n");
        out.push_str("$version axi-hyperconnect sim $end\n");
        out.push_str("$timescale 1ns $end\n");
        out.push_str(&format!("$scope module {} $end\n", self.module));
        for s in &self.signals {
            out.push_str(&format!(
                "$var wire {} {} {} $end\n",
                s.width, s.code, s.name
            ));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        // Changes must be grouped by non-decreasing time.
        let mut sorted: Vec<&Change> = self.changes.iter().collect();
        sorted.sort_by_key(|c| c.time);
        let mut current_time: Option<Cycle> = None;
        for c in sorted {
            if current_time != Some(c.time) {
                out.push_str(&format!("#{}\n", c.time));
                current_time = Some(c.time);
            }
            let s = &self.signals[c.signal];
            if s.width == 1 {
                out.push_str(&format!("{}{}\n", c.value & 1, s.code));
            } else {
                out.push_str(&format!("b{:b} {}\n", c.value, s.code));
            }
        }
        out
    }
}

impl crate::persist::PersistValue for VcdWriter {
    /// Serializes declarations *and* accumulated changes plus each
    /// signal's dedup state (`last`), so a restored writer continues
    /// appending — and later [`render`](VcdWriter::render)s — exactly as
    /// the uninterrupted one would.
    fn save_value(&self, w: &mut crate::persist::SnapshotWriter) {
        w.put_str(&self.module);
        w.put_usize(self.signals.len());
        for s in &self.signals {
            w.put_str(&s.name);
            w.put_u32(s.width);
            s.last.save_value(w);
        }
        w.put_usize(self.changes.len());
        for c in &self.changes {
            w.put_u64(c.time);
            w.put_usize(c.signal);
            w.put_u64(c.value);
        }
    }

    fn load_value(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        let module = r.take_str()?;
        let n_signals = r.take_usize()?;
        let mut signals = Vec::with_capacity(n_signals.min(4096));
        for idx in 0..n_signals {
            let name = r.take_str()?;
            let width = r.take_u32()?;
            if !(1..=64).contains(&width) {
                return Err(PersistError::Corrupt("vcd bus width"));
            }
            let last = Option::load_value(r)?;
            signals.push(Signal {
                name,
                width,
                code: id_code(idx),
                last,
            });
        }
        let n_changes = r.take_usize()?;
        let mut changes = Vec::with_capacity(n_changes.min(1 << 20));
        for _ in 0..n_changes {
            let time = r.take_u64()?;
            let signal = r.take_usize()?;
            if signal >= signals.len() {
                return Err(PersistError::Corrupt("vcd change signal index"));
            }
            changes.push(Change {
                time,
                signal,
                value: r.take_u64()?,
            });
        }
        Ok(Self {
            module,
            signals,
            changes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let codes: Vec<String> = (0..500).map(id_code).collect();
        let set: std::collections::HashSet<&String> = codes.iter().collect();
        assert_eq!(set.len(), codes.len());
        for code in &codes {
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }

    #[test]
    fn header_declares_all_signals() {
        let mut v = VcdWriter::new("top");
        v.add_wire("valid");
        v.add_bus("addr", 32);
        let dump = v.render();
        assert!(dump.contains("$scope module top $end"));
        assert!(dump.contains("$var wire 1 ! valid $end"));
        assert!(dump.contains("$var wire 32 \" addr $end"));
        assert!(dump.contains("$enddefinitions $end"));
    }

    #[test]
    fn changes_grouped_by_time_and_deduplicated() {
        let mut v = VcdWriter::new("m");
        let w = v.add_wire("w");
        v.change_wire(0, w, true);
        v.change_wire(1, w, true); // duplicate: dropped
        v.change_wire(2, w, false);
        assert_eq!(v.num_changes(), 2);
        let dump = v.render();
        let body = dump.split("$enddefinitions $end\n").nth(1).unwrap();
        assert_eq!(body, "#0\n1!\n#2\n0!\n");
    }

    #[test]
    fn bus_values_render_binary() {
        let mut v = VcdWriter::new("m");
        let b = v.add_bus("data", 8);
        v.change_bus(5, b, 0xA5);
        let dump = v.render();
        assert!(dump.contains("#5\nb10100101 !\n"));
    }

    #[test]
    fn out_of_order_times_are_sorted() {
        let mut v = VcdWriter::new("m");
        let a = v.add_wire("a");
        let b = v.add_wire("b");
        v.change_wire(10, a, true);
        v.change_wire(3, b, true);
        let dump = v.render();
        let pos3 = dump.find("#3").unwrap();
        let pos10 = dump.find("#10").unwrap();
        assert!(pos3 < pos10);
    }

    #[test]
    #[should_panic(expected = "1–64")]
    fn oversized_bus_panics() {
        let mut v = VcdWriter::new("m");
        let _ = v.add_bus("x", 65);
    }
}
