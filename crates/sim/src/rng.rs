//! Deterministic random number generation for reproducible experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG with the handful of draw shapes the models need.
///
/// Every experiment in the benchmark harness constructs its `SimRng` from
/// an explicit seed so that reported numbers are exactly reproducible.
///
/// # Example
///
/// ```
/// use sim::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.range_u64(0, 100), b.range_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform `u64` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty slice");
        self.inner.gen_range(0..len)
    }

    /// A geometric-ish random gap: a uniform draw in `[1, 2*mean]`, used
    /// for random inter-arrival gaps with a given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn gap(&mut self, mean: u64) -> u64 {
        assert!(mean > 0, "mean gap must be non-zero");
        self.inner.gen_range(1..=mean * 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let sa: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX)).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..=20).contains(&v));
            let u = r.range_usize(0, 5);
            assert!(u <= 5);
        }
    }

    #[test]
    fn degenerate_range() {
        let mut r = SimRng::seed(4);
        assert_eq!(r.range_u64(7, 7), 7);
        assert_eq!(r.index(1), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn gap_within_bounds() {
        let mut r = SimRng::seed(6);
        for _ in 0..1000 {
            let g = r.gap(8);
            assert!((1..=16).contains(&g));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        let mut r = SimRng::seed(7);
        let _ = r.range_u64(5, 4);
    }
}
