//! Deterministic random number generation for reproducible experiments.
//!
//! The generator is a self-contained xoshiro256++ seeded through
//! SplitMix64 — no external crates, identical sequences on every
//! platform and toolchain, which is exactly what the benchmark harness
//! and the deflaked stress tests need.

/// A seeded RNG with the handful of draw shapes the models need.
///
/// Every experiment in the benchmark harness constructs its `SimRng` from
/// an explicit seed so that reported numbers are exactly reproducible.
///
/// # Example
///
/// ```
/// use sim::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.range_u64(0, 100), b.range_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    /// Raw 64-bit outputs consumed so far — the *stream position*.
    ///
    /// Recorded in campaign summaries so a scenario derived from a seed
    /// can be resumed/re-derived reproducibly: a fresh `SimRng` with the
    /// same seed reaches the identical state after the same number of
    /// draws.
    draws: u64,
}

/// SplitMix64 step — expands a 64-bit seed into the xoshiro state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
            draws: 0,
        }
    }

    /// Number of raw 64-bit outputs this generator has produced since
    /// seeding — its position in the random stream. Deterministic for a
    /// given seed and draw sequence (rejection sampling included), so it
    /// doubles as a reproducibility checksum in campaign summaries.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// One raw xoshiro256++ output.
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        self.state = [n0, n1, n2, n3.rotate_left(45)];
        self.draws += 1;
        result
    }

    /// A uniform draw in `[0, bound)` via Lemire-style rejection.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling on the top bits: unbiased and cheap.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// A uniform `u64` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.bounded(span + 1)
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range");
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return true;
        }
        // Compare against a 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty slice");
        self.bounded(len as u64) as usize
    }

    /// A geometric-ish random gap: a uniform draw in `[1, 2*mean]`, used
    /// for random inter-arrival gaps with a given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn gap(&mut self, mean: u64) -> u64 {
        assert!(mean > 0, "mean gap must be non-zero");
        self.range_u64(1, mean * 2)
    }
}

impl crate::persist::PersistValue for SimRng {
    fn save_value(&self, w: &mut crate::persist::SnapshotWriter) {
        self.state.save_value(w);
        w.put_u64(self.draws);
    }

    fn load_value(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        Ok(Self {
            state: <[u64; 4]>::load_value(r)?,
            draws: r.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let sa: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX)).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seed(3);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..=20).contains(&v));
            let u = r.range_usize(0, 5);
            assert!(u <= 5);
        }
    }

    #[test]
    fn degenerate_range() {
        let mut r = SimRng::seed(4);
        assert_eq!(r.range_u64(7, 7), 7);
        assert_eq!(r.index(1), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn gap_within_bounds() {
        let mut r = SimRng::seed(6);
        for _ in 0..1000 {
            let g = r.gap(8);
            assert!((1..=16).contains(&g));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        let mut r = SimRng::seed(7);
        let _ = r.range_u64(5, 4);
    }

    #[test]
    fn draws_counts_stream_position_deterministically() {
        let mut a = SimRng::seed(11);
        let mut b = SimRng::seed(11);
        assert_eq!(a.draws(), 0);
        for _ in 0..100 {
            let _ = a.range_u64(0, 6); // rejection sampling may redraw
            let _ = b.range_u64(0, 6);
        }
        assert!(a.draws() >= 100);
        assert_eq!(a.draws(), b.draws(), "position is seed-deterministic");
    }

    #[test]
    fn persist_roundtrip_resumes_identical_stream() {
        use crate::persist::{PersistValue, SnapshotReader, SnapshotWriter};
        let mut rng = SimRng::seed(99);
        for _ in 0..37 {
            let _ = rng.range_u64(0, 1000);
        }
        let mut w = SnapshotWriter::new();
        rng.save_value(&mut w);
        let bytes = w.into_bytes();
        let mut restored = SimRng::load_value(&mut SnapshotReader::new(&bytes)).unwrap();
        assert_eq!(restored.draws(), rng.draws());
        for _ in 0..100 {
            assert_eq!(restored.range_u64(0, 1 << 62), rng.range_u64(0, 1 << 62));
        }
    }

    #[test]
    fn distribution_covers_range() {
        let mut r = SimRng::seed(8);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
