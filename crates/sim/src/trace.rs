//! Bounded in-memory event tracing for debugging simulated designs.

use std::collections::VecDeque;

use crate::clock::Cycle;

/// One traced event: a cycle, a static source label and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: Cycle,
    /// Which model emitted the event (e.g. `"exbar"`, `"ts[0]"`).
    pub source: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>10}] {:<12} {}",
            self.cycle, self.source, self.message
        )
    }
}

/// A ring buffer of [`TraceEvent`]s.
///
/// Tracing is off by default; models call [`Tracer::emit`]
/// unconditionally and the disabled path is a single branch. When the
/// buffer overflows, the *oldest* events are dropped (the most recent
/// history is what matters when diagnosing a stall).
///
/// # Example
///
/// ```
/// use sim::trace::Tracer;
///
/// let mut t = Tracer::enabled(2);
/// t.emit(1, "exbar", "grant port 0");
/// t.emit(2, "exbar", "grant port 1");
/// t.emit(3, "exbar", "grant port 0");
/// assert_eq!(t.dropped(), 1); // oldest event evicted
/// let lines = t.dump();
/// // Eviction is surfaced, not silent: a notice line leads the dump.
/// assert_eq!(lines.len(), 3);
/// assert!(lines[0].contains("1 older event(s) dropped"));
/// assert!(lines[1].contains("grant port 1"));
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Tracer {
    /// Creates a disabled tracer (zero overhead beyond one branch).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            capacity: 0,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Creates an enabled tracer retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be non-zero");
        Self {
            enabled: true,
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled; otherwise does nothing.
    pub fn emit(&mut self, cycle: Cycle, source: &str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            cycle,
            source: source.to_owned(),
            message: message.into(),
        });
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Formats all retained events, oldest first.
    ///
    /// When older events were evicted due to capacity, the first line is
    /// a notice stating how many were dropped — a truncated trace must
    /// never read as a complete one.
    pub fn dump(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.events.len() + 1);
        if self.dropped > 0 {
            lines.push(format!(
                "[{:>10}] {:<12} {} older event(s) dropped (capacity {})",
                "...", "tracer", self.dropped, self.capacity
            ));
        }
        lines.extend(self.events.iter().map(|e| e.to_string()));
        lines
    }

    /// Clears retained events (the dropped counter is preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl crate::persist::PersistValue for TraceEvent {
    fn save_value(&self, w: &mut crate::persist::SnapshotWriter) {
        w.put_u64(self.cycle);
        w.put_str(&self.source);
        w.put_str(&self.message);
    }

    fn load_value(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        Ok(Self {
            cycle: r.take_u64()?,
            source: r.take_str()?,
            message: r.take_str()?,
        })
    }
}

impl crate::persist::PersistValue for Tracer {
    fn save_value(&self, w: &mut crate::persist::SnapshotWriter) {
        w.put_bool(self.enabled);
        w.put_usize(self.capacity);
        w.put_u64(self.dropped);
        w.put_usize(self.events.len());
        for e in &self.events {
            e.save_value(w);
        }
    }

    fn load_value(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        let enabled = r.take_bool()?;
        let capacity = r.take_usize()?;
        let dropped = r.take_u64()?;
        let len = r.take_usize()?;
        let mut events = VecDeque::with_capacity(len.min(4096));
        for _ in 0..len {
            events.push_back(TraceEvent::load_value(r)?);
        }
        if enabled && capacity == 0 {
            return Err(crate::persist::PersistError::Corrupt(
                "enabled tracer with zero capacity",
            ));
        }
        Ok(Self {
            enabled,
            capacity,
            events,
            dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.emit(1, "x", "hello");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let mut t = Tracer::enabled(8);
        t.emit(1, "a", "first");
        t.emit(2, "b", "second");
        let events: Vec<_> = t.iter().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].cycle, 1);
        assert_eq!(events[1].source, "b");
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut t = Tracer::enabled(3);
        for c in 0..5u64 {
            t.emit(c, "s", format!("e{c}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.iter().next().unwrap();
        assert_eq!(first.message, "e2");
    }

    #[test]
    fn dump_surfaces_dropped_events() {
        // Regression: dump() used to return only the retained events,
        // silently hiding that older ones had been evicted.
        let mut t = Tracer::enabled(3);
        for c in 0..5u64 {
            t.emit(c, "s", format!("e{c}"));
        }
        let lines = t.dump();
        assert_eq!(lines.len(), 4, "{lines:?}");
        assert!(lines[0].contains("2 older event(s) dropped"));
        assert!(lines[1].contains("e2"));
        // No eviction: no notice line.
        let mut t = Tracer::enabled(8);
        t.emit(0, "s", "only");
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.dump().len(), 1);
    }

    #[test]
    fn clear_preserves_dropped_counter() {
        let mut t = Tracer::enabled(1);
        t.emit(0, "s", "a");
        t.emit(1, "s", "b");
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            cycle: 42,
            source: "exbar".into(),
            message: "grant".into(),
        };
        let s = e.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("exbar"));
        assert!(s.contains("grant"));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Tracer::enabled(0);
    }
}
