//! Cycle-based simulation kernel for the AXI HyperConnect reproduction.
//!
//! This crate provides the minimal, deterministic building blocks used by
//! every behavioral model in the workspace:
//!
//! * [`TimedFifo`] — a bounded queue whose entries become visible a fixed
//!   number of cycles after they are pushed. A `TimedFifo` with latency 1
//!   models a pipeline register (or the paper's *proactive circular
//!   buffer*, which accepts data every cycle and exposes it one cycle
//!   later); a `TimedFifo` with latency 0 models a combinational wire with
//!   storage.
//! * [`Runner`] — drives a [`Component`] cycle by cycle until a predicate
//!   holds, with deadlock detection based on progress reporting.
//! * Statistics ([`stats::Counter`], [`stats::LatencyStat`],
//!   [`stats::Histogram`], [`stats::BandwidthMeter`]) used to produce the
//!   numbers reported in the paper's figures.
//! * [`SimRng`] — a seeded RNG wrapper so every experiment is reproducible.
//! * [`trace::Tracer`] — a bounded in-memory event trace for debugging.
//!
//! # Example
//!
//! ```
//! use sim::TimedFifo;
//!
//! // A pipeline register: pushed at cycle 10, visible at cycle 11.
//! let mut reg: TimedFifo<u32> = TimedFifo::new(4, 1);
//! reg.push(10, 42).unwrap();
//! assert_eq!(reg.pop_ready(10), None);
//! assert_eq!(reg.pop_ready(11), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod fifo;
pub mod parallel;
pub mod persist;
pub mod ring;
pub mod rng;
pub mod runner;
pub mod stats;
pub mod trace;
pub mod vcd;

pub use clock::{ClockConfig, Cycle};
pub use fifo::{FifoFull, TimedFifo};
pub use parallel::{EngineReport, RunOptions, ShardTask, ShardedEngine, WindowReport};
pub use persist::{Persist, PersistError, PersistValue, Snapshot, SnapshotReader, SnapshotWriter};
pub use ring::Ring;
pub use rng::SimRng;
pub use runner::{Component, RunOutcome, Runner, StallDiagnostics};
