//! Timed FIFO queues — the basic storage/pipelining element of all models.
//!
//! Both queue types here are thin timing-policy layers over the flat
//! power-of-two [`Ring`]: contiguous slots, mask
//! arithmetic for wrap, and zero heap allocation once a queue has
//! reached its working occupancy. There is deliberately no `VecDeque`
//! anywhere on the per-cycle path.

use crate::clock::Cycle;
use crate::ring::Ring;

/// Error returned by [`TimedFifo::push`] when the queue is at capacity.
///
/// The rejected element is handed back to the caller so it can be retried
/// on a later cycle (AXI back-pressure: `READY` deasserted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFull<T>(pub T);

impl<T> std::fmt::Display for FifoFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fifo is full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for FifoFull<T> {}

/// A bounded FIFO whose entries become visible `latency` cycles after the
/// cycle they were pushed.
///
/// `TimedFifo` is the workhorse of the cycle-level models:
///
/// * latency 1, capacity ≥ 1 — a pipeline register / the paper's
///   *proactive circular buffer* (always ready to accept while not full,
///   output valid one clock later);
/// * latency 0 — a combinational skid buffer;
/// * larger latencies — fixed-delay pipes (e.g. a DRAM access pipe).
///
/// All mutating operations take the current cycle `now` explicitly, which
/// keeps components order-independent within a simulation tick: an element
/// pushed at cycle `t` can never be observed before `t + latency`,
/// regardless of the order in which components are ticked.
///
/// Storage is a contiguous power-of-two ring ([`Ring`]): slots grow by
/// doubling up to the configured capacity and are then reused forever,
/// so steady-state push/pop performs no heap allocation.
///
/// # Example
///
/// ```
/// use sim::TimedFifo;
///
/// let mut pipe: TimedFifo<&str> = TimedFifo::new(2, 1);
/// pipe.push(0, "a").unwrap();
/// pipe.push(0, "b").unwrap();
/// // Full: capacity 2.
/// assert!(pipe.push(0, "c").is_err());
/// // Nothing visible in the push cycle...
/// assert_eq!(pipe.pop_ready(0), None);
/// // ...both visible (in order) one cycle later.
/// assert_eq!(pipe.pop_ready(1), Some("a"));
/// assert_eq!(pipe.pop_ready(1), Some("b"));
/// ```
#[derive(Debug, Clone)]
pub struct TimedFifo<T> {
    entries: Ring<(Cycle, T)>,
    capacity: usize,
    latency: Cycle,
    /// Total number of elements ever pushed (for occupancy statistics).
    pushed: u64,
    /// Total number of elements ever popped.
    popped: u64,
    /// High-water mark of occupancy.
    max_occupancy: usize,
}

impl<T> TimedFifo<T> {
    /// Creates a FIFO with the given capacity (elements) and latency
    /// (cycles between push and earliest visibility).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, latency: Cycle) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        // Storage starts small and doubles toward `capacity` on demand:
        // queues that run at low occupancy (the common case — a couple
        // of beats in flight) keep their slot array inside a few cache
        // lines instead of round-robining the full configured depth.
        Self {
            entries: Ring::new(),
            capacity,
            latency,
            pushed: 0,
            popped: 0,
            max_occupancy: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Current number of queued elements (visible or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue holds no elements at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a push would currently be rejected.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Free slots available for pushing this cycle.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Pushes an element at cycle `now`; it becomes visible at
    /// `now + latency`.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] carrying the element back if the queue is at
    /// capacity (models de-asserted `READY`).
    pub fn push(&mut self, now: Cycle, item: T) -> Result<(), FifoFull<T>> {
        if self.is_full() {
            return Err(FifoFull(item));
        }
        self.entries.push_back((now + self.latency, item));
        self.pushed += 1;
        self.max_occupancy = self.max_occupancy.max(self.entries.len());
        Ok(())
    }

    /// Whether the head element exists and is visible at cycle `now`.
    pub fn has_ready(&self, now: Cycle) -> bool {
        matches!(self.entries.front(), Some((ready_at, _)) if *ready_at <= now)
    }

    /// Borrows the head element if it is visible at cycle `now`.
    pub fn peek_ready(&self, now: Cycle) -> Option<&T> {
        match self.entries.front() {
            Some((ready_at, item)) if *ready_at <= now => Some(item),
            _ => None,
        }
    }

    /// Removes and returns the head element if it is visible at cycle
    /// `now`; `None` if the queue is empty or the head is still in flight.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.has_ready(now) {
            self.popped += 1;
            self.entries.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Number of elements visible (poppable) at cycle `now`.
    pub fn ready_len(&self, now: Cycle) -> usize {
        self.entries
            .iter()
            .take_while(|(ready_at, _)| *ready_at <= now)
            .count()
    }

    /// Removes every element regardless of visibility, resetting the
    /// queue to empty (models a synchronous flush/reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Total elements pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total elements popped over the queue's lifetime.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Highest occupancy ever observed (for buffer sizing studies).
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Iterates over all queued elements in order, oldest first,
    /// including ones not yet visible.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|(_, item)| item)
    }

    /// The cycle at which the head element becomes (or became) visible,
    /// or `None` if the queue is empty. Used by event-horizon scheduling
    /// to compute the earliest cycle anything new can happen.
    pub fn next_ready_at(&self) -> Option<Cycle> {
        self.entries.front().map(|(ready_at, _)| *ready_at)
    }

    /// Pushes an element with an explicit visibility cycle, bypassing the
    /// queue's configured latency.
    ///
    /// This exists so a queue's in-flight contents can be migrated into
    /// another queue (possibly with a different latency) without
    /// disturbing each element's original schedule — e.g. when a bridge
    /// is split across simulation shards mid-run. Counted in
    /// [`total_pushed`](Self::total_pushed) like a normal push.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] carrying the element back if the queue is at
    /// capacity.
    pub fn push_scheduled(&mut self, ready_at: Cycle, item: T) -> Result<(), FifoFull<T>> {
        if self.is_full() {
            return Err(FifoFull(item));
        }
        self.entries.push_back((ready_at, item));
        self.pushed += 1;
        self.max_occupancy = self.max_occupancy.max(self.entries.len());
        Ok(())
    }

    /// Overwrites this queue's lifetime counters (`total_pushed`,
    /// `total_popped`, `max_occupancy`) with `src`'s.
    ///
    /// The companion of [`push_scheduled`](Self::push_scheduled) /
    /// [`drain_scheduled`](Self::drain_scheduled): an engine that
    /// rebuilds a pipe around migrated in-flight contents (e.g.
    /// splitting a bridge at a shard boundary mid-run) must also carry
    /// the original pipe's history, or the rebuilt pipe restarts its
    /// counters from the migrated occupancy alone and a later state
    /// comparison against an unsplit run diverges.
    pub fn inherit_lifetime_stats(&mut self, src: &Self) {
        self.pushed = src.pushed;
        self.popped = src.popped;
        self.max_occupancy = src.max_occupancy;
    }

    /// Removes every element regardless of visibility and returns each
    /// with the cycle at which it becomes (or became) visible, oldest
    /// first. The counterpart of [`push_scheduled`](Self::push_scheduled)
    /// for migrating in-flight contents between queues. Not counted as
    /// pops (the elements are moving, not being consumed).
    pub fn drain_scheduled(&mut self) -> Vec<(Cycle, T)> {
        let mut out = Vec::with_capacity(self.entries.len());
        while let Some(entry) = self.entries.pop_front() {
            out.push(entry);
        }
        out
    }
}

/// A bounded FIFO whose entries each carry their *own* delay, fixed at
/// push time.
///
/// Where [`TimedFifo`] models a fixed-latency pipe, `DelayQueue` models
/// a service stage whose per-item latency varies — e.g. a DRAM bank
/// whose access time depends on whether the row buffer hits. Ordering
/// is still strictly FIFO: a short-delay entry behind a long-delay one
/// waits for it (in-order service).
///
/// # Example
///
/// ```
/// use sim::fifo::DelayQueue;
///
/// let mut q: DelayQueue<&str> = DelayQueue::new(4);
/// q.push(0, 10, "slow").unwrap();
/// q.push(0, 1, "fast-but-behind").unwrap();
/// assert_eq!(q.pop_ready(5), None);
/// assert_eq!(q.pop_ready(10), Some("slow"));
/// // The second entry was ready long ago; it pops immediately after.
/// assert_eq!(q.pop_ready(10), Some("fast-but-behind"));
/// ```
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    entries: Ring<(Cycle, T)>,
    capacity: usize,
}

impl<T> DelayQueue<T> {
    /// Creates a queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        Self {
            entries: Ring::new(),
            capacity,
        }
    }

    /// Current number of queued elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a push would be rejected.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Pushes an element at cycle `now` with an individual `delay`; it
    /// becomes visible at `now + delay` (but never before entries ahead
    /// of it).
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] carrying the element back if at capacity.
    pub fn push(&mut self, now: Cycle, delay: Cycle, item: T) -> Result<(), FifoFull<T>> {
        if self.is_full() {
            return Err(FifoFull(item));
        }
        self.entries.push_back((now + delay, item));
        Ok(())
    }

    /// Whether the head exists and is visible at cycle `now`.
    pub fn has_ready(&self, now: Cycle) -> bool {
        matches!(self.entries.front(), Some((ready_at, _)) if *ready_at <= now)
    }

    /// Removes and returns the head if visible at cycle `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.has_ready(now) {
            self.entries.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Removes every element (synchronous reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The cycle at which the head element becomes (or became) visible,
    /// or `None` if the queue is empty.
    pub fn next_ready_at(&self) -> Option<Cycle> {
        self.entries.front().map(|(ready_at, _)| *ready_at)
    }
}

impl<T: crate::persist::PersistValue> crate::persist::PersistValue for TimedFifo<T> {
    fn save_value(&self, w: &mut crate::persist::SnapshotWriter) {
        w.put_usize(self.capacity);
        w.put_u64(self.latency);
        w.put_u64(self.pushed);
        w.put_u64(self.popped);
        w.put_usize(self.max_occupancy);
        self.entries.save_value(w);
    }

    fn load_value(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        let capacity = r.take_usize()?;
        if capacity == 0 {
            return Err(crate::persist::PersistError::Corrupt("fifo capacity zero"));
        }
        let latency = r.take_u64()?;
        let pushed = r.take_u64()?;
        let popped = r.take_u64()?;
        let max_occupancy = r.take_usize()?;
        let entries = Ring::load_value(r)?;
        if entries.len() > capacity {
            return Err(crate::persist::PersistError::Corrupt(
                "fifo occupancy exceeds capacity",
            ));
        }
        Ok(Self {
            entries,
            capacity,
            latency,
            pushed,
            popped,
            max_occupancy,
        })
    }
}

impl<T: crate::persist::PersistValue> crate::persist::PersistValue for DelayQueue<T> {
    fn save_value(&self, w: &mut crate::persist::SnapshotWriter) {
        w.put_usize(self.capacity);
        self.entries.save_value(w);
    }

    fn load_value(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        let capacity = r.take_usize()?;
        if capacity == 0 {
            return Err(crate::persist::PersistError::Corrupt("queue capacity zero"));
        }
        let entries = Ring::load_value(r)?;
        if entries.len() > capacity {
            return Err(crate::persist::PersistError::Corrupt(
                "queue occupancy exceeds capacity",
            ));
        }
        Ok(Self { entries, capacity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fifo_is_empty() {
        let f: TimedFifo<u8> = TimedFifo::new(3, 1);
        assert!(f.is_empty());
        assert!(!f.is_full());
        assert_eq!(f.len(), 0);
        assert_eq!(f.free(), 3);
        assert_eq!(f.capacity(), 3);
        assert_eq!(f.latency(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: TimedFifo<u8> = TimedFifo::new(0, 1);
    }

    #[test]
    fn latency_zero_visible_same_cycle() {
        let mut f = TimedFifo::new(2, 0);
        f.push(5, 'x').unwrap();
        assert_eq!(f.peek_ready(5), Some(&'x'));
        assert_eq!(f.pop_ready(5), Some('x'));
    }

    #[test]
    fn latency_one_hides_for_one_cycle() {
        let mut f = TimedFifo::new(2, 1);
        f.push(5, 'x').unwrap();
        assert!(!f.has_ready(5));
        assert_eq!(f.pop_ready(5), None);
        assert!(f.has_ready(6));
        assert_eq!(f.pop_ready(6), Some('x'));
    }

    #[test]
    fn long_latency_pipe() {
        let mut f = TimedFifo::new(8, 22);
        f.push(100, 1u32).unwrap();
        for c in 100..122 {
            assert_eq!(f.pop_ready(c), None, "cycle {c}");
        }
        assert_eq!(f.pop_ready(122), Some(1));
    }

    #[test]
    fn rejects_when_full_and_returns_item() {
        let mut f = TimedFifo::new(1, 1);
        f.push(0, 10).unwrap();
        let err = f.push(0, 20).unwrap_err();
        assert_eq!(err, FifoFull(20));
        assert_eq!(err.to_string(), "fifo is full");
    }

    #[test]
    fn order_preserved_across_cycles() {
        let mut f = TimedFifo::new(10, 1);
        f.push(0, 1).unwrap();
        f.push(1, 2).unwrap();
        f.push(2, 3).unwrap();
        assert_eq!(f.pop_ready(10), Some(1));
        assert_eq!(f.pop_ready(10), Some(2));
        assert_eq!(f.pop_ready(10), Some(3));
        assert_eq!(f.pop_ready(10), None);
    }

    #[test]
    fn head_blocks_tail_even_if_tail_ready() {
        // Entries pushed at decreasing visibility can't reorder: FIFO.
        let mut f = TimedFifo::new(4, 2);
        f.push(0, 'a').unwrap(); // visible at 2
        f.push(0, 'b').unwrap(); // visible at 2
        assert_eq!(f.ready_len(1), 0);
        assert_eq!(f.ready_len(2), 2);
        assert_eq!(f.pop_ready(2), Some('a'));
    }

    #[test]
    fn ready_len_counts_only_visible_prefix() {
        let mut f = TimedFifo::new(4, 1);
        f.push(0, 1).unwrap(); // visible at 1
        f.push(3, 2).unwrap(); // visible at 4
        assert_eq!(f.ready_len(1), 1);
        assert_eq!(f.ready_len(3), 1);
        assert_eq!(f.ready_len(4), 2);
    }

    #[test]
    fn lifetime_counters_and_high_water() {
        let mut f = TimedFifo::new(2, 0);
        f.push(0, 1).unwrap();
        f.push(0, 2).unwrap();
        assert_eq!(f.max_occupancy(), 2);
        f.pop_ready(0);
        f.pop_ready(0);
        f.push(1, 3).unwrap();
        assert_eq!(f.total_pushed(), 3);
        assert_eq!(f.total_popped(), 2);
        assert_eq!(f.max_occupancy(), 2);
    }

    #[test]
    fn clear_empties_queue() {
        let mut f = TimedFifo::new(4, 1);
        f.push(0, 1).unwrap();
        f.push(0, 2).unwrap();
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.pop_ready(100), None);
    }

    #[test]
    fn iter_sees_invisible_entries() {
        let mut f = TimedFifo::new(4, 10);
        f.push(0, 7).unwrap();
        f.push(0, 8).unwrap();
        let all: Vec<_> = f.iter().copied().collect();
        assert_eq!(all, vec![7, 8]);
    }

    #[test]
    fn steady_state_wrap_does_not_grow_slots() {
        let mut f = TimedFifo::new(4, 1);
        for c in 0..10_000u64 {
            f.push(c, c).unwrap();
            assert_eq!(f.pop_ready(c + 1), Some(c));
        }
        assert_eq!(f.total_pushed(), 10_000);
        assert_eq!(f.total_popped(), 10_000);
        assert_eq!(f.max_occupancy(), 1);
    }

    #[test]
    fn delay_queue_per_entry_latency() {
        let mut q = DelayQueue::new(4);
        q.push(0, 3, 'a').unwrap();
        assert!(!q.has_ready(2));
        assert_eq!(q.pop_ready(3), Some('a'));
    }

    #[test]
    fn delay_queue_is_strictly_fifo() {
        let mut q = DelayQueue::new(4);
        q.push(0, 100, 1).unwrap();
        q.push(0, 1, 2).unwrap();
        // Entry 2 was ready at cycle 1, but FIFO order holds.
        assert_eq!(q.pop_ready(50), None);
        assert_eq!(q.pop_ready(100), Some(1));
        assert_eq!(q.pop_ready(100), Some(2));
    }

    #[test]
    fn delay_queue_capacity_and_clear() {
        let mut q = DelayQueue::new(1);
        q.push(0, 0, 9u8).unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(0, 0, 10), Err(FifoFull(10)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn delay_queue_zero_capacity_panics() {
        let _: DelayQueue<u8> = DelayQueue::new(0);
    }
}
