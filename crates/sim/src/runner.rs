//! The simulation loop: ticks a component until completion or deadlock.

use crate::clock::Cycle;

/// A simulatable unit of hardware: advances one clock cycle per call.
///
/// Implementors report *progress* so the [`Runner`] can distinguish a
/// design that is legitimately idle-waiting from one that has deadlocked
/// (e.g. a protocol bug where two FIFOs wait on each other forever).
///
/// `Send` is a supertrait: models are plain owned data (no `Rc`, no
/// thread-local handles), and requiring it here is what lets the
/// sharded scheduler (see [`crate::parallel`]) move whole subtrees of
/// components onto worker threads.
pub trait Component: Send {
    /// Advances the component by one cycle. Returns `true` if any state
    /// changed (a beat moved, a counter advanced toward an observable
    /// event) — used for deadlock detection.
    fn tick(&mut self, now: Cycle) -> bool;

    /// Event-horizon hint: the earliest future cycle at which this
    /// component could possibly make progress or change observable
    /// state, assuming no external input arrives before then.
    ///
    /// The contract is asymmetric: a component may *under-promise*
    /// (return a cycle earlier than its true next event — the scheduler
    /// merely wakes it up for nothing), but must never *over-promise*
    /// (return a cycle later than its true next event, which would let
    /// the scheduler skip state changes). `None` means "purely
    /// reactive": nothing will happen until some other component feeds
    /// this one. The default of `Some(now + 1)` reproduces plain
    /// cycle-by-cycle stepping and is always safe.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now + 1)
    }

    /// Names of the innermost sub-components that made progress on the
    /// most recent tick that made any — the triage information a
    /// [`Runner`] folds into [`StallDiagnostics`] when it declares a
    /// stall. Leaf components and aggregates that don't track
    /// attribution return an empty list (the default).
    fn last_active(&self) -> Vec<String> {
        Vec::new()
    }
}

impl<T: Component + ?Sized> Component for Box<T> {
    fn tick(&mut self, now: Cycle) -> bool {
        (**self).tick(now)
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        (**self).next_event(now)
    }

    fn last_active(&self) -> Vec<String> {
        (**self).last_active()
    }
}

/// What a [`Runner`] knew about forward progress when it declared a
/// stall — enough to triage a deadlocked topology without re-running.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StallDiagnostics {
    /// The last cycle at which the component reported progress, or
    /// `None` when it never made any.
    pub last_progress_at: Option<Cycle>,
    /// Names of the sub-components that moved on that cycle, as reported
    /// by [`Component::last_active`]; empty when the component doesn't
    /// track attribution.
    pub last_active: Vec<String>,
}

impl std::fmt::Display for StallDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.last_progress_at {
            None => write!(f, "no progress was ever made"),
            Some(c) if self.last_active.is_empty() => {
                write!(f, "last progress at cycle {c}")
            }
            Some(c) => write!(
                f,
                "last progress at cycle {c} by {}",
                self.last_active.join(", ")
            ),
        }
    }
}

/// Why a [`Runner`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The caller-supplied predicate became true at the contained cycle.
    Done(Cycle),
    /// The cycle limit was reached before the predicate held.
    CycleLimit(Cycle),
    /// No component reported progress for the configured number of
    /// consecutive cycles (likely a deadlock or a dried-up workload).
    /// Carries what is known about the last progress made.
    Stalled(Cycle, StallDiagnostics),
}

impl RunOutcome {
    /// The cycle at which the run stopped, regardless of outcome.
    pub fn cycle(&self) -> Cycle {
        match *self {
            RunOutcome::Done(c) | RunOutcome::CycleLimit(c) | RunOutcome::Stalled(c, _) => c,
        }
    }

    /// Whether the run completed because the predicate held.
    pub fn is_done(&self) -> bool {
        matches!(self, RunOutcome::Done(_))
    }

    /// Stall triage information, when the run stalled.
    pub fn stall_diagnostics(&self) -> Option<&StallDiagnostics> {
        match self {
            RunOutcome::Stalled(_, d) => Some(d),
            _ => None,
        }
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunOutcome::Done(c) => write!(f, "done at cycle {c}"),
            RunOutcome::CycleLimit(c) => write!(f, "cycle limit reached at {c}"),
            RunOutcome::Stalled(c, d) => write!(f, "stalled at cycle {c} ({d})"),
        }
    }
}

/// Drives a [`Component`] through cycles until a predicate holds.
///
/// # Example
///
/// ```
/// use sim::{Component, Cycle, Runner};
///
/// struct CountTo10(u64);
/// impl Component for CountTo10 {
///     fn tick(&mut self, _now: Cycle) -> bool {
///         if self.0 < 10 { self.0 += 1; true } else { false }
///     }
/// }
///
/// let mut c = CountTo10(0);
/// let outcome = Runner::new().run_until(&mut c, |c: &CountTo10| c.0 == 10);
/// assert!(outcome.is_done());
/// ```
#[derive(Debug, Clone)]
pub struct Runner {
    max_cycles: Cycle,
    stall_limit: Cycle,
    start_cycle: Cycle,
}

impl Runner {
    /// Default maximum simulated cycles (10 simulated seconds at 150 MHz
    /// would be 1.5e9; experiments here are far shorter).
    pub const DEFAULT_MAX_CYCLES: Cycle = 500_000_000;

    /// Default number of progress-free cycles treated as a stall.
    pub const DEFAULT_STALL_LIMIT: Cycle = 100_000;

    /// Creates a runner with default limits, starting at cycle 0.
    pub fn new() -> Self {
        Self {
            max_cycles: Self::DEFAULT_MAX_CYCLES,
            stall_limit: Self::DEFAULT_STALL_LIMIT,
            start_cycle: 0,
        }
    }

    /// Sets the hard cycle limit.
    pub fn max_cycles(mut self, max: Cycle) -> Self {
        self.max_cycles = max;
        self
    }

    /// Sets how many consecutive progress-free cycles count as a stall.
    pub fn stall_limit(mut self, limit: Cycle) -> Self {
        self.stall_limit = limit;
        self
    }

    /// Sets the first cycle number (useful to resume a paused system).
    pub fn start_cycle(mut self, start: Cycle) -> Self {
        self.start_cycle = start;
        self
    }

    /// Ticks `component` until `done` returns true, the cycle limit is
    /// hit, or no progress is made for the stall limit.
    pub fn run_until<C, F>(&self, component: &mut C, mut done: F) -> RunOutcome
    where
        C: Component,
        F: FnMut(&C) -> bool,
    {
        let mut idle_streak: Cycle = 0;
        let mut last_progress_at: Option<Cycle> = None;
        let mut now = self.start_cycle;
        loop {
            if done(component) {
                return RunOutcome::Done(now);
            }
            if now >= self.start_cycle + self.max_cycles {
                return RunOutcome::CycleLimit(now);
            }
            if component.tick(now) {
                idle_streak = 0;
                last_progress_at = Some(now);
            } else {
                idle_streak += 1;
                if idle_streak >= self.stall_limit {
                    return RunOutcome::Stalled(
                        now,
                        StallDiagnostics {
                            last_progress_at,
                            last_active: component.last_active(),
                        },
                    );
                }
            }
            now += 1;
        }
    }

    /// Ticks `component` for exactly `cycles` cycles, starting at the
    /// configured start cycle, and returns the next cycle number.
    pub fn run_for<C: Component>(&self, component: &mut C, cycles: Cycle) -> Cycle {
        for now in self.start_cycle..self.start_cycle + cycles {
            component.tick(now);
        }
        self.start_cycle + cycles
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ticker {
        ticks: u64,
        busy_until: u64,
    }

    impl Component for Ticker {
        fn tick(&mut self, _now: Cycle) -> bool {
            self.ticks += 1;
            self.ticks <= self.busy_until
        }
    }

    #[test]
    fn completes_when_predicate_holds() {
        let mut t = Ticker {
            ticks: 0,
            busy_until: u64::MAX,
        };
        let out = Runner::new().run_until(&mut t, |t| t.ticks >= 5);
        assert_eq!(out, RunOutcome::Done(5));
        assert!(out.is_done());
        assert_eq!(out.cycle(), 5);
    }

    #[test]
    fn respects_cycle_limit() {
        let mut t = Ticker {
            ticks: 0,
            busy_until: u64::MAX,
        };
        let out = Runner::new().max_cycles(10).run_until(&mut t, |_| false);
        assert_eq!(out, RunOutcome::CycleLimit(10));
        assert!(!out.is_done());
    }

    #[test]
    fn detects_stall() {
        let mut t = Ticker {
            ticks: 0,
            busy_until: 3,
        };
        let out = Runner::new().stall_limit(50).run_until(&mut t, |_| false);
        // Last progress happened at cycle 2; the stall is declared after
        // `stall_limit` progress-free cycles.
        match out {
            RunOutcome::Stalled(c, ref d) => {
                assert_eq!(c, 2 + 50);
                assert_eq!(d.last_progress_at, Some(2));
                assert!(d.last_active.is_empty());
            }
            other => panic!("expected stall, got {other:?}"),
        }
    }

    struct NamedTicker {
        inner: Ticker,
    }

    impl Component for NamedTicker {
        fn tick(&mut self, now: Cycle) -> bool {
            self.inner.tick(now)
        }

        fn last_active(&self) -> Vec<String> {
            vec!["dma0".into(), "leaf1".into()]
        }
    }

    #[test]
    fn stall_diagnostics_name_last_active_components() {
        let mut t = NamedTicker {
            inner: Ticker {
                ticks: 0,
                busy_until: 1,
            },
        };
        let out = Runner::new().stall_limit(10).run_until(&mut t, |_| false);
        let d = out.stall_diagnostics().expect("stalled");
        assert_eq!(d.last_progress_at, Some(0));
        assert_eq!(d.last_active, vec!["dma0".to_string(), "leaf1".to_string()]);
        assert!(out
            .to_string()
            .contains("last progress at cycle 0 by dma0, leaf1"));
    }

    #[test]
    fn stall_with_no_progress_ever() {
        let mut t = Ticker {
            ticks: 0,
            busy_until: 0,
        };
        let out = Runner::new().stall_limit(5).run_until(&mut t, |_| false);
        let d = out.stall_diagnostics().expect("stalled");
        assert_eq!(d.last_progress_at, None);
        assert!(out.to_string().contains("no progress was ever made"));
    }

    #[test]
    fn run_for_exact_count_and_start_cycle() {
        let mut t = Ticker {
            ticks: 0,
            busy_until: u64::MAX,
        };
        let next = Runner::new().start_cycle(100).run_for(&mut t, 25);
        assert_eq!(next, 125);
        assert_eq!(t.ticks, 25);
    }

    #[test]
    fn predicate_checked_before_first_tick() {
        let mut t = Ticker {
            ticks: 0,
            busy_until: u64::MAX,
        };
        let out = Runner::new().run_until(&mut t, |_| true);
        assert_eq!(out, RunOutcome::Done(0));
        assert_eq!(t.ticks, 0);
    }

    #[test]
    fn outcome_display() {
        assert_eq!(RunOutcome::Done(3).to_string(), "done at cycle 3");
        assert_eq!(
            RunOutcome::CycleLimit(9).to_string(),
            "cycle limit reached at 9"
        );
        assert_eq!(
            RunOutcome::Stalled(1, StallDiagnostics::default()).to_string(),
            "stalled at cycle 1 (no progress was ever made)"
        );
    }
}
