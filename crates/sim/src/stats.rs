//! Measurement primitives used to regenerate the paper's figures.

use crate::clock::Cycle;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use sim::stats::Counter;
///
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` events, saturating at `u64::MAX`.
    ///
    /// Saturating rather than wrapping/panicking: fast-forwarded runs
    /// cover billions of cycles and a debug-build overflow panic in a
    /// metrics counter must never abort a simulation.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Adds one event, saturating at `u64::MAX`.
    pub fn incr(&mut self) {
        self.value = self.value.saturating_add(1);
    }

    /// The current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Resets the count to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// A fixed-size bank of [`Counter`]s indexed by a small category index
/// (e.g. a violation-kind discriminant).
///
/// The bank is deliberately index-typed rather than enum-typed so the
/// simulation kernel stays independent of the protocol layers that
/// define the categories.
///
/// # Example
///
/// ```
/// use sim::stats::CounterBank;
///
/// let mut bank = CounterBank::new(3);
/// bank.incr(0);
/// bank.add(2, 5);
/// assert_eq!(bank.get(0), 1);
/// assert_eq!(bank.get(2), 5);
/// assert_eq!(bank.total(), 6);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterBank {
    counters: Vec<Counter>,
}

impl CounterBank {
    /// Creates a bank of `categories` counters, all at zero.
    pub fn new(categories: usize) -> Self {
        Self {
            counters: vec![Counter::new(); categories],
        }
    }

    /// Number of categories in the bank.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the bank has no categories.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Adds one event to category `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn incr(&mut self, idx: usize) {
        self.counters[idx].incr();
    }

    /// Adds `n` events to category `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn add(&mut self, idx: usize, n: u64) {
        self.counters[idx].add(n);
    }

    /// Count in category `idx`, or zero when out of range.
    pub fn get(&self, idx: usize) -> u64 {
        self.counters.get(idx).map_or(0, Counter::value)
    }

    /// Sum over all categories.
    pub fn total(&self) -> u64 {
        self.counters.iter().map(Counter::value).sum()
    }

    /// Per-category counts in index order.
    pub fn values(&self) -> Vec<u64> {
        self.counters.iter().map(Counter::value).collect()
    }

    /// Resets every category to zero.
    pub fn reset(&mut self) {
        for c in &mut self.counters {
            c.reset();
        }
    }
}

/// Min/max/mean aggregate of observed latencies (in cycles).
///
/// The paper reports both *maximum* memory access times (Fig. 3b) and
/// notes average times differ by less than 5%; this recorder captures
/// both without storing every sample.
///
/// # Example
///
/// ```
/// use sim::stats::LatencyStat;
///
/// let mut l = LatencyStat::new();
/// l.record(10);
/// l.record(20);
/// assert_eq!(l.min(), Some(10));
/// assert_eq!(l.max(), Some(20));
/// assert_eq!(l.mean(), Some(15.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStat {
    count: u64,
    sum: u128,
    min: Option<Cycle>,
    max: Option<Cycle>,
}

impl LatencyStat {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample (count and sum saturate rather than
    /// overflow on multi-billion-sample runs).
    pub fn record(&mut self, cycles: Cycle) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(cycles as u128);
        self.min = Some(self.min.map_or(cycles, |m| m.min(cycles)));
        self.max = Some(self.max.map_or(cycles, |m| m.max(cycles)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, if any was recorded.
    pub fn min(&self) -> Option<Cycle> {
        self.min
    }

    /// Largest sample, if any was recorded.
    pub fn max(&self) -> Option<Cycle> {
        self.max
    }

    /// Arithmetic mean of samples, if any was recorded.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Merges another recorder's samples into this one (saturating).
    pub fn merge(&mut self, other: &LatencyStat) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A fixed-bucket histogram over `u64` samples with linear bucket width.
///
/// Samples above the covered range land in an explicit overflow bucket so
/// nothing is silently dropped.
///
/// # Example
///
/// ```
/// use sim::stats::Histogram;
///
/// let mut h = Histogram::new(10, 4); // 4 buckets of width 10: 0..40
/// h.record(5);
/// h.record(15);
/// h.record(100); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be non-zero");
        assert!(buckets > 0, "bucket count must be non-zero");
        Self {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = (sample / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `idx` (covering `[idx*w, (idx+1)*w)`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Number of samples beyond the covered range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including overflow.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// The sample value below which `q` (0.0..=1.0) of samples fall,
    /// resolved to bucket upper bounds.
    ///
    /// Returns `None` when the histogram is empty, and also when the
    /// requested quantile falls inside the *overflow* bucket: samples
    /// beyond the covered range have no meaningful upper bound, so the
    /// caller must consult [`Self::overflow`] rather than receive a
    /// fabricated value. `q` at or below 0.0 resolves to the first
    /// *non-empty* bucket (the smallest recorded sample's bucket), never
    /// to an empty leading bucket.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        // At least one sample must be covered: q = 0.0 means "the bucket
        // holding the smallest sample", not "bucket 0 unconditionally".
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, count) in self.buckets.iter().enumerate() {
            seen += count;
            // `seen` only crosses `target` (>= 1) inside a non-empty
            // bucket, so this never resolves to an empty leading bucket.
            if seen >= target {
                return Some((idx as u64 + 1) * self.bucket_width);
            }
        }
        // Target lands in the overflow bucket: no bounded answer exists.
        None
    }
}

/// Tracks bytes transferred over a cycle span to report bandwidth.
///
/// # Example
///
/// ```
/// use sim::stats::BandwidthMeter;
///
/// let mut bw = BandwidthMeter::new();
/// bw.record(100, 16);
/// bw.record(200, 16);
/// assert_eq!(bw.bytes(), 32);
/// // 32 bytes over cycles 100..=200.
/// assert!((bw.bytes_per_cycle(0, 200) - 0.16).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BandwidthMeter {
    bytes: u64,
    first: Option<Cycle>,
    last: Option<Cycle>,
}

impl BandwidthMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` transferred at cycle `now` (saturating, so long
    /// fast-forwarded runs cannot overflow the byte total).
    pub fn record(&mut self, now: Cycle, bytes: u64) {
        self.bytes = self.bytes.saturating_add(bytes);
        if self.first.is_none() {
            self.first = Some(now);
        }
        self.last = Some(now);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Cycle of first recorded transfer.
    pub fn first_cycle(&self) -> Option<Cycle> {
        self.first
    }

    /// Cycle of last recorded transfer.
    pub fn last_cycle(&self) -> Option<Cycle> {
        self.last
    }

    /// Average bytes per cycle over an explicit window.
    ///
    /// Returns 0.0 for an empty window.
    pub fn bytes_per_cycle(&self, window_start: Cycle, window_end: Cycle) -> f64 {
        if window_end <= window_start {
            return 0.0;
        }
        self.bytes as f64 / (window_end - window_start) as f64
    }

    /// Resets the meter.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A level gauge tracking a current value and its high-water mark.
///
/// Unlike a counter, [`Gauge::set`] is *idempotent*: setting the same
/// value twice is indistinguishable from setting it once. That makes
/// gauges safe to sample from `tick()` under the fast-forward scheduler —
/// skipped no-progress cycles would have re-set the same level, so the
/// observable state (current + peak) is identical in both scheduler
/// modes.
///
/// # Example
///
/// ```
/// use sim::stats::Gauge;
///
/// let mut g = Gauge::new();
/// g.set(3);
/// g.set(7);
/// g.set(2);
/// assert_eq!(g.current(), 2);
/// assert_eq!(g.peak(), 7);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    current: u64,
    peak: u64,
}

impl Gauge {
    /// Creates a gauge at level zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current level, updating the peak if exceeded.
    pub fn set(&mut self, level: u64) {
        self.current = level;
        if level > self.peak {
            self.peak = level;
        }
    }

    /// The most recently set level.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// The highest level ever set.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Resets both level and peak to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Sliding-window transaction counter used to *verify* reservation:
/// records event cycles and answers "how many events fell inside any
/// window of length `w`" — the paper's bandwidth-reservation invariant is
/// that this never exceeds the budget (+ boundary effects across two
/// adjacent periods).
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    cycles: Vec<Cycle>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event at cycle `now`. Events must be recorded in
    /// non-decreasing cycle order.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the previously recorded event.
    pub fn record(&mut self, now: Cycle) {
        if let Some(&last) = self.cycles.last() {
            assert!(now >= last, "events must be recorded in order");
        }
        self.cycles.push(now);
    }

    /// Total recorded events.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// All recorded event cycles, in order.
    pub fn cycles(&self) -> &[Cycle] {
        &self.cycles
    }

    /// Number of events in the half-open cycle window `[start, start+w)`.
    pub fn count_in_window(&self, start: Cycle, w: Cycle) -> usize {
        let lo = self.cycles.partition_point(|&c| c < start);
        let hi = self
            .cycles
            .partition_point(|&c| c < start.saturating_add(w));
        hi - lo
    }

    /// The maximum number of events observed in any sliding window of
    /// length `w` (windows anchored at each event).
    pub fn max_in_any_window(&self, w: Cycle) -> usize {
        self.cycles
            .iter()
            .map(|&start| self.count_in_window(start, w))
            .max()
            .unwrap_or(0)
    }
}

mod persist_impls {
    //! [`PersistValue`](crate::persist::PersistValue) for every
    //! measurement primitive — statistics feed fingerprint surfaces
    //! (metrics JSON, violation reports), so they must survive
    //! snapshot/restore bit-exactly.

    use super::*;
    use crate::persist::{PersistError, PersistValue, SnapshotReader, SnapshotWriter};

    impl PersistValue for Counter {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.value);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                value: r.take_u64()?,
            })
        }
    }

    impl PersistValue for CounterBank {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.counters.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                counters: Vec::load_value(r)?,
            })
        }
    }

    impl PersistValue for LatencyStat {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.count);
            w.put_u128(self.sum);
            self.min.save_value(w);
            self.max.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                count: r.take_u64()?,
                sum: r.take_u128()?,
                min: Option::load_value(r)?,
                max: Option::load_value(r)?,
            })
        }
    }

    impl PersistValue for Histogram {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.bucket_width);
            self.buckets.save_value(w);
            w.put_u64(self.overflow);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            let bucket_width = r.take_u64()?;
            let buckets = Vec::load_value(r)?;
            if bucket_width == 0 || buckets.is_empty() {
                return Err(PersistError::Corrupt("histogram shape"));
            }
            Ok(Self {
                bucket_width,
                buckets,
                overflow: r.take_u64()?,
            })
        }
    }

    impl PersistValue for BandwidthMeter {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.bytes);
            self.first.save_value(w);
            self.last.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                bytes: r.take_u64()?,
                first: Option::load_value(r)?,
                last: Option::load_value(r)?,
            })
        }
    }

    impl PersistValue for Gauge {
        fn save_value(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.current);
            w.put_u64(self.peak);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                current: r.take_u64()?,
                peak: r.take_u64()?,
            })
        }
    }

    impl PersistValue for EventLog {
        fn save_value(&self, w: &mut SnapshotWriter) {
            self.cycles.save_value(w);
        }
        fn load_value(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
            Ok(Self {
                cycles: Vec::load_value(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_bank_indexes_and_totals() {
        let mut bank = CounterBank::new(4);
        assert_eq!(bank.len(), 4);
        assert!(!bank.is_empty());
        bank.incr(1);
        bank.incr(1);
        bank.add(3, 7);
        assert_eq!(bank.get(0), 0);
        assert_eq!(bank.get(1), 2);
        assert_eq!(bank.get(3), 7);
        assert_eq!(bank.get(99), 0); // out of range reads as zero
        assert_eq!(bank.total(), 9);
        assert_eq!(bank.values(), vec![0, 2, 0, 7]);
        bank.reset();
        assert_eq!(bank.total(), 0);
    }

    #[test]
    #[should_panic]
    fn counter_bank_incr_out_of_range_panics() {
        CounterBank::new(2).incr(2);
    }

    #[test]
    fn latency_stat_empty() {
        let l = LatencyStat::new();
        assert_eq!(l.count(), 0);
        assert_eq!(l.min(), None);
        assert_eq!(l.max(), None);
        assert_eq!(l.mean(), None);
    }

    #[test]
    fn latency_stat_single_sample() {
        let mut l = LatencyStat::new();
        l.record(42);
        assert_eq!(l.min(), Some(42));
        assert_eq!(l.max(), Some(42));
        assert_eq!(l.mean(), Some(42.0));
    }

    #[test]
    fn latency_stat_merge() {
        let mut a = LatencyStat::new();
        a.record(10);
        let mut b = LatencyStat::new();
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(30));
        assert_eq!(a.mean(), Some(20.0));
    }

    #[test]
    fn latency_stat_merge_with_empty() {
        let mut a = LatencyStat::new();
        a.record(5);
        a.merge(&LatencyStat::new());
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), Some(5));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(4, 2); // 0..4, 4..8
        h.record(0);
        h.record(3);
        h.record(4);
        h.record(8);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(10, 10);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(Histogram::new(1, 1).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn histogram_zero_width_panics() {
        let _ = Histogram::new(0, 4);
    }

    #[test]
    fn histogram_quantile_zero_skips_empty_leading_buckets() {
        // Regression: quantile(0.0) used to return bucket 0's upper bound
        // (10) even though bucket 0 holds no samples.
        let mut h = Histogram::new(10, 10);
        h.record(25); // bucket 2
        h.record(27);
        assert_eq!(h.quantile(0.0), Some(30));
        assert_eq!(h.quantile(1.0), Some(30));
    }

    #[test]
    fn histogram_quantile_in_overflow_is_none() {
        // Regression: quantiles landing in the overflow bucket used to
        // resolve to Some(u64::MAX) as if that were a real upper bound.
        let mut h = Histogram::new(10, 2); // covers 0..20
        h.record(5);
        h.record(1000); // overflow
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.overflow(), 1);
        // All samples in overflow: every quantile is unbounded.
        let mut h = Histogram::new(10, 2);
        h.record(999);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        c.incr();
        c.incr(); // would overflow with bare `+=`
        c.add(7);
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn latency_stat_saturates_instead_of_overflowing() {
        let mut l = LatencyStat {
            count: u64::MAX,
            sum: u128::MAX,
            min: Some(1),
            max: Some(1),
        };
        l.record(10); // would overflow both count and sum
        assert_eq!(l.count(), u64::MAX);
        assert_eq!(l.max(), Some(10));
        let mut other = LatencyStat::new();
        other.record(5);
        l.merge(&other); // merge saturates too
        assert_eq!(l.count(), u64::MAX);
    }

    #[test]
    fn bandwidth_meter_saturates_instead_of_overflowing() {
        let mut bw = BandwidthMeter::new();
        bw.record(0, u64::MAX - 10);
        bw.record(1, 100); // would overflow with bare `+=`
        assert_eq!(bw.bytes(), u64::MAX);
        assert_eq!(bw.last_cycle(), Some(1));
    }

    #[test]
    fn gauge_tracks_current_and_peak() {
        let mut g = Gauge::new();
        assert_eq!(g.current(), 0);
        assert_eq!(g.peak(), 0);
        g.set(5);
        g.set(5); // idempotent: re-setting changes nothing
        let snap = g;
        g.set(5);
        assert_eq!(g, snap);
        g.set(9);
        g.set(2);
        assert_eq!(g.current(), 2);
        assert_eq!(g.peak(), 9);
        g.reset();
        assert_eq!(g, Gauge::new());
    }

    #[test]
    fn bandwidth_meter_window() {
        let mut bw = BandwidthMeter::new();
        bw.record(10, 64);
        bw.record(20, 64);
        assert_eq!(bw.first_cycle(), Some(10));
        assert_eq!(bw.last_cycle(), Some(20));
        assert!((bw.bytes_per_cycle(0, 128) - 1.0).abs() < 1e-12);
        assert_eq!(bw.bytes_per_cycle(10, 10), 0.0);
        bw.reset();
        assert_eq!(bw.bytes(), 0);
    }

    #[test]
    fn event_log_window_counts() {
        let mut log = EventLog::new();
        for c in [0u64, 5, 9, 10, 11, 30] {
            log.record(c);
        }
        assert_eq!(log.count_in_window(0, 10), 3); // 0,5,9
        assert_eq!(log.count_in_window(10, 10), 2); // 10,11
        assert_eq!(log.max_in_any_window(10), 4); // window [5,15): 5,9,10,11
    }

    #[test]
    fn event_log_max_window_anchored_at_events() {
        let mut log = EventLog::new();
        for c in [5u64, 9, 10, 11] {
            log.record(c);
        }
        // Window [5, 15) contains all four events.
        assert_eq!(log.max_in_any_window(10), 4);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn event_log_rejects_out_of_order() {
        let mut log = EventLog::new();
        log.record(10);
        log.record(5);
    }

    #[test]
    fn event_log_empty() {
        let log = EventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.max_in_any_window(100), 0);
    }
}
